// Calibration harness: drives the cycle-level DRAM model with the access
// patterns that occur in GB training and reports the sustained bandwidth of
// each. The step-costing models use these calibrated rates rather than
// simulating every one of the trillions of accesses of a full training run
// (see DESIGN.md "Substitutions"). Tests exercise the cycle-accurate path
// directly on small traces.
#pragma once

#include <cstdint>

#include "memsim/dram_config.h"

namespace booster::memsim {

/// Access patterns seen by the performance models.
enum class AccessPattern {
  kStreaming,     // sequential blocks: record fetch, column stream, G/H stream
  kStridedGather, // every k-th block: sparse column gather at deep tree nodes
  kRandom,        // uniform random blocks: spilled histogram read-modify-write
};

struct ProbeResult {
  double bandwidth_bytes_per_sec = 0.0;
  double row_hit_rate = 0.0;
  double utilization = 0.0;  // achieved / peak
};

/// Calibrated sustained bandwidths for all patterns of one DRAM config,
/// plus the stride anchors of the effective-bandwidth interpolation
/// (perf::effective_bandwidth): bandwidth holds at `streaming` up to
/// `flat_stride`, passes through `strided_gather` at `cal_stride` (the
/// stride the gather rate was measured at), and reaches `random` by
/// `random_stride`. The defaults are the hand-fit values for the Table IV
/// configuration; BandwidthProbe::calibrate replaces them with anchors
/// measured from a stride sweep so non-default DRAM configs stay honest.
struct BandwidthProfile {
  double streaming = 0.0;
  double strided_gather = 0.0;  // at cal_stride
  double random = 0.0;
  double peak = 0.0;
  double flat_stride = 8.0;
  double cal_stride = 16.0;
  double random_stride = 64.0;

  double for_pattern(AccessPattern p) const {
    switch (p) {
      case AccessPattern::kStreaming:
        return streaming;
      case AccessPattern::kStridedGather:
        return strided_gather;
      case AccessPattern::kRandom:
        return random;
    }
    return streaming;
  }
};

class BandwidthProbe {
 public:
  /// Stride the strided_gather rate is measured at; cal_stride of every
  /// calibrated profile.
  static constexpr std::uint64_t kCalibrationStride = 16;

  explicit BandwidthProbe(const DramConfig& cfg = DramConfig{}) : cfg_(cfg) {}

  /// Runs `num_requests` block transfers of the given pattern through the
  /// cycle-level model and reports sustained bandwidth. `stride_blocks`
  /// applies to kStridedGather only.
  ProbeResult measure(AccessPattern pattern, std::uint64_t num_requests = 200000,
                      std::uint64_t stride_blocks = kCalibrationStride) const;

  /// Measures all three patterns; the result feeds every step-cost model.
  /// Also sweeps the gather stride to place the interpolation anchors:
  /// flat_stride = the widest stride whose gather rate still holds near the
  /// streaming rate, random_stride = the narrowest stride already down at
  /// the random rate (see BandwidthProfile). The sweep uses a fraction of
  /// `num_requests` per point -- anchor placement needs the shape of the
  /// decay, not its last percent of precision.
  BandwidthProfile calibrate(std::uint64_t num_requests = 200000) const;

 private:
  DramConfig cfg_;
};

}  // namespace booster::memsim
