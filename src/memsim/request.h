// Memory request type shared by the DRAM channel model and its clients.
#pragma once

#include <cstdint>

namespace booster::memsim {

using Cycle = std::uint64_t;

/// One 64-byte block transfer. Addresses are block-granular (byte address /
/// block size); the address map decodes channel/bank/row from it.
struct Request {
  std::uint64_t block_addr = 0;
  bool is_write = false;
  Cycle enqueue_cycle = 0;
  Cycle complete_cycle = 0;  // filled by the channel when data finishes
};

/// Decoded location of a block within the DRAM topology.
struct Location {
  std::uint32_t channel = 0;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
};

}  // namespace booster::memsim
