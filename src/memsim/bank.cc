#include "memsim/bank.h"

#include <algorithm>

#include "util/check.h"

namespace booster::memsim {

void Bank::activate(Cycle now, std::uint64_t row) {
  BOOSTER_DCHECK(can_activate(now));
  open_row_ = static_cast<std::int64_t>(row);
  earliest_column_ = now + cfg_->tRCD;
  earliest_precharge_ = now + cfg_->tRAS;
  ++activations_;
}

void Bank::precharge(Cycle now) {
  BOOSTER_DCHECK(can_precharge(now));
  open_row_ = kNoRow;
  earliest_activate_ = now + cfg_->tRP;
}

Cycle Bank::access(Cycle now) {
  BOOSTER_DCHECK(is_open() && now >= earliest_column_);
  ++accesses_;
  // Successive column accesses to the open row are limited by the burst
  // length on the shared data bus (enforced by the channel); the bank itself
  // can accept the next column command after the burst gap.
  earliest_column_ = now + cfg_->burst_cycles();
  // A row must stay open at least until tRAS *and* until the last access
  // completes its burst before it can be precharged.
  earliest_precharge_ =
      std::max<Cycle>(earliest_precharge_, now + cfg_->tCAS + cfg_->burst_cycles());
  return now + cfg_->tCAS;
}

}  // namespace booster::memsim
