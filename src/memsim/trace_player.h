// Address-trace replay through the cycle-level DRAM model. Used by tests
// and the rate-matching bench to measure precise service times for the
// composite access patterns the training steps generate (e.g. record gather
// followed by pointer write-back), beyond the three canonical probe
// patterns.
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/dram_config.h"
#include "memsim/memory_system.h"

namespace booster::memsim {

struct TraceEntry {
  std::uint64_t block_addr = 0;
  bool is_write = false;
};

struct ReplayResult {
  Cycle cycles = 0;
  std::uint64_t bytes = 0;
  double bandwidth_bytes_per_sec = 0.0;
  double row_hit_rate = 0.0;
};

class TracePlayer {
 public:
  explicit TracePlayer(const DramConfig& cfg = DramConfig{}) : cfg_(cfg) {}

  /// Replays the trace with full queue pressure (up to `issue_per_cycle`
  /// enqueue attempts per cycle) and runs the memory system to idle.
  ReplayResult replay(const std::vector<TraceEntry>& trace,
                      std::uint32_t issue_per_cycle = 8) const;

  /// Convenience builders for composite traces.
  static std::vector<TraceEntry> sequential_read(std::uint64_t blocks,
                                                 std::uint64_t start = 0);
  /// Gather: every block whose index satisfies a Bernoulli(density) draw,
  /// deterministic by seed -- a sparse column fetch.
  static std::vector<TraceEntry> bernoulli_gather(std::uint64_t span_blocks,
                                                  double density,
                                                  std::uint64_t seed = 1);
  /// Interleaved read stream + write-back stream (step 3's pointer output).
  static std::vector<TraceEntry> read_write_mix(std::uint64_t blocks,
                                                double write_fraction);

 private:
  DramConfig cfg_;
};

}  // namespace booster::memsim
