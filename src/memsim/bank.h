// One DRAM bank modeled with earliest-allowed-cycle bookkeeping instead of an
// explicit FSM: equivalent behaviour for open-page policy, far less code.
#pragma once

#include <cstdint>

#include "memsim/dram_config.h"
#include "memsim/request.h"

namespace booster::memsim {

class Bank {
 public:
  explicit Bank(const DramConfig& cfg) : cfg_(&cfg) {}

  static constexpr std::int64_t kNoRow = -1;

  std::int64_t open_row() const { return open_row_; }
  bool is_open() const { return open_row_ != kNoRow; }

  /// True if ACTIVATE(row) may issue at `now` (bank precharged, tRP elapsed).
  bool can_activate(Cycle now) const {
    return !is_open() && now >= earliest_activate_;
  }

  /// True if PRECHARGE may issue at `now` (row open, tRAS satisfied).
  bool can_precharge(Cycle now) const {
    return is_open() && now >= earliest_precharge_;
  }

  /// True if a column command (RD/WR) to the open row may issue at `now`.
  bool can_access(Cycle now, std::uint64_t row) const {
    return is_open() && open_row_ == static_cast<std::int64_t>(row) &&
           now >= earliest_column_;
  }

  void activate(Cycle now, std::uint64_t row);
  void precharge(Cycle now);

  /// Issues a column access; returns the cycle at which the data burst
  /// *starts* on the data bus (now + tCAS).
  Cycle access(Cycle now);

  std::uint64_t activations() const { return activations_; }
  std::uint64_t accesses() const { return accesses_; }

 private:
  const DramConfig* cfg_;
  std::int64_t open_row_ = kNoRow;
  Cycle earliest_activate_ = 0;
  Cycle earliest_column_ = 0;
  Cycle earliest_precharge_ = 0;
  std::uint64_t activations_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace booster::memsim
