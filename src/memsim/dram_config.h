// DRAM configuration matching the paper's Table IV: a high-bandwidth
// 24-channel memory with parameters derived from the Hynix JESD235 (HBM)
// standard, sustaining roughly 400 GB/s.
#pragma once

#include <cstdint>

namespace booster::memsim {

struct DramConfig {
  // Topology (Table IV): 24 channels, 16 banks, 1 KB rows.
  std::uint32_t channels = 24;
  std::uint32_t banks_per_channel = 16;
  std::uint32_t row_bytes = 1024;

  // Timing in memory-clock cycles (Table IV): tCAS-tRP-tRCD-tRAS.
  std::uint32_t tCAS = 12;
  std::uint32_t tRP = 12;
  std::uint32_t tRCD = 12;
  std::uint32_t tRAS = 28;

  // Activation-rate limits (JESD235-derived; not in Table IV but required
  // for realistic row-miss-heavy bandwidth): minimum gap between ACTs to
  // the same channel, and at most four ACTs per tFAW window.
  std::uint32_t tRRD = 4;
  std::uint32_t tFAW = 24;

  // Transfer granularity: one request moves one 64-byte block, occupying the
  // channel data bus for `burst_cycles` = block_bytes / bus_bytes_per_cycle.
  std::uint32_t block_bytes = 64;
  std::uint32_t bus_bytes_per_cycle = 16;

  // Memory clock. 24 ch x 16 B/cycle x 1.05 GHz = 403 GB/s peak, matching
  // the paper's "sustained bandwidth of about 400 GB/s".
  double clock_hz = 1.05e9;

  // Per-channel request queue depth (FR-FCFS window).
  std::uint32_t queue_depth = 32;

  std::uint32_t burst_cycles() const { return block_bytes / bus_bytes_per_cycle; }

  double peak_bandwidth_bytes_per_sec() const {
    return static_cast<double>(channels) * bus_bytes_per_cycle * clock_hz;
  }

  std::uint64_t blocks_per_row() const { return row_bytes / block_bytes; }
};

}  // namespace booster::memsim
