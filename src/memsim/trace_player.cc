#include "memsim/trace_player.h"

#include "util/check.h"
#include "util/rng.h"

namespace booster::memsim {

ReplayResult TracePlayer::replay(const std::vector<TraceEntry>& trace,
                                 std::uint32_t issue_per_cycle) const {
  BOOSTER_CHECK(issue_per_cycle > 0);
  MemorySystem mem(cfg_);
  std::size_t next = 0;
  while (mem.completed_requests() < trace.size()) {
    for (std::uint32_t i = 0; i < issue_per_cycle && next < trace.size(); ++i) {
      if (!mem.enqueue(trace[next].block_addr, trace[next].is_write)) break;
      ++next;
    }
    mem.tick();
  }
  ReplayResult r;
  r.cycles = mem.now();
  r.bytes = mem.bytes_transferred();
  r.bandwidth_bytes_per_sec = mem.achieved_bandwidth();
  r.row_hit_rate = mem.row_hit_rate();
  return r;
}

std::vector<TraceEntry> TracePlayer::sequential_read(std::uint64_t blocks,
                                                     std::uint64_t start) {
  std::vector<TraceEntry> trace;
  trace.reserve(blocks);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    trace.push_back({start + b, false});
  }
  return trace;
}

std::vector<TraceEntry> TracePlayer::bernoulli_gather(std::uint64_t span_blocks,
                                                      double density,
                                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<TraceEntry> trace;
  trace.reserve(static_cast<std::size_t>(span_blocks * density) + 1);
  for (std::uint64_t b = 0; b < span_blocks; ++b) {
    if (rng.bernoulli(density)) trace.push_back({b, false});
  }
  return trace;
}

std::vector<TraceEntry> TracePlayer::read_write_mix(std::uint64_t blocks,
                                                    double write_fraction) {
  util::Rng rng(0x5712EA11ULL);
  std::vector<TraceEntry> trace;
  trace.reserve(blocks);
  std::uint64_t read_addr = 0;
  std::uint64_t write_addr = 1ULL << 24;  // disjoint region
  for (std::uint64_t b = 0; b < blocks; ++b) {
    if (rng.bernoulli(write_fraction)) {
      trace.push_back({write_addr++, true});
    } else {
      trace.push_back({read_addr++, false});
    }
  }
  return trace;
}

}  // namespace booster::memsim
