#include "memsim/bandwidth_probe.h"

#include <algorithm>

#include "memsim/memory_system.h"
#include "util/rng.h"

namespace booster::memsim {

ProbeResult BandwidthProbe::measure(AccessPattern pattern,
                                    std::uint64_t num_requests,
                                    std::uint64_t stride_blocks) const {
  MemorySystem mem(cfg_);
  util::Rng rng(0xB005734ULL);
  // Working-set footprint for the random pattern: large enough that row
  // locality is negligible (matches a histogram spilled across DRAM).
  const std::uint64_t random_span_blocks = 1ULL << 22;  // 256 MB of blocks

  std::uint64_t issued = 0;
  std::uint64_t next_addr = 0;
  // Issue with back-pressure: one attempt per cycle per available queue slot.
  while (mem.completed_requests() < num_requests) {
    // Keep the channels fed: try to issue a few requests per cycle (the
    // accelerator front-end can generate addresses far faster than DRAM
    // consumes them, so the queue is the limit, not the generator).
    for (int burst = 0; burst < 8 && issued < num_requests; ++burst) {
      std::uint64_t addr = 0;
      switch (pattern) {
        case AccessPattern::kStreaming:
          addr = next_addr;
          break;
        case AccessPattern::kStridedGather:
          // Sparse ordered gather: every stride-th block on average, with
          // jitter so the touched blocks spread over all channels the way a
          // real subset of record pointers does (a fixed stride would alias
          // with the channel interleave).
          addr = next_addr * stride_blocks + rng.next_below(stride_blocks);
          break;
        case AccessPattern::kRandom:
          addr = rng.next_below(random_span_blocks);
          break;
      }
      if (!mem.enqueue(addr, /*is_write=*/false)) break;
      ++next_addr;
      ++issued;
    }
    mem.tick();
  }

  ProbeResult result;
  result.bandwidth_bytes_per_sec = mem.achieved_bandwidth();
  result.row_hit_rate = mem.row_hit_rate();
  result.utilization =
      result.bandwidth_bytes_per_sec / cfg_.peak_bandwidth_bytes_per_sec();
  return result;
}

BandwidthProfile BandwidthProbe::calibrate(std::uint64_t num_requests) const {
  BandwidthProfile profile;
  profile.streaming =
      measure(AccessPattern::kStreaming, num_requests).bandwidth_bytes_per_sec;
  profile.strided_gather =
      measure(AccessPattern::kStridedGather, num_requests)
          .bandwidth_bytes_per_sec;
  profile.random =
      measure(AccessPattern::kRandom, num_requests).bandwidth_bytes_per_sec;
  profile.peak = cfg_.peak_bandwidth_bytes_per_sec();

  // Stride sweep for the interpolation anchors. Tolerances are a few
  // percent: sustained rates at neighbouring strides differ by much more
  // than the probe's run-to-run resolution once the decay starts.
  const std::uint64_t sweep_requests =
      std::max<std::uint64_t>(8000, num_requests / 4);
  constexpr double kFlatTolerance = 0.97;    // still "at streaming"
  constexpr double kRandomTolerance = 1.05;  // already "at random"
  profile.cal_stride = static_cast<double>(kCalibrationStride);
  profile.flat_stride = 1.0;
  profile.random_stride = 0.0;
  for (const std::uint64_t stride : {2ULL, 4ULL, 6ULL, 8ULL, 12ULL, 16ULL,
                                     24ULL, 32ULL, 48ULL, 64ULL, 96ULL}) {
    const double bw =
        measure(AccessPattern::kStridedGather, sweep_requests, stride)
            .bandwidth_bytes_per_sec;
    if (stride < kCalibrationStride &&
        bw >= kFlatTolerance * profile.streaming) {
      profile.flat_stride = static_cast<double>(stride);
    }
    if (profile.random_stride == 0.0 && stride > kCalibrationStride &&
        bw <= kRandomTolerance * profile.random) {
      profile.random_stride = static_cast<double>(stride);
    }
  }
  if (profile.random_stride == 0.0) profile.random_stride = 128.0;
  // Anchor ordering flat < cal < random holds by construction: flat
  // candidates come from strides < kCalibrationStride, random candidates
  // from strides > it (effective_bandwidth additionally repairs ordering
  // defensively for hand-built profiles).
  return profile;
}

}  // namespace booster::memsim
