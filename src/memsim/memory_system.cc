#include "memsim/memory_system.h"

#include "util/check.h"

namespace booster::memsim {

MemorySystem::MemorySystem(const DramConfig& cfg) : cfg_(cfg) {
  channels_.reserve(cfg_.channels);
  for (std::uint32_t c = 0; c < cfg_.channels; ++c) {
    channels_.emplace_back(cfg_, c);
  }
}

Location MemorySystem::decode(std::uint64_t block_addr) const {
  Location loc;
  loc.channel = static_cast<std::uint32_t>(block_addr % cfg_.channels);
  std::uint64_t rest = block_addr / cfg_.channels;
  const std::uint64_t blocks_per_row = cfg_.blocks_per_row();
  const std::uint64_t row_in_channel = rest / blocks_per_row;
  loc.bank = static_cast<std::uint32_t>(row_in_channel % cfg_.banks_per_channel);
  loc.row = row_in_channel / cfg_.banks_per_channel;
  return loc;
}

bool MemorySystem::enqueue(std::uint64_t block_addr, bool is_write) {
  const Location loc = decode(block_addr);
  Request req;
  req.block_addr = block_addr;
  req.is_write = is_write;
  req.enqueue_cycle = now_;
  return channels_[loc.channel].enqueue(req, loc.bank, loc.row);
}

void MemorySystem::tick() {
  for (auto& ch : channels_) {
    ch.tick(now_, [this](const Request&) { ++completed_; });
  }
  ++now_;
}

bool MemorySystem::idle() const {
  for (const auto& ch : channels_) {
    if (!ch.idle()) return false;
  }
  return true;
}

std::uint64_t MemorySystem::bytes_transferred() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch.bytes_transferred();
  return total;
}

std::uint64_t MemorySystem::pending_requests() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch.pending();
  return total;
}

std::uint64_t MemorySystem::enqueue_rejections() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch.enqueue_rejections();
  return total;
}

std::uint64_t MemorySystem::queue_full_channel_cycles() const {
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch.queue_full_cycles();
  return total;
}

double MemorySystem::avg_queue_occupancy() const {
  if (now_ == 0) return 0.0;
  std::uint64_t total = 0;
  for (const auto& ch : channels_) total += ch.queue_occupancy_sum();
  return static_cast<double>(total) /
         (static_cast<double>(now_) * static_cast<double>(channels_.size()));
}

double MemorySystem::row_hit_rate() const {
  std::uint64_t accesses = 0;
  std::uint64_t activations = 0;
  for (const auto& ch : channels_) {
    accesses += ch.bank_accesses();
    activations += ch.bank_activations();
  }
  if (accesses == 0) return 0.0;
  return 1.0 - static_cast<double>(activations) / accesses;
}

double MemorySystem::achieved_bandwidth() const {
  if (now_ == 0) return 0.0;
  const double seconds = static_cast<double>(now_) / cfg_.clock_hz;
  return static_cast<double>(bytes_transferred()) / seconds;
}

}  // namespace booster::memsim
