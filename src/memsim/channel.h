// One DRAM channel: a bounded request queue, 16 banks, one command bus (one
// command per cycle) and one data bus (one burst at a time), scheduled with
// FR-FCFS (first-ready row hits win; otherwise oldest request makes
// progress via PRE/ACT).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "memsim/bank.h"
#include "memsim/dram_config.h"
#include "memsim/request.h"

namespace booster::memsim {

class Channel {
 public:
  Channel(const DramConfig& cfg, std::uint32_t index);

  /// Attempts to accept a request; false if the queue is full.
  bool enqueue(const Request& req, std::uint64_t bank, std::uint64_t row);

  /// Advances one memory cycle; completed requests are passed to `on_done`.
  void tick(Cycle now, const std::function<void(const Request&)>& on_done);

  bool queue_full() const { return queue_.size() >= cfg_->queue_depth; }
  bool idle() const { return queue_.empty() && in_flight_.empty(); }
  std::size_t pending() const { return queue_.size() + in_flight_.size(); }

  std::uint64_t bytes_transferred() const { return bytes_transferred_; }
  std::uint64_t busy_cycles() const { return busy_cycles_; }

  /// Back-pressure statistics: enqueue attempts refused because the queue
  /// was full (each is one caller retry), cycles ticked with a full queue,
  /// and the per-tick sum of queued requests (occupancy integral -- divide
  /// by elapsed cycles for the mean queue depth).
  std::uint64_t enqueue_rejections() const { return enqueue_rejections_; }
  std::uint64_t queue_full_cycles() const { return queue_full_cycles_; }
  std::uint64_t queue_occupancy_sum() const { return queue_occupancy_sum_; }

  /// Aggregate bank counters: a column access that did not require an
  /// ACTIVATE is a row-buffer hit, so hit rate = 1 - activations/accesses.
  std::uint64_t bank_accesses() const;
  std::uint64_t bank_activations() const;

 private:
  struct Entry {
    Request req;
    std::uint64_t bank = 0;
    std::uint64_t row = 0;
  };

  // Issues at most one command this cycle; returns true if one was issued.
  bool try_issue(Cycle now);

  // True if an ACTIVATE may issue at `now` under tRRD/tFAW.
  bool can_activate_now(Cycle now) const;
  void record_activate(Cycle now);

  const DramConfig* cfg_;
  std::uint32_t index_;
  std::vector<Bank> banks_;
  std::deque<Entry> queue_;
  // Timestamps of the most recent activates (for tRRD/tFAW enforcement).
  std::array<Cycle, 4> recent_activates_{};
  std::size_t activate_head_ = 0;
  Cycle last_activate_ = 0;
  bool any_activate_ = false;
  // Requests whose data burst is underway, keyed by completion cycle.
  std::deque<Entry> in_flight_;
  Cycle data_bus_free_at_ = 0;
  std::uint64_t bytes_transferred_ = 0;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t enqueue_rejections_ = 0;
  std::uint64_t queue_full_cycles_ = 0;
  std::uint64_t queue_occupancy_sum_ = 0;
};

}  // namespace booster::memsim
