// Top-level DRAM model: address interleaving across channels/banks plus the
// per-channel FR-FCFS pipelines. Block addresses interleave across channels
// first (so streaming saturates all channels), then banks, then rows.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "memsim/channel.h"
#include "memsim/dram_config.h"
#include "memsim/request.h"

namespace booster::memsim {

class MemorySystem {
 public:
  explicit MemorySystem(const DramConfig& cfg = DramConfig{});

  const DramConfig& config() const { return cfg_; }

  /// Decodes a block address into channel/bank/row.
  Location decode(std::uint64_t block_addr) const;

  /// Attempts to enqueue; returns false when the target channel queue is
  /// full (caller retries next cycle — this is the back-pressure that makes
  /// bandwidth self-limiting).
  bool enqueue(std::uint64_t block_addr, bool is_write);

  /// Advances one memory cycle.
  void tick();

  Cycle now() const { return now_; }
  std::uint64_t completed_requests() const { return completed_; }
  bool idle() const;

  /// Aggregate statistics.
  std::uint64_t bytes_transferred() const;
  double row_hit_rate() const;

  /// Requests currently queued or in flight across all channels.
  std::uint64_t pending_requests() const;

  /// Back-pressure statistics, aggregated over channels: refused enqueue
  /// attempts (caller retries), channel-cycles spent with a full queue, and
  /// the mean queued-request count per channel over the run so far. These
  /// are what the closed-loop co-simulation feeds back to the accelerator
  /// front-end (see core/cycle_sim.h).
  std::uint64_t enqueue_rejections() const;
  std::uint64_t queue_full_channel_cycles() const;
  double avg_queue_occupancy() const;

  /// Measured bandwidth over the simulation so far (bytes/sec).
  double achieved_bandwidth() const;

 private:
  DramConfig cfg_;
  std::vector<Channel> channels_;
  Cycle now_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace booster::memsim
