#include "memsim/channel.h"

#include <algorithm>

#include "util/check.h"

namespace booster::memsim {

Channel::Channel(const DramConfig& cfg, std::uint32_t index)
    : cfg_(&cfg), index_(index) {
  banks_.reserve(cfg.banks_per_channel);
  for (std::uint32_t b = 0; b < cfg.banks_per_channel; ++b) {
    banks_.emplace_back(cfg);
  }
}

bool Channel::enqueue(const Request& req, std::uint64_t bank,
                      std::uint64_t row) {
  if (queue_full()) {
    ++enqueue_rejections_;
    return false;
  }
  BOOSTER_DCHECK(bank < banks_.size());
  queue_.push_back(Entry{req, bank, row});
  return true;
}

bool Channel::try_issue(Cycle now) {
  // Pass 1 (FR): oldest row-hit request whose bank and data bus are ready.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    Bank& bank = banks_[it->bank];
    if (!bank.can_access(now, it->row)) continue;
    // The data burst must not overlap the previous one.
    const Cycle data_start = std::max<Cycle>(now + cfg_->tCAS, data_bus_free_at_);
    if (data_start > now + cfg_->tCAS) continue;  // bus busy; try others
    const Cycle burst_start = bank.access(now);
    data_bus_free_at_ = burst_start + cfg_->burst_cycles();
    it->req.complete_cycle = data_bus_free_at_;
    bytes_transferred_ += cfg_->block_bytes;
    in_flight_.push_back(*it);
    queue_.erase(it);
    return true;
  }
  // Pass 2 (FCFS): oldest request makes progress by opening/closing its row.
  for (auto& entry : queue_) {
    Bank& bank = banks_[entry.bank];
    if (bank.is_open() &&
        bank.open_row() != static_cast<std::int64_t>(entry.row)) {
      if (bank.can_precharge(now)) {
        bank.precharge(now);
        return true;
      }
      continue;  // wait for tRAS; see if a younger request can use the bus
    }
    if (!bank.is_open() && bank.can_activate(now) && can_activate_now(now)) {
      bank.activate(now, entry.row);
      record_activate(now);
      return true;
    }
  }
  return false;
}

bool Channel::can_activate_now(Cycle now) const {
  if (!any_activate_) return true;
  if (now < last_activate_ + cfg_->tRRD) return false;
  // Four-activate window: the oldest of the last four must be tFAW ago.
  const Cycle fourth_last = recent_activates_[activate_head_];
  return now >= fourth_last + cfg_->tFAW;
}

std::uint64_t Channel::bank_accesses() const {
  std::uint64_t total = 0;
  for (const auto& b : banks_) total += b.accesses();
  return total;
}

std::uint64_t Channel::bank_activations() const {
  std::uint64_t total = 0;
  for (const auto& b : banks_) total += b.activations();
  return total;
}

void Channel::record_activate(Cycle now) {
  recent_activates_[activate_head_] = now;
  activate_head_ = (activate_head_ + 1) % recent_activates_.size();
  last_activate_ = now;
  any_activate_ = true;
}

void Channel::tick(Cycle now, const std::function<void(const Request&)>& on_done) {
  if (!queue_.empty()) ++busy_cycles_;
  queue_occupancy_sum_ += queue_.size();
  if (queue_full()) ++queue_full_cycles_;
  (void)try_issue(now);
  // Retire bursts whose data has fully transferred.
  while (!in_flight_.empty() && in_flight_.front().req.complete_cycle <= now) {
    on_done(in_flight_.front().req);
    in_flight_.pop_front();
  }
  (void)index_;
}

}  // namespace booster::memsim
