// The step trace is the contract between the functional GBDT trainer and all
// performance models (Booster, Ideal 32-core, Ideal GPU, Inter-Record, Real).
//
// Training decomposes into the six steps of the paper's Table I. The trainer
// emits one StepEvent per (step, tree-node) unit of work, recording the
// *logical* quantities of that work — how many records were touched, how many
// fields per record, how many histogram bins were scanned. Each performance
// model turns those quantities into time/energy using its own cost rules.
// Because every model consumes the same trace, comparisons are
// apples-to-apples by construction, mirroring the paper's methodology of
// giving all simulated systems the same memory configuration and workload.
//
// Sampled simulation: training a 10M-record dataset functionally is
// unnecessary for performance modeling — tree shapes and per-node record
// *fractions* converge with tens of thousands of records. The trainer runs
// on a sample of `sim_records` and the trace carries
// `scale = nominal_records / sim_records`; models multiply record counts by
// `scale`. Per-bin quantities (step 2) are not scaled: histogram sizes do
// not depend on the number of records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace booster::trace {

/// The accelerated/offloaded steps of GB training (paper Table I).
/// Steps 4 and 6 are loops, not work, so they never appear in a trace.
enum class StepKind : std::uint8_t {
  kHistogram = 0,   // step 1: histogram-binning of gradient statistics
  kSplitSelect = 1, // step 2: scanning bins to choose the split (host)
  kPartition = 2,   // step 3: single-predicate evaluation / partitioning
  kTraversal = 3,   // step 5: one-tree traversal + gradient update
};

inline constexpr int kNumStepKinds = 4;

/// Short printable name, e.g. "step1-hist".
const char* step_name(StepKind kind);

/// One unit of work emitted by the trainer.
struct StepEvent {
  StepKind kind = StepKind::kHistogram;
  std::int32_t tree = 0;   // which tree of the ensemble
  std::int32_t depth = 0;  // node depth for steps 1-3; max tree depth for step 5

  /// Records touched by this event, in *simulated* (unscaled) units.
  std::uint64_t records = 0;

  /// Fields of each record the step reads. Step 1 reads all fields; step 3
  /// reads exactly one; step 5 reads the fields referenced by the tree.
  std::uint32_t fields_touched = 0;

  /// Total fields per record in the binned representation (record footprint
  /// in bytes is one byte per field; see gbdt/layout.h).
  std::uint32_t record_fields = 0;

  /// Histogram bins scanned (step 2 only).
  std::uint64_t bins_scanned = 0;

  /// Node histograms this event covers (step 1 only). Vertex-by-vertex
  /// growth emits one event per node (1); level-by-level growth aggregates
  /// a level's smaller-child builds into one event, so per-histogram costs
  /// (e.g. the sharded-training merge pass) must scale by this count.
  std::uint32_t histograms = 1;

  /// Average path length for traversal events (may be fractional after
  /// averaging over records); equals `depth` bound for full trees.
  double avg_path_length = 0.0;

  /// True when step 1 used the smaller-child histogram-subtraction trick
  /// for the sibling (the event then covers only the smaller child).
  bool used_sibling_subtraction = false;
};

/// Aggregate per-step totals of a trace, in scaled (nominal) units.
struct StepTotals {
  double record_field_updates = 0;  // step 1: sum records * record_fields
  double hist_records = 0;          // step 1: sum records
  double partition_records = 0;     // step 3: sum records
  double traversal_records = 0;     // step 5: sum records
  double traversal_record_hops = 0; // step 5: sum records * avg_path_length
  double bins_scanned = 0;          // step 2: sum bins
  std::uint64_t split_events = 0;   // step 2: number of nodes evaluated
  std::uint64_t trees = 0;
};

/// Aggregated replay class for cycle co-simulation (perf/cycle_calibrated.h):
/// events of one step kind at one depth and one per-event-size octave are
/// statistically similar enough to replay through a single representative
/// co-sim run and scale. The octave split matters on lopsided categorical
/// trees, where one depth holds both a ~99%-density heavy chain node and
/// many tiny siblings whose sparse gathers cost very differently.
struct ReplayClass {
  StepKind kind = StepKind::kHistogram;
  std::int32_t depth = 0;
  /// floor(log2(scaled per-event records)): events within one octave differ
  /// by at most 2x in record count (and therefore node density).
  std::int32_t records_octave = 0;
  std::uint64_t events = 0;
  double records = 0.0;             // scaled records, summed over events
  double avg_records = 0.0;         // records / events
  double avg_fields_touched = 0.0;  // record-weighted mean
  double avg_path_length = 0.0;     // record-weighted mean (step 5)
};

/// The full trace of one training (or batch-inference) run.
class StepTrace {
 public:
  StepTrace() = default;

  /// `scale` converts simulated record counts to nominal record counts.
  explicit StepTrace(double scale) : scale_(scale) {}

  void add(const StepEvent& e) { events_.push_back(e); }
  const std::vector<StepEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  double scale() const { return scale_; }
  void set_scale(double s) { scale_ = s; }

  /// Tree-count scaling: the event stream covers 1/repeat of the nominal
  /// ensemble (the trainer runs a prefix of the trees; boosting work per
  /// tree is near-stationary, so later trees cost like earlier ones).
  /// Models multiply their final per-step times by `repeat`; totals()
  /// folds it into every aggregate.
  double repeat() const { return repeat_; }
  void set_repeat(double r) { repeat_ = r; }

  /// Scaled record count of an event (nominal units).
  double scaled_records(const StepEvent& e) const {
    return static_cast<double>(e.records) * scale_;
  }

  /// Computes aggregate totals (scaled).
  StepTotals totals() const;

  /// Groups the accelerated (non-host) events into replay classes, sorted
  /// by (kind, depth, octave). Record counts are scaled; repeat() is NOT
  /// folded in -- models multiply their final per-step times by repeat(),
  /// exactly as with per-event costing.
  std::vector<ReplayClass> replay_classes() const;

  /// Returns a new trace whose scale is multiplied by `factor`; used for the
  /// paper's Fig 12 dataset-size scaling study (10x replication).
  StepTrace scaled_by(double factor) const;

 private:
  std::vector<StepEvent> events_;
  double scale_ = 1.0;
  double repeat_ = 1.0;
};

/// Workload-level metadata the performance models need alongside the trace.
struct WorkloadInfo {
  std::string name;
  std::uint64_t nominal_records = 0;  // records in the full dataset
  std::uint32_t fields = 0;           // fields per record (pre one-hot)
  std::uint32_t categorical_fields = 0;
  std::uint32_t features_onehot = 0;  // features after one-hot expansion
  std::uint64_t total_bins = 0;       // total histogram bins over all fields
  std::uint32_t max_bins_per_field = 0;
  /// Histogram bins per field (missing bin included) -- drives the
  /// bin-to-SRAM mapping study (paper SS III-A).
  std::vector<std::uint32_t> bins_per_field;
  std::uint32_t trees = 0;
  std::uint32_t max_depth = 0;
  double avg_leaf_depth = 0.0;        // realized average leaf depth
  /// Size in bytes of one binned record (one byte per field plus the
  /// layout's padding rules; see gbdt/layout.h).
  std::uint32_t record_bytes = 0;
};

}  // namespace booster::trace
