#include "trace/step_trace.h"

#include "util/check.h"

namespace booster::trace {

const char* step_name(StepKind kind) {
  switch (kind) {
    case StepKind::kHistogram:
      return "step1-hist";
    case StepKind::kSplitSelect:
      return "step2-split";
    case StepKind::kPartition:
      return "step3-partition";
    case StepKind::kTraversal:
      return "step5-traversal";
  }
  return "unknown";
}

StepTotals StepTrace::totals() const {
  StepTotals t;
  std::int32_t max_tree = -1;
  for (const auto& e : events_) {
    const double recs = scaled_records(e) * repeat_;
    switch (e.kind) {
      case StepKind::kHistogram:
        t.record_field_updates += recs * e.record_fields;
        t.hist_records += recs;
        break;
      case StepKind::kSplitSelect:
        t.bins_scanned += static_cast<double>(e.bins_scanned) * repeat_;
        ++t.split_events;
        break;
      case StepKind::kPartition:
        t.partition_records += recs;
        break;
      case StepKind::kTraversal:
        t.traversal_records += recs;
        t.traversal_record_hops += recs * e.avg_path_length;
        break;
    }
    if (e.tree > max_tree) max_tree = e.tree;
  }
  t.trees = static_cast<std::uint64_t>(max_tree + 1);
  return t;
}

StepTrace StepTrace::scaled_by(double factor) const {
  BOOSTER_CHECK(factor > 0.0);
  StepTrace copy = *this;
  copy.scale_ *= factor;
  return copy;
}

}  // namespace booster::trace
