#include "trace/step_trace.h"

#include <cmath>
#include <map>
#include <tuple>

#include "util/check.h"

namespace booster::trace {

const char* step_name(StepKind kind) {
  switch (kind) {
    case StepKind::kHistogram:
      return "step1-hist";
    case StepKind::kSplitSelect:
      return "step2-split";
    case StepKind::kPartition:
      return "step3-partition";
    case StepKind::kTraversal:
      return "step5-traversal";
  }
  return "unknown";
}

StepTotals StepTrace::totals() const {
  StepTotals t;
  std::int32_t max_tree = -1;
  for (const auto& e : events_) {
    const double recs = scaled_records(e) * repeat_;
    switch (e.kind) {
      case StepKind::kHistogram:
        t.record_field_updates += recs * e.record_fields;
        t.hist_records += recs;
        break;
      case StepKind::kSplitSelect:
        t.bins_scanned += static_cast<double>(e.bins_scanned) * repeat_;
        ++t.split_events;
        break;
      case StepKind::kPartition:
        t.partition_records += recs;
        break;
      case StepKind::kTraversal:
        t.traversal_records += recs;
        t.traversal_record_hops += recs * e.avg_path_length;
        break;
    }
    if (e.tree > max_tree) max_tree = e.tree;
  }
  t.trees = static_cast<std::uint64_t>(max_tree + 1);
  return t;
}

std::vector<ReplayClass> StepTrace::replay_classes() const {
  std::map<std::tuple<int, std::int32_t, std::int32_t>, ReplayClass> classes;
  for (const auto& e : events_) {
    if (e.kind == StepKind::kSplitSelect) continue;
    const double recs = scaled_records(e);
    if (recs <= 0.0) continue;
    const auto octave = static_cast<std::int32_t>(
        std::floor(std::log2(std::max(1.0, recs))));
    auto& c = classes[{static_cast<int>(e.kind), e.depth, octave}];
    c.kind = e.kind;
    c.depth = e.depth;
    c.records_octave = octave;
    ++c.events;
    c.records += recs;
    c.avg_fields_touched += recs * e.fields_touched;
    c.avg_path_length += recs * e.avg_path_length;
  }
  std::vector<ReplayClass> out;
  out.reserve(classes.size());
  for (auto& [key, c] : classes) {
    c.avg_records = c.records / static_cast<double>(c.events);
    c.avg_fields_touched /= c.records;
    c.avg_path_length /= c.records;
    out.push_back(c);
  }
  return out;
}

StepTrace StepTrace::scaled_by(double factor) const {
  BOOSTER_CHECK(factor > 0.0);
  StepTrace copy = *this;
  copy.scale_ *= factor;
  return copy;
}

}  // namespace booster::trace
