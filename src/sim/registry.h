// Factory-by-name registries behind the Scenario API: ModelRegistry maps
// names like "booster", "booster-cycle", "ideal-gpu", or "inter-record" to
// perf::PerfModel factories (with per-model JSON config overrides), and
// WorkloadRegistry maps dataset names to workloads::DatasetSpec. Scenario
// files reference both by name, so adding a model variant or dataset is a
// registration, never a recompile of the experiment drivers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/booster_config.h"
#include "memsim/dram_config.h"
#include "perf/host.h"
#include "perf/perf_model.h"
#include "sim/scenario.h"
#include "workloads/runner.h"
#include "workloads/spec.h"

namespace booster::sim {

/// Everything a model factory may depend on: the resolved accelerator and
/// DRAM configs of the scenario cell (bandwidth profile already applied)
/// and, for workload-dependent models like Inter-Record (whose on-chip
/// histogram copy count is a dataset property), the workload itself.
struct ModelContext {
  core::BoosterConfig booster;
  memsim::DramConfig dram;
  perf::HostParams host;
  /// Co-sim parallelism for the cycle-calibrated model (see
  /// perf::CycleCalibratedBoosterModel::set_replay_threads).
  unsigned replay_threads = 1;
  /// Null during spec validation; set for real cell construction.
  const workloads::WorkloadResult* workload = nullptr;
};

class ModelRegistry {
 public:
  /// Builds one model instance. `spec.overrides` carries model-specific
  /// config deltas (unknown keys are errors); `spec.label` is the display
  /// label / name suffix. Returns nullptr and sets *error on failure.
  using Factory = std::function<std::unique_ptr<perf::PerfModel>(
      const ModelContext& ctx, const ModelSpec& spec, std::string* error)>;

  /// The standard roster: seq-cpu, ideal-32core, ideal-gpu, real-32core,
  /// real-gpu, inter-record, booster (analytic), booster-cycle
  /// (closed-loop co-sim replay).
  static const ModelRegistry& builtin();

  ModelRegistry() = default;

  /// Registers (or replaces) a factory under `name`.
  void add(std::string name, Factory factory);

  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Instantiates `spec.model`; unknown names and bad overrides return
  /// nullptr with *error set.
  std::unique_ptr<perf::PerfModel> create(const ModelSpec& spec,
                                          const ModelContext& ctx,
                                          std::string* error) const;

 private:
  std::vector<std::pair<std::string, Factory>> factories_;
};

class WorkloadRegistry {
 public:
  /// The five Table III benchmarks plus the synthetic "fraud" table.
  static WorkloadRegistry with_builtin();

  WorkloadRegistry() = default;

  /// Registers (or replaces, by name) a dataset spec.
  void add(workloads::DatasetSpec spec);

  /// nullptr when unknown.
  const workloads::DatasetSpec* find(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  std::vector<workloads::DatasetSpec> specs_;
};

}  // namespace booster::sim
