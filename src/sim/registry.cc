#include "sim/registry.h"

#include <cmath>
#include <utility>

#include "baselines/cpu_like.h"
#include "baselines/inter_record.h"
#include "core/booster_model.h"
#include "perf/cycle_calibrated.h"

namespace booster::sim {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr && error->empty()) *error = message;
}

/// CPU-like override keys mirror baselines::CpuLikeParams; per-step
/// irregularity factors stay factory-defined (they encode the paper's
/// qualitative analysis, not a tuning knob).
bool apply_cpu_like_overrides(const Json& delta,
                              baselines::CpuLikeParams* p,
                              std::string* error) {
  if (delta.is_null()) return true;
  if (!delta.is_object()) {
    set_error(error, "model overrides must be a JSON object");
    return false;
  }
  for (const auto& [key, value] : delta.members()) {
    double* field = nullptr;
    if (key == "lanes") {
      field = &p->lanes;
    } else if (key == "clock_hz") {
      field = &p->clock_hz;
    } else if (key == "cycles_per_hist_update") {
      field = &p->cycles_per_hist_update;
    } else if (key == "cycles_per_partition") {
      field = &p->cycles_per_partition;
    } else if (key == "cycles_per_hop") {
      field = &p->cycles_per_hop;
    } else if (key == "cycles_per_record_update") {
      field = &p->cycles_per_record_update;
    } else if (key == "hist_penalty_per_onehot") {
      field = &p->hist_penalty_per_onehot;
    } else if (key == "hist_penalty_cap") {
      field = &p->hist_penalty_cap;
    } else if (key == "per_event_overhead_s") {
      field = &p->per_event_overhead_s;
    } else if (key == "sram_energy_norm") {
      field = &p->sram_energy_norm;
    } else {
      set_error(error, "unknown key \"" + key + "\" in cpu-like overrides");
      return false;
    }
    if (!value.is_number()) {
      set_error(error, "cpu-like override \"" + key + "\" must be a number");
      return false;
    }
    *field = value.as_double();
  }
  return true;
}

bool apply_inter_record_overrides(const Json& delta,
                                  baselines::InterRecordParams* p,
                                  bool* copies_overridden,
                                  std::string* error) {
  *copies_overridden = false;
  if (delta.is_null()) return true;
  if (!delta.is_object()) {
    set_error(error, "model overrides must be a JSON object");
    return false;
  }
  for (const auto& [key, value] : delta.members()) {
    if (!value.is_number()) {
      set_error(error,
                "inter-record override \"" + key + "\" must be a number");
      return false;
    }
    const double v = value.as_double();
    const bool integer_key = key == "copies" || key == "spill_lanes";
    if (integer_key && (v < 0.0 || v != std::floor(v) || v > 4294967295.0)) {
      set_error(error, "inter-record override \"" + key +
                           "\" must be a non-negative integer");
      return false;
    }
    if (key == "copies") {
      p->copies = static_cast<std::uint32_t>(v);
      *copies_overridden = true;
    } else if (key == "spill_lanes") {
      p->spill_lanes = static_cast<std::uint32_t>(v);
    } else if (key == "clock_hz") {
      p->clock_hz = v;
    } else if (key == "cycles_per_update") {
      p->cycles_per_update = v;
    } else if (key == "cycles_per_partition") {
      p->cycles_per_partition = v;
    } else if (key == "cycles_per_hop") {
      p->cycles_per_hop = v;
    } else if (key == "sram_budget_bytes") {
      p->sram_budget_bytes = v;
    } else {
      set_error(error,
                "unknown key \"" + key + "\" in inter-record overrides");
      return false;
    }
  }
  return true;
}

ModelRegistry::Factory cpu_like_factory(
    baselines::CpuLikeParams (*params_fn)()) {
  return [params_fn](const ModelContext& ctx, const ModelSpec& spec,
                     std::string* error) -> std::unique_ptr<perf::PerfModel> {
    (void)ctx;
    baselines::CpuLikeParams p = params_fn();
    if (!apply_cpu_like_overrides(spec.overrides, &p, error)) return nullptr;
    if (!spec.label.empty()) p.name = spec.label;
    return std::make_unique<baselines::CpuLikeModel>(std::move(p));
  };
}

std::unique_ptr<perf::PerfModel> make_booster(const ModelContext& ctx,
                                              const ModelSpec& spec,
                                              std::string* error) {
  core::BoosterConfig cfg = ctx.booster;
  if (!apply_booster_delta(spec.overrides, &cfg, error)) return nullptr;
  return std::make_unique<core::BoosterModel>(cfg, ctx.host, spec.label);
}

std::unique_ptr<perf::PerfModel> make_booster_cycle(const ModelContext& ctx,
                                                    const ModelSpec& spec,
                                                    std::string* error) {
  unsigned replay_threads = ctx.replay_threads;
  Json booster_delta;
  if (spec.overrides.is_object()) {
    // "replay_threads" belongs to the model wrapper, everything else is a
    // BoosterConfig delta.
    for (const auto& [key, value] : spec.overrides.members()) {
      if (key == "replay_threads") {
        const double v = value.is_number() ? value.as_double() : -1.0;
        if (v < 1.0 || v != std::floor(v) || v > 4294967295.0) {
          set_error(error, "booster-cycle override replay_threads must be a"
                           " positive integer");
          return nullptr;
        }
        replay_threads = static_cast<unsigned>(v);
      } else {
        booster_delta.set(key, value);
      }
    }
  } else if (!spec.overrides.is_null()) {
    set_error(error, "model overrides must be a JSON object");
    return nullptr;
  }
  core::BoosterConfig cfg = ctx.booster;
  if (!apply_booster_delta(booster_delta, &cfg, error)) return nullptr;
  return std::make_unique<perf::CycleCalibratedBoosterModel>(
      cfg, ctx.dram, ctx.host, spec.label, replay_threads);
}

std::unique_ptr<perf::PerfModel> make_inter_record(const ModelContext& ctx,
                                                   const ModelSpec& spec,
                                                   std::string* error) {
  baselines::InterRecordParams p;
  p.bandwidth = ctx.booster.bandwidth;
  p.host = ctx.host;
  bool copies_overridden = false;
  if (!apply_inter_record_overrides(spec.overrides, &p, &copies_overridden,
                                    error)) {
    return nullptr;
  }
  if (!copies_overridden && ctx.workload != nullptr) {
    // The paper's published per-dataset copy counts when available,
    // area-budget estimate otherwise (non-paper datasets).
    p.copies =
        ctx.workload->spec.ir_copies >= 0
            ? static_cast<std::uint32_t>(ctx.workload->spec.ir_copies)
            : baselines::InterRecordModel::estimate_copies(ctx.workload->info,
                                                           p);
  }
  return std::make_unique<baselines::InterRecordModel>(p);
}

}  // namespace

const ModelRegistry& ModelRegistry::builtin() {
  static const ModelRegistry* registry = [] {
    auto* r = new ModelRegistry();
    r->add("seq-cpu", cpu_like_factory(&baselines::sequential_cpu_params));
    r->add("ideal-32core", cpu_like_factory(&baselines::ideal_cpu_params));
    r->add("ideal-gpu", cpu_like_factory(&baselines::ideal_gpu_params));
    r->add("real-32core", cpu_like_factory(&baselines::real_cpu_params));
    r->add("real-gpu", cpu_like_factory(&baselines::real_gpu_params));
    r->add("inter-record", &make_inter_record);
    r->add("booster", &make_booster);
    r->add("booster-cycle", &make_booster_cycle);
    return r;
  }();
  return *registry;
}

void ModelRegistry::add(std::string name, Factory factory) {
  for (auto& [n, f] : factories_) {
    if (n == name) {
      f = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(std::move(name), std::move(factory));
}

bool ModelRegistry::contains(const std::string& name) const {
  for (const auto& [n, f] : factories_) {
    if (n == name) return true;
  }
  return false;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [n, f] : factories_) out.push_back(n);
  return out;
}

std::unique_ptr<perf::PerfModel> ModelRegistry::create(
    const ModelSpec& spec, const ModelContext& ctx,
    std::string* error) const {
  for (const auto& [n, f] : factories_) {
    if (n == spec.model) return f(ctx, spec, error);
  }
  std::string known;
  for (const auto& [n, f] : factories_) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  set_error(error, "unknown model \"" + spec.model + "\" (registered: " +
                       known + ")");
  return nullptr;
}

WorkloadRegistry WorkloadRegistry::with_builtin() {
  WorkloadRegistry r;
  for (auto& spec : workloads::paper_datasets()) r.add(std::move(spec));
  r.add(workloads::fraud_spec());
  return r;
}

void WorkloadRegistry::add(workloads::DatasetSpec spec) {
  for (auto& s : specs_) {
    if (s.name == spec.name) {
      s = std::move(spec);
      return;
    }
  }
  specs_.push_back(std::move(spec));
}

const workloads::DatasetSpec* WorkloadRegistry::find(
    const std::string& name) const {
  for (const auto& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(s.name);
  return out;
}

}  // namespace booster::sim
