// Minimal JSON document model for the scenario layer (sim/scenario.h).
// Scenarios live in checked-in .json files, so the representation is built
// for lossless round-trips rather than speed: objects preserve insertion
// order, numbers print in their shortest round-trip form (integers without
// an exponent), and dump(parse(dump(x))) == dump(x) is a fixpoint the test
// suite asserts. No external dependency; parse errors are reported as
// position-annotated strings, never exceptions or aborts, so a malformed
// scenario file fails a CLI run with a message instead of killing the
// process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace booster::sim {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// Insertion-ordered key/value pairs (deterministic serialization).
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(unsigned v) : type_(Type::kNumber), num_(v) {}
  Json(std::int64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_double(double fallback = 0.0) const {
    return is_number() ? num_ : fallback;
  }
  const std::string& as_string() const { return str_; }

  const Array& items() const { return arr_; }
  const Object& members() const { return obj_; }

  /// Object lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Object insert-or-replace; converts a null value to an empty object
  /// first so builders can chain sets.
  Json& set(std::string key, Json value);

  /// Array append; converts a null value to an empty array first.
  Json& push_back(Json value);

  std::size_t size() const {
    return is_array() ? arr_.size() : is_object() ? obj_.size() : 0;
  }

  bool operator==(const Json& other) const;

  /// Parses one JSON document (trailing whitespace allowed, nothing else).
  /// Returns nullopt and sets *error ("line L, column C: ...") on failure.
  static std::optional<Json> parse(std::string_view text, std::string* error);

  /// Reads and parses a file; the filename is prefixed to *error.
  static std::optional<Json> parse_file(const std::string& path,
                                        std::string* error);

  /// Serializes with 2-space indentation and a trailing newline at the top
  /// level, matching the checked-in bench/scenarios/*.json format.
  std::string dump() const;

  /// Writes dump() to a file; returns false and sets *error on IO failure.
  bool dump_file(const std::string& path, std::string* error) const;

 private:
  void dump_to(std::string* out, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace booster::sim
