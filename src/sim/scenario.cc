#include "sim/scenario.h"

#include <cmath>

#include "ipc/membership.h"
#include "ipc/world.h"

namespace booster::sim {

void apply_quick(workloads::RunnerConfig* cfg) {
  cfg->sim_records = kQuickSimRecords;
  cfg->sim_trees = kQuickSimTrees;
}

const char* sweep_axis_name(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kNone:
      return "none";
    case SweepAxis::kClusters:
      return "clusters";
    case SweepAxis::kBandwidthScale:
      return "bandwidth-scale";
    case SweepAxis::kRecordScale:
      return "record-scale";
    case SweepAxis::kShards:
      return "shards";
    case SweepAxis::kReplicas:
      return "replicas";
    case SweepAxis::kArrivalRate:
      return "arrival-rate";
    case SweepAxis::kRefreshCadence:
      return "refresh-cadence";
  }
  return "none";
}

std::optional<SweepAxis> sweep_axis_from_name(std::string_view name) {
  for (const SweepAxis axis :
       {SweepAxis::kNone, SweepAxis::kClusters, SweepAxis::kBandwidthScale,
        SweepAxis::kRecordScale, SweepAxis::kShards, SweepAxis::kReplicas,
        SweepAxis::kArrivalRate, SweepAxis::kRefreshCadence}) {
    if (name == sweep_axis_name(axis)) return axis;
  }
  return std::nullopt;
}

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr && error->empty()) *error = message;
}

/// Strict field-by-field reader over a JSON object: every recognized key is
/// consumed, and finish() reports the first unconsumed (unknown) key --
/// scenario files fail loudly on typos instead of silently ignoring them.
class FieldReader {
 public:
  FieldReader(const Json& obj, std::string context, std::string* error)
      : obj_(obj),
        context_(std::move(context)),
        error_(error),
        consumed_(obj.is_object() ? obj.members().size() : 0, false) {
    if (!obj_.is_object()) {
      fail(context_ + " must be a JSON object");
    }
  }

  bool ok() const { return ok_; }

  void number(const char* key, double* out) {
    if (const Json* v = take(key)) {
      if (!v->is_number()) {
        fail(context_ + "." + key + " must be a number");
        return;
      }
      *out = v->as_double();
    }
  }

  void u64(const char* key, std::uint64_t* out) {
    double v = static_cast<double>(*out);
    number(key, &v);
    // 2^53: beyond exactly-representable integers (and any sane knob); a
    // bounded range also keeps the double -> integer casts defined.
    if (ok_ && (v < 0.0 || v != std::floor(v) || v > 9.007199254740992e15)) {
      fail(context_ + "." + std::string(key) +
           " must be a non-negative integer");
      return;
    }
    if (ok_) *out = static_cast<std::uint64_t>(v);
  }

  void u32(const char* key, std::uint32_t* out) {
    std::uint64_t v = *out;
    u64(key, &v);
    if (ok_ && v > 0xFFFFFFFFULL) {
      fail(context_ + "." + std::string(key) + " is out of range");
      return;
    }
    if (ok_) *out = static_cast<std::uint32_t>(v);
  }

  void boolean(const char* key, bool* out) {
    if (const Json* v = take(key)) {
      if (!v->is_bool()) {
        fail(context_ + "." + key + " must be a boolean");
        return;
      }
      *out = v->as_bool();
    }
  }

  void string(const char* key, std::string* out) {
    if (const Json* v = take(key)) {
      if (!v->is_string()) {
        fail(context_ + "." + key + " must be a string");
        return;
      }
      *out = v->as_string();
    }
  }

  /// Consumes and returns a child value (any type), or nullptr if absent.
  const Json* child(const char* key) { return take(key); }

  /// Errors on the first unrecognized key; returns overall success.
  bool finish() {
    if (!ok_) return false;
    if (obj_.is_object()) {
      const auto& members = obj_.members();
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (!consumed_[i]) {
          fail("unknown key \"" + members[i].first + "\" in " + context_);
          return false;
        }
      }
    }
    return ok_;
  }

 private:
  const Json* take(const char* key) {
    if (!obj_.is_object()) return nullptr;
    const auto& members = obj_.members();
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i].first == key) {
        consumed_[i] = true;
        return &members[i].second;
      }
    }
    return nullptr;
  }

  void fail(const std::string& message) {
    ok_ = false;
    if (error_ != nullptr && error_->empty()) *error_ = message;
  }

  const Json& obj_;
  std::string context_;
  std::string* error_;
  std::vector<bool> consumed_;
  bool ok_ = true;
};

bool read_string_array(const Json& value, const std::string& context,
                       std::vector<std::string>* out, std::string* error) {
  if (!value.is_array()) {
    set_error(error, context + " must be an array of strings");
    return false;
  }
  out->clear();
  for (const auto& item : value.items()) {
    if (!item.is_string()) {
      set_error(error, context + " must be an array of strings");
      return false;
    }
    out->push_back(item.as_string());
  }
  return true;
}

bool read_number_array(const Json& value, const std::string& context,
                       std::vector<double>* out, std::string* error) {
  if (!value.is_array()) {
    set_error(error, context + " must be an array of numbers");
    return false;
  }
  out->clear();
  for (const auto& item : value.items()) {
    if (!item.is_number()) {
      set_error(error, context + " must be an array of numbers");
      return false;
    }
    out->push_back(item.as_double());
  }
  return true;
}

const char* label_structure_name(workloads::LabelStructure s) {
  switch (s) {
    case workloads::LabelStructure::kSeparable:
      return "separable";
    case workloads::LabelStructure::kDiffuse:
      return "diffuse";
    case workloads::LabelStructure::kCategorical:
      return "categorical";
  }
  return "diffuse";
}

}  // namespace

bool apply_bandwidth_delta(const Json& delta, memsim::BandwidthProfile* bw,
                           std::string* error) {
  if (delta.is_null()) return true;
  FieldReader r(delta, "bandwidth", error);
  r.number("streaming", &bw->streaming);
  r.number("strided_gather", &bw->strided_gather);
  r.number("random", &bw->random);
  r.number("peak", &bw->peak);
  r.number("flat_stride", &bw->flat_stride);
  r.number("cal_stride", &bw->cal_stride);
  r.number("random_stride", &bw->random_stride);
  return r.finish();
}

bool apply_booster_delta(const Json& delta, core::BoosterConfig* cfg,
                         std::string* error) {
  if (delta.is_null()) return true;
  FieldReader r(delta, "booster", error);
  r.u32("clusters", &cfg->clusters);
  r.u32("bus_per_cluster", &cfg->bus_per_cluster);
  r.u32("sram_bytes", &cfg->sram_bytes);
  r.u32("bin_entry_bytes", &cfg->bin_entry_bytes);
  r.u32("cycles_per_field_update", &cfg->cycles_per_field_update);
  r.u32("cycles_per_hop", &cfg->cycles_per_hop);
  r.u32("bus_link_span", &cfg->bus_link_span);
  r.number("clock_hz", &cfg->clock_hz);
  r.boolean("group_by_field_mapping", &cfg->group_by_field_mapping);
  r.boolean("redundant_column_format", &cfg->redundant_column_format);
  r.u32("inference_bus", &cfg->inference_bus);
  r.u32("training_shards", &cfg->training_shards);
  if (const Json* bwj = r.child("bandwidth")) {
    if (!apply_bandwidth_delta(*bwj, &cfg->bandwidth, error)) return false;
  }
  return r.finish();
}

bool apply_dram_delta(const Json& delta, memsim::DramConfig* cfg,
                      std::string* error) {
  if (delta.is_null()) return true;
  FieldReader r(delta, "dram", error);
  r.u32("channels", &cfg->channels);
  r.u32("banks_per_channel", &cfg->banks_per_channel);
  r.u32("row_bytes", &cfg->row_bytes);
  r.u32("tCAS", &cfg->tCAS);
  r.u32("tRP", &cfg->tRP);
  r.u32("tRCD", &cfg->tRCD);
  r.u32("tRAS", &cfg->tRAS);
  r.u32("tRRD", &cfg->tRRD);
  r.u32("tFAW", &cfg->tFAW);
  r.u32("block_bytes", &cfg->block_bytes);
  r.u32("bus_bytes_per_cycle", &cfg->bus_bytes_per_cycle);
  r.number("clock_hz", &cfg->clock_hz);
  r.u32("queue_depth", &cfg->queue_depth);
  return r.finish();
}

Json dataset_to_json(const workloads::DatasetSpec& spec) {
  const workloads::DatasetSpec defaults;
  Json j = Json::object();
  j.set("name", spec.name);
  if (!spec.description.empty()) j.set("description", spec.description);
  j.set("nominal_records", spec.nominal_records);
  j.set("numeric_fields", spec.numeric_fields);
  if (!spec.categorical_cardinalities.empty()) {
    Json cards = Json::array();
    for (const auto c : spec.categorical_cardinalities) cards.push_back(c);
    j.set("categorical_cardinalities", std::move(cards));
  }
  if (spec.missing_rate != defaults.missing_rate) {
    j.set("missing_rate", spec.missing_rate);
  }
  if (spec.categorical_skew != defaults.categorical_skew) {
    j.set("categorical_skew", spec.categorical_skew);
  }
  if (spec.loss != defaults.loss) j.set("loss", spec.loss);
  if (spec.label_structure != defaults.label_structure) {
    j.set("label_structure", label_structure_name(spec.label_structure));
  }
  if (spec.label_noise != defaults.label_noise) {
    j.set("label_noise", spec.label_noise);
  }
  if (spec.ir_copies != defaults.ir_copies) j.set("ir_copies", spec.ir_copies);
  if (spec.paper_seq_minutes != defaults.paper_seq_minutes) {
    j.set("paper_seq_minutes", spec.paper_seq_minutes);
  }
  return j;
}

std::optional<workloads::DatasetSpec> dataset_from_json(const Json& json,
                                                        std::string* error) {
  workloads::DatasetSpec spec;
  FieldReader r(json, "dataset", error);
  r.string("name", &spec.name);
  r.string("description", &spec.description);
  r.u64("nominal_records", &spec.nominal_records);
  r.u32("numeric_fields", &spec.numeric_fields);
  if (const Json* cards = r.child("categorical_cardinalities")) {
    std::vector<double> values;
    if (!read_number_array(*cards, "dataset.categorical_cardinalities",
                           &values, error)) {
      return std::nullopt;
    }
    for (const double v : values) {
      spec.categorical_cardinalities.push_back(
          static_cast<std::uint32_t>(v));
    }
  }
  r.number("missing_rate", &spec.missing_rate);
  r.number("categorical_skew", &spec.categorical_skew);
  r.string("loss", &spec.loss);
  if (const Json* label = r.child("label_structure")) {
    bool known = false;
    if (label->is_string()) {
      for (const auto s : {workloads::LabelStructure::kSeparable,
                           workloads::LabelStructure::kDiffuse,
                           workloads::LabelStructure::kCategorical}) {
        if (label->as_string() == label_structure_name(s)) {
          spec.label_structure = s;
          known = true;
        }
      }
    }
    if (!known) {
      set_error(error,
                "dataset.label_structure: unknown value \"" +
                    (label->is_string() ? label->as_string()
                                        : "<non-string>") +
                    "\" (expected separable, diffuse, or categorical)");
      return std::nullopt;
    }
  }
  r.number("label_noise", &spec.label_noise);
  if (const Json* irc = r.child("ir_copies")) {
    if (!irc->is_number() ||
        irc->as_double() != std::floor(irc->as_double())) {
      set_error(error, "dataset.ir_copies must be an integer");
      return std::nullopt;
    }
    spec.ir_copies = static_cast<int>(irc->as_double());
  }
  r.number("paper_seq_minutes", &spec.paper_seq_minutes);
  if (!r.finish()) return std::nullopt;
  if (spec.name.empty()) {
    set_error(error, "dataset.name is required");
    return std::nullopt;
  }
  return spec;
}

workloads::RunnerConfig ScenarioSpec::runner_config(bool quick) const {
  workloads::RunnerConfig cfg;
  cfg.sim_records = sim_records;
  cfg.sim_trees = sim_trees;
  cfg.nominal_trees = nominal_trees;
  cfg.max_depth = max_depth;
  cfg.seed = seed;
  cfg.num_shards = shards;
  cfg.procs = procs;
  cfg.transport = transport;
  cfg.churn = churn;
  if (quick) apply_quick(&cfg);
  return cfg;
}

std::optional<memsim::DramConfig> ScenarioSpec::dram_config(
    std::string* error) const {
  memsim::DramConfig cfg;
  if (!apply_dram_delta(dram, &cfg, error)) return std::nullopt;
  return cfg;
}

std::optional<core::BoosterConfig> ScenarioSpec::booster_config(
    const core::BoosterConfig& base, std::string* error) const {
  core::BoosterConfig cfg = base;
  if (!apply_booster_delta(booster, &cfg, error)) return std::nullopt;
  return cfg;
}

Json ScenarioSpec::to_json() const {
  const ScenarioSpec defaults;
  Json j = Json::object();
  j.set("name", name);
  if (!title.empty()) j.set("title", title);
  if (!paper_ref.empty()) j.set("paper_ref", paper_ref);

  Json wl = Json::array();
  for (const auto& w : workloads) wl.push_back(w);
  j.set("workloads", std::move(wl));

  if (!datasets.empty()) {
    Json ds = Json::array();
    for (const auto& d : datasets) ds.push_back(dataset_to_json(d));
    j.set("datasets", std::move(ds));
  }

  Json ms = Json::array();
  for (const auto& m : models) {
    Json mj = Json::object();
    mj.set("model", m.model);
    if (!m.label.empty()) mj.set("label", m.label);
    if (!m.overrides.is_null()) mj.set("overrides", m.overrides);
    ms.push_back(std::move(mj));
  }
  j.set("models", std::move(ms));

  if (!booster.is_null()) j.set("booster", booster);
  if (!dram.is_null()) j.set("dram", dram);

  if (sweep_axis != SweepAxis::kNone) {
    Json sweep = Json::object();
    sweep.set("axis", sweep_axis_name(sweep_axis));
    Json values = Json::array();
    for (const double v : sweep_values) values.push_back(v);
    sweep.set("values", std::move(values));
    j.set("sweep", std::move(sweep));
  }

  Json runner = Json::object();
  if (sim_records != defaults.sim_records) {
    runner.set("sim_records", sim_records);
  }
  if (sim_trees != defaults.sim_trees) runner.set("sim_trees", sim_trees);
  if (nominal_trees != defaults.nominal_trees) {
    runner.set("nominal_trees", nominal_trees);
  }
  if (max_depth != defaults.max_depth) runner.set("max_depth", max_depth);
  if (seed != defaults.seed) runner.set("seed", seed);
  if (shards != defaults.shards) runner.set("shards", shards);
  if (procs != defaults.procs) runner.set("procs", procs);
  if (transport != defaults.transport) runner.set("transport", transport);
  if (churn != defaults.churn) runner.set("churn", churn);
  if (runner.size() > 0) j.set("runner", std::move(runner));

  if (include_inference) j.set("include_inference", true);

  if (serving.has_value()) {
    const ServingSpec serving_defaults;
    Json sv = Json::object();
    if (serving->connections != serving_defaults.connections) {
      sv.set("connections", serving->connections);
    }
    if (serving->requests_per_connection !=
        serving_defaults.requests_per_connection) {
      sv.set("requests_per_connection", serving->requests_per_connection);
    }
    if (serving->rows_per_request != serving_defaults.rows_per_request) {
      sv.set("rows_per_request", serving->rows_per_request);
    }
    if (serving->batch_window_us != serving_defaults.batch_window_us) {
      sv.set("batch_window_us", serving->batch_window_us);
    }
    if (serving->max_batch_rows != serving_defaults.max_batch_rows) {
      sv.set("max_batch_rows", serving->max_batch_rows);
    }
    if (serving->json_body) sv.set("json_body", true);
    j.set("serving", std::move(sv));
  }

  if (streaming.has_value()) {
    const StreamingSpec streaming_defaults;
    Json st = Json::object();
    if (streaming->bootstrap_rows != streaming_defaults.bootstrap_rows) {
      st.set("bootstrap_rows", streaming->bootstrap_rows);
    }
    if (streaming->chunk_rows != streaming_defaults.chunk_rows) {
      st.set("chunk_rows", streaming->chunk_rows);
    }
    if (streaming->chunks != streaming_defaults.chunks) {
      st.set("chunks", streaming->chunks);
    }
    if (streaming->window_chunks != streaming_defaults.window_chunks) {
      st.set("window_chunks", streaming->window_chunks);
    }
    if (streaming->refresh_every_chunks !=
        streaming_defaults.refresh_every_chunks) {
      st.set("refresh_every_chunks", streaming->refresh_every_chunks);
    }
    if (streaming->refresh_trees != streaming_defaults.refresh_trees) {
      st.set("refresh_trees", streaming->refresh_trees);
    }
    if (streaming->warm_start != streaming_defaults.warm_start) {
      st.set("warm_start", streaming->warm_start);
    }
    if (streaming->arrival_rows_per_sec !=
        streaming_defaults.arrival_rows_per_sec) {
      st.set("arrival_rows_per_sec", streaming->arrival_rows_per_sec);
    }
    if (streaming->drift != streaming_defaults.drift) {
      st.set("drift", streaming->drift);
    }
    j.set("streaming", std::move(st));
  }
  return j;
}

std::optional<ScenarioSpec> ScenarioSpec::from_json(const Json& json,
                                                    std::string* error) {
  ScenarioSpec spec;
  FieldReader r(json, "scenario", error);
  r.string("name", &spec.name);
  r.string("title", &spec.title);
  r.string("paper_ref", &spec.paper_ref);

  if (const Json* wl = r.child("workloads")) {
    if (!read_string_array(*wl, "scenario.workloads", &spec.workloads,
                           error)) {
      return std::nullopt;
    }
  }

  if (const Json* ds = r.child("datasets")) {
    if (!ds->is_array()) {
      set_error(error, "scenario.datasets must be an array");
      return std::nullopt;
    }
    for (const auto& item : ds->items()) {
      auto d = dataset_from_json(item, error);
      if (!d) return std::nullopt;
      spec.datasets.push_back(std::move(*d));
    }
  }

  if (const Json* ms = r.child("models")) {
    if (!ms->is_array()) {
      set_error(error, "scenario.models must be an array");
      return std::nullopt;
    }
    for (const auto& item : ms->items()) {
      ModelSpec m;
      FieldReader mr(item, "scenario.models[]", error);
      mr.string("model", &m.model);
      mr.string("label", &m.label);
      if (const Json* ov = mr.child("overrides")) m.overrides = *ov;
      if (!mr.finish()) return std::nullopt;
      if (m.model.empty()) {
        set_error(error, "scenario.models[].model is required");
        return std::nullopt;
      }
      spec.models.push_back(std::move(m));
    }
  }

  if (const Json* b = r.child("booster")) {
    // Validate eagerly so a bad delta fails at parse time, not mid-run.
    core::BoosterConfig scratch;
    if (!apply_booster_delta(*b, &scratch, error)) return std::nullopt;
    spec.booster = *b;
  }
  if (const Json* d = r.child("dram")) {
    memsim::DramConfig scratch;
    if (!apply_dram_delta(*d, &scratch, error)) return std::nullopt;
    spec.dram = *d;
  }

  if (const Json* sweep = r.child("sweep")) {
    FieldReader sr(*sweep, "scenario.sweep", error);
    std::string axis;
    sr.string("axis", &axis);
    if (const Json* values = sr.child("values")) {
      if (!read_number_array(*values, "scenario.sweep.values",
                             &spec.sweep_values, error)) {
        return std::nullopt;
      }
    }
    if (!sr.finish()) return std::nullopt;
    const auto parsed = sweep_axis_from_name(axis);
    if (!parsed) {
      set_error(error, "scenario.sweep.axis: unknown axis \"" + axis +
                           "\" (expected none, clusters, bandwidth-scale,"
                           " record-scale, shards, replicas, arrival-rate,"
                           " or refresh-cadence)");
      return std::nullopt;
    }
    spec.sweep_axis = *parsed;
    if (spec.sweep_axis != SweepAxis::kNone && spec.sweep_values.empty()) {
      set_error(error, "scenario.sweep.values must be non-empty for"
                           " axis \"" + axis + "\"");
      return std::nullopt;
    }
  }

  if (const Json* runner = r.child("runner")) {
    FieldReader rr(*runner, "scenario.runner", error);
    rr.u64("sim_records", &spec.sim_records);
    rr.u32("sim_trees", &spec.sim_trees);
    rr.u32("nominal_trees", &spec.nominal_trees);
    rr.u32("max_depth", &spec.max_depth);
    rr.u64("seed", &spec.seed);
    rr.u32("shards", &spec.shards);
    rr.u32("procs", &spec.procs);
    rr.string("transport", &spec.transport);
    rr.string("churn", &spec.churn);
    if (!rr.finish()) return std::nullopt;
  }

  r.boolean("include_inference", &spec.include_inference);

  if (const Json* sv = r.child("serving")) {
    ServingSpec serving;
    FieldReader svr(*sv, "scenario.serving", error);
    svr.u32("connections", &serving.connections);
    svr.u32("requests_per_connection", &serving.requests_per_connection);
    svr.u32("rows_per_request", &serving.rows_per_request);
    svr.u64("batch_window_us", &serving.batch_window_us);
    svr.u32("max_batch_rows", &serving.max_batch_rows);
    svr.boolean("json_body", &serving.json_body);
    if (!svr.finish()) return std::nullopt;
    if (serving.connections == 0 || serving.requests_per_connection == 0 ||
        serving.rows_per_request == 0 || serving.max_batch_rows == 0) {
      set_error(error, "scenario.serving knobs must be positive");
      return std::nullopt;
    }
    spec.serving = serving;
  }

  if (const Json* st = r.child("streaming")) {
    StreamingSpec streaming;
    FieldReader str(*st, "scenario.streaming", error);
    str.u64("bootstrap_rows", &streaming.bootstrap_rows);
    str.u64("chunk_rows", &streaming.chunk_rows);
    str.u32("chunks", &streaming.chunks);
    str.u32("window_chunks", &streaming.window_chunks);
    str.u32("refresh_every_chunks", &streaming.refresh_every_chunks);
    str.u32("refresh_trees", &streaming.refresh_trees);
    str.boolean("warm_start", &streaming.warm_start);
    str.number("arrival_rows_per_sec", &streaming.arrival_rows_per_sec);
    str.string("drift", &streaming.drift);
    if (!str.finish()) return std::nullopt;
    if (streaming.bootstrap_rows == 0 || streaming.chunk_rows == 0 ||
        streaming.chunks == 0 || streaming.window_chunks == 0 ||
        streaming.refresh_every_chunks == 0 || streaming.refresh_trees == 0) {
      set_error(error, "scenario.streaming knobs must be positive");
      return std::nullopt;
    }
    if (streaming.arrival_rows_per_sec < 0.0) {
      set_error(error,
                "scenario.streaming.arrival_rows_per_sec must be >= 0");
      return std::nullopt;
    }
    if (streaming.drift != "none" && streaming.drift != "noise-ramp") {
      set_error(error, "scenario.streaming.drift: unknown schedule \"" +
                           streaming.drift +
                           "\" (expected none or noise-ramp)");
      return std::nullopt;
    }
    spec.streaming = streaming;
  }

  if (!r.finish()) return std::nullopt;

  if (spec.sweep_axis == SweepAxis::kReplicas && !spec.include_inference) {
    set_error(error, "sweep axis replicas requires include_inference (it"
                     " only moves the analytic inference cost)");
    return std::nullopt;
  }
  if ((spec.sweep_axis == SweepAxis::kArrivalRate ||
       spec.sweep_axis == SweepAxis::kRefreshCadence) &&
      !spec.streaming.has_value()) {
    set_error(error, "sweep axis " +
                         std::string(sweep_axis_name(spec.sweep_axis)) +
                         " requires the streaming block (it only moves the"
                         " measured streaming leg)");
    return std::nullopt;
  }
  if (spec.name.empty()) {
    set_error(error, "scenario.name is required");
    return std::nullopt;
  }
  if (spec.sim_records == 0 || spec.sim_trees == 0) {
    set_error(error,
              "scenario.runner.sim_records and sim_trees must be positive");
    return std::nullopt;
  }
  if (spec.procs == 0) {
    set_error(error, "scenario.runner.procs must be positive");
    return std::nullopt;
  }
  if (!ipc::transport_kind_from_name(spec.transport).has_value()) {
    set_error(error, "scenario.runner.transport: unknown transport \"" +
                         spec.transport +
                         "\" (expected loopback, file, socket, or tcp)");
    return std::nullopt;
  }
  if (!spec.churn.empty()) {
    if (spec.transport != "tcp") {
      set_error(error,
                "scenario.runner.churn requires transport \"tcp\"");
      return std::nullopt;
    }
    if (!ipc::ChurnSchedule::parse(spec.churn).has_value()) {
      set_error(error, "scenario.runner.churn: unparseable schedule \"" +
                           spec.churn +
                           "\" (expected kill|hang|join:<rank>@<tree>,...)");
      return std::nullopt;
    }
  }
  return spec;
}

std::optional<ScenarioSpec> ScenarioSpec::from_file(const std::string& path,
                                                    std::string* error) {
  const auto doc = Json::parse_file(path, error);
  if (!doc) return std::nullopt;
  return from_json(*doc, error);
}

bool ScenarioSpec::operator==(const ScenarioSpec& other) const {
  return to_json() == other.to_json();
}

}  // namespace booster::sim
