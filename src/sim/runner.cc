#include "sim/runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>

#include "gbdt/binning.h"
#include "gbdt/model_io.h"
#include "serve/client.h"
#include "serve/model_slot.h"
#include "serve/server.h"
#include "stream/retrainer.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workloads/synth.h"

namespace booster::sim {

namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr && error->empty()) *error = message;
}

/// One full streaming pipeline run (bootstrap -> freeze -> chunked ingest
/// -> cadenced warm-start refresh through an in-process ModelSlot), fully
/// deterministic given (dataset, st, seed, trainer knobs): chunk i is
/// synthesized with seed + kChunkSeedStride * (i + 1), drift applied per
/// schedule. Returns each refreshed generation's serialized bytes so
/// callers can assert bit-identity across (threads, shards) reruns.
struct StreamRun {
  std::vector<std::string> generations;  // save_model bytes per refresh
  std::uint64_t rows = 0;                // streamed rows (bootstrap excl.)
  double wall_seconds = 0.0;
  std::vector<double> staleness_ms;  // per refresh: newest-row age at install
  std::uint64_t handoff_failures = 0;
  std::uint64_t final_trees = 0;
  std::uint64_t slot_version = 0;  // installs observed by the slot
};

constexpr std::uint64_t kChunkSeedStride = 1000003;

workloads::DatasetSpec drifted_spec(const workloads::DatasetSpec& dataset,
                                    const StreamingSpec& st,
                                    std::uint32_t chunk_index) {
  workloads::DatasetSpec out = dataset;
  if (st.drift == "noise-ramp") {
    // Label noise ramps to 2x over the stream: the label relation the
    // bootstrap generation learned keeps degrading, so refreshes have real
    // drift to absorb.
    out.label_noise = dataset.label_noise *
                      (1.0 + static_cast<double>(chunk_index + 1) /
                                 static_cast<double>(st.chunks));
  }
  return out;
}

StreamRun run_stream_pipeline(const workloads::DatasetSpec& dataset,
                              const StreamingSpec& st, std::uint64_t seed,
                              std::uint32_t max_depth, std::uint32_t threads,
                              std::uint32_t shards, bool paced) {
  const gbdt::Dataset bootstrap_raw =
      workloads::synthesize(dataset, st.bootstrap_rows, seed);
  const gbdt::BinnedDataset bootstrap = gbdt::Binner().bin(bootstrap_raw);
  const stream::FrozenBinMap map(bootstrap);

  stream::RetrainerConfig rcfg;
  rcfg.trainer.num_trees = st.refresh_trees;
  rcfg.trainer.max_depth = max_depth;
  rcfg.trainer.loss = dataset.loss;
  rcfg.trainer.num_threads = threads;
  rcfg.trainer.num_shards = shards;
  rcfg.refresh_every_chunks = st.refresh_every_chunks;
  rcfg.window_chunks = st.window_chunks;
  rcfg.warm_start = st.warm_start;
  serve::ModelSlot slot;
  rcfg.slot = &slot;
  stream::Retrainer retrainer(map, rcfg);

  StreamRun run;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t i = 0; i < st.chunks; ++i) {
    const gbdt::Dataset chunk =
        workloads::synthesize(drifted_spec(dataset, st, i), st.chunk_rows,
                              seed + kChunkSeedStride * (i + 1));
    if (paced && st.arrival_rows_per_sec > 0.0) {
      const double due_s =
          static_cast<double>(run.rows + chunk.num_records()) /
          st.arrival_rows_per_sec;
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(due_s)));
    }
    const auto arrived = std::chrono::steady_clock::now();
    if (retrainer.ingest(chunk)) {
      const auto installed = std::chrono::steady_clock::now();
      run.staleness_ms.push_back(
          std::chrono::duration<double, std::milli>(installed - arrived)
              .count());
      std::stringstream bytes;
      gbdt::save_model(*retrainer.latest(), bytes);
      run.generations.push_back(bytes.str());
    }
    run.rows += chunk.num_records();
  }
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.handoff_failures = retrainer.stats().handoff_failures;
  run.final_trees = retrainer.stats().latest_trees;
  const auto served = slot.current();
  run.slot_version = served == nullptr ? 0 : served->version;
  return run;
}

}  // namespace

RunOptions parse_run_options(int argc, char** argv) {
  RunOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const long v = std::strtol(argv[++i], nullptr, 10);
      if (v > 0) opt.threads = static_cast<unsigned>(v);
    }
  }
  return opt;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  // Provenance: which kernel dispatch level this process trains with.
  // Outputs are bit-identical across levels; only the wall clock moves.
  std::printf("SIMD dispatch: %s\n",
              util::simd::level_name(util::simd::active()));
  std::printf("==============================================================\n");
}

const memsim::BandwidthProfile& calibrated_profile(
    const memsim::DramConfig& cfg) {
  // Keyed by every config field that can change the measurement; profiles
  // are appended once and referenced for the process lifetime (deque:
  // appending a new config must not invalidate handed-out references).
  static std::mutex mutex;
  static std::deque<std::pair<std::string, memsim::BandwidthProfile>>* cache =
      new std::deque<std::pair<std::string, memsim::BandwidthProfile>>();

  char key[256];
  std::snprintf(key, sizeof(key), "%u/%u/%u|%u-%u-%u-%u|%u/%u|%u/%u|%.6e|%u",
                cfg.channels, cfg.banks_per_channel, cfg.row_bytes, cfg.tCAS,
                cfg.tRP, cfg.tRCD, cfg.tRAS, cfg.tRRD, cfg.tFAW,
                cfg.block_bytes, cfg.bus_bytes_per_cycle, cfg.clock_hz,
                cfg.queue_depth);

  std::lock_guard<std::mutex> lock(mutex);
  for (const auto& [k, profile] : *cache) {
    if (k == key) return profile;
  }
  const memsim::BandwidthProbe probe(cfg);
  cache->emplace_back(key, probe.calibrate(/*num_requests=*/60000));
  return cache->back().second;
}

core::BoosterConfig calibrated_booster_config() {
  core::BoosterConfig cfg;
  cfg.bandwidth = calibrated_profile(memsim::DramConfig{});
  return cfg;
}

const ScenarioCell& ScenarioResult::cell(std::size_t sweep,
                                         std::size_t workload,
                                         std::size_t model) const {
  const std::size_t per_sweep = workloads.size() * spec.models.size();
  return cells[sweep * per_sweep + workload * spec.models.size() + model];
}

Json ScenarioResult::to_json() const {
  Json j = Json::object();
  j.set("scenario", spec.name);
  if (!spec.paper_ref.empty()) j.set("paper_ref", spec.paper_ref);
  j.set("quick", quick);
  j.set("sweep_axis", sweep_axis_name(spec.sweep_axis));
  if (spec.sweep_axis != SweepAxis::kNone) {
    Json values = Json::array();
    for (const double v : sweep_values) values.push_back(v);
    j.set("sweep_values", std::move(values));
  }

  Json cell_array = Json::array();
  for (const auto& c : cells) {
    Json cj = Json::object();
    if (spec.sweep_axis != SweepAxis::kNone) {
      cj.set(sweep_axis_name(spec.sweep_axis), c.sweep_value);
    }
    cj.set("workload", workloads[c.workload_index].spec.name);
    cj.set("model", c.model_name);
    cj.set("step1_hist_s", c.breakdown[trace::StepKind::kHistogram]);
    cj.set("step2_split_s", c.breakdown[trace::StepKind::kSplitSelect]);
    cj.set("step3_partition_s", c.breakdown[trace::StepKind::kPartition]);
    cj.set("step5_traversal_s", c.breakdown[trace::StepKind::kTraversal]);
    cj.set("total_s", c.total_seconds);
    cj.set("sram_accesses", c.activity.sram_accesses);
    cj.set("dram_bytes", c.activity.dram_bytes);
    if (spec.include_inference) {
      cj.set("inference_s", c.inference_seconds);
      cj.set("analytic_qps", c.analytic_qps);
    }
    cell_array.push_back(std::move(cj));
  }
  j.set("cells", std::move(cell_array));

  if (!serving.empty()) {
    Json serving_array = Json::array();
    for (const auto& s : serving) {
      Json sj = Json::object();
      sj.set("workload", workloads[s.workload_index].spec.name);
      sj.set("qps", s.qps);
      sj.set("rows_per_sec", s.rows_per_sec);
      sj.set("mean_us", s.mean_us);
      sj.set("p50_us", s.p50_us);
      sj.set("p99_us", s.p99_us);
      sj.set("p999_us", s.p999_us);
      sj.set("requests", s.requests);
      sj.set("rows", s.rows);
      sj.set("bytes_per_request", s.bytes_per_request);
      serving_array.push_back(std::move(sj));
    }
    j.set("serving", std::move(serving_array));
  }

  if (!streaming.empty()) {
    Json streaming_array = Json::array();
    for (const auto& s : streaming) {
      Json sj = Json::object();
      sj.set("workload", workloads[s.workload_index].spec.name);
      if (spec.sweep_axis == SweepAxis::kArrivalRate ||
          spec.sweep_axis == SweepAxis::kRefreshCadence) {
        sj.set("sweep_value", s.sweep_value);
      }
      sj.set("arrival_rows_per_sec", s.arrival_rows_per_sec);
      sj.set("refresh_every_chunks", s.refresh_every_chunks);
      sj.set("chunks", s.chunks);
      sj.set("rows", s.rows);
      sj.set("refreshes", s.refreshes);
      sj.set("final_trees", s.final_trees);
      sj.set("rows_per_sec", s.rows_per_sec);
      sj.set("staleness_ms_mean", s.staleness_ms_mean);
      sj.set("staleness_ms_max", s.staleness_ms_max);
      streaming_array.push_back(std::move(sj));
    }
    j.set("streaming", std::move(streaming_array));
  }
  return j;
}

void ScenarioResult::print_table() const {
  std::vector<std::string> header;
  const bool swept = spec.sweep_axis != SweepAxis::kNone;
  if (swept) header.push_back(sweep_axis_name(spec.sweep_axis));
  header.insert(header.end(), {"Workload", "Model", "step1", "step2", "step3",
                               "step5", "total"});
  if (spec.include_inference) {
    header.push_back("inference");
    header.push_back("analytic-qps");
  }

  util::Table table(header);
  for (const auto& c : cells) {
    std::vector<std::string> row;
    if (swept) {
      // Integer sweep points (clusters) print bare; fractional ones
      // (bandwidth scales) keep two decimals so rows stay distinguishable.
      row.push_back(util::fmt(c.sweep_value,
                              c.sweep_value == std::floor(c.sweep_value)
                                  ? 0
                                  : 2));
    }
    row.insert(row.end(),
               {workloads[c.workload_index].spec.name, c.model_name,
                util::fmt_time(c.breakdown[trace::StepKind::kHistogram]),
                util::fmt_time(c.breakdown[trace::StepKind::kSplitSelect]),
                util::fmt_time(c.breakdown[trace::StepKind::kPartition]),
                util::fmt_time(c.breakdown[trace::StepKind::kTraversal]),
                util::fmt_time(c.total_seconds)});
    if (spec.include_inference) {
      row.push_back(util::fmt_time(c.inference_seconds));
      row.push_back(util::fmt(c.analytic_qps, 0));
    }
    table.add_row(std::move(row));
  }
  table.print();

  // The measured leg, when present: real sockets, closed loop, every
  // prediction already proven bit-identical (a mismatch would have failed
  // the run). Printed after the analytic table so the two QPS columns sit
  // together on the terminal.
  if (!serving.empty()) {
    util::Table measured({"Workload", "measured-qps", "rows/s", "p50-us",
                          "p99-us", "p999-us", "requests"});
    for (const auto& s : serving) {
      measured.add_row({workloads[s.workload_index].spec.name,
                        util::fmt(s.qps, 0), util::fmt(s.rows_per_sec, 0),
                        util::fmt(s.p50_us, 0), util::fmt(s.p99_us, 0),
                        util::fmt(s.p999_us, 0),
                        std::to_string(s.requests)});
    }
    std::printf("\nMeasured serving (closed-loop, localhost TCP,"
                " bit-identity gated):\n");
    measured.print();
  }

  // Same for the streaming leg: numbers only print after every refreshed
  // generation passed the (threads x shards) bit-identity gate.
  if (!streaming.empty()) {
    util::Table measured({"Workload", "cadence", "refreshes", "trees",
                          "rows/s", "stale-ms-mean", "stale-ms-max"});
    for (const auto& s : streaming) {
      measured.add_row({workloads[s.workload_index].spec.name,
                        std::to_string(s.refresh_every_chunks),
                        std::to_string(s.refreshes),
                        std::to_string(s.final_trees),
                        util::fmt(s.rows_per_sec, 0),
                        util::fmt(s.staleness_ms_mean, 2),
                        util::fmt(s.staleness_ms_max, 2)});
    }
    std::printf("\nMeasured streaming (chunked ingest + warm-start refresh,"
                " bit-identity gated):\n");
    measured.print();
  }
}

ScenarioRunner::ScenarioRunner()
    : models_(&ModelRegistry::builtin()),
      workloads_(WorkloadRegistry::with_builtin()) {}

ScenarioRunner::ScenarioRunner(const ModelRegistry* models,
                               WorkloadRegistry workloads)
    : models_(models), workloads_(std::move(workloads)) {}

std::optional<ScenarioResult> ScenarioRunner::run(const ScenarioSpec& spec,
                                                  const RunOptions& options,
                                                  std::string* error) const {
  // ---- resolve workloads and models up front (cheap failures first).
  WorkloadRegistry registry = workloads_;
  for (const auto& d : spec.datasets) registry.add(d);

  std::vector<workloads::DatasetSpec> dataset_specs;
  for (const auto& name : spec.workloads) {
    const workloads::DatasetSpec* found = registry.find(name);
    if (found == nullptr) {
      std::string known;
      for (const auto& n : registry.names()) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      set_error(error, "unknown workload \"" + name + "\" (registered: " +
                           known + ")");
      return std::nullopt;
    }
    dataset_specs.push_back(*found);
  }
  for (const auto& m : spec.models) {
    // Full factory validation (name lookup + overrides) with a scratch
    // context, so a typo'd override fails here instead of after the
    // expensive functional-training stage.
    ModelContext scratch;
    std::string model_error;
    if (models_->create(m, scratch, &model_error) == nullptr) {
      set_error(error, model_error);
      return std::nullopt;
    }
  }

  ScenarioResult result;
  result.spec = spec;
  result.quick = options.quick;

  // ---- resolve configs.
  const auto dram = spec.dram_config(error);
  if (!dram) return std::nullopt;
  result.dram = *dram;

  core::BoosterConfig base_booster;
  // The probe is the dominant cost of a small run; pure-config scenarios
  // (no workloads or no models -> zero cells) never consume the profile.
  const bool has_cells = !spec.workloads.empty() && !spec.models.empty();
  if (options.calibrate_bandwidth && has_cells) {
    base_booster.bandwidth = calibrated_profile(*dram);
  }
  const auto booster = spec.booster_config(base_booster, error);
  if (!booster) return std::nullopt;

  // ---- expand the sweep into per-point configs / record scales.
  result.sweep_values =
      spec.sweep_axis == SweepAxis::kNone ? std::vector<double>{0.0}
                                          : spec.sweep_values;
  std::vector<core::BoosterConfig> point_configs;
  std::vector<double> record_scales;
  std::vector<std::uint32_t> point_replicas;
  for (const double value : result.sweep_values) {
    core::BoosterConfig cfg = *booster;
    double record_scale = 1.0;
    std::uint32_t replica_count = 1;
    switch (spec.sweep_axis) {
      case SweepAxis::kNone:
        break;
      case SweepAxis::kClusters:
        if (value < 1.0 || value != std::floor(value)) {
          set_error(error, "sweep axis clusters requires positive integer"
                           " values");
          return std::nullopt;
        }
        cfg.clusters = static_cast<std::uint32_t>(value);
        break;
      case SweepAxis::kBandwidthScale:
        if (value <= 0.0) {
          set_error(error, "sweep axis bandwidth-scale requires positive"
                           " values");
          return std::nullopt;
        }
        cfg.bandwidth.streaming *= value;
        cfg.bandwidth.strided_gather *= value;
        cfg.bandwidth.random *= value;
        cfg.bandwidth.peak *= value;
        break;
      case SweepAxis::kRecordScale:
        if (value <= 0.0) {
          set_error(error, "sweep axis record-scale requires positive"
                           " values");
          return std::nullopt;
        }
        record_scale = value;
        break;
      case SweepAxis::kShards:
        if (value < 1.0 || value != std::floor(value)) {
          set_error(error, "sweep axis shards requires positive integer"
                           " values");
          return std::nullopt;
        }
        cfg.training_shards = static_cast<std::uint32_t>(value);
        break;
      case SweepAxis::kReplicas:
        if (value < 1.0 || value != std::floor(value)) {
          set_error(error, "sweep axis replicas requires positive integer"
                           " values");
          return std::nullopt;
        }
        replica_count = static_cast<std::uint32_t>(value);
        break;
      case SweepAxis::kArrivalRate:
        // Moves only the measured streaming leg (pacing); the analytic
        // cells run at the base config for every point.
        if (value < 0.0) {
          set_error(error, "sweep axis arrival-rate requires non-negative"
                           " values (rows/s; 0 = unpaced)");
          return std::nullopt;
        }
        break;
      case SweepAxis::kRefreshCadence:
        // Moves only the measured streaming leg (refresh_every_chunks).
        if (value < 1.0 || value != std::floor(value)) {
          set_error(error, "sweep axis refresh-cadence requires positive"
                           " integer values (chunks per refresh)");
          return std::nullopt;
        }
        break;
    }
    point_configs.push_back(cfg);
    record_scales.push_back(record_scale);
    point_replicas.push_back(replica_count);
  }

  // ---- run the functional workloads (the expensive stage). Each run is
  // deterministic given (spec, runner config), so fanning them out over
  // the pool changes nothing but wall time.
  const workloads::RunnerConfig runner_cfg = spec.runner_config(options.quick);
  util::ThreadPool pool(options.threads);
  std::vector<std::optional<workloads::WorkloadResult>> workload_slots(
      dataset_specs.size());
  pool.run_tasks(static_cast<unsigned>(dataset_specs.size()), [&](unsigned i) {
    workload_slots[i] = workloads::run_workload(dataset_specs[i], runner_cfg);
  });
  result.workloads.reserve(workload_slots.size());
  for (auto& slot : workload_slots) {
    result.workloads.push_back(std::move(*slot));
  }

  // Per-workload inference shape, derived once (model traversal stats are
  // not cheap enough to recompute per cell).
  std::vector<perf::InferenceSpec> inference_specs(result.workloads.size());
  if (spec.include_inference) {
    for (std::size_t w = 0; w < result.workloads.size(); ++w) {
      const auto& wl = result.workloads[w];
      perf::InferenceSpec is;
      is.records = static_cast<double>(wl.spec.nominal_records);
      is.trees = wl.info.trees;
      is.max_depth = wl.train.model.max_tree_depth();
      is.avg_path_length = wl.train.model.avg_path_length(wl.binned);
      is.record_bytes = wl.info.record_bytes;
      inference_specs[w] = is;
    }
  }

  // ---- evaluate the cell matrix in parallel. Every cell owns slot
  // cells[index]; reductions (tables, geomeans) happen in the shims,
  // serially, so parallel == serial bit-for-bit.
  const std::size_t num_models = spec.models.size();
  const std::size_t num_workloads = result.workloads.size();
  const std::size_t num_cells =
      result.sweep_values.size() * num_workloads * num_models;
  result.cells.resize(num_cells);

  std::mutex error_mutex;
  std::string cell_error;
  pool.run_tasks(static_cast<unsigned>(num_cells), [&](unsigned index) {
    const std::size_t s = index / (num_workloads * num_models);
    const std::size_t w = (index / num_models) % num_workloads;
    const std::size_t m = index % num_models;
    const auto& wl = result.workloads[w];

    ScenarioCell& cell = result.cells[index];
    cell.sweep_index = s;
    cell.sweep_value =
        spec.sweep_axis == SweepAxis::kNone ? 0.0 : result.sweep_values[s];
    cell.workload_index = w;
    cell.model_index = m;
    cell.booster = point_configs[s];
    cell.replicas = point_replicas[s];

    ModelContext ctx;
    ctx.booster = point_configs[s];
    ctx.dram = *dram;
    ctx.replay_threads = options.replay_threads;
    ctx.workload = &wl;
    std::string local_error;
    const auto model = models_->create(spec.models[m], ctx, &local_error);
    if (model == nullptr) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (cell_error.empty()) cell_error = local_error;
      return;
    }
    cell.model_name = model->name();

    const double record_scale = record_scales[s];
    if (record_scale == 1.0) {
      cell.breakdown = model->train_cost(wl.trace, wl.info);
      cell.activity = model->train_activity(wl.trace, wl.info);
    } else {
      // The paper's Fig 12 replication: scale the trace's record dimension
      // only (tree count and histogram sizes unchanged).
      const trace::StepTrace scaled = wl.trace.scaled_by(record_scale);
      trace::WorkloadInfo info = wl.info;
      info.nominal_records = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(info.nominal_records) *
                       record_scale));
      cell.breakdown = model->train_cost(scaled, info);
      cell.activity = model->train_activity(scaled, info);
    }
    cell.total_seconds = cell.breakdown.total();
    if (spec.include_inference) {
      perf::InferenceSpec is = inference_specs[w];
      is.records *= record_scale;
      is.chips = point_replicas[s];
      cell.inference_seconds = model->inference_cost(is);
      cell.analytic_qps = perf::projected_qps(is.records,
                                              cell.inference_seconds);
    }
  });
  if (!cell_error.empty()) {
    set_error(error, cell_error);
    return std::nullopt;
  }

  // ---- the measured serving leg: a real serve::Server per workload on
  // localhost TCP, driven closed-loop over the exact rows the functional
  // sample trained on (re-synthesized: synthesize is deterministic in
  // (spec, records, seed)). Runs serially after the cell matrix so its
  // wall-clock numbers are not polluted by pool contention. Any bitwise
  // mismatch between a served prediction and local Model::predict -- or
  // any transport error -- fails the whole scenario loudly.
  if (spec.serving.has_value()) {
    const ServingSpec& sv = *spec.serving;
    for (std::size_t w = 0; w < result.workloads.size(); ++w) {
      const auto& wl = result.workloads[w];

      // Model is move-only and the workload keeps its copy; clone through
      // the text serializer (round-tripping preserves every prediction).
      std::stringstream clone;
      gbdt::save_model(wl.train.model, clone);
      serve::ModelSlot slot;
      slot.install(gbdt::load_model(clone));

      serve::ServerConfig server_cfg;
      server_cfg.batch_window = std::chrono::microseconds(sv.batch_window_us);
      server_cfg.max_batch_rows = sv.max_batch_rows;
      serve::Server server(server_cfg, &slot, wl.binned);
      std::thread loop([&server] { server.run(); });

      const gbdt::Dataset queries =
          workloads::synthesize(wl.spec, runner_cfg.sim_records,
                                runner_cfg.seed);
      std::vector<double> expected(wl.binned.num_records());
      for (std::uint64_t r = 0; r < wl.binned.num_records(); ++r) {
        expected[r] = wl.train.model.predict(wl.binned, r);
      }

      serve::LoadConfig load;
      load.port = server.port();
      load.connections = sv.connections;
      load.requests_per_connection = sv.requests_per_connection;
      load.rows_per_request = sv.rows_per_request;
      load.json_body = sv.json_body;
      if (options.quick && load.requests_per_connection > 25) {
        load.requests_per_connection = 25;
      }
      const serve::LoadResult measured =
          serve::run_closed_loop(load, queries, expected);
      server.stop();
      loop.join();

      if (measured.errors != 0 || measured.mismatches != 0) {
        set_error(error, "serving leg failed for workload \"" +
                             wl.spec.name + "\": " +
                             std::to_string(measured.errors) + " errors, " +
                             std::to_string(measured.mismatches) +
                             " prediction mismatches vs local"
                             " Model::predict");
        return std::nullopt;
      }

      ServingMeasurement sm;
      sm.workload_index = w;
      sm.qps = measured.qps;
      sm.rows_per_sec = measured.rows_per_sec;
      sm.mean_us = measured.mean_us;
      sm.p50_us = measured.p50_us;
      sm.p99_us = measured.p99_us;
      sm.p999_us = measured.p999_us;
      sm.requests = measured.requests;
      sm.rows = measured.rows;
      sm.bytes_per_request = measured.bytes_per_request;
      result.serving.push_back(sm);
    }
  }

  // ---- the measured streaming leg: the full chunked-ingest +
  // continuous-retraining pipeline per workload (per streaming sweep point
  // when the axis is arrival-rate / refresh-cadence). Each measured run's
  // refreshed generations are then recomputed across a (threads x shards)
  // verification grid -- same chunk sequence, unpaced -- and any bitwise
  // divergence or failed hand-off fails the whole scenario, so the
  // staleness/throughput numbers are determinism-gated by construction.
  // Runs serially after the cell matrix, like the serving leg.
  if (spec.streaming.has_value()) {
    StreamingSpec base_st = *spec.streaming;
    if (options.quick) {
      base_st.bootstrap_rows = std::min<std::uint64_t>(base_st.bootstrap_rows,
                                                       2000);
      base_st.chunk_rows = std::min<std::uint64_t>(base_st.chunk_rows, 500);
      base_st.chunks = std::min<std::uint32_t>(base_st.chunks, 4);
      // Never sleep in CI smoke runs: quick measures the pipeline, not the
      // pacing.
      base_st.arrival_rows_per_sec = 0.0;
    }
    const bool streaming_swept =
        spec.sweep_axis == SweepAxis::kArrivalRate ||
        spec.sweep_axis == SweepAxis::kRefreshCadence;
    const std::vector<double> stream_points =
        streaming_swept ? result.sweep_values : std::vector<double>{0.0};

    for (std::size_t w = 0; w < result.workloads.size(); ++w) {
      const auto& wl = result.workloads[w];
      for (const double point : stream_points) {
        StreamingSpec st = base_st;
        if (spec.sweep_axis == SweepAxis::kArrivalRate && !options.quick) {
          st.arrival_rows_per_sec = point;
        }
        if (spec.sweep_axis == SweepAxis::kRefreshCadence) {
          st.refresh_every_chunks = static_cast<std::uint32_t>(point);
        }

        const StreamRun measured = run_stream_pipeline(
            wl.spec, st, runner_cfg.seed, spec.max_depth, /*threads=*/1,
            /*shards=*/1, /*paced=*/true);
        if (measured.handoff_failures != 0) {
          set_error(error, "streaming leg failed for workload \"" +
                               wl.spec.name + "\": " +
                               std::to_string(measured.handoff_failures) +
                               " model hand-offs failed");
          return std::nullopt;
        }
        if (measured.slot_version != measured.generations.size()) {
          set_error(error, "streaming leg failed for workload \"" +
                               wl.spec.name +
                               "\": ModelSlot version does not match the"
                               " refresh count");
          return std::nullopt;
        }

        // Determinism gate: every refreshed generation must be
        // bit-identical when the same chunk sequence retrains with more
        // threads and shards.
        for (const auto [vthreads, vshards] :
             {std::pair<std::uint32_t, std::uint32_t>{1, 3},
              std::pair<std::uint32_t, std::uint32_t>{8, 1},
              std::pair<std::uint32_t, std::uint32_t>{8, 3}}) {
          const StreamRun verify = run_stream_pipeline(
              wl.spec, st, runner_cfg.seed, spec.max_depth, vthreads,
              vshards, /*paced=*/false);
          if (verify.generations != measured.generations) {
            set_error(error, "streaming leg failed for workload \"" +
                                 wl.spec.name + "\": refreshed models at"
                                 " threads=" + std::to_string(vthreads) +
                                 " shards=" + std::to_string(vshards) +
                                 " diverge bitwise from the threads=1"
                                 " shards=1 reference");
            return std::nullopt;
          }
        }

        StreamingMeasurement sm;
        sm.workload_index = w;
        sm.sweep_value = streaming_swept ? point : 0.0;
        sm.arrival_rows_per_sec = st.arrival_rows_per_sec;
        sm.refresh_every_chunks = st.refresh_every_chunks;
        sm.chunks = st.chunks;
        sm.rows = measured.rows;
        sm.refreshes = measured.generations.size();
        sm.final_trees = measured.final_trees;
        sm.rows_per_sec = measured.wall_seconds > 0.0
                              ? static_cast<double>(measured.rows) /
                                    measured.wall_seconds
                              : 0.0;
        if (!measured.staleness_ms.empty()) {
          double sum = 0.0;
          double max = 0.0;
          for (const double s : measured.staleness_ms) {
            sum += s;
            max = std::max(max, s);
          }
          sm.staleness_ms_mean =
              sum / static_cast<double>(measured.staleness_ms.size());
          sm.staleness_ms_max = max;
        }
        result.streaming.push_back(sm);
      }
    }
  }
  return result;
}

}  // namespace booster::sim
