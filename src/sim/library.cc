#include "sim/library.h"

namespace booster::sim {

namespace {

const std::vector<std::string> kPaperWorkloads = {"IoT", "Higgs", "Allstate",
                                                  "Mq2008", "Flight"};

ModelSpec model(std::string name, std::string label = "",
                Json overrides = {}) {
  ModelSpec m;
  m.model = std::move(name);
  m.label = std::move(label);
  m.overrides = std::move(overrides);
  return m;
}

ScenarioSpec base(std::string name, std::string title, std::string paper_ref,
                  std::vector<std::string> workloads = kPaperWorkloads) {
  ScenarioSpec s;
  s.name = std::move(name);
  s.title = std::move(title);
  s.paper_ref = std::move(paper_ref);
  s.workloads = std::move(workloads);
  return s;
}

std::vector<ScenarioSpec> make_builtin() {
  std::vector<ScenarioSpec> out;

  {
    auto s = base("fig6_seq_breakdown",
                  "Fig 6: sequential execution time breakdown",
                  "Booster paper, Section IV, Figure 6");
    s.models = {model("seq-cpu")};
    out.push_back(std::move(s));
  }
  {
    auto s = base("fig7_speedup",
                  "Fig 7: performance comparison (training speedup)",
                  "Booster paper, Section V-A, Figure 7");
    s.models = {model("ideal-32core"), model("ideal-gpu"),
                model("inter-record"), model("booster"),
                model("booster-cycle")};
    out.push_back(std::move(s));
  }
  {
    auto s = base("fig8_breakdown",
                  "Fig 8: execution time breakdown (normalized)",
                  "Booster paper, Section V-B, Figure 8");
    s.models = {model("ideal-32core"), model("ideal-gpu"), model("booster"),
                model("booster-cycle")};
    out.push_back(std::move(s));
  }
  {
    auto s = base("fig9_ablation", "Fig 9: isolating Booster's optimizations",
                  "Booster paper, Section V-C, Figure 9");
    Json no_opts = Json::object();
    no_opts.set("group_by_field_mapping", false);
    no_opts.set("redundant_column_format", false);
    Json with_mapping = Json::object();
    with_mapping.set("group_by_field_mapping", true);
    with_mapping.set("redundant_column_format", false);
    s.models = {model("ideal-32core"),
                model("booster", "-no-opts", std::move(no_opts)),
                model("booster", "+group-by-field", std::move(with_mapping)),
                model("booster", "+column-format")};
    out.push_back(std::move(s));
  }
  {
    auto s = base("fig10_energy", "Fig 10: SRAM and DRAM energy (normalized)",
                  "Booster paper, Section V-D, Figure 10");
    s.models = {model("ideal-32core"), model("ideal-gpu"), model("booster")};
    out.push_back(std::move(s));
  }
  {
    auto s = base("fig11_validation", "Fig 11: Ideal vs Real configurations",
                  "Booster paper, Section V-E, Figure 11");
    s.models = {model("ideal-32core"), model("real-32core"),
                model("ideal-gpu"), model("real-gpu"), model("booster"),
                model("booster-cycle")};
    out.push_back(std::move(s));
  }
  {
    auto s = base("fig12_scaling",
                  "Fig 12: sensitivity to dataset size (10x scale-up)",
                  "Booster paper, Section V-F, Figure 12");
    s.models = {model("ideal-32core"), model("ideal-gpu"), model("booster")};
    s.sweep_axis = SweepAxis::kRecordScale;
    s.sweep_values = {1.0, 10.0};
    out.push_back(std::move(s));
  }
  {
    auto s = base("fig13_inference", "Fig 13: batch inference speedup",
                  "Booster paper, Section V-H, Figure 13");
    s.models = {model("ideal-32core"), model("booster")};
    s.include_inference = true;
    out.push_back(std::move(s));
  }
  {
    auto s = base("table3_datasets",
                  "Table III: dataset and model characteristics",
                  "Booster paper, Section IV, Table III");
    s.models = {model("seq-cpu")};
    out.push_back(std::move(s));
  }
  {
    // Pure memory-system scenario: no workloads or models; the shim drives
    // memsim::BandwidthProbe with the spec's DRAM config.
    auto s = base("table4_dram",
                  "Table IV: DRAM configuration + sustained bandwidth",
                  "Booster paper, Section IV, Table IV", {});
    out.push_back(std::move(s));
  }
  {
    // Silicon-model scenario: the shim feeds the spec's accelerator config
    // to energy::AreaPowerModel.
    auto s = base("table6_area_power", "Table VI: area and power estimates",
                  "Booster paper, Section V-G, Table VI", {});
    out.push_back(std::move(s));
  }
  {
    auto s = base("dse_bu_sweep",
                  "DSE: BU-count sweep (rate-matching the memory system)",
                  "Booster paper, Section III-B (sizing argument);"
                  " extension study");
    s.models = {model("ideal-32core"), model("booster")};
    s.sweep_axis = SweepAxis::kClusters;
    s.sweep_values = {5, 10, 20, 30, 40, 50, 65, 80};
    out.push_back(std::move(s));
  }
  {
    auto s = base("dse_bandwidth_sweep",
                  "DSE: bandwidth sweep at the 3200-BU design point",
                  "Booster paper, Section III-B (sizing argument);"
                  " extension study");
    s.models = {model("ideal-32core"), model("booster")};
    s.sweep_axis = SweepAxis::kBandwidthScale;
    s.sweep_values = {0.25, 0.5, 1.0, 2.0, 4.0};
    out.push_back(std::move(s));
  }
  {
    // Scale-out DSE: a 50M-record nominal workload (the class the paper
    // sizes Booster against) swept over training shard counts. The
    // functional sample itself trains through gbdt::ShardedTrainer
    // (runner.shards = 4) -- sharded output is bit-identical to the
    // single-shard trainer, so only the perf models' scale-out projection
    // varies across the sweep: per-shard record bandwidth shrinks the
    // step work while per-event histogram-merge traffic grows with S.
    auto s = base("dse_shard_sweep",
                  "DSE: sharded-training sweep (per-shard bandwidth vs"
                  " histogram-merge traffic)",
                  "Booster paper, Section III-B (50M-record sizing);"
                  " extension study",
                  {"synth50m", "Flight"});
    workloads::DatasetSpec d;
    d.name = "synth50m";
    d.description = "50M-record nominal scale-out workload";
    d.nominal_records = 50'000'000;
    d.numeric_fields = 24;
    d.categorical_cardinalities = {64, 16, 8};
    d.missing_rate = 0.05;
    s.datasets = {d};
    s.models = {model("ideal-32core"), model("booster")};
    s.sweep_axis = SweepAxis::kShards;
    s.sweep_values = {1, 2, 4, 8, 16, 32};
    s.shards = 4;
    out.push_back(std::move(s));
  }
  {
    // Serving scenario: the analytic batch-inference cost (swept over
    // replica counts, paper SS III-D round-robin chip dealing) next to a
    // *measured* closed-loop run against a real serve::Server on
    // localhost TCP. The measured leg is gated bit-exact -- every served
    // prediction must equal local Model::predict -- so the two QPS
    // columns in one table are both correctness-proven.
    auto s = base("serving",
                  "Serving: measured prediction-server QPS vs analytic"
                  " inference cost",
                  "Booster paper, Section V-H (inference); serving"
                  " extension study",
                  {"IoT", "Flight"});
    s.models = {model("ideal-32core"), model("booster")};
    s.include_inference = true;
    s.sweep_axis = SweepAxis::kReplicas;
    s.sweep_values = {1, 2, 4};
    s.serving = ServingSpec{};
    out.push_back(std::move(s));
  }
  {
    // Streaming scenario: chunked ingestion against a frozen bin map with
    // continuous warm-start retraining (stream::Retrainer), swept over the
    // refresh cadence. Every refreshed generation is verified bit-identical
    // across a (threads x shards) grid before its staleness/throughput
    // numbers are reported, and a drifting label-noise schedule gives the
    // refreshes something real to chase.
    auto s = base("streaming",
                  "Streaming: continuous warm-start retraining, staleness"
                  " vs refresh cadence",
                  "Streaming ingestion extension study (cf. IPTV"
                  " QoS-under-arrival-rate methodology)",
                  {"IoT"});
    s.models = {model("booster")};
    s.sweep_axis = SweepAxis::kRefreshCadence;
    s.sweep_values = {1, 2, 4};
    StreamingSpec st;
    st.drift = "noise-ramp";
    s.streaming = st;
    out.push_back(std::move(s));
  }

  return out;
}

}  // namespace

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec>* scenarios =
      new std::vector<ScenarioSpec>(make_builtin());
  return *scenarios;
}

std::optional<ScenarioSpec> builtin_scenario(const std::string& name) {
  for (const auto& s : builtin_scenarios()) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

}  // namespace booster::sim
