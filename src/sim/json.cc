#include "sim/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace booster::sim {

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  if (is_null()) type_ = Type::kObject;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  if (is_null()) type_ = Type::kArray;
  arr_.push_back(std::move(value));
  return *this;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return num_ == other.num_;
    case Type::kString:
      return str_ == other.str_;
    case Type::kArray:
      return arr_ == other.arr_;
    case Type::kObject:
      return obj_ == other.obj_;
  }
  return false;
}

// ---------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> parse() {
    skip_ws();
    Json value;
    if (!parse_value(&value)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON document");
      return std::nullopt;
    }
    return value;
  }

 private:
  bool parse_value(Json* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        return parse_string_value(out);
      case 't':
        return parse_literal("true", Json(true), out);
      case 'f':
        return parse_literal("false", Json(false), out);
      case 'n':
        return parse_literal("null", Json(nullptr), out);
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Json* out) {
    ++pos_;  // '{'
    *out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') return fail("expected object key string");
      std::string key;
      if (!parse_string(&key)) return false;
      if (out->find(key) != nullptr) {
        return fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      Json value;
      if (!parse_value(&value)) return false;
      out->set(std::move(key), std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Json* out) {
    ++pos_;  // '['
    *out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Json value;
      if (!parse_value(&value)) return false;
      out->push_back(std::move(value));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string_value(Json* out) {
    std::string s;
    if (!parse_string(&s)) return false;
    *out = Json(std::move(s));
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        switch (text_[pos_]) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            // Scenario files are ASCII; accept \uXXXX for completeness and
            // encode the code point as UTF-8 (no surrogate pairing).
            if (pos_ + 4 >= text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + i];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail("invalid \\u escape");
              }
            }
            pos_ += 4;
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("invalid escape sequence");
        }
        ++pos_;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      out->push_back(c);
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_literal(std::string_view word, Json value, Json* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return true;
  }

  bool parse_number(Json* out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      pos_ = start;
      return fail("malformed number \"" + token + "\"");
    }
    *out = Json(v);
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      std::size_t line = 1, column = 1;
      for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++line;
          column = 1;
        } else {
          ++column;
        }
      }
      *error_ = "line " + std::to_string(line) + ", column " +
                std::to_string(column) + ": " + message;
    }
    return false;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

void append_quoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_number(std::string* out, double v) {
  // Integers print without exponent or decimal point (scenario knobs are
  // mostly counts); everything else in shortest round-trip form.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    const auto r = std::to_chars(buf, buf + sizeof(buf),
                                 static_cast<std::int64_t>(v));
    out->append(buf, r.ptr);
    return;
  }
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof(buf), v);
  out->append(buf, r.ptr);
}

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  std::string scratch;
  Parser parser(text, error != nullptr ? error : &scratch);
  return parser.parse();
}

std::optional<Json> Json::parse_file(const std::string& path,
                                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = path + ": cannot open file";
    return std::nullopt;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string parse_error;
  auto doc = parse(text, &parse_error);
  if (!doc && error != nullptr) *error = path + ": " + parse_error;
  return doc;
}

void Json::dump_to(std::string* out, int depth) const {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, num_);
      break;
    case Type::kString:
      append_quoted(out, str_);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        break;
      }
      // Scalar-only arrays print on one line (sweep values, cardinalities).
      bool scalars_only = true;
      for (const auto& v : arr_) {
        if (v.is_array() || v.is_object()) scalars_only = false;
      }
      if (scalars_only) {
        *out += "[";
        for (std::size_t i = 0; i < arr_.size(); ++i) {
          if (i > 0) *out += ", ";
          arr_[i].dump_to(out, depth);
        }
        *out += "]";
        break;
      }
      *out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        *out += inner;
        arr_[i].dump_to(out, depth + 1);
        if (i + 1 < arr_.size()) *out += ",";
        *out += "\n";
      }
      *out += indent + "]";
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        *out += inner;
        append_quoted(out, obj_[i].first);
        *out += ": ";
        obj_[i].second.dump_to(out, depth + 1);
        if (i + 1 < obj_.size()) *out += ",";
        *out += "\n";
      }
      *out += indent + "}";
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(&out, 0);
  out += "\n";
  return out;
}

bool Json::dump_file(const std::string& path, std::string* error) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = path + ": cannot open file for writing";
    return false;
  }
  const std::string text = dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = path + ": short write";
  return ok;
}

}  // namespace booster::sim
