// ScenarioRunner: expands a declarative ScenarioSpec into a run matrix of
// (sweep point x workload x model) cells and executes them on a
// util::ThreadPool. Cells are independent (training runs happened up
// front; each cell is one PerfModel costing pass), every cell writes only
// its own preallocated slot, and all reductions happen serially afterwards,
// so a parallel run is bit-identical to a serial one -- the property the
// golden-equivalence test asserts.
//
// This is the single execution engine behind every bench_fig*/bench_table*
// driver and the booster_scenarios CLI: benches are now a builtin spec plus
// a formatting shim over ScenarioResult.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "memsim/bandwidth_probe.h"
#include "perf/perf_model.h"
#include "sim/registry.h"
#include "sim/scenario.h"

namespace booster::sim {

struct RunOptions {
  bool quick = false;    // shrink the functional sample (apply_quick)
  bool json = false;     // benches: also print the canonical JSON block
  unsigned threads = 0;  // cell-level pool size; 0 = ThreadPool default
  /// Co-sim parallelism *inside* one booster-cycle cell. Leave at 1 when
  /// many cells run in parallel anyway; raise it for single-cell runs.
  unsigned replay_threads = 1;
  /// Calibrate the bandwidth profile from the scenario's DRAM config via
  /// memsim::BandwidthProbe (cached per config per process). Off uses the
  /// BoosterConfig defaults -- handy in unit tests.
  bool calibrate_bandwidth = true;
};

/// Shared CLI argument parsing for every bench driver: recognizes --quick,
/// --json, and --threads N; ignores everything else (callers with extra
/// flags parse those themselves).
RunOptions parse_run_options(int argc, char** argv);

/// The standard experiment provenance header every driver prints (title,
/// paper reference, and the resolved SIMD dispatch level).
void print_header(const std::string& title, const std::string& paper_ref);

/// Calibrated sustained-bandwidth profile (with measured stride anchors)
/// for a DRAM config, from the cycle-level model. Cached per config within
/// the process -- the probe is the expensive part of small runs.
const memsim::BandwidthProfile& calibrated_profile(
    const memsim::DramConfig& cfg);

/// Default Booster config with the calibrated profile of the default DRAM
/// config applied (what most standalone drivers want).
core::BoosterConfig calibrated_booster_config();

/// One evaluated (sweep point, workload, model) cell.
struct ScenarioCell {
  std::size_t sweep_index = 0;
  double sweep_value = 0.0;  // 0 when the scenario has no sweep axis
  std::size_t workload_index = 0;
  std::size_t model_index = 0;
  std::string model_name;  // PerfModel::name() of the instance
  perf::StepBreakdown breakdown;
  double total_seconds = 0.0;
  perf::Activity activity;
  double inference_seconds = 0.0;  // when spec.include_inference
  /// Serving replicas of this sweep point (InferenceSpec::chips); 1
  /// unless the scenario sweeps kReplicas.
  std::uint32_t replicas = 1;
  /// perf::projected_qps of this cell's batch-inference cost (rows/s the
  /// analytic model predicts); 0 unless spec.include_inference.
  double analytic_qps = 0.0;
  /// The resolved accelerator config of this cell's sweep point (drives
  /// the area/power and bin-mapping shims).
  core::BoosterConfig booster;
};

/// One measured serving run (spec.serving present): a real serve::Server
/// on localhost TCP driven by the closed-loop harness, one per workload.
/// Reported only when every served prediction matched local
/// Model::predict bitwise -- a mismatch (or transport error) fails the
/// scenario instead, so these numbers are correctness-gated by
/// construction.
struct ServingMeasurement {
  std::size_t workload_index = 0;
  double qps = 0.0;
  double rows_per_sec = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t rows = 0;
  double bytes_per_request = 0.0;
};

/// One measured streaming run (spec.streaming present): the workload's
/// record stream replayed in chunks through a stream::Retrainer (frozen
/// bin map, bounded window, warm-start refresh on a cadence), one per
/// workload per streaming sweep point. Reported only when every refreshed
/// generation was bit-identical across the verification (threads x shards)
/// grid and every hand-off succeeded -- otherwise the scenario fails.
struct StreamingMeasurement {
  std::size_t workload_index = 0;
  double sweep_value = 0.0;  // 0 when the sweep axis is not streaming
  double arrival_rows_per_sec = 0.0;  // 0 = unpaced
  std::uint32_t refresh_every_chunks = 0;
  std::uint64_t chunks = 0;
  std::uint64_t rows = 0;
  std::uint64_t refreshes = 0;
  /// Trees in the final generation.
  std::uint64_t final_trees = 0;
  /// Ingest throughput actually achieved (rows/s over the whole stream).
  double rows_per_sec = 0.0;
  /// Model staleness at each refresh: age of the newest window row when
  /// the refreshed model became available (train + hand-off time, plus any
  /// cadence-induced wait is excluded -- this is the refresh-path cost).
  double staleness_ms_mean = 0.0;
  double staleness_ms_max = 0.0;
};

struct ScenarioResult {
  ScenarioSpec spec;
  bool quick = false;
  memsim::DramConfig dram;
  /// Index-aligned with spec.workloads.
  std::vector<workloads::WorkloadResult> workloads;
  /// Expanded sweep points ({0.0} when the axis is kNone).
  std::vector<double> sweep_values;
  /// Sweep-major, then workload, then model.
  std::vector<ScenarioCell> cells;
  /// One entry per workload when spec.serving is present; empty otherwise.
  std::vector<ServingMeasurement> serving;
  /// Streaming measurements when spec.streaming is present: one entry per
  /// workload per streaming sweep point (arrival-rate / refresh-cadence
  /// axes), or one per workload otherwise. Empty without the block.
  std::vector<StreamingMeasurement> streaming;

  const ScenarioCell& cell(std::size_t sweep, std::size_t workload,
                           std::size_t model) const;

  /// Canonical machine-readable form: spec identity + every cell's step
  /// breakdown, activity, and inference cost. The CLI and the ported
  /// benches print exactly this object, so their outputs are diffable.
  Json to_json() const;

  /// Generic per-cell table (the CLI's human-readable output; figure
  /// benches format their own paper-shaped tables instead).
  void print_table() const;
};

class ScenarioRunner {
 public:
  /// Builtin registries.
  ScenarioRunner();

  /// Custom registries (tests, embedders). `models` must outlive the
  /// runner; `workloads` is copied.
  ScenarioRunner(const ModelRegistry* models, WorkloadRegistry workloads);

  /// Expands and executes a scenario. Returns nullopt and sets *error on
  /// unknown workloads/models, bad config deltas, or invalid sweep values.
  std::optional<ScenarioResult> run(const ScenarioSpec& spec,
                                    const RunOptions& options,
                                    std::string* error) const;

 private:
  const ModelRegistry* models_;
  WorkloadRegistry workloads_;
};

}  // namespace booster::sim
