// Declarative experiment descriptions: a ScenarioSpec names a workload set,
// accelerator/DRAM config deltas, a roster of performance models, and an
// optional sweep axis -- everything the paper's (workload x architecture x
// hardware config) evaluation grid varies -- as *data*. Scenarios live in
// checked-in bench/scenarios/*.json files, parse and serialize losslessly
// (parse -> serialize -> parse is a fixpoint), and run through
// sim::ScenarioRunner (sim/runner.h). Adding a dataset, model ablation, or
// DSE axis is a ~20-line JSON edit, not a new binary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/booster_config.h"
#include "memsim/dram_config.h"
#include "sim/json.h"
#include "workloads/runner.h"
#include "workloads/spec.h"

namespace booster::sim {

/// The one definition of --quick: a smaller functional sample for smoke
/// runs (CI executes every scenario under it). Shared by every bench
/// driver via apply_quick().
inline constexpr std::uint64_t kQuickSimRecords = 8000;
inline constexpr std::uint32_t kQuickSimTrees = 12;

/// Applies the quick knobs to a runner config (the single place --quick
/// semantics are defined).
void apply_quick(workloads::RunnerConfig* cfg);

/// The axes a scenario may sweep. Each sweep value expands into one slice
/// of the run matrix:
///   kClusters       -- BU count: BoosterConfig::clusters (BUs = clusters x
///                      bus_per_cluster)
///   kBandwidthScale -- all calibrated bandwidth rates multiplied together
///   kRecordScale    -- dataset size: the trace's record dimension scaled
///                      (the paper's Fig 12 replication; octave values
///                      1, 2, 4, ... give record-count octaves)
///   kShards         -- training shards: BoosterConfig::training_shards
///                      (scale-out projection: per-shard Booster nodes,
///                      histogram-merge traffic after every step-1 event)
///   kReplicas       -- serving replicas: perf::InferenceSpec::chips (the
///                      ensemble dealt round-robin over N chips, paper
///                      SS III-D); requires include_inference, since the
///                      axis only moves the analytic inference cost
///   kArrivalRate    -- streaming arrival rate in rows/s fed to the
///                      measured streaming leg (StreamingSpec
///                      arrival_rows_per_sec); requires the streaming
///                      block
///   kRefreshCadence -- streaming refresh cadence in chunks
///                      (StreamingSpec refresh_every_chunks); requires
///                      the streaming block
enum class SweepAxis : std::uint8_t {
  kNone = 0,
  kClusters,
  kBandwidthScale,
  kRecordScale,
  kShards,
  kReplicas,
  kArrivalRate,
  kRefreshCadence,
};

const char* sweep_axis_name(SweepAxis axis);
std::optional<SweepAxis> sweep_axis_from_name(std::string_view name);

/// One performance model of a scenario: a sim::ModelRegistry name, an
/// optional display label (BoosterModel name suffix / CPU-like display
/// name), and model-specific config overrides as a JSON object (validated
/// by the model's factory; unknown keys are errors).
struct ModelSpec {
  std::string model;
  std::string label;
  Json overrides;  // null when absent

  bool operator==(const ModelSpec& other) const {
    return model == other.model && label == other.label &&
           overrides == other.overrides;
  }
};

/// Knobs for the measured serving leg of a scenario: the runner stands up
/// a real serve::Server (epoll loop, localhost TCP) per workload on the
/// functionally-trained model and drives it with the closed-loop harness
/// (serve::run_closed_loop). Every served prediction is gated bit-exact
/// against local Model::predict -- a mismatch fails the whole scenario --
/// so the measured QPS lands in the same table as the analytic
/// inference_cost with its correctness already proven.
struct ServingSpec {
  std::uint32_t connections = 4;
  std::uint32_t requests_per_connection = 200;
  std::uint32_t rows_per_request = 8;
  /// Server-side batching window in microseconds (0 = flush every poll
  /// round).
  std::uint64_t batch_window_us = 200;
  std::uint32_t max_batch_rows = 1024;
  /// Send JSON request bodies instead of CSV.
  bool json_body = false;

  bool operator==(const ServingSpec& other) const = default;
};

/// Knobs for the measured streaming leg: the runner freezes a bin map from
/// a bootstrap chunk of the workload, streams the remaining records in
/// chunks through a stream::Retrainer (bounded window, warm-start refresh
/// on a cadence), and verifies each refreshed generation is bit-identical
/// across a threads x shards grid before reporting staleness/throughput.
/// A divergence or failed refresh fails the whole scenario.
struct StreamingSpec {
  /// Records binned up front to freeze the bin map (also the first window
  /// chunk's size).
  std::uint64_t bootstrap_rows = 4000;
  /// Rows per streamed chunk.
  std::uint64_t chunk_rows = 1000;
  /// Streamed chunks after the bootstrap.
  std::uint32_t chunks = 8;
  /// Sliding-window capacity in chunks.
  std::uint32_t window_chunks = 4;
  /// Retrain + hand off after every this-many chunks.
  std::uint32_t refresh_every_chunks = 2;
  /// Trees added per refresh (warm start) or per generation (cold).
  std::uint32_t refresh_trees = 8;
  /// Continue boosting from the previous generation.
  bool warm_start = true;
  /// Pace ingestion to this many rows/s (0 = as fast as possible); the
  /// kArrivalRate sweep axis overrides it per sweep point.
  double arrival_rows_per_sec = 0.0;
  /// Drift schedule for the synthesized stream: "none" (stationary --
  /// chunks are fresh draws from the workload's distribution) or
  /// "noise-ramp" (label noise ramps up to 2x over the stream, degrading
  /// the label relation the bootstrap model learned -- the drift a refresh
  /// counters).
  std::string drift = "none";

  bool operator==(const StreamingSpec& other) const = default;
};

struct ScenarioSpec {
  std::string name;       // identifier; matches the .json file stem
  std::string title;      // printed experiment header
  std::string paper_ref;  // provenance ("Booster paper, Section V-A, ...")

  /// Workload names resolved against sim::WorkloadRegistry (the Table III
  /// five plus "fraud" are built in; `datasets` adds user-defined specs).
  std::vector<std::string> workloads;
  /// User-defined dataset specs registered before resolution, so a scenario
  /// file can carry its own workload without recompiling anything.
  std::vector<workloads::DatasetSpec> datasets;

  std::vector<ModelSpec> models;

  /// BoosterConfig / DramConfig deltas relative to the defaults (JSON
  /// objects; unknown keys are errors). Null = defaults.
  Json booster;
  Json dram;

  SweepAxis sweep_axis = SweepAxis::kNone;
  std::vector<double> sweep_values;

  // Functional-sample knobs (defaults mirror workloads::RunnerConfig).
  std::uint64_t sim_records = 24000;
  std::uint32_t sim_trees = 48;
  std::uint32_t nominal_trees = 500;
  std::uint32_t max_depth = 6;
  std::uint64_t seed = 42;
  /// Row shards for the *functional* training runs (TrainerConfig
  /// num_shards -> gbdt::ShardedTrainer). Sharded output is bit-identical
  /// to unsharded, so this exercises the sharded engine in the pipeline
  /// without perturbing any downstream number. Distinct from the "shards"
  /// sweep axis, which varies the perf model's scale-out projection.
  std::uint32_t shards = 1;
  /// Ranks for the functional training runs: > 1 trains through
  /// gbdt::DistributedTrainer over `transport` (an in-process world of
  /// `procs` rank threads). Also bit-identical, by the same contract.
  std::uint32_t procs = 1;
  /// Histogram transport for procs > 1: "loopback", "file", "socket", or
  /// "tcp".
  std::string transport = "loopback";
  /// tcp-only: a kill/hang/join churn schedule (ipc::ChurnSchedule
  /// grammar, e.g. "kill:1@2,join:3@4"). Non-empty runs the functional
  /// training through the elastic localhost-TCP world -- still
  /// bit-identical, by the elastic membership contract.
  std::string churn;

  /// Also compute each model's batch-inference cost per cell (Fig 13).
  bool include_inference = false;

  /// Present = also run the measured serving leg (see ServingSpec).
  std::optional<ServingSpec> serving;

  /// Present = also run the measured streaming leg (see StreamingSpec).
  std::optional<StreamingSpec> streaming;

  /// The workload runner config this scenario trains with.
  workloads::RunnerConfig runner_config(bool quick) const;

  /// Builds the spec's DRAM config (defaults + `dram` delta).
  std::optional<memsim::DramConfig> dram_config(std::string* error) const;

  /// Builds the spec's base Booster config (defaults + `booster` delta).
  /// The runner substitutes the calibrated bandwidth profile before
  /// applying the delta, so an explicit "bandwidth" block wins.
  std::optional<core::BoosterConfig> booster_config(
      const core::BoosterConfig& base, std::string* error) const;

  Json to_json() const;
  static std::optional<ScenarioSpec> from_json(const Json& json,
                                               std::string* error);
  /// Convenience: Json::parse_file + from_json.
  static std::optional<ScenarioSpec> from_file(const std::string& path,
                                               std::string* error);

  bool operator==(const ScenarioSpec& other) const;
};

/// Applies a JSON config delta onto a BoosterConfig. Recognized keys match
/// the struct fields (plus a nested "bandwidth" profile block); unknown
/// keys or mistyped values set *error and return false.
bool apply_booster_delta(const Json& delta, core::BoosterConfig* cfg,
                         std::string* error);

/// Same for DramConfig.
bool apply_dram_delta(const Json& delta, memsim::DramConfig* cfg,
                      std::string* error);

/// Same for a BandwidthProfile (rates in bytes/s in the JSON -- no unit
/// conversion, so round-trips are exact; anchors in strides).
bool apply_bandwidth_delta(const Json& delta, memsim::BandwidthProfile* bw,
                           std::string* error);

/// DatasetSpec <-> JSON (used by ScenarioSpec::datasets and the workload
/// registry's user-defined entries).
Json dataset_to_json(const workloads::DatasetSpec& spec);
std::optional<workloads::DatasetSpec> dataset_from_json(const Json& json,
                                                        std::string* error);

}  // namespace booster::sim
