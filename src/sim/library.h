// The builtin scenario library: every paper figure/table experiment (and
// the DSE sweeps) as a ScenarioSpec. The checked-in bench/scenarios/*.json
// files are exactly `booster_scenarios dump <name>` of these specs --
// test_scenario asserts file == dump(builtin) so the two can never drift,
// and scripts/check.sh golden-checks `booster_scenarios --list` against the
// directory listing.
#pragma once

#include <optional>
#include <vector>

#include "sim/scenario.h"

namespace booster::sim {

/// All builtin scenarios, in bench/README.md presentation order.
const std::vector<ScenarioSpec>& builtin_scenarios();

/// Lookup by name; nullopt when unknown.
std::optional<ScenarioSpec> builtin_scenario(const std::string& name);

}  // namespace booster::sim
