// Analytic performance model of the Booster accelerator. For every step
// event it computes memory time (DRAM traffic divided by the calibrated
// sustained bandwidth of the access pattern) and compute time (BU pipeline
// occupancy including bin-mapping serialization), and takes the maximum --
// the paper's rate-matching argument that compute hides under memory when
// the BU count is sized to the memory bandwidth. Step 2 is charged at host
// cost, identically to every other system.
#pragma once

#include <string>

#include "core/bin_mapping.h"
#include "core/booster_config.h"
#include "perf/host.h"
#include "perf/perf_model.h"

namespace booster::core {

class BoosterModel final : public perf::PerfModel {
 public:
  explicit BoosterModel(BoosterConfig cfg = {}, perf::HostParams host = {},
                        std::string name_suffix = "");

  const BoosterConfig& config() const { return cfg_; }

  std::string name() const override;
  perf::StepBreakdown train_cost(const trace::StepTrace& trace,
                                 const trace::WorkloadInfo& info) const override;
  double inference_cost(const perf::InferenceSpec& spec) const override;
  perf::Activity train_activity(const trace::StepTrace& trace,
                                const trace::WorkloadInfo& info) const override;

  /// The bin-to-SRAM mapping the model uses for a workload (exposed for
  /// the Fig 9 ablation and the utilization claims).
  BinMapping mapping_for(const trace::WorkloadInfo& info) const;

 private:
  /// Total DRAM bytes each step moves (format chosen by config flags).
  double event_bytes(const trace::StepEvent& e, double recs,
                     const trace::WorkloadInfo& info, double density) const;

  BoosterConfig cfg_;
  perf::HostParams host_;
  std::string suffix_;
};

}  // namespace booster::core
