// Cycle-coupled simulation of the histogram-binning step (step 1): the
// cycle-level DRAM model and the BU array advance together, cycle by cycle,
// with double-buffered record fetches feeding the BU pipeline. Nothing is
// assumed about which side limits throughput -- rate matching *emerges*
// (or fails to) from the interaction, which is how we validate the
// analytic BoosterModel's max(memory, compute) costing and the paper's
// §III-B sizing argument (3200 BUs saturate ~400 GB/s for 64-field
// records; fewer BUs go compute-bound, more go memory-bound).
#pragma once

#include <cstdint>
#include <span>

#include "core/bin_mapping.h"
#include "core/booster_config.h"
#include "gbdt/binning.h"
#include "memsim/dram_config.h"

namespace booster::core {

struct CycleSimResult {
  std::uint64_t cycles = 0;
  /// DRAM bytes moved (record blocks + gradient-pair stream).
  std::uint64_t dram_bytes = 0;
  /// Achieved DRAM bandwidth over the run (bytes/sec at the memory clock).
  double achieved_bandwidth = 0.0;
  /// Fraction of cycles the BU array was the blocker (fetch buffer full,
  /// records waiting): ~1 means compute-bound, ~0 means memory-bound.
  double compute_bound_fraction = 0.0;
  /// Records processed per accelerator cycle.
  double records_per_cycle = 0.0;
};

/// Simulates step 1 over `rows` of `data`. The accelerator and memory
/// clocks are taken as 1:1 (1 GHz vs 1.05 GHz in the defaults -- within
/// 5%, folded into the result's bandwidth).
class Step1CycleSim {
 public:
  Step1CycleSim(BoosterConfig cfg, memsim::DramConfig dram)
      : cfg_(cfg), dram_(dram) {}

  CycleSimResult run(const gbdt::BinnedDataset& data,
                     std::span<const std::uint32_t> rows) const;

 private:
  BoosterConfig cfg_;
  memsim::DramConfig dram_;
};

}  // namespace booster::core
