// Closed-loop cycle co-simulation of the accelerated training steps: the
// cycle-level DRAM model and the BU array advance together, cycle by cycle,
// with a double-buffered fetch/commit front-end feeding the BU pipeline and
// retrying whenever MemorySystem::enqueue rejects (full channel queue --
// the FR-FCFS back-pressure that makes bandwidth self-limiting). Nothing is
// assumed about which side limits throughput -- rate matching *emerges*
// (or fails to) from the interaction, which is how we validate the
// analytic BoosterModel's max(memory, compute) costing and the paper's
// §III-B sizing argument (3200 BUs saturate ~400 GB/s for 64-field
// records; fewer BUs go compute-bound, more go memory-bound).
//
// Three entry points, lowest level first:
//   * run_streams: explicit address streams vs an engine service rate;
//   * run(StepRequest): synthesizes the fetch/commit streams of one step
//     event class (step 1 histogram, step 3 partition, step 5 traversal)
//     from its logical quantities -- the replay path CycleCalibratedBooster-
//     Model (perf/cycle_calibrated.h) drives per (step, depth, size) class;
//   * run_step1: step 1 over concrete rows of a binned dataset, with the
//     exact block packing of the row list (the RTL-validation path).
//
// The accelerator (BoosterConfig::clock_hz, 1 GHz default) and the memory
// system (DramConfig::clock_hz, 1.05 GHz default) run in their own clock
// domains; the loop ticks at memory granularity and advances the BU side by
// the clock ratio per tick. CycleSimResult reports both domains.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bin_mapping.h"
#include "core/booster_config.h"
#include "core/engines.h"
#include "gbdt/binning.h"
#include "memsim/dram_config.h"
#include "trace/step_trace.h"

namespace booster::core {

struct CycleSimResult {
  /// Elapsed cycles in each clock domain (accel = mem * accel_hz / mem_hz).
  std::uint64_t mem_cycles = 0;
  std::uint64_t accel_cycles = 0;
  double mem_clock_hz = 0.0;
  double accel_clock_hz = 0.0;
  /// Wall time of the run (mem_cycles at the memory clock).
  double seconds = 0.0;
  /// DRAM bytes moved (record blocks + gradient/pointer streams).
  std::uint64_t dram_bytes = 0;
  /// Achieved DRAM bandwidth over the run (bytes/sec at the memory clock).
  double achieved_bandwidth = 0.0;
  /// Fraction of cycles the BU array was the blocker (fetch buffer full,
  /// records waiting): ~1 means compute-bound, ~0 means memory-bound.
  double compute_bound_fraction = 0.0;
  /// Records processed per *accelerator* cycle.
  double records_per_cycle = 0.0;
  /// Closed-loop back-pressure statistics from the memory system.
  std::uint64_t enqueue_rejections = 0;   // front-end retries (queue full)
  double avg_queue_occupancy = 0.0;       // mean queued requests per channel
  double queue_full_fraction = 0.0;       // channel-cycles with a full queue
  double row_hit_rate = 0.0;
};

/// One address stream of a step's fetch/commit front-end: `blocks` touches
/// starting at `base_block`, `stride_blocks` apart (stride > 1 models the
/// sparse gathers of deep tree nodes; `jitter` spreads touches within the
/// stride so they interleave over channels like a real pointer subset).
/// `records_per_block` is how many records each completed block delivers to
/// the BU array (0 for side streams: gradients, pointers, write-backs).
struct StreamSpec {
  std::uint64_t base_block = 0;
  std::uint64_t blocks = 0;
  std::uint64_t stride_blocks = 1;
  bool jitter = false;
  bool is_write = false;
  double records_per_block = 0.0;
};

/// Work of one step event (class) for the generic replay front-end. The
/// logical quantities mirror trace::StepEvent; `density` is the fraction of
/// all records reaching the node (drives block packing and gather strides).
struct StepRequest {
  trace::StepKind kind = trace::StepKind::kHistogram;
  double records = 0.0;
  std::int32_t depth = 0;             // node depth (depth > 0 fetches the
                                      // relevant-record pointer stream)
  std::uint32_t record_bytes = 0;
  std::uint32_t fields_touched = 0;   // step 5: tree's relevant columns
  double avg_path_length = 0.0;       // step 5
  double density = 1.0;
  bool include_fill = true;           // charge the broadcast-pipeline fill
  /// Per-field bin counts (step 1: drives the bin-to-SRAM mapping).
  std::vector<std::uint32_t> bins_per_field;
};

class CycleSim {
 public:
  CycleSim(BoosterConfig cfg, memsim::DramConfig dram)
      : cfg_(cfg), dram_(dram) {}

  const BoosterConfig& config() const { return cfg_; }
  const memsim::DramConfig& dram() const { return dram_; }

  /// Accelerator cycles advanced per memory cycle.
  double clock_ratio() const { return cfg_.clock_hz / dram_.clock_hz; }

  /// Generic replay: synthesizes the step's fetch/commit streams from the
  /// request's logical quantities and co-simulates them against the BU
  /// service rate of the step's engine shim.
  CycleSimResult run(const StepRequest& req) const;

  /// Step 1 over concrete `rows` of `data`: exact block packing from the
  /// row list (a block satisfies several packed requested records), with
  /// the gradient-pair stream fetched alongside.
  CycleSimResult run_step1(const gbdt::BinnedDataset& data,
                           std::span<const std::uint32_t> rows) const;

  /// Lowest level: explicit streams, issued with weighted round-robin
  /// interleave, double-buffered and retrying on enqueue rejection, against
  /// `rate`. `total_records` is what the BU side must consume; the run ends
  /// when all records are served and the memory system has drained.
  CycleSimResult run_streams(std::span<const StreamSpec> streams,
                             const EngineServiceRate& rate,
                             double total_records) const;

 private:
  struct Issue {
    std::uint64_t block = 0;
    float records = 0.0f;
    bool is_write = false;
  };

  /// Merges streams into one issue order (largest-remainder interleave, the
  /// multi-stream fetch engine round-robin) and runs the cycle loop.
  CycleSimResult run_issues(std::span<const Issue> issues,
                            const EngineServiceRate& rate,
                            double total_records) const;

  BoosterConfig cfg_;
  memsim::DramConfig dram_;
};

}  // namespace booster::core
