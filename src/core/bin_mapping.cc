#include "core/bin_mapping.h"

#include <algorithm>

#include "util/check.h"

namespace booster::core {

const char* mapping_name(MappingStrategy s) {
  switch (s) {
    case MappingStrategy::kNaivePack:
      return "naive-pack";
    case MappingStrategy::kGroupByField:
      return "group-by-field";
  }
  return "unknown";
}

double BinMapping::capacity_utilization(
    const std::vector<std::uint32_t>& bins_per_field) const {
  std::uint64_t bins = 0;
  for (const auto b : bins_per_field) bins += b;
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(srams_used()) * sram_bins;
  return capacity == 0 ? 0.0 : static_cast<double>(bins) / capacity;
}

std::uint32_t BinMapping::serialization_factor() const {
  std::uint32_t m = 1;
  for (const auto f : fields_per_sram) m = std::max(m, f);
  return m;
}

BinMapping BinMapping::build(MappingStrategy strategy,
                             const std::vector<std::uint32_t>& bins_per_field,
                             std::uint32_t sram_bins) {
  BOOSTER_CHECK(sram_bins > 0);
  BinMapping m;
  m.strategy = strategy;
  m.sram_bins = sram_bins;
  m.field_first_sram.resize(bins_per_field.size());
  m.field_span.resize(bins_per_field.size());

  if (strategy == MappingStrategy::kGroupByField) {
    std::uint32_t next = 0;
    for (std::size_t f = 0; f < bins_per_field.size(); ++f) {
      const std::uint32_t bins = std::max<std::uint32_t>(1, bins_per_field[f]);
      const std::uint32_t span = (bins + sram_bins - 1) / sram_bins;
      m.field_first_sram[f] = next;
      m.field_span[f] = span;
      for (std::uint32_t s = 0; s < span; ++s) m.fields_per_sram.push_back(1);
      next += span;
    }
    return m;
  }

  // Naive packing: lay bins end-to-end across SRAM boundaries.
  std::uint64_t cursor = 0;  // global bin offset
  for (std::size_t f = 0; f < bins_per_field.size(); ++f) {
    const std::uint64_t bins = std::max<std::uint32_t>(1, bins_per_field[f]);
    const auto first = static_cast<std::uint32_t>(cursor / sram_bins);
    const auto last = static_cast<std::uint32_t>((cursor + bins - 1) / sram_bins);
    m.field_first_sram[f] = first;
    m.field_span[f] = last - first + 1;
    if (m.fields_per_sram.size() <= last) m.fields_per_sram.resize(last + 1, 0);
    for (std::uint32_t s = first; s <= last; ++s) ++m.fields_per_sram[s];
    cursor += bins;
  }
  return m;
}

}  // namespace booster::core
