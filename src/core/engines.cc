#include "core/engines.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace booster::core {

BinnedFieldShape BinnedFieldShape::of(const gbdt::BinnedDataset& data) {
  BinnedFieldShape shape;
  shape.bins_per_field.reserve(data.num_fields());
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    shape.bins_per_field.push_back(data.field_bins(f).num_bins);
  }
  return shape;
}

HistogramEngine::HistogramEngine(const BoosterConfig& cfg,
                                 const BinnedFieldShape& shape,
                                 MappingStrategy strategy)
    : cfg_(cfg),
      mapping_(BinMapping::build(strategy, shape.bins_per_field,
                                 cfg.sram_bins())) {
  // Global feature numbering: fields laid out end-to-end, but aligned to
  // SRAM boundaries under group-by-field so each SRAM serves one field.
  field_base_.resize(shape.bins_per_field.size());
  const std::uint32_t sram_bins = cfg_.sram_bins();
  if (strategy == MappingStrategy::kGroupByField) {
    for (std::size_t f = 0; f < shape.bins_per_field.size(); ++f) {
      field_base_[f] =
          static_cast<std::uint64_t>(mapping_.field_first_sram[f]) * sram_bins;
    }
  } else {
    std::uint64_t cursor = 0;
    for (std::size_t f = 0; f < shape.bins_per_field.size(); ++f) {
      field_base_[f] = cursor;
      cursor += std::max<std::uint32_t>(1, shape.bins_per_field[f]);
    }
  }
  units_.reserve(mapping_.srams_used());
  for (std::uint32_t s = 0; s < mapping_.srams_used(); ++s) {
    units_.emplace_back(sram_bins, static_cast<std::uint64_t>(s) * sram_bins);
  }
}

std::uint64_t HistogramEngine::run(
    const gbdt::BinnedDataset& data, std::span<const std::uint32_t> rows,
    std::span<const gbdt::GradientPair> gradients) {
  BOOSTER_CHECK(field_base_.size() == data.num_fields());
  std::uint64_t cycles = 0;
  // Broadcast-pipeline fill (paper: e.g. 3200/16 = 200 cycles).
  cycles += cfg_.num_bus() / cfg_.bus_link_span;

  std::vector<std::uint32_t> updates_per_sram(units_.size(), 0);
  std::vector<std::uint32_t> touched;
  touched.reserve(data.num_fields());
  for (const std::uint32_t r : rows) {
    touched.clear();
    for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
      const std::uint64_t feature = field_base_[f] + data.bin(f, r);
      const auto sram = static_cast<std::uint32_t>(feature / cfg_.sram_bins());
      BOOSTER_DCHECK(sram < units_.size());
      units_[sram].update(feature, gradients[r].g, gradients[r].h);
      if (updates_per_sram[sram]++ == 0) touched.push_back(sram);
    }
    // Initiation interval: the busiest SRAM serializes its updates; all
    // SRAMs are pipelined across records.
    std::uint32_t busiest = 1;
    for (const std::uint32_t s : touched) {
      busiest = std::max(busiest, updates_per_sram[s]);
      updates_per_sram[s] = 0;
    }
    cycles += static_cast<std::uint64_t>(busiest) * cfg_.cycles_per_field_update;
  }
  return cycles;
}

gbdt::Histogram HistogramEngine::harvest(const gbdt::BinnedDataset& data) const {
  gbdt::Histogram hist(data);
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    auto bins = hist.mutable_field(f);
    for (std::uint32_t b = 0; b < bins.size(); ++b) {
      const std::uint64_t feature = field_base_[f] + b;
      const auto sram = static_cast<std::uint32_t>(feature / cfg_.sram_bins());
      bins[b] = units_[sram].bin(
          static_cast<std::uint32_t>(feature - units_[sram].base_feature()));
    }
  }
  return hist;
}

void HistogramEngine::clear() {
  for (auto& u : units_) u.clear();
}

EngineServiceRate histogram_service_rate(const BoosterConfig& cfg,
                                         const BinMapping& mapping) {
  EngineServiceRate rate;
  rate.fill_cycles = cfg.num_bus() / cfg.bus_link_span;
  const double clusters_per_copy = std::max(
      1.0, std::ceil(static_cast<double>(mapping.slots_per_copy()) /
                     cfg.bus_per_cluster));
  const double copies =
      std::max(1.0, std::floor(cfg.clusters / clusters_per_copy));
  rate.records_per_cycle =
      copies / (mapping.serialization_factor() *
                static_cast<double>(cfg.cycles_per_field_update));
  return rate;
}

EngineServiceRate partition_service_rate(const BoosterConfig& cfg) {
  EngineServiceRate rate;
  rate.fill_cycles = cfg.num_bus() / cfg.bus_link_span;
  rate.records_per_cycle = static_cast<double>(cfg.num_bus());
  return rate;
}

EngineServiceRate traversal_service_rate(const BoosterConfig& cfg,
                                         double avg_path_length) {
  EngineServiceRate rate;
  rate.fill_cycles = cfg.num_bus() / cfg.bus_link_span;
  const double cycles_per_record =
      std::max(1.0, avg_path_length * cfg.cycles_per_hop);
  rate.records_per_cycle = cfg.num_bus() / cycles_per_record;
  return rate;
}

PredicateEngine::Result PredicateEngine::run(
    const gbdt::BinnedDataset& data, const gbdt::Tree& tree, std::int32_t node,
    std::span<const std::uint32_t> rows) const {
  const gbdt::TreeNode& n = tree.node(node);
  BOOSTER_CHECK_MSG(!n.is_leaf, "predicate engine needs an interior node");
  Result result;
  result.pred_true.reserve(rows.size());
  result.pred_false.reserve(rows.size());
  const auto& col = data.column(n.field);
  for (const std::uint32_t r : rows) {
    const bool left = tree.goes_left(node, col[r]);
    (left ? result.pred_true : result.pred_false).push_back(r);
  }
  // All BUs evaluate the replicated predicate in parallel, one record per
  // BU per cycle, plus the broadcast fill.
  result.cycles = cfg_.num_bus() / cfg_.bus_link_span +
                  (rows.size() + cfg_.num_bus() - 1) / cfg_.num_bus();
  return result;
}

TraversalEngine::Result TraversalEngine::run(const gbdt::BinnedDataset& data,
                                             const gbdt::Tree& tree) const {
  Result result;
  const std::uint64_t n = data.num_records();
  result.leaf_weights.resize(n);
  double hops_total = 0.0;
  std::uint64_t work_cycles = 0;
  for (std::uint64_t r = 0; r < n; ++r) {
    std::int32_t id = tree.root();
    std::uint32_t hops = 0;
    while (!tree.node(id).is_leaf) {
      const gbdt::TreeNode& nd = tree.node(id);
      id = tree.goes_left(id, data.bin(nd.field, r)) ? nd.left : nd.right;
      ++hops;
    }
    result.leaf_weights[r] = tree.node(id).weight;
    hops_total += hops;
    work_cycles += static_cast<std::uint64_t>(hops) * cfg_.cycles_per_hop;
  }
  // Records are spread across the BU array (tree table replicated in every
  // SRAM); aggregate work divides by the BU count.
  result.cycles = cfg_.num_bus() / cfg_.bus_link_span +
                  (work_cycles + cfg_.num_bus() - 1) / cfg_.num_bus();
  result.avg_path_length = n == 0 ? 0.0 : hops_total / static_cast<double>(n);
  return result;
}

InferenceEngine::Result InferenceEngine::run(const gbdt::BinnedDataset& data,
                                             const gbdt::Model& model) const {
  Result result;
  const std::uint32_t trees = model.num_trees();
  BOOSTER_CHECK(trees > 0);
  result.replicas = std::max<std::uint32_t>(1, cfg_.inference_bus / trees);
  const std::uint64_t n = data.num_records();
  result.raw_predictions.assign(n, model.base_score());

  // Each replica group processes an interleaved shard of the records. The
  // group's throughput is bounded by its slowest BU (deepest tree path),
  // so cycles accumulate per record as max path over trees.
  std::uint64_t group_cycles = 0;  // per replica group, max over groups
  std::vector<std::uint64_t> shard_cycles(result.replicas, 0);
  for (std::uint64_t r = 0; r < n; ++r) {
    std::uint32_t max_hops = 0;
    double sum = 0.0;
    for (const auto& tree : model.trees()) {
      std::int32_t id = tree.root();
      std::uint32_t hops = 0;
      while (!tree.node(id).is_leaf) {
        const gbdt::TreeNode& nd = tree.node(id);
        id = tree.goes_left(id, data.bin(nd.field, r)) ? nd.left : nd.right;
        ++hops;
      }
      sum += tree.node(id).weight;
      max_hops = std::max(max_hops, hops);
    }
    result.raw_predictions[r] += sum;
    shard_cycles[r % result.replicas] +=
        static_cast<std::uint64_t>(max_hops) * cfg_.cycles_per_hop;
  }
  for (const auto c : shard_cycles) group_cycles = std::max(group_cycles, c);
  result.cycles = cfg_.num_bus() / cfg_.bus_link_span + group_cycles;
  return result;
}

}  // namespace booster::core
