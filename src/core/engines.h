// Functional engines for the three accelerated training steps and batch
// inference. These execute the *actual computation* on the BU array --
// histogram bins land in BU SRAMs, predicates are evaluated per BU, trees
// are walked from SRAM node tables -- and count cycles under the BU pipeline
// model. Tests prove their outputs identical to the software library,
// mirroring the paper's RTL-vs-software validation; the analytic
// BoosterModel uses the same cycle rules to cost full-scale traces.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bin_mapping.h"
#include "core/booster_config.h"
#include "core/booster_unit.h"
#include "gbdt/binning.h"
#include "gbdt/histogram.h"
#include "gbdt/tree.h"

namespace booster::core {

/// Shape descriptor: per-field bin counts of a binned dataset.
struct BinnedFieldShape {
  std::vector<std::uint32_t> bins_per_field;

  static BinnedFieldShape of(const gbdt::BinnedDataset& data);
};

/// Step 1: histogram binning on the BU array.
class HistogramEngine {
 public:
  HistogramEngine(const BoosterConfig& cfg, const BinnedFieldShape& shape,
                  MappingStrategy strategy);

  /// Processes `rows` of `data` (with per-record gradient statistics),
  /// updating BU SRAMs. Returns consumed cycles under the pipeline model:
  /// the busiest SRAM bounds each record's initiation interval.
  std::uint64_t run(const gbdt::BinnedDataset& data,
                    std::span<const std::uint32_t> rows,
                    std::span<const gbdt::GradientPair> gradients);

  /// Extracts the accumulated histogram in the software library's format
  /// (for equivalence checks and host-side split selection).
  gbdt::Histogram harvest(const gbdt::BinnedDataset& data) const;

  const BinMapping& mapping() const { return mapping_; }
  void clear();

 private:
  BoosterConfig cfg_;
  BinMapping mapping_;
  std::vector<BoosterUnit> units_;
  /// Global feature number of the first bin of each field under the
  /// mapping's linear bin layout.
  std::vector<std::uint64_t> field_base_;
};

/// Step 3: single-predicate evaluation. The predicate is replicated at
/// every BU; BUs consume the predicate field's column and emit pointers
/// into the true/false buffers.
class PredicateEngine {
 public:
  explicit PredicateEngine(const BoosterConfig& cfg) : cfg_(cfg) {}

  struct Result {
    std::vector<std::uint32_t> pred_true;
    std::vector<std::uint32_t> pred_false;
    std::uint64_t cycles = 0;
  };

  /// Evaluates the split predicate of `node` (from `tree`) over `rows`.
  Result run(const gbdt::BinnedDataset& data, const gbdt::Tree& tree,
             std::int32_t node, std::span<const std::uint32_t> rows) const;

 private:
  BoosterConfig cfg_;
};

/// Step 5: one-tree traversal. The tree's node table is replicated in every
/// BU's SRAM; each BU walks one record at a time.
class TraversalEngine {
 public:
  explicit TraversalEngine(const BoosterConfig& cfg) : cfg_(cfg) {}

  struct Result {
    std::vector<double> leaf_weights;  // per record
    std::uint64_t cycles = 0;
    double avg_path_length = 0.0;
  };

  Result run(const gbdt::BinnedDataset& data, const gbdt::Tree& tree) const;

 private:
  BoosterConfig cfg_;
};

/// Steady-state drain rate of one accelerated step on the BU array, in the
/// *accelerator* clock domain. These shims are the cycle-level contract
/// between the functional engines above and the closed-loop co-simulation
/// (core/cycle_sim.h): the co-sim couples these rates against the DRAM
/// model cycle by cycle, and each shim matches the corresponding engine's
/// own cycle accounting in steady state.
struct EngineServiceRate {
  /// Records consumed per accelerator cycle once the pipeline is full.
  double records_per_cycle = 0.0;
  /// Broadcast-pipeline fill before the first record (num_bus / link span).
  std::uint64_t fill_cycles = 0;
};

/// Step 1: one histogram copy accepts a record every
/// serialization * cycles_per_field_update cycles; copies are
/// cluster-granular (HistogramEngine's busiest-SRAM rule in steady state).
EngineServiceRate histogram_service_rate(const BoosterConfig& cfg,
                                         const BinMapping& mapping);

/// Step 3: every BU evaluates the replicated predicate on one record per
/// cycle (PredicateEngine's cycle rule).
EngineServiceRate partition_service_rate(const BoosterConfig& cfg);

/// Step 5: each record costs avg_path_length * cycles_per_hop BU-cycles,
/// spread over the array (TraversalEngine's cycle rule).
EngineServiceRate traversal_service_rate(const BoosterConfig& cfg,
                                         double avg_path_length);

/// Batch inference (paper §III-D): the ensemble's trees are loaded one per
/// BU, replicated floor(inference_bus / trees) times; each record is
/// broadcast to all BUs and every tree walks it independently.
class InferenceEngine {
 public:
  explicit InferenceEngine(const BoosterConfig& cfg) : cfg_(cfg) {}

  struct Result {
    std::vector<double> raw_predictions;  // per record (base + tree sums)
    std::uint64_t cycles = 0;
    std::uint32_t replicas = 0;
  };

  Result run(const gbdt::BinnedDataset& data, const gbdt::Model& model) const;

 private:
  BoosterConfig cfg_;
};

}  // namespace booster::core
