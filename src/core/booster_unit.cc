#include "core/booster_unit.h"

#include "util/check.h"

namespace booster::core {

BoosterUnit::BoosterUnit(std::uint32_t capacity, std::uint64_t base_feature)
    : bins_(capacity), base_feature_(base_feature) {
  BOOSTER_CHECK(capacity > 0);
}

void BoosterUnit::update(std::uint64_t global_feature, float g, float h) {
  BOOSTER_DCHECK(holds(global_feature));
  auto& bin = bins_[static_cast<std::uint32_t>(global_feature - base_feature_)];
  bin.add(gbdt::GradientPair{g, h});
  ++updates_;
}

void BoosterUnit::clear() {
  for (auto& b : bins_) b = gbdt::BinStats{};
  updates_ = 0;
}

}  // namespace booster::core
