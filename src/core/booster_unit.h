// Functional model of one Booster Unit (BU): a small SRAM of histogram bins
// plus a floating-point adder (paper §III-B). The functional engines
// (engines.h) drive BUs record-by-record and the tests prove bit-equivalence
// with the software Histogram -- the simulation counterpart of the paper's
// FPGA validation of the RTL.
#pragma once

#include <cstdint>
#include <vector>

#include "gbdt/histogram.h"

namespace booster::core {

class BoosterUnit {
 public:
  /// A BU holding `capacity` bin entries, serving global feature numbers
  /// [base_feature, base_feature + capacity).
  BoosterUnit(std::uint32_t capacity, std::uint64_t base_feature);

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(bins_.size());
  }
  std::uint64_t base_feature() const { return base_feature_; }

  /// True if this BU's SRAM holds the given global feature number. Each BU
  /// subtracts its base from the record's feature number; out-of-range
  /// results fall outside the SRAM (how the paper handles fields spread
  /// over SRAM groups, §III-C).
  bool holds(std::uint64_t global_feature) const {
    return global_feature >= base_feature_ &&
           global_feature < base_feature_ + bins_.size();
  }

  /// One histogram update: increment count, accumulate g and h. Costs one
  /// BU pipeline slot (8 cycles in the performance model).
  void update(std::uint64_t global_feature, float g, float h);

  const gbdt::BinStats& bin(std::uint32_t local) const { return bins_[local]; }

  std::uint64_t updates() const { return updates_; }

  void clear();

 private:
  std::vector<gbdt::BinStats> bins_;
  std::uint64_t base_feature_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace booster::core
