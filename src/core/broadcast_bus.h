// Pipelined broadcast bus (paper §III-B): the logical broadcast of records,
// gradient pairs, predicates, and tree tables to the BUs is implemented as
// a pipeline of point-to-point links, each feeding a group of BUs (16 by
// default). This model captures fill/drain latency and per-cycle payload
// limits; the engines and the analytic model charge its cycles.
#pragma once

#include <cstdint>

namespace booster::core {

struct BroadcastBusConfig {
  std::uint32_t num_bus = 3200;
  std::uint32_t bus_per_link = 16;   // BUs fed by one pipeline stage
  std::uint32_t payload_bytes_per_cycle = 64;  // one memory block per cycle
};

class BroadcastBus {
 public:
  explicit BroadcastBus(BroadcastBusConfig cfg = {}) : cfg_(cfg) {}

  const BroadcastBusConfig& config() const { return cfg_; }

  /// Pipeline depth in stages = cycles to fill (or drain) the bus.
  std::uint32_t pipeline_depth() const {
    return (cfg_.num_bus + cfg_.bus_per_link - 1) / cfg_.bus_per_link;
  }

  /// Cycles to broadcast one item of `bytes` to every BU once the pipeline
  /// is full: limited by the per-cycle payload.
  std::uint64_t cycles_per_item(std::uint64_t bytes) const {
    return (bytes + cfg_.payload_bytes_per_cycle - 1) /
           cfg_.payload_bytes_per_cycle;
  }

  /// Total cycles to stream `items` of `bytes` each through the broadcast
  /// pipeline, including one fill and one drain. For millions of records
  /// the fill/drain overhead vanishes (the paper's 3200/16 = 200-cycle
  /// example).
  std::uint64_t stream_cycles(std::uint64_t items, std::uint64_t bytes) const {
    if (items == 0) return 0;
    return pipeline_depth() + items * cycles_per_item(bytes);
  }

  /// Fraction of stream time lost to fill/drain; used in tests to check the
  /// paper's "negligible overhead" claim quantitatively.
  double fill_overhead_fraction(std::uint64_t items, std::uint64_t bytes) const {
    const auto total = stream_cycles(items, bytes);
    return total == 0 ? 0.0
                      : static_cast<double>(pipeline_depth()) /
                            static_cast<double>(total);
  }

 private:
  BroadcastBusConfig cfg_;
};

}  // namespace booster::core
