#include "core/booster_model.h"

#include <algorithm>
#include <cmath>

#include "perf/traffic.h"
#include "util/check.h"

namespace booster::core {

using trace::StepEvent;
using trace::StepKind;

BoosterModel::BoosterModel(BoosterConfig cfg, perf::HostParams host,
                           std::string name_suffix)
    : cfg_(cfg), host_(host), suffix_(std::move(name_suffix)) {}

std::string BoosterModel::name() const { return "Booster" + suffix_; }

BinMapping BoosterModel::mapping_for(const trace::WorkloadInfo& info) const {
  const auto strategy = cfg_.group_by_field_mapping
                            ? MappingStrategy::kGroupByField
                            : MappingStrategy::kNaivePack;
  return BinMapping::build(strategy, info.bins_per_field, cfg_.sram_bins());
}

double BoosterModel::event_bytes(const StepEvent& e, double recs,
                                 const trace::WorkloadInfo& info,
                                 double density) const {
  switch (e.kind) {
    case StepKind::kHistogram:
      return perf::histogram_bytes(e, recs, info.record_bytes, density);
    case StepKind::kPartition:
      return cfg_.redundant_column_format
                 ? perf::partition_bytes_column(recs, density)
                 : perf::partition_bytes_row(recs, info.record_bytes,
                                             e.depth == 0);
    case StepKind::kTraversal:
      return cfg_.redundant_column_format
                 ? perf::traversal_bytes_column(e, recs)
                 : perf::traversal_bytes_row(recs, info.record_bytes);
    case StepKind::kSplitSelect:
      return 0.0;  // host-side, on-chip histograms
  }
  return 0.0;
}

perf::StepBreakdown BoosterModel::train_cost(
    const trace::StepTrace& trace, const trace::WorkloadInfo& info) const {
  const BinMapping mapping = mapping_for(info);
  const double serialization = mapping.serialization_factor();
  const double slots = mapping.slots_per_copy();
  const double num_bus = cfg_.num_bus();
  const double fill_cycles = num_bus / cfg_.bus_link_span;
  const double nominal = static_cast<double>(info.nominal_records);

  // Histogram replication is cluster-granular: records are partitioned
  // among clusters, each holding one histogram copy (spanning multiple
  // clusters when the mapping needs more SRAMs than one cluster has), with
  // the copies reduced on the host at step end. A copy accepts one record
  // per (serialization x update-pipeline) cycles.
  const double clusters_per_copy =
      std::max(1.0, std::ceil(slots / cfg_.bus_per_cluster));
  const double copies =
      std::max(1.0, std::floor(cfg_.clusters / clusters_per_copy));
  const double hist_cycles_per_record =
      serialization * cfg_.cycles_per_field_update / copies;

  // Microarchitecture extension 1 (paper SS III-C): when a record has more
  // field slots than the whole BU array, step 1 processes the records in
  // field partitions -- all records for one partition of fields before the
  // next -- refetching the gradient pair stream once per extra partition.
  const double field_partitions = std::max(1.0, std::ceil(slots / num_bus));

  const double block = perf::kBlockBytes;
  const double slot_bytes = perf::slot_bytes_per_record(info.record_bytes);

  // Scale-out projection (config training_shards): every shard is a full
  // Booster node holding 1/S of the records, so per-record memory and
  // compute divide by S, while each step-1 event pays a histogram-merge
  // pass -- the S-1 remote shard histograms stream in and fold into the
  // merged copy (read + write-back), charged at the sequential-stream
  // effective bandwidth. This is the cost shape of the functional
  // gbdt::ShardedTrainer's fixed-order Histogram::add merge.
  const double shards = std::max<std::uint32_t>(1, cfg_.training_shards);
  const double merge_bytes_per_hist =
      shards > 1.0 ? 2.0 * (shards - 1.0) *
                         static_cast<double>(info.total_bins) *
                         cfg_.bin_entry_bytes
                   : 0.0;
  const double merge_s_per_hist =
      merge_bytes_per_hist / perf::effective_bandwidth(cfg_.bandwidth, 1.0);

  perf::StepBreakdown out;
  for (const auto& e : trace.events()) {
    if (e.kind == StepKind::kSplitSelect) continue;
    const double event_recs = trace.scaled_records(e);
    // Density of the gather is a property of the node, not the shard: a
    // shard's slice of a node covers the same fraction of its slice of the
    // layout span.
    const double density =
        nominal > 0.0 ? std::clamp(event_recs / nominal, 1e-12, 1.0) : 1.0;
    const double recs = event_recs / shards;  // per-shard share

    // Memory time, per stream component: the primary fetch (records or the
    // predicate column) pays the density-aware effective bandwidth of its
    // gather -- row hits decay gradually as the touched-block fraction
    // falls, the rule the closed-loop co-sim validates -- while the side
    // streams (gradients, pointers, write-backs) always stream.
    double mem_s = 0.0;
    switch (e.kind) {
      case StepKind::kHistogram: {
        const double rec_b =
            recs *
            perf::row_bytes_per_record_at_density(info.record_bytes, density);
        const double span_b = std::max(rec_b, recs / density * slot_bytes);
        double side_b = recs * perf::kGradientBytes * field_partitions;
        if (e.depth > 0) side_b += recs * perf::kPointerBytes;
        mem_s = rec_b / perf::effective_bandwidth(cfg_.bandwidth,
                                                  rec_b / span_b) +
                side_b / cfg_.bandwidth.streaming;
        break;
      }
      case StepKind::kPartition: {
        double primary_b = 0.0;
        double touched = 1.0;
        if (cfg_.redundant_column_format) {
          primary_b =
              perf::expected_touched_blocks(recs, density, block) * block;
          touched = primary_b / (recs / density);  // 1-byte column elements
        } else {
          primary_b = recs * perf::row_bytes_per_record(info.record_bytes,
                                                        e.depth == 0);
          touched = primary_b / (recs / density * slot_bytes);
        }
        mem_s = primary_b /
                    perf::effective_bandwidth(cfg_.bandwidth, touched) +
                2.0 * recs * perf::kPointerBytes / cfg_.bandwidth.streaming;
        break;
      }
      case StepKind::kTraversal:
        // All records traverse the new tree: dense streaming either format.
        mem_s = event_bytes(e, recs, info, density) / cfg_.bandwidth.streaming;
        break;
      case StepKind::kSplitSelect:
        break;
    }

    // Compute time under the BU pipeline model.
    double compute_cycles = fill_cycles;
    switch (e.kind) {
      case StepKind::kHistogram:
        compute_cycles += recs * hist_cycles_per_record;
        break;
      case StepKind::kPartition:
        compute_cycles += recs / num_bus;  // one predicate eval per BU-cycle
        break;
      case StepKind::kTraversal:
        compute_cycles += recs * e.avg_path_length * cfg_.cycles_per_hop /
                          num_bus;
        break;
      case StepKind::kSplitSelect:
        break;
    }
    const double compute_s = compute_cycles / cfg_.clock_hz;
    double step_s = std::max(mem_s, compute_s);
    if (e.kind == StepKind::kHistogram) {
      // One S-way merge per node histogram; level-by-level traces
      // aggregate a whole level's nodes into one event (e.histograms).
      step_s += merge_s_per_hist * e.histograms;
    }
    out[e.kind] += step_s;
  }
  for (auto& s : out.seconds) s *= trace.repeat();
  out[StepKind::kSplitSelect] = perf::host_split_seconds(trace, host_);
  return out;
}

double BoosterModel::inference_cost(const perf::InferenceSpec& spec) const {
  BOOSTER_CHECK(spec.trees > 0 && spec.chips > 0);
  // Multi-chip distribution (paper SS III-D): trees are dealt round-robin
  // over the chips; each chip hosts replicas of its own subset and all
  // chips stream the batch in parallel, so per-chip tree count drives the
  // replica math.
  const std::uint32_t trees_per_chip =
      (spec.trees + spec.chips - 1) / spec.chips;
  const double replicas =
      std::max<std::uint32_t>(1, cfg_.inference_bus / trees_per_chip);
  // Throughput is bounded by the deepest tree: a replica group finishes a
  // record when its slowest BU does (paper §V-H: Booster's performance
  // depends on the max depth across trees, usually 6).
  const double compute_s = spec.records * spec.max_depth *
                           cfg_.cycles_per_hop / replicas / cfg_.clock_hz;
  // Each record is broadcast once from memory (full record: inference
  // predicates span many fields).
  const double mem_s =
      spec.records *
      perf::row_bytes_per_record(spec.record_bytes, /*dense=*/true) /
      cfg_.bandwidth.streaming;
  return std::max(compute_s, mem_s);
}

perf::Activity BoosterModel::train_activity(
    const trace::StepTrace& trace, const trace::WorkloadInfo& info) const {
  perf::Activity act;
  act.sram_energy_per_access_norm = 0.71;  // 2 KB SRAM (paper Table V)
  const double nominal = static_cast<double>(info.nominal_records);
  // Shard-merge traffic mirrors train_cost: read + write-back of the S-1
  // remote shard histograms per step-1 event.
  const double shards = std::max<std::uint32_t>(1, cfg_.training_shards);
  const double merge_bytes_per_hist =
      shards > 1.0 ? 2.0 * (shards - 1.0) *
                         static_cast<double>(info.total_bins) *
                         cfg_.bin_entry_bytes
                   : 0.0;
  for (const auto& e : trace.events()) {
    const double recs = trace.scaled_records(e) * trace.repeat();
    const double density =
        nominal > 0.0 ? trace.scaled_records(e) / nominal : 1.0;
    switch (e.kind) {
      case StepKind::kHistogram:
        // Read-modify-write per field update.
        act.sram_accesses += recs * e.record_fields * 2.0;
        break;
      case StepKind::kPartition:
        act.sram_accesses += recs;  // predicate table lookup
        break;
      case StepKind::kTraversal:
        act.sram_accesses += recs * e.avg_path_length;
        break;
      case StepKind::kSplitSelect:
        act.sram_accesses += static_cast<double>(e.bins_scanned) *
                             trace.repeat();
        break;
    }
    act.dram_bytes +=
        event_bytes(e, trace.scaled_records(e), info, density) *
        trace.repeat();
    if (e.kind == StepKind::kHistogram) {
      act.dram_bytes += merge_bytes_per_hist * e.histograms * trace.repeat();
    }
  }
  return act;
}

}  // namespace booster::core
