#include "core/cycle_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/engines.h"
#include "memsim/memory_system.h"
#include "util/check.h"

namespace booster::core {

CycleSimResult Step1CycleSim::run(const gbdt::BinnedDataset& data,
                                  std::span<const std::uint32_t> rows) const {
  CycleSimResult result;
  if (rows.empty()) return result;

  // --- Address generation: records live row-major and packed; the fetch
  // unit requests each distinct block once, in pointer order. A block may
  // satisfy several (packed) requested records.
  const std::uint32_t record_bytes =
      std::max<std::uint32_t>(1, data.layout().record_bytes);
  const std::uint64_t block_bytes = dram_.block_bytes;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> block_fetches;
  block_fetches.reserve(rows.size());
  for (const std::uint32_t r : rows) {
    const std::uint64_t first_block =
        static_cast<std::uint64_t>(r) * record_bytes / block_bytes;
    const std::uint64_t last_block =
        (static_cast<std::uint64_t>(r) * record_bytes + record_bytes - 1) /
        block_bytes;
    for (std::uint64_t b = first_block; b <= last_block; ++b) {
      if (!block_fetches.empty() && block_fetches.back().first == b) {
        // Packed neighbour: the pending block also carries this record.
        ++block_fetches.back().second;
      } else {
        block_fetches.push_back({b, b == last_block ? 1u : 0u});
      }
    }
  }
  // Gradient-pair stream: 8 bytes per record, fetched alongside from a
  // disjoint region (sequential blocks).
  const std::uint64_t gh_blocks =
      (rows.size() * 8 + block_bytes - 1) / block_bytes;

  // --- BU array service rate (records/cycle) under the configured mapping.
  const BinMapping mapping = BinMapping::build(
      cfg_.group_by_field_mapping ? MappingStrategy::kGroupByField
                                  : MappingStrategy::kNaivePack,
      BinnedFieldShape::of(data).bins_per_field, cfg_.sram_bins());
  const double clusters_per_copy = std::max(
      1.0, std::ceil(static_cast<double>(mapping.slots_per_copy()) /
                     cfg_.bus_per_cluster));
  const double copies =
      std::max(1.0, std::floor(cfg_.clusters / clusters_per_copy));
  const double records_per_cycle =
      copies / (mapping.serialization_factor() *
                static_cast<double>(cfg_.cycles_per_field_update));

  // --- Cycle loop: memory completes blocks into the double buffer; the BU
  // array drains records from it at its pipelined rate.
  memsim::MemorySystem mem(dram_);
  const std::uint64_t gh_region = 1ULL << 30;  // disjoint address space
  std::size_t next_fetch = 0;   // index into block_fetches
  std::uint64_t next_gh = 0;    // gh blocks issued
  std::deque<std::uint32_t> arrivals;  // records-per-completed-block, FIFO
  // Double buffering bounds outstanding fetch data (two burst windows).
  const std::size_t buffer_blocks = 2ULL * dram_.channels * 4;

  std::uint64_t records_served = 0;
  std::uint64_t buffered_records = 0;
  double service_tokens = 0.0;
  std::uint64_t compute_blocked_cycles = 0;
  std::uint64_t outstanding = 0;
  std::size_t completions_seen = 0;

  // Completion order within the memory system is per-channel FIFO but
  // interleaved across channels; we approximate arrival accounting by
  // matching completions to issue order (records arrive with their block's
  // position in the stream -- adequate for throughput, which is what this
  // simulation measures).
  std::deque<std::uint32_t> issue_order_records;

  const std::uint64_t total_records = rows.size();
  while (records_served < total_records) {
    // Issue fetches while the double buffer has room.
    while (outstanding < buffer_blocks) {
      if (next_fetch < block_fetches.size()) {
        if (!mem.enqueue(block_fetches[next_fetch].first, false)) break;
        issue_order_records.push_back(block_fetches[next_fetch].second);
        ++next_fetch;
        ++outstanding;
      } else if (next_gh < gh_blocks) {
        if (!mem.enqueue(gh_region + next_gh, false)) break;
        issue_order_records.push_back(0);  // gh blocks carry no records
        ++next_gh;
        ++outstanding;
      } else {
        break;
      }
    }

    mem.tick();

    // Drain completions (FIFO by issue order approximation).
    const std::uint64_t completed = mem.completed_requests();
    while (completions_seen < completed) {
      BOOSTER_DCHECK(!issue_order_records.empty());
      buffered_records += issue_order_records.front();
      issue_order_records.pop_front();
      ++completions_seen;
      --outstanding;
    }

    // BU array consumes buffered records at its pipelined rate.
    service_tokens += records_per_cycle;
    const auto can_serve = static_cast<std::uint64_t>(service_tokens);
    if (can_serve > 0) {
      const std::uint64_t served = std::min<std::uint64_t>(can_serve, buffered_records);
      buffered_records -= served;
      records_served += served;
      service_tokens -= static_cast<double>(served);
      // If records were waiting and the array could not take them all,
      // compute was the blocker this cycle.
      if (buffered_records > 0) ++compute_blocked_cycles;
    } else if (buffered_records > 0) {
      ++compute_blocked_cycles;
    }
    // Bound token accumulation during stalls, but never below one whole
    // record or slow configurations could never serve anything.
    service_tokens =
        std::min(service_tokens, std::max(2.0, records_per_cycle * 4.0));

    BOOSTER_CHECK_MSG(mem.now() < (1ULL << 34), "cycle sim did not converge");
  }

  result.cycles = mem.now();
  result.dram_bytes = mem.bytes_transferred();
  result.achieved_bandwidth = mem.achieved_bandwidth();
  result.compute_bound_fraction =
      static_cast<double>(compute_blocked_cycles) /
      static_cast<double>(result.cycles);
  result.records_per_cycle = static_cast<double>(total_records) /
                             static_cast<double>(result.cycles);
  return result;
}

}  // namespace booster::core
