#include "core/cycle_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "memsim/memory_system.h"
#include "perf/traffic.h"
#include "util/check.h"
#include "util/rng.h"

namespace booster::core {

namespace {

/// Disjoint address region per stream (block units), far larger than any
/// replayed working set so streams never alias.
constexpr std::uint64_t kStreamRegionBlocks = 1ULL << 30;

/// Records below this are considered fully served (doubles accumulate
/// fractional records across blocks).
constexpr double kRecordEps = 1e-6;

}  // namespace

CycleSimResult CycleSim::run_issues(std::span<const Issue> issues,
                                    const EngineServiceRate& rate,
                                    double total_records) const {
  CycleSimResult result;
  result.mem_clock_hz = dram_.clock_hz;
  result.accel_clock_hz = cfg_.clock_hz;
  if (issues.empty()) return result;

  // Records actually carried by the issue list (equals total_records up to
  // per-block rounding); serving targets this so the loop always terminates.
  double carried = 0.0;
  for (const Issue& is : issues) carried += is.records;

  memsim::MemorySystem mem(dram_);
  const double ratio = clock_ratio();
  // Fetch window: in-flight requests plus completed-but-unconsumed blocks
  // held in the on-chip double buffer. Two full channel-queue drain windows
  // per channel, so a memory-bound front-end genuinely overfills the
  // FR-FCFS queues (exercising enqueue rejection and retry), while a
  // compute-bound run fills the buffer with unconsumed records and
  // throttles issue long before the queues see pressure.
  const std::size_t window_blocks =
      2ULL * dram_.channels * std::max<std::uint32_t>(1, dram_.queue_depth);

  std::size_t next_issue = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t buffered_blocks = 0;
  std::size_t completions_seen = 0;
  // Completion order within the memory system is per-channel FIFO but
  // interleaved across channels; we approximate arrival accounting by
  // matching completions to issue order (records arrive with their block's
  // position in the stream -- adequate for throughput, which is what this
  // simulation measures).
  std::deque<float> issue_order_records;
  // Completed record-carrying blocks whose records are still buffered; the
  // head drains as the BU array serves, freeing double-buffer space.
  std::deque<float> ready_records;

  double buffered_records = 0.0;
  double records_served = 0.0;
  // Broadcast-pipeline fill: the array serves nothing until the pipeline is
  // full, modeled as an initial service-token debt.
  double service_tokens =
      -static_cast<double>(rate.fill_cycles) * rate.records_per_cycle;
  std::uint64_t compute_blocked_cycles = 0;

  while (records_served < carried - kRecordEps || next_issue < issues.size() ||
         !mem.idle()) {
    // Issue fetches while the double buffer has room; a rejected enqueue
    // (full channel queue) leaves the cursor in place -- the front-end
    // retries the same block next cycle. This is the back-pressure loop.
    while (next_issue < issues.size() &&
           in_flight + buffered_blocks < window_blocks) {
      const Issue& is = issues[next_issue];
      if (!mem.enqueue(is.block, is.is_write)) break;
      issue_order_records.push_back(is.records);
      ++next_issue;
      ++in_flight;
    }

    mem.tick();

    // Drain completions (FIFO by issue order approximation). Blocks whose
    // records are not yet consumed occupy double-buffer space.
    const std::uint64_t completed = mem.completed_requests();
    while (completions_seen < completed) {
      BOOSTER_DCHECK(!issue_order_records.empty());
      const float recs = issue_order_records.front();
      issue_order_records.pop_front();
      if (recs > 0.0f) {
        buffered_records += recs;
        ready_records.push_back(recs);
        ++buffered_blocks;
      }
      ++completions_seen;
      --in_flight;
    }

    // BU array consumes buffered records at its pipelined rate, advanced by
    // the accelerator/memory clock ratio per memory tick.
    service_tokens += rate.records_per_cycle * ratio;
    if (service_tokens > 0.0 && buffered_records > 0.0) {
      const double served = std::min(service_tokens, buffered_records);
      buffered_records -= served;
      records_served += served;
      service_tokens -= served;
      // Free double-buffer blocks whose records are fully consumed.
      double remaining = served;
      while (remaining > 0.0 && !ready_records.empty()) {
        if (ready_records.front() <= remaining + 1e-9f) {
          remaining -= ready_records.front();
          ready_records.pop_front();
          --buffered_blocks;
        } else {
          ready_records.front() -= static_cast<float>(remaining);
          remaining = 0.0;
        }
      }
    }
    // If records are still waiting after serving, compute was the blocker
    // this cycle.
    if (buffered_records > kRecordEps) ++compute_blocked_cycles;
    // Bound token accumulation during stalls, but never below one whole
    // record or slow configurations could never serve anything.
    service_tokens = std::min(
        service_tokens, std::max(2.0, rate.records_per_cycle * ratio * 4.0));

    BOOSTER_CHECK_MSG(mem.now() < (1ULL << 34), "cycle sim did not converge");
  }

  result.mem_cycles = mem.now();
  result.accel_cycles =
      static_cast<std::uint64_t>(std::llround(ratio * mem.now()));
  result.seconds = static_cast<double>(mem.now()) / dram_.clock_hz;
  result.dram_bytes = mem.bytes_transferred();
  result.achieved_bandwidth = mem.achieved_bandwidth();
  result.compute_bound_fraction =
      static_cast<double>(compute_blocked_cycles) /
      static_cast<double>(std::max<std::uint64_t>(1, result.mem_cycles));
  result.records_per_cycle =
      total_records /
      static_cast<double>(std::max<std::uint64_t>(1, result.accel_cycles));
  result.enqueue_rejections = mem.enqueue_rejections();
  result.avg_queue_occupancy = mem.avg_queue_occupancy();
  result.queue_full_fraction =
      static_cast<double>(mem.queue_full_channel_cycles()) /
      (static_cast<double>(std::max<std::uint64_t>(1, result.mem_cycles)) *
       dram_.channels);
  result.row_hit_rate = mem.row_hit_rate();
  return result;
}

CycleSimResult CycleSim::run_streams(std::span<const StreamSpec> streams,
                                     const EngineServiceRate& rate,
                                     double total_records) const {
  // Merge the streams into one issue order with a largest-remainder
  // interleave: the fetch engines round-robin proportionally to stream
  // size, so side streams (gradients, pointers) arrive alongside the
  // records they belong to rather than trailing at the end.
  std::uint64_t total_blocks = 0;
  for (const StreamSpec& s : streams) total_blocks += s.blocks;
  CycleSimResult empty;
  empty.mem_clock_hz = dram_.clock_hz;
  empty.accel_clock_hz = cfg_.clock_hz;
  if (total_blocks == 0) return empty;

  util::Rng rng(0xC0517ULL);  // deterministic gather jitter
  std::vector<Issue> issues;
  issues.reserve(total_blocks);
  std::vector<std::uint64_t> cursor(streams.size(), 0);
  std::vector<double> error(streams.size(), 0.0);
  std::vector<double> weight(streams.size(), 0.0);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    weight[i] =
        static_cast<double>(streams[i].blocks) / static_cast<double>(total_blocks);
  }
  for (std::uint64_t n = 0; n < total_blocks; ++n) {
    std::size_t pick = streams.size();
    double best = -1.0;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (cursor[i] >= streams[i].blocks) continue;
      error[i] += weight[i];
      if (error[i] > best) {
        best = error[i];
        pick = i;
      }
    }
    BOOSTER_DCHECK(pick < streams.size());
    const StreamSpec& s = streams[pick];
    error[pick] -= 1.0;
    std::uint64_t addr = s.base_block + cursor[pick] * s.stride_blocks;
    if (s.jitter && s.stride_blocks > 1) {
      addr += rng.next_below(s.stride_blocks);
    }
    issues.push_back(Issue{addr, static_cast<float>(s.records_per_block),
                           s.is_write});
    ++cursor[pick];
  }
  return run_issues(issues, rate, total_records);
}

CycleSimResult CycleSim::run(const StepRequest& req) const {
  using trace::StepKind;
  CycleSimResult empty;
  empty.mem_clock_hz = dram_.clock_hz;
  empty.accel_clock_hz = cfg_.clock_hz;
  if (req.records <= 0.0 || req.kind == StepKind::kSplitSelect) return empty;

  const double recs = req.records;
  const double density = std::clamp(req.density, 1e-9, 1.0);
  const bool dense = density >= 1.0 - 1e-9;
  const double bb = dram_.block_bytes;
  const std::uint32_t record_bytes = std::max<std::uint32_t>(1, req.record_bytes);

  std::vector<StreamSpec> streams;
  std::uint64_t next_region = 0;
  auto region = [&] { return (next_region++) * kStreamRegionBlocks; };
  auto blocks_of = [&](double bytes) {
    return static_cast<std::uint64_t>(
        std::max(1.0, std::ceil(bytes / bb)));
  };
  auto add_sequential = [&](double bytes, bool is_write, double carried) {
    if (bytes <= 0.0) return;
    const std::uint64_t blocks = blocks_of(bytes);
    streams.push_back(StreamSpec{region(), blocks, 1, false, is_write,
                                 carried / static_cast<double>(blocks)});
  };
  // A gather touching `blocks` of a `span_blocks`-wide region: stride is
  // the mean gap; jitter spreads touches over channels the way a real
  // subset of record pointers does.
  auto add_gather = [&](double blocks_d, double span_blocks, double carried) {
    const auto blocks = static_cast<std::uint64_t>(std::max(1.0, std::ceil(blocks_d)));
    const auto stride = static_cast<std::uint64_t>(std::max(
        1.0, std::floor(span_blocks / static_cast<double>(blocks))));
    streams.push_back(StreamSpec{region(), blocks, stride, stride > 1, false,
                                 carried / static_cast<double>(blocks)});
  };

  const double slot_bytes = perf::slot_bytes_per_record(record_bytes);

  EngineServiceRate rate;
  switch (req.kind) {
    case StepKind::kHistogram: {
      std::vector<std::uint32_t> bins = req.bins_per_field;
      if (bins.empty()) bins.assign(1, cfg_.sram_bins());
      const BinMapping mapping = BinMapping::build(
          cfg_.group_by_field_mapping ? MappingStrategy::kGroupByField
                                      : MappingStrategy::kNaivePack,
          bins, cfg_.sram_bins());
      rate = histogram_service_rate(cfg_, mapping);
      // Record fetch: density-aware pair packing; sparse nodes gather from
      // the full record region (records are never physically compacted).
      const double rec_bytes =
          recs * perf::row_bytes_per_record_at_density(record_bytes, density);
      const double span_blocks =
          std::max(rec_bytes / bb, recs / density * slot_bytes / bb);
      add_gather(std::ceil(rec_bytes / bb), span_blocks, recs);
      // Gradient-pair stream, refetched once per extra field partition
      // (paper §III-C extension 1).
      const double field_partitions = std::max(
          1.0, std::ceil(static_cast<double>(mapping.slots_per_copy()) /
                         cfg_.num_bus()));
      add_sequential(recs * perf::kGradientBytes * field_partitions,
                     /*is_write=*/false, 0.0);
      // Relevant-record pointer stream at non-root nodes (the same
      // depth-based rule the analytic model charges).
      if (req.depth > 0) add_sequential(recs * perf::kPointerBytes, false, 0.0);
      break;
    }
    case StepKind::kPartition: {
      rate = partition_service_rate(cfg_);
      if (cfg_.redundant_column_format) {
        // Gather of the predicate field's 1-byte column.
        const double column_blocks =
            perf::expected_touched_blocks(recs, density, bb);
        add_gather(column_blocks, recs / density / bb, recs);
      } else {
        const double rec_bytes =
            recs * perf::row_bytes_per_record(record_bytes, dense);
        add_gather(std::ceil(rec_bytes / bb),
                   std::max(rec_bytes / bb, recs / density * slot_bytes / bb),
                   recs);
      }
      add_sequential(recs * perf::kPointerBytes, /*is_write=*/false, 0.0);
      add_sequential(recs * perf::kPointerBytes, /*is_write=*/true, 0.0);
      break;
    }
    case StepKind::kTraversal: {
      rate = traversal_service_rate(cfg_, req.avg_path_length);
      if (cfg_.redundant_column_format) {
        // All records traverse the new tree: the relevant field columns
        // stream densely.
        add_sequential(recs * std::max<std::uint32_t>(1, req.fields_touched),
                       false, recs);
      } else {
        add_sequential(recs * perf::row_bytes_per_record(record_bytes, true),
                       false, recs);
      }
      add_sequential(recs * perf::kGradientBytes, /*is_write=*/false, 0.0);
      add_sequential(recs * perf::kGradientBytes, /*is_write=*/true, 0.0);
      break;
    }
    case StepKind::kSplitSelect:
      return empty;  // host-side; never co-simulated
  }
  if (!req.include_fill) rate.fill_cycles = 0;
  return run_streams(streams, rate, recs);
}

CycleSimResult CycleSim::run_step1(const gbdt::BinnedDataset& data,
                                   std::span<const std::uint32_t> rows) const {
  CycleSimResult empty;
  empty.mem_clock_hz = dram_.clock_hz;
  empty.accel_clock_hz = cfg_.clock_hz;
  if (rows.empty()) return empty;

  // --- Address generation: records live row-major and packed; the fetch
  // unit requests each distinct block once, in pointer order. A block may
  // satisfy several (packed) requested records.
  const std::uint32_t record_bytes =
      std::max<std::uint32_t>(1, data.layout().record_bytes);
  const std::uint64_t block_bytes = dram_.block_bytes;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> block_fetches;
  block_fetches.reserve(rows.size());
  for (const std::uint32_t r : rows) {
    const std::uint64_t first_block =
        static_cast<std::uint64_t>(r) * record_bytes / block_bytes;
    const std::uint64_t last_block =
        (static_cast<std::uint64_t>(r) * record_bytes + record_bytes - 1) /
        block_bytes;
    for (std::uint64_t b = first_block; b <= last_block; ++b) {
      if (block_fetches.empty() || block_fetches.back().first != b) {
        block_fetches.push_back({b, 0u});
      }
      // Each record becomes serviceable when its *last* block arrives (a
      // packed block may complete several records at once, a spanning
      // record only counts once).
      if (b == last_block) ++block_fetches.back().second;
    }
  }
  // Gradient-pair stream: 8 bytes per record, fetched alongside from a
  // disjoint region (sequential blocks), interleaved proportionally with
  // the record fetches.
  const std::uint64_t gh_blocks =
      (rows.size() * 8 + block_bytes - 1) / block_bytes;

  std::vector<Issue> issues;
  issues.reserve(block_fetches.size() + gh_blocks);
  const double total_blocks =
      static_cast<double>(block_fetches.size() + gh_blocks);
  const double rec_weight =
      static_cast<double>(block_fetches.size()) / total_blocks;
  const double gh_weight = static_cast<double>(gh_blocks) / total_blocks;
  double rec_err = 0.0, gh_err = 0.0;
  std::size_t next_rec = 0;
  std::uint64_t next_gh = 0;
  while (next_rec < block_fetches.size() || next_gh < gh_blocks) {
    rec_err += next_rec < block_fetches.size() ? rec_weight : 0.0;
    gh_err += next_gh < gh_blocks ? gh_weight : 0.0;
    if (next_rec < block_fetches.size() &&
        (rec_err >= gh_err || next_gh >= gh_blocks)) {
      issues.push_back(Issue{block_fetches[next_rec].first,
                             static_cast<float>(block_fetches[next_rec].second),
                             false});
      rec_err -= 1.0;
      ++next_rec;
    } else {
      issues.push_back(Issue{kStreamRegionBlocks + next_gh, 0.0f, false});
      gh_err -= 1.0;
      ++next_gh;
    }
  }

  // --- BU array service rate under the configured mapping.
  const BinMapping mapping = BinMapping::build(
      cfg_.group_by_field_mapping ? MappingStrategy::kGroupByField
                                  : MappingStrategy::kNaivePack,
      BinnedFieldShape::of(data).bins_per_field, cfg_.sram_bins());
  const EngineServiceRate rate = histogram_service_rate(cfg_, mapping);

  return run_issues(issues, rate, static_cast<double>(rows.size()));
}

}  // namespace booster::core
