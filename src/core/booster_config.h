// Booster accelerator configuration (paper §III-B): a sea of small SRAMs,
// each paired with a floating-point adder (together one Booster Unit, BU),
// organized into clusters connected by a pipelined broadcast bus.
#pragma once

#include <cstdint>

#include "memsim/bandwidth_probe.h"

namespace booster::core {

struct BoosterConfig {
  // Scale: 50 clusters x 64 BUs = 3200 BUs, sized to rate-match a
  // ~400 GB/s memory system at 1 GHz (paper's worked example: 6.25 blocks
  // x 64 fields x 8 cycles = 3200).
  std::uint32_t clusters = 50;
  std::uint32_t bus_per_cluster = 64;

  // Each BU: 2 KB SRAM holding 8-byte histogram bins (G, H as fp32), so
  // 256 bins -- exactly one numeric field's 255 value bins + missing bin.
  std::uint32_t sram_bytes = 2048;
  std::uint32_t bin_entry_bytes = 8;

  // BU pipeline: short integer subtract (bin localization), SRAM read, two
  // pipelined FP adds, SRAM write -- 8 cycles per field update.
  std::uint32_t cycles_per_field_update = 8;

  // One-tree traversal / inference: one SRAM table lookup + predicate
  // evaluation per tree edge.
  std::uint32_t cycles_per_hop = 8;

  // Broadcast bus: pipelined over point-to-point links, 16 BUs per link
  // (fill/drain = num_bus / link span cycles, negligible over millions of
  // records but charged per event).
  std::uint32_t bus_link_span = 16;

  double clock_hz = 1.0e9;

  // The paper's two Booster-specific optimizations, separable for the
  // Fig 9 ablation.
  bool group_by_field_mapping = true;
  bool redundant_column_format = true;

  // BUs reserved for batch inference tree replicas (paper §V-H uses 3000
  // of the 3200 to host 6 replicas of a 500-tree ensemble).
  std::uint32_t inference_bus = 3000;

  // Training shards for scale-out projections (gbdt::ShardedTrainer is the
  // functional engine; see the "shards" sweep axis in sim/scenario.h).
  // Each shard is modeled as a full Booster node -- its own BU array and
  // memory system -- holding 1/S of the records; per-node shard histograms
  // merge in fixed shard order after every step-1 event, charged as
  // streaming DRAM traffic. 1 = single-node (no merge traffic).
  std::uint32_t training_shards = 1;

  // Calibrated DRAM sustained bandwidths (memsim::BandwidthProbe). The
  // default constants match the Table IV configuration's measured rates
  // under the FR-FCFS model (streaming ~402, stride-16 gather ~380, random
  // ~267 GB/s -- the tFAW activate bound keeps even random traffic at ~2/3
  // of peak); benches recalibrate from the cycle-level model at startup.
  memsim::BandwidthProfile bandwidth{/*streaming=*/400.0e9,
                                     /*strided_gather=*/378.0e9,
                                     /*random=*/266.0e9,
                                     /*peak=*/403.2e9};

  std::uint32_t num_bus() const { return clusters * bus_per_cluster; }
  std::uint32_t sram_bins() const { return sram_bytes / bin_entry_bytes; }
  std::uint64_t total_sram_bytes() const {
    return static_cast<std::uint64_t>(num_bus()) * sram_bytes;
  }
};

}  // namespace booster::core
