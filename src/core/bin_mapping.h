// Bin-to-SRAM mapping (paper §III-A): how histogram bins are placed across
// the sea of SRAMs determines both serialization (bins of multiple fields
// in one SRAM force sequential updates for every record) and capacity
// utilization. Booster's group-by-field mapping gives every field its own
// SRAM (or group of SRAMs for wide fields); the naive baseline greedily
// packs bins by capacity.
#pragma once

#include <cstdint>
#include <vector>

namespace booster::core {

enum class MappingStrategy : std::uint8_t {
  kNaivePack,     // fill SRAMs with bins in order, regardless of fields
  kGroupByField,  // one field (all its bins) per SRAM / SRAM group
};

const char* mapping_name(MappingStrategy s);

struct BinMapping {
  MappingStrategy strategy = MappingStrategy::kGroupByField;
  std::uint32_t sram_bins = 256;

  /// First SRAM holding bins of each field, and how many SRAMs it spans.
  std::vector<std::uint32_t> field_first_sram;
  std::vector<std::uint32_t> field_span;

  /// Number of distinct fields with at least one bin in each SRAM.
  std::vector<std::uint32_t> fields_per_sram;

  std::uint32_t srams_used() const {
    return static_cast<std::uint32_t>(fields_per_sram.size());
  }

  /// Fraction of allocated SRAM capacity actually holding bins. The paper
  /// reports 89% for group-by-field on its workloads.
  double capacity_utilization(const std::vector<std::uint32_t>& bins_per_field) const;

  /// Per-record serialization: every record updates exactly one bin per
  /// field, so an SRAM shared by k fields receives k back-to-back updates
  /// per record while the rest idle. The pipeline rate is set by the
  /// busiest SRAM: factor = max_s fields_per_sram[s] (1 for group-by-field
  /// -- full SRAM bandwidth, the paper's "exactly one access per SRAM").
  std::uint32_t serialization_factor() const;

  /// SRAM slots one record occupies in a single histogram copy; the BU
  /// array holds floor(num_bus / slots) concurrent copies (cluster-level
  /// record partitioning, reduced at step end).
  std::uint32_t slots_per_copy() const { return srams_used(); }

  /// Builds the mapping for a workload's per-field bin counts.
  static BinMapping build(MappingStrategy strategy,
                          const std::vector<std::uint32_t>& bins_per_field,
                          std::uint32_t sram_bins);
};

}  // namespace booster::core
