// CSV import/export for raw datasets, so downstream users can bring their
// own table-based data (the paper's motivating setting: relational tables
// and spreadsheets). The header row declares the schema:
//   num:<name> for numeric fields, cat:<name>:<cardinality> for categorical
//   fields, and label for the target column.
// Empty cells are missing values.
#pragma once

#include <iosfwd>
#include <string>

#include "gbdt/dataset.h"

namespace booster::workloads {

/// Writes the dataset with a schema header. Missing values render as empty
/// cells.
void save_csv(const gbdt::Dataset& data, std::ostream& out);
bool save_csv_file(const gbdt::Dataset& data, const std::string& path);

/// Parses a CSV produced by save_csv (or hand-written with the same
/// header). Aborts on malformed headers; tolerates empty cells.
gbdt::Dataset load_csv(std::istream& in);
gbdt::Dataset load_csv_file(const std::string& path);

}  // namespace booster::workloads
