#include "workloads/csv.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace booster::workloads {

using gbdt::Dataset;
using gbdt::FieldKind;

void save_csv(const Dataset& data, std::ostream& out) {
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    const auto& schema = data.field(f);
    if (schema.kind == FieldKind::kNumeric) {
      out << "num:" << schema.name;
    } else {
      out << "cat:" << schema.name << ":" << schema.cardinality;
    }
    out << ",";
  }
  out << "label\n";
  for (std::uint64_t r = 0; r < data.num_records(); ++r) {
    for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
      if (data.field(f).kind == FieldKind::kNumeric) {
        const float v = data.numeric_value(f, r);
        if (!std::isnan(v)) out << v;
      } else {
        const std::int32_t v = data.categorical_value(f, r);
        if (v != gbdt::kMissingCategory) out << v;
      }
      out << ",";
    }
    out << data.label(r) << "\n";
  }
}

bool save_csv_file(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_csv(data, out);
  return static_cast<bool>(out);
}

namespace {

std::vector<std::string> split_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  // A trailing comma produces an implicit empty last cell.
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

}  // namespace

Dataset load_csv(std::istream& in) {
  std::string header;
  BOOSTER_CHECK_MSG(static_cast<bool>(std::getline(in, header)),
                    "empty CSV input");
  const auto columns = split_line(header);
  BOOSTER_CHECK_MSG(!columns.empty() && columns.back() == "label",
                    "CSV header must end with a 'label' column");

  Dataset data;
  for (std::size_t c = 0; c + 1 < columns.size(); ++c) {
    const std::string& col = columns[c];
    if (col.rfind("num:", 0) == 0) {
      data.add_numeric_field(col.substr(4));
    } else if (col.rfind("cat:", 0) == 0) {
      const auto second = col.find(':', 4);
      BOOSTER_CHECK_MSG(second != std::string::npos,
                        "cat column needs cat:<name>:<cardinality>");
      const std::string name = col.substr(4, second - 4);
      const auto cardinality =
          static_cast<std::uint32_t>(std::stoul(col.substr(second + 1)));
      data.add_categorical_field(name, cardinality);
    } else {
      BOOSTER_CHECK_MSG(false, ("unknown CSV column kind: " + col).c_str());
    }
  }

  // Two passes would need a seekable stream; instead buffer rows.
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto cells = split_line(line);
    BOOSTER_CHECK_MSG(cells.size() == columns.size(),
                      "CSV row arity mismatch");
    rows.push_back(std::move(cells));
  }

  data.resize(rows.size());
  for (std::uint64_t r = 0; r < rows.size(); ++r) {
    const auto& cells = rows[r];
    for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
      const std::string& cell = cells[f];
      if (cell.empty()) continue;  // missing stays at its sentinel
      if (data.field(f).kind == FieldKind::kNumeric) {
        data.set_numeric(f, r, std::stof(cell));
      } else {
        const auto v = static_cast<std::int32_t>(std::stol(cell));
        BOOSTER_CHECK_MSG(
            v >= 0 && v < static_cast<std::int32_t>(data.field(f).cardinality),
            "categorical value out of range");
        data.set_categorical(f, r, v);
      }
    }
    data.set_label(r, std::stof(cells.back()));
  }
  return data;
}

Dataset load_csv_file(const std::string& path) {
  std::ifstream in(path);
  BOOSTER_CHECK_MSG(static_cast<bool>(in), ("cannot open " + path).c_str());
  return load_csv(in);
}

}  // namespace booster::workloads
