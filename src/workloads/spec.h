// Benchmark dataset specifications matching the paper's Table III. The raw
// datasets (Kaggle/UCI downloads) are replaced by synthetic generators that
// reproduce the published schema statistics and the behavioural properties
// the evaluation hinges on: record/field/one-hot-feature counts, categorical
// skew (lopsided 99%/1% splits for Allstate/Flight), and separability
// (IoT's shallow trees). See DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace booster::workloads {

/// Controls how synthetic labels relate to the fields, which in turn
/// controls realized tree shapes.
enum class LabelStructure {
  kSeparable,   // labels decided by sharp thresholds on few fields -> pure
                // leaves early, shallow trees (IoT)
  kDiffuse,     // labels from a noisy combination of many fields -> deep,
                // balanced trees (Higgs, Mq2008)
  kCategorical, // labels dominated by per-category effects -> one-hot
                // equality splits, extremely lopsided children
                // (Allstate, Flight)
};

struct DatasetSpec {
  std::string name;
  std::string description;
  std::uint64_t nominal_records = 0;  // Table III "#Records"
  std::uint32_t numeric_fields = 0;
  /// One entry per categorical field: its cardinality. One-hot feature
  /// count = numeric_fields + sum(cardinalities).
  std::vector<std::uint32_t> categorical_cardinalities;
  double missing_rate = 0.0;   // probability a field value is absent
  double categorical_skew = 1.1;  // Zipf exponent of category frequencies
  std::string loss = "logistic";
  LabelStructure label_structure = LabelStructure::kDiffuse;
  double label_noise = 0.3;
  /// Inter-Record baseline: histogram copies that fit in IR's
  /// area-equivalent SRAM budget. Taken from the paper (§V-A): 271 for
  /// Higgs, 179 for Mq2008, 0 (does not fit) for the others. -1 = estimate
  /// from histogram footprint (used for non-paper datasets).
  int ir_copies = -1;
  /// Paper Table III "Seq. Time (mins)" -- reference only, used to sanity
  /// check the sequential model's calibration in EXPERIMENTS.md.
  double paper_seq_minutes = 0.0;

  std::uint32_t num_fields() const {
    return numeric_fields +
           static_cast<std::uint32_t>(categorical_cardinalities.size());
  }
  std::uint64_t onehot_features() const;
};

/// The five benchmarks of Table III.
std::vector<DatasetSpec> paper_datasets();

/// Synthetic fraud-scoring table (not in Table III): heavy categorical
/// fields with skewed categories. Shared by the hot-path and closed-loop
/// benches and the cycle-calibration tests so they all mean the same
/// workload by "fraud".
DatasetSpec fraud_spec(std::uint64_t nominal_records = 2'000'000);

/// Lookup by name; aborts if unknown.
DatasetSpec spec_by_name(const std::string& name);

}  // namespace booster::workloads
