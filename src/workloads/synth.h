// Synthetic dataset generator: produces raw Datasets whose statistics match
// a DatasetSpec. Deterministic given (spec, records, seed).
#pragma once

#include <cstdint>

#include "gbdt/dataset.h"
#include "workloads/spec.h"

namespace booster::workloads {

/// Generates `records` records following the spec's schema and label
/// structure. The label-generating function is fixed per seed, so train
/// and validation samples drawn with different record counts but the same
/// seed come from the same underlying population.
gbdt::Dataset synthesize(const DatasetSpec& spec, std::uint64_t records,
                         std::uint64_t seed = 42);

}  // namespace booster::workloads
