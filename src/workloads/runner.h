// Sampled-simulation workload runner: synthesizes a dataset sample, trains
// a prefix of the ensemble functionally, and returns the step trace scaled
// to the nominal dataset (records) and ensemble (trees). Every bench binary
// goes through this, so all experiments see identical workloads.
#pragma once

#include <cstdint>
#include <string>

#include "gbdt/binning.h"
#include "gbdt/trainer.h"
#include "trace/step_trace.h"
#include "workloads/spec.h"

namespace booster::workloads {

struct RunnerConfig {
  /// Records synthesized for functional training (tree shapes and per-node
  /// record fractions converge well below this).
  std::uint64_t sim_records = 24000;
  /// Trees trained functionally; the trace's repeat factor scales to
  /// nominal_trees.
  std::uint32_t sim_trees = 48;
  /// Nominal ensemble the paper trains (500 trees, depth 6).
  std::uint32_t nominal_trees = 500;
  std::uint32_t max_depth = 6;
  std::uint64_t seed = 42;
  /// Row shards for functional training (gbdt::ShardedTrainer via
  /// TrainerConfig::num_shards). Sharded output is bit-identical to the
  /// single-shard hot path, so raising this never changes results.
  std::uint32_t num_shards = 1;
  /// Ranks for *cross-process* functional training: > 1 runs an
  /// in-process world of `procs` rank threads through
  /// gbdt::DistributedTrainer over `transport`, using rank 0's result and
  /// trace. Distributed output is bit-identical to the in-process
  /// trainer, so raising this never changes results either -- it
  /// exercises the transport/merge stack inside the pipeline.
  std::uint32_t procs = 1;
  /// Histogram transport for procs > 1: "loopback", "file", "socket", or
  /// "tcp" (ipc::transport_kind_from_name).
  std::string transport = "loopback";
  /// tcp-only: a kill/hang/join schedule in ipc::ChurnSchedule grammar
  /// ("kill:<rank>@<tree>,hang:<rank>@<tree>,join:<rank>@<tree>").
  /// Non-empty switches the procs > 1 leg to the elastic localhost-TCP
  /// world (gbdt::train_elastic_tcp): workers churn per the schedule and
  /// rank 0 repartitions at tree boundaries, still bit-identical to the
  /// single-process trainer.
  std::string churn;
};

struct WorkloadResult {
  DatasetSpec spec;
  gbdt::BinnedDataset binned;       // the simulated sample, binned
  gbdt::TrainResult train;          // trained model + per-tree stats
  trace::StepTrace trace;           // scaled to nominal records and trees
  trace::WorkloadInfo info;         // nominal workload metadata
};

/// Runs the full pipeline for one dataset spec.
WorkloadResult run_workload(const DatasetSpec& spec, RunnerConfig cfg = {});

/// Runs all five paper datasets.
std::vector<WorkloadResult> run_paper_workloads(RunnerConfig cfg = {});

}  // namespace booster::workloads
