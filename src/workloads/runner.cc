#include "workloads/runner.h"

#include <chrono>
#include <utility>

#include "gbdt/distributed.h"
#include "ipc/membership.h"
#include "ipc/world.h"
#include "util/check.h"
#include "workloads/synth.h"

namespace booster::workloads {

WorkloadResult run_workload(const DatasetSpec& spec, RunnerConfig cfg) {
  BOOSTER_CHECK(cfg.sim_records > 0 && cfg.sim_trees > 0);

  const gbdt::Dataset raw = synthesize(spec, cfg.sim_records, cfg.seed);
  gbdt::Binner binner;
  gbdt::BinnedDataset binned = binner.bin(raw);

  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = cfg.sim_trees;
  tcfg.max_depth = cfg.max_depth;
  tcfg.loss = spec.loss;
  tcfg.num_shards = cfg.num_shards;

  trace::StepTrace trace;
  trace::WorkloadInfo info;
  gbdt::TrainResult train = [&] {
    if (cfg.procs <= 1) {
      return gbdt::Trainer(tcfg).train(binned, &trace, &info);
    }
    // Cross-process leg: an in-process world of cfg.procs rank threads
    // over the configured histogram transport. Bit-identical to the
    // in-process trainer, so nothing downstream changes -- the pipeline
    // just exercises the ipc stack.
    const auto kind = ipc::transport_kind_from_name(cfg.transport);
    BOOSTER_CHECK_MSG(kind.has_value(),
                      "RunnerConfig.transport must be loopback, file, "
                      "socket, or tcp");
    gbdt::DistributedConfig dcfg;
    dcfg.trainer = tcfg;
    if (!cfg.churn.empty()) {
      // Churn runs need the elastic localhost-TCP world: real sockets,
      // live membership, and the scheduled kill/hang/join events. Timing
      // is tightened from the 10s production defaults so a scheduled
      // hang costs the run fractions of a second, not seconds.
      BOOSTER_CHECK_MSG(*kind == ipc::TransportKind::kTcp,
                        "RunnerConfig.churn requires transport == \"tcp\"");
      const auto churn = ipc::ChurnSchedule::parse(cfg.churn);
      BOOSTER_CHECK_MSG(churn.has_value(),
                        "RunnerConfig.churn: unparseable schedule");
      gbdt::ElasticWorldConfig ecfg;
      ecfg.dist = dcfg;
      ecfg.dist.elastic = true;
      ecfg.dist.channel.recv_timeout = std::chrono::milliseconds(25);
      ecfg.dist.channel.liveness_timeout = std::chrono::milliseconds(500);
      ecfg.dist.channel.heartbeat_interval = std::chrono::milliseconds(50);
      ecfg.initial_workers = cfg.procs - 1;
      ecfg.churn = *churn;
      ecfg.tcp.reconnect_window = std::chrono::milliseconds(2000);
      ecfg.tcp.backoff.base = std::chrono::milliseconds(5);
      ecfg.tcp.backoff.cap = std::chrono::milliseconds(50);
      gbdt::ElasticRunResult out =
          gbdt::train_elastic_tcp(ecfg, binned, &trace, &info);
      BOOSTER_CHECK(out.rank0.has_value());
      return std::move(*out.rank0);
    }
    ipc::InProcessWorld world(*kind, cfg.procs);
    return gbdt::train_in_process(dcfg, world, binned, &trace, &info);
  }();

  trace.set_scale(static_cast<double>(spec.nominal_records) /
                  static_cast<double>(cfg.sim_records));
  trace.set_repeat(static_cast<double>(cfg.nominal_trees) /
                   static_cast<double>(cfg.sim_trees));

  info.name = spec.name;
  info.nominal_records = spec.nominal_records;
  info.trees = cfg.nominal_trees;

  WorkloadResult result{spec, std::move(binned), std::move(train),
                        std::move(trace), std::move(info)};
  return result;
}

std::vector<WorkloadResult> run_paper_workloads(RunnerConfig cfg) {
  std::vector<WorkloadResult> results;
  for (const auto& spec : paper_datasets()) {
    results.push_back(run_workload(spec, cfg));
  }
  return results;
}

}  // namespace booster::workloads
