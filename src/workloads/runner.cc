#include "workloads/runner.h"

#include "util/check.h"
#include "workloads/synth.h"

namespace booster::workloads {

WorkloadResult run_workload(const DatasetSpec& spec, RunnerConfig cfg) {
  BOOSTER_CHECK(cfg.sim_records > 0 && cfg.sim_trees > 0);

  const gbdt::Dataset raw = synthesize(spec, cfg.sim_records, cfg.seed);
  gbdt::Binner binner;
  gbdt::BinnedDataset binned = binner.bin(raw);

  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = cfg.sim_trees;
  tcfg.max_depth = cfg.max_depth;
  tcfg.loss = spec.loss;
  tcfg.num_shards = cfg.num_shards;
  gbdt::Trainer trainer(tcfg);

  trace::StepTrace trace;
  trace::WorkloadInfo info;
  gbdt::TrainResult train = trainer.train(binned, &trace, &info);

  trace.set_scale(static_cast<double>(spec.nominal_records) /
                  static_cast<double>(cfg.sim_records));
  trace.set_repeat(static_cast<double>(cfg.nominal_trees) /
                   static_cast<double>(cfg.sim_trees));

  info.name = spec.name;
  info.nominal_records = spec.nominal_records;
  info.trees = cfg.nominal_trees;

  WorkloadResult result{spec, std::move(binned), std::move(train),
                        std::move(trace), std::move(info)};
  return result;
}

std::vector<WorkloadResult> run_paper_workloads(RunnerConfig cfg) {
  std::vector<WorkloadResult> results;
  for (const auto& spec : paper_datasets()) {
    results.push_back(run_workload(spec, cfg));
  }
  return results;
}

}  // namespace booster::workloads
