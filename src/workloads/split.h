// Train/validation splitting for raw datasets -- the evaluation hygiene a
// downstream library user needs (the paper trains on full datasets; our
// examples report held-out metrics where it matters).
#pragma once

#include <cstdint>
#include <utility>

#include "gbdt/dataset.h"

namespace booster::workloads {

struct TrainTestSplit {
  gbdt::Dataset train;
  gbdt::Dataset test;
};

/// Randomly partitions records into train/test with the given test
/// fraction. Deterministic per seed; schemas are copied verbatim.
TrainTestSplit train_test_split(const gbdt::Dataset& data,
                                double test_fraction,
                                std::uint64_t seed = 1234);

}  // namespace booster::workloads
