#include "workloads/split.h"

#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace booster::workloads {

using gbdt::Dataset;
using gbdt::FieldKind;

namespace {

Dataset clone_schema(const Dataset& src) {
  Dataset out;
  for (std::uint32_t f = 0; f < src.num_fields(); ++f) {
    const auto& schema = src.field(f);
    if (schema.kind == FieldKind::kNumeric) {
      out.add_numeric_field(schema.name);
    } else {
      out.add_categorical_field(schema.name, schema.cardinality);
    }
  }
  return out;
}

void copy_records(const Dataset& src, const std::vector<std::uint64_t>& rows,
                  Dataset& dst) {
  dst.resize(rows.size());
  for (std::uint64_t i = 0; i < rows.size(); ++i) {
    const std::uint64_t r = rows[i];
    for (std::uint32_t f = 0; f < src.num_fields(); ++f) {
      if (src.field(f).kind == FieldKind::kNumeric) {
        dst.set_numeric(f, i, src.numeric_value(f, r));
      } else {
        dst.set_categorical(f, i, src.categorical_value(f, r));
      }
    }
    dst.set_label(i, src.label(r));
  }
}

}  // namespace

TrainTestSplit train_test_split(const Dataset& data, double test_fraction,
                                std::uint64_t seed) {
  BOOSTER_CHECK(test_fraction >= 0.0 && test_fraction <= 1.0);
  util::Rng rng(seed);
  std::vector<std::uint64_t> train_rows;
  std::vector<std::uint64_t> test_rows;
  for (std::uint64_t r = 0; r < data.num_records(); ++r) {
    (rng.bernoulli(test_fraction) ? test_rows : train_rows).push_back(r);
  }
  TrainTestSplit split{clone_schema(data), clone_schema(data)};
  copy_records(data, train_rows, split.train);
  copy_records(data, test_rows, split.test);
  return split;
}

}  // namespace booster::workloads
