#include "workloads/synth.h"

#include <cmath>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace booster::workloads {

namespace {

using gbdt::Dataset;
using util::Rng;
using util::ZipfSampler;

/// Fixed per-dataset "ground truth": weights for numeric fields and effect
/// tables for categorical fields, drawn once from the seed.
struct GroundTruth {
  std::vector<double> numeric_weight;           // per numeric field
  std::vector<std::vector<double>> cat_effect;  // per categorical field
  std::vector<double> threshold;                // separable-rule thresholds
};

GroundTruth make_truth(const DatasetSpec& spec, Rng& rng) {
  GroundTruth t;
  t.numeric_weight.resize(spec.numeric_fields);
  for (auto& w : t.numeric_weight) w = rng.normal();
  t.cat_effect.resize(spec.categorical_cardinalities.size());
  for (std::size_t f = 0; f < t.cat_effect.size(); ++f) {
    const std::uint32_t cardinality = spec.categorical_cardinalities[f];
    t.cat_effect[f].resize(cardinality);
    for (std::uint32_t c = 0; c < cardinality; ++c) {
      // Rare categories carry extreme effects (rare insurance segments,
      // rare carriers with chronic delays); frequent ones are near the
      // mean. This makes the best one-hot splits isolate *rare*
      // categories, reproducing the paper's extremely lopsided (99%/1%)
      // left/right children for Allstate and Flight.
      const double rank = (c + 1.0) / cardinality;  // Zipf: low c = frequent
      const double scale = 0.25 + 3.0 * rank;
      t.cat_effect[f][c] = rng.normal() * scale;
    }
  }
  t.threshold.resize(spec.numeric_fields);
  for (auto& th : t.threshold) th = rng.uniform(-0.5, 0.5);
  return t;
}

}  // namespace

gbdt::Dataset synthesize(const DatasetSpec& spec, std::uint64_t records,
                         std::uint64_t seed) {
  BOOSTER_CHECK(records > 0);
  Dataset data;
  for (std::uint32_t f = 0; f < spec.numeric_fields; ++f) {
    data.add_numeric_field("num" + std::to_string(f));
  }
  for (std::size_t f = 0; f < spec.categorical_cardinalities.size(); ++f) {
    data.add_categorical_field("cat" + std::to_string(f),
                               spec.categorical_cardinalities[f]);
  }
  data.resize(records);

  Rng truth_rng(seed);  // ground truth depends on the seed only
  const GroundTruth truth = make_truth(spec, truth_rng);
  Rng rng(seed ^ 0xDA7A5E7ULL);

  std::vector<ZipfSampler> samplers;
  samplers.reserve(spec.categorical_cardinalities.size());
  for (const auto c : spec.categorical_cardinalities) {
    samplers.emplace_back(c, spec.categorical_skew);
  }

  const std::uint32_t nf = spec.numeric_fields;
  std::vector<float> numeric(nf);
  std::vector<std::int32_t> cats(spec.categorical_cardinalities.size());

  for (std::uint64_t r = 0; r < records; ++r) {
    // Draw field values.
    for (std::uint32_t f = 0; f < nf; ++f) {
      numeric[f] = static_cast<float>(rng.normal());
      if (spec.missing_rate > 0.0 && rng.bernoulli(spec.missing_rate)) {
        numeric[f] = std::numeric_limits<float>::quiet_NaN();
      }
      data.set_numeric(f, r, numeric[f]);
    }
    for (std::size_t f = 0; f < samplers.size(); ++f) {
      std::int32_t v = static_cast<std::int32_t>(samplers[f].draw(rng));
      if (spec.missing_rate > 0.0 && rng.bernoulli(spec.missing_rate)) {
        v = gbdt::kMissingCategory;
      }
      cats[f] = v;
      data.set_categorical(static_cast<std::uint32_t>(nf + f), r, v);
    }

    // Compute the raw score under the spec's label structure.
    double score = 0.0;
    switch (spec.label_structure) {
      case LabelStructure::kSeparable: {
        // Decision list over the first three numeric fields: sharp
        // thresholds, so trees reach pure leaves within a few levels.
        const std::uint32_t k = std::min<std::uint32_t>(3, nf);
        for (std::uint32_t f = 0; f < k; ++f) {
          const float v = numeric[f];
          const bool above = !std::isnan(v) && v > truth.threshold[f];
          score += (above ? 1.0 : -1.0) * (3.0 - f);
        }
        break;
      }
      case LabelStructure::kDiffuse: {
        for (std::uint32_t f = 0; f < nf; ++f) {
          const float v = numeric[f];
          if (std::isnan(v)) continue;
          score += truth.numeric_weight[f] * v;
          // Mild nonlinearity so a linear model cannot fit it and trees
          // keep finding useful splits at depth.
          if (f + 1 < nf && !std::isnan(numeric[f + 1])) {
            score += 0.15 * v * numeric[f + 1];
          }
        }
        score /= std::sqrt(static_cast<double>(nf));
        break;
      }
      case LabelStructure::kCategorical: {
        for (std::size_t f = 0; f < cats.size(); ++f) {
          if (cats[f] == gbdt::kMissingCategory) continue;
          score += truth.cat_effect[f][static_cast<std::size_t>(cats[f])];
        }
        for (std::uint32_t f = 0; f < nf; ++f) {
          const float v = numeric[f];
          if (!std::isnan(v)) score += 0.3 * truth.numeric_weight[f] * v;
        }
        break;
      }
    }
    score += spec.label_noise * rng.normal();

    float label = 0.0f;
    if (spec.loss == "squared") {
      label = static_cast<float>(score);
    } else if (spec.loss == "ranking") {
      // Graded relevance 0/1/2 from score terciles.
      label = score < -0.4 ? 0.0f : (score < 0.4 ? 1.0f : 2.0f);
    } else {
      label = score > 0.0 ? 1.0f : 0.0f;
    }
    data.set_label(r, label);
  }

  return data;
}

}  // namespace booster::workloads
