#include "workloads/spec.h"

#include "util/check.h"

namespace booster::workloads {

std::uint64_t DatasetSpec::onehot_features() const {
  std::uint64_t total = numeric_fields;
  for (const auto c : categorical_cardinalities) total += c;
  return total;
}

namespace {

/// Distributes `total` categories over `fields` cardinalities with a
/// decreasing profile (a few big fields, many small), mimicking real
/// mixed-cardinality schemas.
std::vector<std::uint32_t> cardinality_profile(std::uint32_t fields,
                                               std::uint32_t total) {
  BOOSTER_CHECK(fields > 0);
  std::vector<std::uint32_t> cards(fields);
  // Weights ~ 1/(i+1): harmonic decay.
  double weight_sum = 0.0;
  for (std::uint32_t i = 0; i < fields; ++i) weight_sum += 1.0 / (i + 1.0);
  std::uint32_t assigned = 0;
  for (std::uint32_t i = 0; i < fields; ++i) {
    const double w = (1.0 / (i + 1.0)) / weight_sum;
    std::uint32_t c = static_cast<std::uint32_t>(w * total);
    if (c < 2) c = 2;
    cards[i] = c;
    assigned += c;
  }
  // Fix up rounding drift on the largest field.
  if (assigned < total) {
    cards[0] += total - assigned;
  } else if (assigned > total) {
    const std::uint32_t excess = assigned - total;
    cards[0] = cards[0] > excess + 2 ? cards[0] - excess : 2;
  }
  return cards;
}

}  // namespace

std::vector<DatasetSpec> paper_datasets() {
  std::vector<DatasetSpec> specs;

  {
    DatasetSpec s;
    s.name = "IoT";
    s.description = "Botnet attack detection (N-BaIoT)";
    s.nominal_records = 7'000'000;
    s.numeric_fields = 115;
    s.missing_rate = 0.0;
    s.loss = "logistic";
    s.label_structure = LabelStructure::kSeparable;
    s.label_noise = 0.004;  // attacks are near-perfectly separable
    s.ir_copies = 0;       // paper SS V-A: one histogram copy does not fit
    s.paper_seq_minutes = 15.0;
    specs.push_back(std::move(s));
  }
  {
    DatasetSpec s;
    s.name = "Higgs";
    s.description = "Exotic particle collider data";
    s.nominal_records = 10'000'000;
    s.numeric_fields = 28;
    s.missing_rate = 0.0;
    s.loss = "logistic";
    s.label_structure = LabelStructure::kDiffuse;
    s.label_noise = 0.8;  // physics signal vs background is genuinely hard
    s.ir_copies = 271;    // paper SS V-A
    s.paper_seq_minutes = 18.5;
    specs.push_back(std::move(s));
  }
  {
    DatasetSpec s;
    s.name = "Allstate";
    s.description = "Insurance claim prediction";
    s.nominal_records = 10'000'000;
    s.numeric_fields = 16;
    // 32 fields total, 16 categorical; one-hot features = 16 + 4216 = 4232
    // (Table III).
    s.categorical_cardinalities = cardinality_profile(16, 4216);
    s.missing_rate = 0.05;
    s.categorical_skew = 1.3;
    s.loss = "squared";
    s.label_structure = LabelStructure::kCategorical;
    s.label_noise = 0.5;
    s.ir_copies = 0;  // paper SS V-A
    s.paper_seq_minutes = 1.6;
    specs.push_back(std::move(s));
  }
  {
    DatasetSpec s;
    s.name = "Mq2008";
    s.description = "Supervised ranking (LETOR 4.0)";
    s.nominal_records = 1'000'000;
    s.numeric_fields = 46;
    s.missing_rate = 0.0;
    s.loss = "ranking";
    s.label_structure = LabelStructure::kDiffuse;
    s.label_noise = 0.6;
    s.ir_copies = 179;  // paper SS V-A
    s.paper_seq_minutes = 2.5;
    specs.push_back(std::move(s));
  }
  {
    DatasetSpec s;
    s.name = "Flight";
    s.description = "Flight delay prediction";
    s.nominal_records = 10'000'000;
    s.numeric_fields = 1;
    // 8 fields, 7 categorical; one-hot features = 1 + 665 = 666 (Table III).
    s.categorical_cardinalities = cardinality_profile(7, 665);
    s.missing_rate = 0.02;
    s.categorical_skew = 1.2;
    s.loss = "logistic";
    s.label_structure = LabelStructure::kCategorical;
    s.label_noise = 0.6;
    s.ir_copies = 0;  // paper SS V-A
    s.paper_seq_minutes = 5.5;
    specs.push_back(std::move(s));
  }

  return specs;
}

DatasetSpec fraud_spec(std::uint64_t nominal_records) {
  DatasetSpec spec;
  spec.name = "fraud";
  spec.description = "Synthetic card-transaction table";
  spec.nominal_records = nominal_records;
  spec.numeric_fields = 4;
  spec.categorical_cardinalities = {500, 200, 60, 30, 12, 5};
  spec.categorical_skew = 1.4;
  spec.missing_rate = 0.03;
  spec.loss = "logistic";
  spec.label_structure = LabelStructure::kCategorical;
  spec.label_noise = 0.4;
  return spec;
}

DatasetSpec spec_by_name(const std::string& name) {
  for (auto& s : paper_datasets()) {
    if (s.name == name) return s;
  }
  BOOSTER_CHECK_MSG(false, ("unknown dataset: " + name).c_str());
  return {};
}

}  // namespace booster::workloads
