// Lane-parallel performance models: Ideal 32-core, Ideal GPU, sequential
// CPU (Fig 6), and the Real multicore/GPU configurations of the paper's
// Fig 11 validation.
//
// The Ideal models follow the paper's methodology exactly: they are
// constrained *only* by their parallelism (32 / 64 lanes) with perfect
// pipelines, perfect caches, and perfect SIMT behaviour -- upper bounds on
// real hardware. The Real models multiply the ideal per-step times by
// irregularity factors derived from the paper's qualitative analysis
// (atomics/privatization pressure in step 1 on GPUs, SIMT divergence in
// step 5, kernel-launch and reduction overhead per node), so Ideal >= Real
// by construction and small or categorical-heavy datasets behave worse on
// the GPU -- the two properties Fig 11 demonstrates.
#pragma once

#include <array>
#include <string>

#include "perf/host.h"
#include "perf/perf_model.h"

namespace booster::baselines {

struct CpuLikeParams {
  std::string name = "Ideal 32-core";
  double lanes = 32.0;
  double clock_hz = 2.2e9;

  // Per-operation costs (cycles) of the tight software loops. Calibrated
  // so the sequential model lands near Table III's measured minutes (see
  // bench_table3_datasets and EXPERIMENTS.md).
  double cycles_per_hist_update = 8.0;  // bin locate + accumulate count/G/H
  double cycles_per_partition = 6.0;    // predicate eval + pointer append
  double cycles_per_hop = 10.4;         // node fetch + compare + descend
  double cycles_per_record_update = 6.0;  // step-5 g/h recompute + writeback

  // Per-step multiplicative irregularity factors (1.0 for ideal models),
  // indexed by trace::StepKind.
  std::array<double, trace::kNumStepKinds> step_factor{1.0, 1.0, 1.0, 1.0};

  /// Extra step-1 slowdown per one-hot feature (GPU histogram privatization
  /// pressure: bigger histograms overflow Shared Memory and fall back to
  /// global-memory atomics -- paper SS II-D's 56 KB-per-warp argument).
  /// Charged as min(cap, features_onehot * this).
  double hist_penalty_per_onehot = 0.0;
  double hist_penalty_cap = 3.0;

  /// Fixed overhead charged per accelerated-step event (kernel launches,
  /// per-node reductions and synchronization on real hardware).
  double per_event_overhead_s = 0.0;

  /// Table V "SRAM size energy (norm.)" for this configuration.
  double sram_energy_norm = 1.0;

  /// Host parameters for step 2 (the split scan runs on the host cores for
  /// every system; the sequential model uses a single core).
  perf::HostParams host{};
};

class CpuLikeModel final : public perf::PerfModel {
 public:
  explicit CpuLikeModel(CpuLikeParams params) : p_(std::move(params)) {}

  const CpuLikeParams& params() const { return p_; }

  std::string name() const override { return p_.name; }
  perf::StepBreakdown train_cost(const trace::StepTrace& trace,
                                 const trace::WorkloadInfo& info) const override;
  double inference_cost(const perf::InferenceSpec& spec) const override;
  perf::Activity train_activity(const trace::StepTrace& trace,
                                const trace::WorkloadInfo& info) const override;

 private:
  CpuLikeParams p_;
};

/// Factory configurations matching the paper's Table V.
CpuLikeParams sequential_cpu_params();  // 1 core, for the Fig 6 breakdown
CpuLikeParams ideal_cpu_params();       // Ideal 32-core baseline
CpuLikeParams ideal_gpu_params();       // Ideal GPU: 64-way, perfect SIMT
CpuLikeParams real_cpu_params();        // Real 32-core (Fig 11)
CpuLikeParams real_gpu_params();        // Real V100-class GPU (Fig 11)

}  // namespace booster::baselines
