#include "baselines/inter_record.h"

#include <algorithm>

#include "perf/traffic.h"

namespace booster::baselines {

using trace::StepEvent;
using trace::StepKind;

namespace {
constexpr double kBinBytes = 8.0;      // G, H as fp32 (paper's bin size)
constexpr double kBinRmwBytes = 16.0;  // spilled update: read + write 8 B
}  // namespace

std::uint32_t InterRecordModel::estimate_copies(
    const trace::WorkloadInfo& info, const InterRecordParams& params) {
  const double hist_bytes = static_cast<double>(info.total_bins) * kBinBytes;
  if (hist_bytes <= 0.0) return 0;
  return static_cast<std::uint32_t>(params.sram_budget_bytes / hist_bytes);
}

perf::StepBreakdown InterRecordModel::train_cost(
    const trace::StepTrace& trace, const trace::WorkloadInfo& info) const {
  perf::StepBreakdown out;
  const double lanes =
      p_.copies >= 1 ? static_cast<double>(p_.copies)
                     : static_cast<double>(p_.spill_lanes);
  const double nominal = static_cast<double>(info.nominal_records);

  for (const auto& e : trace.events()) {
    if (e.kind == StepKind::kSplitSelect) continue;
    const double recs = trace.scaled_records(e);
    const double density = nominal > 0.0 ? recs / nominal : 1.0;
    double compute_s = 0.0;
    double mem_s = 0.0;
    switch (e.kind) {
      case StepKind::kHistogram: {
        const double updates = recs * e.record_fields;
        compute_s =
            updates * p_.cycles_per_update / (lanes * p_.clock_hz);
        // Record stream (row-major; IR has no column format).
        mem_s = perf::histogram_bytes(e, recs, info.record_bytes, density) /
                p_.bandwidth.streaming;
        if (p_.copies == 0) {
          // Spilled histograms: every update is an irregular DRAM RMW.
          mem_s += updates * kBinRmwBytes / p_.bandwidth.random;
        }
        break;
      }
      case StepKind::kPartition:
        compute_s = recs * p_.cycles_per_partition / (lanes * p_.clock_hz);
        mem_s = perf::partition_bytes_row(recs, info.record_bytes,
                                          e.depth == 0) /
                p_.bandwidth.streaming;
        break;
      case StepKind::kTraversal:
        compute_s = recs * e.avg_path_length * p_.cycles_per_hop /
                    (lanes * p_.clock_hz);
        mem_s = perf::traversal_bytes_row(recs, info.record_bytes) /
                p_.bandwidth.streaming;
        break;
      case StepKind::kSplitSelect:
        break;
    }
    out[e.kind] += std::max(compute_s, mem_s);
  }
  for (auto& s : out.seconds) s *= trace.repeat();
  out[StepKind::kSplitSelect] = perf::host_split_seconds(trace, p_.host);
  return out;
}

double InterRecordModel::inference_cost(const perf::InferenceSpec& spec) const {
  // Record-parallel traversal of all trees per record.
  const double lanes = std::max<std::uint32_t>(
      1, p_.copies >= 1 ? p_.copies : p_.spill_lanes);
  return spec.records * spec.trees * spec.avg_path_length * p_.cycles_per_hop /
         (lanes * p_.clock_hz);
}

perf::Activity InterRecordModel::train_activity(
    const trace::StepTrace& trace, const trace::WorkloadInfo& info) const {
  perf::Activity act;
  act.sram_energy_per_access_norm = 1.9;  // large multi-copy SRAM banks
  const double nominal = static_cast<double>(info.nominal_records);
  for (const auto& e : trace.events()) {
    const double recs = trace.scaled_records(e) * trace.repeat();
    switch (e.kind) {
      case StepKind::kHistogram: {
        const double updates = recs * e.record_fields;
        if (p_.copies >= 1) {
          act.sram_accesses += updates * 2.0;
        } else {
          act.dram_bytes += updates * kBinRmwBytes;
        }
        act.dram_bytes +=
            perf::histogram_bytes(
                e, trace.scaled_records(e), info.record_bytes,
                nominal > 0.0 ? trace.scaled_records(e) / nominal : 1.0) *
            trace.repeat();
        break;
      }
      case StepKind::kPartition:
        act.sram_accesses += recs;
        act.dram_bytes += perf::partition_bytes_row(trace.scaled_records(e),
                                                    info.record_bytes,
                                                    e.depth == 0) *
                          trace.repeat();
        break;
      case StepKind::kTraversal:
        act.sram_accesses += recs * e.avg_path_length;
        act.dram_bytes += perf::traversal_bytes_row(trace.scaled_records(e),
                                                    info.record_bytes) *
                          trace.repeat();
        break;
      case StepKind::kSplitSelect:
        act.sram_accesses +=
            static_cast<double>(e.bins_scanned) * trace.repeat();
        break;
    }
  }
  return act;
}

}  // namespace booster::baselines
