// Inter-Record (IR) baseline: the prior FPGA accelerator of Tanaka et al.
// [57] as the paper simulates it (§V-A) -- an ASIC with the same area and
// clock as Booster that parallelizes only across records, holding one
// complete private histogram copy per processing unit. Copies are
// area-bounded: 271 fit for Higgs, 179 for Mq2008, and for the other three
// benchmarks not even one copy fits, so the histograms spill to DRAM and
// updates become read-modify-write memory traffic.
#pragma once

#include <string>

#include "memsim/bandwidth_probe.h"
#include "perf/host.h"
#include "perf/perf_model.h"

namespace booster::baselines {

struct InterRecordParams {
  /// Histogram copies that fit on chip. >=1: on-chip mode with that many
  /// record-parallel lanes. 0: spill mode. The bench harness supplies the
  /// paper's published per-dataset values (workloads::DatasetSpec::ir_copies);
  /// estimate_copies() covers non-paper datasets.
  std::uint32_t copies = 0;

  /// Record-parallel stream lanes available in spill mode (bounded by the
  /// same area budget; the bottleneck there is memory, not lanes).
  std::uint32_t spill_lanes = 64;

  double clock_hz = 1.0e9;       // same clock as Booster (fair comparison)
  double cycles_per_update = 8;  // same BU-class update pipeline
  double cycles_per_partition = 1;
  double cycles_per_hop = 8;

  /// Area-equivalent on-chip SRAM budget. IR uses a few large SRAMs, which
  /// are denser than Booster's 3200 small banks (the paper notes ~1.7x
  /// banking area overhead), so the same silicon holds more bytes.
  double sram_budget_bytes = 15.5e6;

  // Default profile matches the FR-FCFS model's measured rates (kept in
  // sync with core::BoosterConfig so un-calibrated comparisons stay
  // apples-to-apples).
  memsim::BandwidthProfile bandwidth{400.0e9, 378.0e9, 266.0e9, 403.2e9};
  perf::HostParams host{};
};

class InterRecordModel final : public perf::PerfModel {
 public:
  explicit InterRecordModel(InterRecordParams params) : p_(params) {}

  const InterRecordParams& params() const { return p_; }

  /// Histogram copies fitting the area budget for a workload (used when the
  /// paper does not publish the count).
  static std::uint32_t estimate_copies(const trace::WorkloadInfo& info,
                                       const InterRecordParams& params);

  std::string name() const override { return "Inter-Record"; }
  perf::StepBreakdown train_cost(const trace::StepTrace& trace,
                                 const trace::WorkloadInfo& info) const override;
  double inference_cost(const perf::InferenceSpec& spec) const override;
  perf::Activity train_activity(const trace::StepTrace& trace,
                                const trace::WorkloadInfo& info) const override;

 private:
  InterRecordParams p_;
};

}  // namespace booster::baselines
