#include "baselines/cpu_like.h"

#include <algorithm>

#include "perf/traffic.h"

namespace booster::baselines {

using trace::StepEvent;
using trace::StepKind;

perf::StepBreakdown CpuLikeModel::train_cost(
    const trace::StepTrace& trace, const trace::WorkloadInfo& info) const {
  perf::StepBreakdown out;
  const double hist_penalty =
      std::min(p_.hist_penalty_cap,
               p_.hist_penalty_per_onehot * info.features_onehot);
  const double hist_factor =
      p_.step_factor[static_cast<std::size_t>(StepKind::kHistogram)] +
      hist_penalty;

  for (const auto& e : trace.events()) {
    if (e.kind == StepKind::kSplitSelect) continue;
    const double recs = trace.scaled_records(e);
    double cycles = 0.0;
    double factor = p_.step_factor[static_cast<std::size_t>(e.kind)];
    switch (e.kind) {
      case StepKind::kHistogram:
        cycles = recs * e.record_fields * p_.cycles_per_hist_update;
        factor = hist_factor;
        break;
      case StepKind::kPartition:
        cycles = recs * p_.cycles_per_partition;
        break;
      case StepKind::kTraversal:
        cycles = recs * (e.avg_path_length * p_.cycles_per_hop +
                         p_.cycles_per_record_update);
        break;
      case StepKind::kSplitSelect:
        break;
    }
    out[e.kind] += factor * cycles / (p_.lanes * p_.clock_hz) +
                   p_.per_event_overhead_s;
  }
  for (auto& s : out.seconds) s *= trace.repeat();

  out[StepKind::kSplitSelect] =
      perf::host_split_seconds(trace, p_.host) *
      p_.step_factor[static_cast<std::size_t>(StepKind::kSplitSelect)];
  return out;
}

double CpuLikeModel::inference_cost(const perf::InferenceSpec& spec) const {
  // Every record walks every tree; work parallelizes across lanes.
  const double hops = spec.records * spec.trees * spec.avg_path_length;
  const double cycles =
      hops * p_.cycles_per_hop + spec.records * p_.cycles_per_record_update;
  const double factor =
      p_.step_factor[static_cast<std::size_t>(StepKind::kTraversal)];
  return factor * cycles / (p_.lanes * p_.clock_hz);
}

perf::Activity CpuLikeModel::train_activity(
    const trace::StepTrace& trace, const trace::WorkloadInfo& info) const {
  perf::Activity act;
  act.sram_energy_per_access_norm = p_.sram_energy_norm;
  const double nominal = static_cast<double>(info.nominal_records);
  for (const auto& e : trace.events()) {
    const double recs = trace.scaled_records(e) * trace.repeat();
    switch (e.kind) {
      case StepKind::kHistogram:
        act.sram_accesses += recs * e.record_fields * 2.0;  // bin RMW
        // Software fetches records row-major; no column format.
        act.dram_bytes +=
            perf::histogram_bytes(
                e, trace.scaled_records(e), info.record_bytes,
                nominal > 0.0 ? trace.scaled_records(e) / nominal : 1.0) *
            trace.repeat();
        break;
      case StepKind::kPartition:
        act.sram_accesses += recs;
        act.dram_bytes += perf::partition_bytes_row(trace.scaled_records(e),
                                                    info.record_bytes,
                                                    e.depth == 0) *
                          trace.repeat();
        break;
      case StepKind::kTraversal:
        act.sram_accesses += recs * e.avg_path_length;
        act.dram_bytes += perf::traversal_bytes_row(trace.scaled_records(e),
                                                    info.record_bytes) *
                          trace.repeat();
        break;
      case StepKind::kSplitSelect:
        act.sram_accesses +=
            static_cast<double>(e.bins_scanned) * trace.repeat();
        break;
    }
  }
  return act;
}

CpuLikeParams sequential_cpu_params() {
  CpuLikeParams p;
  p.name = "Sequential CPU";
  p.lanes = 1.0;
  p.host.cores = 1;
  return p;
}

CpuLikeParams ideal_cpu_params() {
  CpuLikeParams p;
  p.name = "Ideal 32-core";
  p.lanes = 32.0;
  p.sram_energy_norm = 1.0;  // 32 KB L1D reference (Table V)
  return p;
}

CpuLikeParams ideal_gpu_params() {
  CpuLikeParams p;
  p.name = "Ideal GPU";
  // Table V: 64 (64-wide) SMs at 2.2 GHz, but constrained only by 64-way
  // parallelism (perfect SIMT) per the paper's methodology.
  p.lanes = 64.0;
  p.sram_energy_norm = 2.64;  // 96 KB banked Shared Memory
  return p;
}

CpuLikeParams real_cpu_params() {
  CpuLikeParams p = ideal_cpu_params();
  p.name = "Real 32-core";
  // Cache misses on irregular record subsets, histogram-replica reduction,
  // and parallel-section synchronization.
  p.step_factor = {1.7, 1.3, 1.4, 1.6};
  p.per_event_overhead_s = 4e-6;
  return p;
}

CpuLikeParams real_gpu_params() {
  CpuLikeParams p = ideal_gpu_params();
  p.name = "Real GPU";
  // Step 1: read-modify-write bin updates force atomics or privatization
  // (paper SS II-D); contention grows with hot one-hot categorical bins.
  // Step 5 / step 3: SIMT divergence on data-dependent tree paths.
  p.step_factor = {2.5, 1.3, 1.5, 3.0};
  p.hist_penalty_per_onehot = 1.0 / 1500.0;
  // Kernel launches + device-side reductions per node; dominates on small
  // datasets (Mq2008), reproducing the mixed real-GPU results of Fig 11.
  p.per_event_overhead_s = 70e-6;
  return p;
}

}  // namespace booster::baselines
