#include "energy/area_power.h"

namespace booster::energy {

ChipReport AreaPowerModel::estimate(std::uint32_t num_bus) const {
  const double n = static_cast<double>(num_bus);
  ChipReport r;
  r.control = {p_.control_area_mm2_per_bu * n, p_.control_power_w_per_bu * n};
  r.fpu = {p_.fpu_area_mm2_per_bu * n, p_.fpu_power_w_per_bu * n};
  r.sram = {p_.sram_area_mm2_per_bu * n, p_.sram_power_w_per_bu * n};
  return r;
}

double AreaPowerModel::monolithic_sram_area_mm2(std::uint32_t num_bus) const {
  const double banked = p_.sram_area_mm2_per_bu * static_cast<double>(num_bus);
  return banked / p_.banking_area_overhead;
}

double AreaPowerModel::monolithic_sram_power_w(std::uint32_t num_bus) const {
  const double banked = p_.sram_power_w_per_bu * static_cast<double>(num_bus);
  return banked / p_.banking_static_power_overhead;
}

}  // namespace booster::energy
