// Access-energy model (paper §V-D / Fig 10). Mirrors the paper's
// conservative methodology: SRAM energy = access count x per-access cost of
// the configuration's typical SRAM (CACTI-style, normalized per Table V);
// DRAM energy = transferred bytes x per-byte transfer cost. Overheads real
// multicores/GPUs pay (out-of-order cores, register files) are ignored,
// which only understates Booster's advantage.
#pragma once

#include "perf/perf_model.h"

namespace booster::energy {

struct EnergyParams {
  /// Reference per-access energy of the 32 KB L1D (the Table V norm = 1.0
  /// configuration); absolute value from CACTI-7-class numbers at 45 nm.
  double sram_ref_joules_per_access = 10e-12;
  /// HBM-class transfer energy.
  double dram_joules_per_byte = 40e-12;
};

struct EnergyReport {
  double sram_joules = 0.0;
  double dram_joules = 0.0;
  double total() const { return sram_joules + dram_joules; }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) : p_(params) {}

  EnergyReport energy(const perf::Activity& activity) const;

 private:
  EnergyParams p_;
};

}  // namespace booster::energy
