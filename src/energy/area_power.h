// ASIC area/power model (paper §V-G / Table VI): per-component constants
// calibrated to the paper's 45 nm FreePDK45 synthesis of a 50-cluster,
// 3200-BU Booster at 1 GHz -- 60 mm^2 and 23.2 W, 55% of area in SRAM.
// The model exposes scaling in the BU count so design-space benches can
// explore other configurations, and quantifies the banking overhead of the
// sea-of-SRAMs versus one monolithic array (paper: ~1.7x area, ~1.59x
// static power for 3200 banks vs one 6.4 MB bank).
#pragma once

#include <cstdint>

namespace booster::energy {

struct AreaPower {
  double area_mm2 = 0.0;
  double power_w = 0.0;
};

struct ChipReport {
  AreaPower control;
  AreaPower fpu;
  AreaPower sram;
  AreaPower total() const {
    return {control.area_mm2 + fpu.area_mm2 + sram.area_mm2,
            control.power_w + fpu.power_w + sram.power_w};
  }
};

struct AreaPowerParams {
  // Per-BU costs at 45 nm, 1 GHz; defaults reproduce Table VI at 3200 BUs.
  double control_area_mm2_per_bu = 8.4 / 3200.0;
  double control_power_w_per_bu = 4.3 / 3200.0;
  double fpu_area_mm2_per_bu = 18.4 / 3200.0;
  double fpu_power_w_per_bu = 9.5 / 3200.0;
  double sram_area_mm2_per_bu = 33.1 / 3200.0;  // one 2 KB bank + periphery
  double sram_power_w_per_bu = 9.4 / 3200.0;

  // Banked-vs-monolithic comparison factors (paper SS V-G).
  double banking_area_overhead = 1.7;
  double banking_static_power_overhead = 1.59;
};

class AreaPowerModel {
 public:
  explicit AreaPowerModel(AreaPowerParams params = {}) : p_(params) {}

  /// Chip estimate for a Booster instance with `num_bus` BUs.
  ChipReport estimate(std::uint32_t num_bus) const;

  /// Area of a single-bank SRAM with the same total capacity as `num_bus`
  /// 2 KB banks (what the paper compares its 70%-larger banked array to).
  double monolithic_sram_area_mm2(std::uint32_t num_bus) const;
  double monolithic_sram_power_w(std::uint32_t num_bus) const;

 private:
  AreaPowerParams p_;
};

}  // namespace booster::energy
