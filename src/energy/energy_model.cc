#include "energy/energy_model.h"

namespace booster::energy {

EnergyReport EnergyModel::energy(const perf::Activity& activity) const {
  EnergyReport r;
  r.sram_joules = activity.sram_accesses *
                  activity.sram_energy_per_access_norm *
                  p_.sram_ref_joules_per_access;
  r.dram_joules = activity.dram_bytes * p_.dram_joules_per_byte;
  return r;
}

}  // namespace booster::energy
