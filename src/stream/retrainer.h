// Continuous-retraining driver: ingests raw chunks into a ChunkWindow and,
// every `refresh_every_chunks` pushes, retrains on the window's
// materialized view and hands the refreshed ensemble off to serving --
// in-process through serve::ModelSlot::install, or cross-process by saving
// the checked model_io container and POSTing /reload to a live server.
// Warm start (TrainerConfig.init_model) continues boosting from the
// previous generation, so a refresh trains `trainer.num_trees` *new* trees
// on the window instead of a whole ensemble from scratch.
//
// Refreshes are deterministic: the same chunk sequence produces
// bit-identical models at every refresh for any (threads, shards) pairing
// -- the warm-start replay runs the same blocked step-5 traversal the
// trainers use, and histogram accumulation is quantized-exact
// (tests/test_stream.cc asserts the full {1,8} x {1,3} grid).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "gbdt/trainer.h"
#include "gbdt/tree.h"
#include "serve/model_slot.h"
#include "stream/chunk_window.h"
#include "stream/frozen_bin_map.h"

namespace booster::stream {

struct RetrainerConfig {
  /// Per-refresh training config. num_trees counts the trees *added* per
  /// refresh when warm_start is on.
  gbdt::TrainerConfig trainer;
  /// Refresh (retrain + hand off) after every this-many ingested chunks.
  std::uint32_t refresh_every_chunks = 4;
  /// Window capacity in chunks (the training view of the stream).
  std::size_t window_chunks = 8;
  /// Continue boosting from the previous generation (true) or retrain each
  /// generation from scratch on the window (false).
  bool warm_start = true;
  /// When non-empty, every refreshed model is saved here through the
  /// checked model_io container before hand-off.
  std::string save_path;
  /// In-process hand-off: refreshed models are installed here. Optional.
  serve::ModelSlot* slot = nullptr;
  /// Cross-process hand-off: when non-zero, POST /reload {save_path} to a
  /// serve::Server on this loopback port after saving (save_path must be
  /// set -- the server loads the container itself).
  std::uint16_t reload_port = 0;
};

struct RetrainerStats {
  std::uint64_t chunks_ingested = 0;
  std::uint64_t refreshes = 0;
  /// Trees in the latest generation (grows by trainer.num_trees per
  /// refresh under warm start).
  std::uint64_t latest_trees = 0;
  /// Records in the window at the latest refresh.
  std::uint64_t latest_window_records = 0;
  /// Hand-offs that failed (container save, install_from_file, or /reload
  /// round-trip); the refreshed model is still kept as latest().
  std::uint64_t handoff_failures = 0;
};

class Retrainer {
 public:
  Retrainer(const FrozenBinMap& map, RetrainerConfig cfg);

  /// Ingests one raw chunk; runs a refresh when the cadence fires.
  /// Returns true iff this push triggered a refresh.
  bool ingest(const gbdt::Dataset& chunk);

  /// Forces a refresh now (e.g. a final flush); no-op on an empty window.
  /// Returns false when the hand-off failed.
  bool refresh();

  /// The latest refreshed ensemble; nullptr before the first refresh.
  const gbdt::Model* latest() const {
    return latest_.has_value() ? &*latest_ : nullptr;
  }

  const RetrainerStats& stats() const { return stats_; }
  const ChunkWindow& window() const { return window_; }

 private:
  const FrozenBinMap* map_;
  RetrainerConfig cfg_;
  ChunkWindow window_;
  gbdt::BinnedDataset train_arena_;  // reused window materialization
  std::optional<gbdt::Model> latest_;
  std::uint32_t chunks_since_refresh_ = 0;
  RetrainerStats stats_;
};

}  // namespace booster::stream
