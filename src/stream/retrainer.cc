#include "stream/retrainer.h"

#include <utility>

#include "gbdt/model_io.h"
#include "serve/client.h"
#include "util/check.h"

namespace booster::stream {

Retrainer::Retrainer(const FrozenBinMap& map, RetrainerConfig cfg)
    : map_(&map),
      cfg_(std::move(cfg)),
      window_(map, cfg_.window_chunks) {
  BOOSTER_CHECK_MSG(cfg_.refresh_every_chunks > 0,
                    "refresh cadence must be positive");
  BOOSTER_CHECK_MSG(cfg_.reload_port == 0 || !cfg_.save_path.empty(),
                    "cross-process reload needs a save_path for the server "
                    "to load from");
}

bool Retrainer::ingest(const gbdt::Dataset& chunk) {
  window_.push(chunk);
  ++stats_.chunks_ingested;
  if (++chunks_since_refresh_ < cfg_.refresh_every_chunks) return false;
  chunks_since_refresh_ = 0;
  refresh();
  return true;
}

bool Retrainer::refresh() {
  if (window_.size() == 0) return true;
  window_.materialize(&train_arena_);

  gbdt::TrainerConfig tcfg = cfg_.trainer;
  tcfg.init_model =
      (cfg_.warm_start && latest_.has_value()) ? &*latest_ : nullptr;
  gbdt::TrainResult result = gbdt::Trainer(tcfg).train(train_arena_);
  latest_.emplace(std::move(result.model));

  ++stats_.refreshes;
  stats_.latest_trees = latest_->num_trees();
  stats_.latest_window_records = train_arena_.num_records();

  bool ok = true;
  if (!cfg_.save_path.empty()) {
    ok = gbdt::save_model_checked_file(*latest_, cfg_.save_path);
  }
  if (ok && cfg_.slot != nullptr) {
    cfg_.slot->install(latest_->clone());
  }
  if (ok && cfg_.reload_port != 0) {
    serve::BlockingClient client;
    serve::Response resp;
    ok = client.connect(cfg_.reload_port) &&
         client.request("POST", "/reload", cfg_.save_path, &resp) &&
         resp.status == 200;
  }
  if (!ok) ++stats_.handoff_failures;
  return ok;
}

}  // namespace booster::stream
