#include "stream/frozen_bin_map.h"

#include <algorithm>

#include "util/check.h"

namespace booster::stream {

using gbdt::BinIndex;
using gbdt::BinnedDataset;
using gbdt::Dataset;
using gbdt::FieldBins;
using gbdt::FieldKind;

FrozenBinMap::FrozenBinMap(const BinnedDataset& bootstrap) {
  const std::uint32_t num_fields = bootstrap.num_fields();
  BOOSTER_CHECK_MSG(num_fields > 0,
                    "cannot freeze bins from an empty bootstrap");
  fields_.reserve(num_fields);
  std::vector<std::uint32_t> features_per_field(num_fields);
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    fields_.push_back(bootstrap.field_bins(f));
    features_per_field[f] = fields_[f].num_bins;
  }
  layout_ = gbdt::RecordLayout::from_field_features(features_per_field);
}

void FrozenBinMap::reset_out(BinnedDataset* out,
                             std::uint64_t records) const {
  // Resizing the existing vectors keeps their capacity: a recycled chunk
  // arena whose previous chunk was at least this large re-bins without
  // touching the allocator. The stale row-major view (if any) is
  // invalidated, not freed -- the next ensure_row_major() rebuilds it.
  out->num_records_ = records;
  out->fields_ = fields_;
  out->layout_ = layout_;
  out->columns_.resize(fields_.size());
  for (auto& col : out->columns_) col.resize(records);
  out->labels_.resize(records);
  out->row_major_built_.store(false, std::memory_order_relaxed);
}

void FrozenBinMap::bin_chunk(const Dataset& chunk, BinnedDataset* out) const {
  const std::uint32_t num_fields = this->num_fields();
  BOOSTER_CHECK_MSG(chunk.num_fields() == num_fields,
                    "streamed chunk's field count differs from the frozen "
                    "bin map's");
  const std::uint64_t n = chunk.num_records();
  reset_out(out, n);
  for (std::uint64_t r = 0; r < n; ++r) out->labels_[r] = chunk.label(r);
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    const FieldBins& fb = fields_[f];
    BOOSTER_CHECK_MSG(
        (chunk.field(f).kind == FieldKind::kNumeric) ==
            (fb.kind == FieldKind::kNumeric),
        "streamed chunk's field kind differs from the frozen bin map's");
    auto& col = out->columns_[f];
    if (fb.kind == FieldKind::kNumeric) {
      for (std::uint64_t r = 0; r < n; ++r) {
        col[r] = gbdt::numeric_value_bin(chunk.numeric_value(f, r), fb);
      }
    } else {
      for (std::uint64_t r = 0; r < n; ++r) {
        col[r] = gbdt::categorical_value_bin(chunk.categorical_value(f, r), fb);
      }
    }
  }
}

void FrozenBinMap::concat(const std::vector<const BinnedDataset*>& chunks,
                          BinnedDataset* out) const {
  std::uint64_t total = 0;
  for (const BinnedDataset* c : chunks) {
    BOOSTER_CHECK_MSG(c->num_fields() == num_fields(),
                      "window chunk's field count differs from the frozen "
                      "bin map's");
    total += c->num_records();
  }
  BOOSTER_CHECK_MSG(total > 0, "cannot materialize an empty window");
  reset_out(out, total);
  std::uint64_t base = 0;
  for (const BinnedDataset* c : chunks) {
    const std::uint64_t n = c->num_records();
    for (std::uint32_t f = 0; f < num_fields(); ++f) {
      const auto& src = c->column(f);
      std::copy(src.begin(), src.end(), out->columns_[f].begin() + base);
    }
    std::copy(c->labels().begin(), c->labels().end(),
              out->labels_.begin() + base);
    base += n;
  }
}

}  // namespace booster::stream
