#include "stream/chunk_window.h"

#include <utility>

#include "util/check.h"

namespace booster::stream {

ChunkWindow::ChunkWindow(const FrozenBinMap& map, std::size_t max_chunks)
    : map_(&map), max_chunks_(max_chunks) {
  BOOSTER_CHECK_MSG(max_chunks_ > 0, "window must hold at least one chunk");
}

void ChunkWindow::push(const gbdt::Dataset& chunk) {
  gbdt::BinnedDataset arena;
  if (!free_.empty()) {
    arena = std::move(free_.back());
    free_.pop_back();
  } else {
    ++arena_allocations_;
  }
  map_->bin_chunk(chunk, &arena);
  window_.push_back(std::move(arena));
  if (window_.size() > max_chunks_) {
    free_.push_back(std::move(window_.front()));
    window_.pop_front();
  }
  ++pushes_;
}

std::uint64_t ChunkWindow::num_records() const {
  std::uint64_t total = 0;
  for (const auto& c : window_) total += c.num_records();
  return total;
}

void ChunkWindow::materialize(gbdt::BinnedDataset* out) const {
  std::vector<const gbdt::BinnedDataset*> chunks;
  chunks.reserve(window_.size());
  for (const auto& c : window_) chunks.push_back(&c);
  map_->concat(chunks, out);
}

}  // namespace booster::stream
