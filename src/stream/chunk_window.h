// Bounded sliding window of binned chunks with recycled arenas: the
// streaming analogue of the trainer's HistogramPool. Each push bins one
// raw chunk (via the FrozenBinMap) into an arena taken from the free list
// -- evicted chunks return their arenas -- so once the window is full and
// chunk sizes have stabilized, ingestion performs no allocations. The
// counters make that property testable: arena_allocations() must plateau
// while pushes() keeps climbing (tests/test_stream.cc).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/dataset.h"
#include "stream/frozen_bin_map.h"

namespace booster::stream {

class ChunkWindow {
 public:
  /// `max_chunks` bounds the window; the free list never holds more than
  /// one arena per window slot (eviction returns exactly one per push).
  ChunkWindow(const FrozenBinMap& map, std::size_t max_chunks);

  /// Bins `chunk` into a recycled arena and appends it to the window,
  /// evicting the oldest chunk (arena returned to the free list) when the
  /// window is at capacity.
  void push(const gbdt::Dataset& chunk);

  std::size_t size() const { return window_.size(); }
  std::uint64_t num_records() const;
  const gbdt::BinnedDataset& chunk(std::size_t i) const { return window_[i]; }

  /// Concatenates the window's chunks into `*out` (oldest first), reusing
  /// `out`'s arenas -- the training view of the stream's recent past.
  void materialize(gbdt::BinnedDataset* out) const;

  /// Fresh chunk arenas constructed (free-list misses); plateaus at
  /// max_chunks + 1 in steady state.
  std::uint64_t arena_allocations() const { return arena_allocations_; }
  std::uint64_t pushes() const { return pushes_; }

 private:
  const FrozenBinMap* map_;
  std::size_t max_chunks_;
  std::deque<gbdt::BinnedDataset> window_;
  std::vector<gbdt::BinnedDataset> free_;
  std::uint64_t arena_allocations_ = 0;
  std::uint64_t pushes_ = 0;
};

}  // namespace booster::stream
