// Out-of-core binning for streamed data (ROADMAP "streaming ingestion"):
// bin metadata is frozen once from a bootstrap chunk's BinnedDataset and
// then applied chunk by chunk to later arrivals. Per-value binning goes
// through the *same* shared rules training and serving use
// (gbdt::numeric_value_bin / gbdt::categorical_value_bin), so a streamed
// row can never bin differently than a one-shot Binner::bin pass or a
// serving request with identical values -- chunked binning is
// EXPECT_EQ-equivalent to one-shot binning at any chunk grouping
// (tests/test_stream.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/dataset.h"

namespace booster::stream {

class FrozenBinMap {
 public:
  /// Freezes the per-field bin metadata (kinds, bin counts, numeric upper
  /// boundaries) of an already-binned bootstrap chunk. The bootstrap is
  /// typically Binner::bin over the first arrival; the map outlives it.
  explicit FrozenBinMap(const gbdt::BinnedDataset& bootstrap);

  std::uint32_t num_fields() const {
    return static_cast<std::uint32_t>(fields_.size());
  }
  const gbdt::FieldBins& field_bins(std::uint32_t f) const {
    return fields_[f];
  }

  /// Bins one raw chunk against the frozen metadata into `*out`, reusing
  /// `out`'s column and label arenas (their capacity survives, so a
  /// recycled chunk arena makes this allocation-free in steady state).
  /// The chunk's schema must match the frozen one field for field.
  void bin_chunk(const gbdt::Dataset& chunk, gbdt::BinnedDataset* out) const;

  /// Concatenates binned chunks (each produced by bin_chunk or an
  /// equivalent one-shot pass) into `*out` in order, reusing `out`'s
  /// arenas. The result is bit-identical to bin_chunk over the row-wise
  /// concatenation of the raw chunks -- per-value binning is stateless, so
  /// chunk boundaries cannot show through.
  void concat(const std::vector<const gbdt::BinnedDataset*>& chunks,
              gbdt::BinnedDataset* out) const;

 private:
  /// Resets `*out` to `records` rows of this map's shape, reusing arenas.
  void reset_out(gbdt::BinnedDataset* out, std::uint64_t records) const;

  std::vector<gbdt::FieldBins> fields_;
  gbdt::RecordLayout layout_;
};

}  // namespace booster::stream
