#include "ipc/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "util/check.h"

namespace booster::ipc {

namespace {

constexpr std::chrono::milliseconds kConnectRetry{2};

/// Total stall budget for one frame write. Transport sends are
/// best-effort by contract, so a peer that stops draining its socket
/// (e.g. an adopted worker rank 0 no longer reads from, wedged in its
/// own full send buffer) must bound the sender's stall instead of
/// deadlocking the world; the reliable layer heals a dropped frame the
/// next time both sides talk.
constexpr std::chrono::milliseconds kSendStallBudget{2000};

bool write_fully(int fd, const std::uint8_t* data, std::size_t size) {
  const auto deadline = std::chrono::steady_clock::now() + kSendStallBudget;
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that died mid-run must surface as a failed
    // send (the retry/adoption path), not as a SIGPIPE process kill.
    // MSG_DONTWAIT + poll: bounded, so a non-draining peer cannot wedge
    // the sender forever.
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      data += n;
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      return false;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    ::poll(&pfd, 1, static_cast<int>(remaining.count()));
  }
  return true;
}

/// Reads whatever is available on fd (blocking up to the poll deadline)
/// and appends it to rx. Returns kOk when bytes arrived, kTimeout or
/// kClosed otherwise.
RecvStatus read_some(int fd, std::vector<std::uint8_t>* rx,
                     std::chrono::steady_clock::time_point deadline) {
  const auto now = std::chrono::steady_clock::now();
  const auto remaining =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int pr = ::poll(&pfd, 1, remaining.count() > 0
                                    ? static_cast<int>(remaining.count())
                                    : 0);
  if (pr == 0) return RecvStatus::kTimeout;
  if (pr < 0) return errno == EINTR ? RecvStatus::kTimeout : RecvStatus::kClosed;
  std::uint8_t buf[4096];
  const ssize_t n = ::read(fd, buf, sizeof(buf));
  if (n < 0) return errno == EINTR ? RecvStatus::kTimeout : RecvStatus::kClosed;
  if (n == 0) return RecvStatus::kClosed;
  rx->insert(rx->end(), buf, buf + n);
  return RecvStatus::kOk;
}

bool fill_addr(const std::string& path, sockaddr_un* addr) {
  if (path.size() + 1 > sizeof(addr->sun_path)) return false;
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

SocketTransport::SocketTransport(std::uint32_t world_size, std::uint32_t rank)
    : world_size_(world_size),
      rank_(rank),
      fds_(world_size, -1),
      rx_(world_size) {}

SocketTransport::~SocketTransport() {
  for (const int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::unique_ptr<SocketTransport> SocketTransport::serve(
    const std::string& path, std::uint32_t world_size,
    std::chrono::milliseconds timeout) {
  BOOSTER_CHECK_MSG(world_size >= 1, "socket world needs at least one rank");
  auto t = std::unique_ptr<SocketTransport>(
      new SocketTransport(world_size, /*rank=*/0));
  if (world_size == 1) return t;  // nothing to accept
  sockaddr_un addr;
  if (!fill_addr(path, &addr)) return nullptr;
  t->listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (t->listen_fd_ < 0) return nullptr;
  ::unlink(path.c_str());
  if (::bind(t->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(t->listen_fd_, static_cast<int>(world_size)) < 0) {
    return nullptr;
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (std::uint32_t accepted = 0; accepted + 1 < world_size; ++accepted) {
    struct pollfd pfd {};
    pfd.fd = t->listen_fd_;
    pfd.events = POLLIN;
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0 ||
        ::poll(&pfd, 1, static_cast<int>(remaining.count())) <= 0) {
      return nullptr;
    }
    const int fd = ::accept(t->listen_fd_, nullptr, nullptr);
    if (fd < 0) return nullptr;
    // 4-byte little-endian hello: the connecting rank's id.
    std::uint8_t hello[4];
    std::size_t got = 0;
    while (got < 4) {
      const ssize_t n = ::read(fd, hello + got, 4 - got);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        ::close(fd);
        return nullptr;
      }
      got += static_cast<std::size_t>(n);
    }
    std::uint32_t peer = 0;
    for (int i = 0; i < 4; ++i) {
      peer |= static_cast<std::uint32_t>(hello[i]) << (8 * i);
    }
    BOOSTER_CHECK_MSG(peer >= 1 && peer < world_size && t->fds_[peer] < 0,
                      "socket transport: malformed or duplicate hello");
    t->fds_[peer] = fd;
  }
  return t;
}

std::unique_ptr<SocketTransport> SocketTransport::connect(
    const std::string& path, std::uint32_t world_size, std::uint32_t rank,
    std::chrono::milliseconds timeout) {
  BOOSTER_CHECK_MSG(rank >= 1 && rank < world_size,
                    "socket transport: worker rank out of range");
  sockaddr_un addr;
  if (!fill_addr(path, &addr)) return nullptr;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  int fd = -1;
  for (;;) {
    fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return nullptr;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    if (std::chrono::steady_clock::now() >= deadline) return nullptr;
    std::this_thread::sleep_for(kConnectRetry);
  }
  std::uint8_t hello[4];
  for (int i = 0; i < 4; ++i) {
    hello[i] = static_cast<std::uint8_t>(rank >> (8 * i));
  }
  if (!write_fully(fd, hello, 4)) {
    ::close(fd);
    return nullptr;
  }
  auto t = std::unique_ptr<SocketTransport>(
      new SocketTransport(world_size, rank));
  t->fds_[0] = fd;
  return t;
}

int SocketTransport::peer_fd(std::uint32_t peer) const {
  if (peer >= world_size_ || peer == rank_) return -1;
  if (rank_ != 0 && peer != 0) return -1;  // star topology: via rank 0 only
  return fds_[peer];
}

bool SocketTransport::send(std::uint32_t dst,
                           std::span<const std::uint8_t> frame) {
  const int fd = peer_fd(dst);
  if (fd < 0) return false;
  std::vector<std::uint8_t> buf;
  buf.reserve(4 + frame.size());
  const std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  buf.insert(buf.end(), frame.begin(), frame.end());
  if (!write_fully(fd, buf.data(), buf.size())) {
    // The write may have stalled out mid-frame, which would desync the
    // length-prefixed stream; poison the connection so both sides see a
    // cleanly closed channel instead of garbled frames.
    ::close(fds_[dst]);
    fds_[dst] = -1;
    return false;
  }
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  return true;
}

RecvStatus SocketTransport::recv(std::uint32_t src,
                                 std::vector<std::uint8_t>* frame,
                                 std::chrono::milliseconds timeout) {
  const int fd = peer_fd(src);
  if (fd < 0) return RecvStatus::kClosed;
  std::vector<std::uint8_t>& rx = rx_[src];
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (rx.size() >= 4) {
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(rx[i]) << (8 * i);
      }
      // A desynced stream prefix (outside the codec's CRC) must not turn
      // into a huge buffered read; the stream cannot resynchronize.
      if (len > kMaxFrameBytes) return RecvStatus::kClosed;
      if (rx.size() >= 4 + static_cast<std::size_t>(len)) {
        frame->assign(rx.begin() + 4, rx.begin() + 4 + len);
        rx.erase(rx.begin(), rx.begin() + 4 + len);
        ++stats_.frames_received;
        stats_.bytes_received += len;
        return RecvStatus::kOk;
      }
    }
    const RecvStatus st = read_some(fd, &rx, deadline);
    if (st == RecvStatus::kClosed) return st;
    if (st == RecvStatus::kTimeout &&
        std::chrono::steady_clock::now() >= deadline) {
      return RecvStatus::kTimeout;
    }
  }
}

}  // namespace booster::ipc
