#include "ipc/file_transport.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "util/check.h"

namespace booster::ipc {

namespace {

/// Polling interval while waiting for the writer's next frame. Polling is
/// the price of a transport with no kernel rendezvous at all; the sleep
/// yields the core, which matters on single-core CI runners where the
/// writer thread otherwise never gets scheduled.
constexpr std::chrono::microseconds kPollInterval{500};

constexpr std::uint8_t kSpoolMagic[4] = {'B', 'S', 'P', 'L'};
constexpr std::uint32_t kSpoolVersion = 1;
constexpr std::size_t kSpoolHeaderBytes = 16;

void encode_spool_header(std::uint64_t epoch,
                         std::uint8_t out[kSpoolHeaderBytes]) {
  std::memcpy(out, kSpoolMagic, 4);
  for (int i = 0; i < 4; ++i) {
    out[4 + i] = static_cast<std::uint8_t>(kSpoolVersion >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    out[8 + i] = static_cast<std::uint8_t>(epoch >> (8 * i));
  }
}

bool write_fully(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool pread_fully(int fd, std::uint8_t* data, std::size_t size,
                 std::uint64_t offset) {
  while (size > 0) {
    const ssize_t n = ::pread(fd, data, size, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // short file: frame not fully spooled yet
    data += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
  return true;
}

}  // namespace

FileTransport::FileTransport(std::string dir, std::uint32_t world_size,
                             std::uint32_t rank, FileTransportOptions opts)
    : dir_(std::move(dir)),
      world_size_(world_size),
      rank_(rank),
      opts_(opts),
      write_fds_(world_size, -1),
      read_fds_(world_size, -1),
      read_offsets_(world_size, kSpoolHeaderBytes),
      header_seen_(world_size, 0) {
  BOOSTER_CHECK_MSG(rank < world_size, "file-transport rank out of range");
  // Best effort: the first rank to arrive creates the spool directory.
  ::mkdir(dir_.c_str(), 0777);
}

FileTransport::~FileTransport() {
  for (const int fd : write_fds_) {
    if (fd >= 0) ::close(fd);
  }
  for (const int fd : read_fds_) {
    if (fd >= 0) ::close(fd);
  }
  if (opts_.cleanup_own_files) {
    // Each rank removes only the spools it wrote; the last rank out takes
    // the (now empty) directory with it. Best effort throughout.
    for (std::uint32_t dst = 0; dst < world_size_; ++dst) {
      if (dst != rank_) ::unlink(spool_path(rank_, dst).c_str());
    }
    ::rmdir(dir_.c_str());
  }
}

std::string FileTransport::spool_path(std::uint32_t src,
                                      std::uint32_t dst) const {
  return dir_ + "/msg-" + std::to_string(src) + "-to-" + std::to_string(dst) +
         ".spool";
}

bool FileTransport::ensure_write_header(int fd) {
  std::uint8_t hdr[kSpoolHeaderBytes];
  const ssize_t n = ::pread(fd, hdr, kSpoolHeaderBytes, 0);
  if (n < 0) return false;
  if (n == static_cast<ssize_t>(kSpoolHeaderBytes)) {
    std::uint8_t want[kSpoolHeaderBytes];
    encode_spool_header(opts_.run_epoch, want);
    if (std::memcmp(hdr, want, kSpoolHeaderBytes) == 0) {
      return true;  // our own run's spool (endpoint re-opened): append
    }
  }
  // Empty, short, or stale-epoch spool: recycle it for this run.
  if (n != 0 && ::ftruncate(fd, 0) != 0) return false;
  std::uint8_t fresh[kSpoolHeaderBytes];
  encode_spool_header(opts_.run_epoch, fresh);
  return write_fully(fd, fresh, kSpoolHeaderBytes);  // O_APPEND: lands at 0
}

RecvStatus FileTransport::check_read_header(std::uint32_t src) {
  if (header_seen_[src]) return RecvStatus::kOk;
  std::uint8_t hdr[kSpoolHeaderBytes];
  if (!pread_fully(read_fds_[src], hdr, kSpoolHeaderBytes, 0)) {
    return RecvStatus::kTimeout;  // header still being spooled
  }
  if (std::memcmp(hdr, kSpoolMagic, 4) != 0) {
    return RecvStatus::kClosed;  // not a spool file at all
  }
  std::uint8_t want[kSpoolHeaderBytes];
  encode_spool_header(opts_.run_epoch, want);
  if (std::memcmp(hdr, want, kSpoolHeaderBytes) != 0) {
    // Version or epoch mismatch: a stale spool from an earlier run. Its
    // frames must never surface in this run; wait for the writer to
    // truncate and restamp it (or time out, if it never shows up).
    return RecvStatus::kTimeout;
  }
  header_seen_[src] = 1;
  return RecvStatus::kOk;
}

bool FileTransport::send(std::uint32_t dst,
                         std::span<const std::uint8_t> frame) {
  if (dst >= world_size_ || dst == rank_) return false;
  int& fd = write_fds_[dst];
  if (fd < 0) {
    fd = ::open(spool_path(rank_, dst).c_str(),
                O_CREAT | O_RDWR | O_APPEND | O_CLOEXEC, 0666);
    if (fd < 0) return false;
    if (!ensure_write_header(fd)) {
      ::close(fd);
      fd = -1;
      return false;
    }
  }
  // One buffered write per frame: the reader tolerates partially spooled
  // frames (it waits for the length prefix to be satisfied), but a single
  // write keeps the window tiny.
  std::vector<std::uint8_t> buf;
  buf.reserve(4 + frame.size());
  const std::uint32_t len = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  buf.insert(buf.end(), frame.begin(), frame.end());
  if (!write_fully(fd, buf.data(), buf.size())) return false;
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  return true;
}

RecvStatus FileTransport::recv(std::uint32_t src,
                               std::vector<std::uint8_t>* frame,
                               std::chrono::milliseconds timeout) {
  if (src >= world_size_ || src == rank_) return RecvStatus::kClosed;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  int& fd = read_fds_[src];
  std::uint64_t& offset = read_offsets_[src];
  for (;;) {
    if (fd < 0) {
      fd = ::open(spool_path(src, rank_).c_str(), O_RDONLY | O_CLOEXEC);
    }
    if (fd >= 0) {
      const RecvStatus header = check_read_header(src);
      if (header == RecvStatus::kClosed) return header;
      if (header == RecvStatus::kOk) {
        std::uint8_t len_bytes[4];
        if (pread_fully(fd, len_bytes, 4, offset)) {
          std::uint32_t len = 0;
          for (int i = 0; i < 4; ++i) {
            len |= static_cast<std::uint32_t>(len_bytes[i]) << (8 * i);
          }
          // A corrupted spool (the prefix is outside the codec's CRC) must
          // not turn into a huge allocation; the channel is unusable.
          if (len > kMaxFrameBytes) return RecvStatus::kClosed;
          frame->resize(len);
          if (len == 0 || pread_fully(fd, frame->data(), len, offset + 4)) {
            offset += 4 + len;
            ++stats_.frames_received;
            stats_.bytes_received += len;
            return RecvStatus::kOk;
          }
        }
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return RecvStatus::kTimeout;
    }
    std::this_thread::sleep_for(kPollInterval);
  }
}

}  // namespace booster::ipc
