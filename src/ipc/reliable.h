// Reliable, ordered, typed messaging over an unreliable frame Transport --
// the retry protocol of the distributed trainer. Per directed peer pair:
//
//   * every data message carries a sequence number (1, 2, ...) and the
//     frame CRC from ipc::HistogramCodec;
//   * the receiver delivers strictly in sequence order: duplicates are
//     dropped, out-of-order frames are parked until the gap fills, and a
//     gap, timeout, or corrupt frame triggers a kNack control frame
//     re-requesting everything from the first missing sequence number;
//   * the sender keeps a bounded window of sent frames and retransmits on
//     nack (re-requests beyond the window mean the protocol lost sync and
//     abort loudly);
//   * liveness is *deadline-based* on the monotonic clock: recv() gives
//     up only when the peer has shown no sign of life -- no frame of any
//     kind, heartbeats included -- for `liveness_timeout`, at which point
//     the caller declares the peer dead (the distributed trainer then
//     re-executes the dead worker's shards). An attempt-count cap remains
//     as a backstop, but the deadline is the contract: a slow link that
//     keeps delivering *something* is never confused with a dead peer,
//     and a dead peer is detected within one liveness window regardless
//     of how many attempts fit into it;
//   * with `heartbeat_interval` > 0, a rank blocked in recv() (and only
//     then -- a rank busy building histograms does not service its
//     channel) periodically sends kHeartbeat control frames to every peer
//     it has talked to, so two ranks blocked on *different* conversations
//     keep each other's liveness deadlines fresh.
//
// Nack and heartbeat frames are themselves unacknowledged (seq 0): a
// lost nack is re-sent on the next timeout, a duplicate nack at worst
// causes a duplicate retransmission (absorbed by the sequence numbers),
// and heartbeats carry no state at all.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "ipc/codec.h"
#include "ipc/transport.h"

namespace booster::ipc {

struct ReliableConfig {
  /// One blocking receive attempt per nack round.
  std::chrono::milliseconds recv_timeout{250};
  /// The liveness deadline: recv() declares the peer dead once it has
  /// seen no frame from it -- data, nack, duplicate, or heartbeat -- for
  /// this long (measured on the monotonic clock from recv() entry,
  /// refreshed by every sign of life). Without heartbeats the deadline
  /// must cover the peer's longest compute phase between messages; with
  /// heartbeat_interval > 0 a blocked-but-alive peer stays fresh and the
  /// deadline can be tightened to a few heartbeat intervals. Time to
  /// detect a dead peer is bounded by liveness_timeout + recv_timeout
  /// (one in-flight attempt finishes before the deadline is checked).
  std::chrono::milliseconds liveness_timeout{10000};
  /// Backstop cap on recv() attempts (one nack round each). 0 disables
  /// the cap (deadline-only). The default is sized so the deadline, not
  /// the count, governs at the default recv_timeout; tests that want an
  /// attempt-counted death (legacy behavior) set it low explicitly.
  std::uint32_t max_attempts = 400;
  /// Heartbeat cadence while blocked in recv(); 0 disables heartbeats
  /// (the default -- fault-injection schedules stay deterministic).
  /// Enable for elastic TCP worlds, where a tight liveness_timeout needs
  /// a sign of life that flows even mid-computation of third ranks.
  std::chrono::milliseconds heartbeat_interval{0};
  /// Sent frames kept per peer for retransmission, bounded by count and
  /// by bytes (shard histograms are the big frames; the protocol is
  /// lock-stepped a few messages deep, so the byte cap trims dead weight
  /// without ever dropping a frame a live peer could still re-request --
  /// a re-request beyond the window aborts loudly, never silently).
  std::uint32_t resend_window = 512;
  std::uint64_t resend_window_bytes = 32ull << 20;
  /// Attempt budget for shutdown-barrier receives (the goodbye handshake):
  /// long enough to heal a live peer's lost tail frames -- each heal
  /// round costs one attempt -- but bounded, because a peer that already
  /// exited leaves nothing to wait for.
  std::uint32_t shutdown_attempts = 16;
};

struct ReliableStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t retransmits = 0;      // frames re-sent on nack
  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t corrupt_frames = 0;   // frames failing HistogramCodec checks
  std::uint64_t parked_frames = 0;    // out-of-order frames buffered
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  /// recv() give-ups under the liveness deadline / attempt backstop
  /// (shutdown-barrier receives excluded -- those time out by design).
  std::uint64_t peers_declared_dead = 0;
  /// Milliseconds from recv() entry to the give-up that declared the
  /// last/slowest dead peer: the measured time-to-detect-failure, which
  /// the tests assert against the configured liveness deadline.
  double last_detect_ms = 0.0;
  double max_detect_ms = 0.0;
};

class ReliableChannel {
 public:
  /// Borrows `transport` (not owned). One ReliableChannel per rank,
  /// multiplexing all of that rank's peers; drive it from one thread.
  explicit ReliableChannel(Transport* transport, ReliableConfig cfg = {});

  Transport* transport() { return transport_; }
  const ReliableConfig& config() const { return cfg_; }

  /// Sends one typed message to `dst` (assigns the next sequence number
  /// and records the frame for retransmission).
  void send(std::uint32_t dst, MessageType type,
            std::span<const std::uint8_t> payload);

  /// Receives the next in-order message from `src`. Returns false when
  /// the peer showed no sign of life through cfg.liveness_timeout (or
  /// exhausted the cfg.max_attempts backstop) -- the caller's cue to
  /// declare it dead. With `attempts_override` non-zero the call is
  /// attempt-counted instead (legacy semantics; the shutdown barrier's
  /// bounded wait). Control frames (nacks, heartbeats) from `src` are
  /// handled internally and never surface.
  bool recv(std::uint32_t src, Frame* out, std::uint32_t attempts_override = 0);

  /// Forgets all per-peer protocol state for `rank` (tx window, sequence
  /// numbers, parked frames): the elastic trainer's reset when a new
  /// worker incarnation takes over the rank slot.
  void reset_peer(std::uint32_t rank);

  const ReliableStats& stats() const { return stats_; }

 private:
  struct PeerTx {
    std::uint64_t next_seq = 1;
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> window;
    std::uint64_t window_bytes = 0;
  };
  struct PeerRx {
    std::uint64_t expected_seq = 1;
    std::map<std::uint64_t, Frame> parked;  // out-of-order, keyed by seq
  };

  void send_nack(std::uint32_t dst, std::uint64_t from_seq);
  void handle_nack(std::uint32_t src, const Frame& frame);
  /// Sends kHeartbeat to every active peer whose cadence is due.
  void maybe_heartbeat();
  /// Pulls transport frames from src until one data frame is deliverable
  /// or the timeout lapses. Any frame from src -- deliverable or not --
  /// refreshes *last_life.
  RecvStatus pump(std::uint32_t src, Frame* out,
                  std::chrono::milliseconds timeout,
                  std::chrono::steady_clock::time_point* last_life);

  Transport* transport_;
  ReliableConfig cfg_;
  std::vector<PeerTx> tx_;
  std::vector<PeerRx> rx_;
  /// Peers this channel has sent to or received from: the heartbeat
  /// recipients (a rank never talked to gets no sign of life).
  std::vector<std::uint8_t> peer_active_;
  std::vector<std::chrono::steady_clock::time_point> heartbeat_sent_;
  ReliableStats stats_;
};

}  // namespace booster::ipc
