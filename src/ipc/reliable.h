// Reliable, ordered, typed messaging over an unreliable frame Transport --
// the retry protocol of the distributed trainer. Per directed peer pair:
//
//   * every data message carries a sequence number (1, 2, ...) and the
//     frame CRC from ipc::HistogramCodec;
//   * the receiver delivers strictly in sequence order: duplicates are
//     dropped, out-of-order frames are parked until the gap fills, and a
//     gap, timeout, or corrupt frame triggers a kNack control frame
//     re-requesting everything from the first missing sequence number;
//   * the sender keeps a bounded window of sent frames and retransmits on
//     nack (re-requests beyond the window mean the protocol lost sync and
//     abort loudly);
//   * recv() makes at most `max_attempts` timed attempts before giving up,
//     at which point the caller declares the peer dead (the distributed
//     trainer then re-executes the dead worker's shards on rank 0).
//
// Nack frames are themselves unacknowledged (seq 0): a lost nack is
// re-sent on the next timeout, and a duplicate nack at worst causes a
// duplicate retransmission, which the sequence numbers absorb.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "ipc/codec.h"
#include "ipc/transport.h"

namespace booster::ipc {

struct ReliableConfig {
  /// One blocking receive attempt per nack round.
  std::chrono::milliseconds recv_timeout{250};
  /// Attempts per recv() before the peer is declared unresponsive.
  /// NOTE: recv_timeout x max_attempts is also the *liveness* budget --
  /// there is no heartbeat side-channel (a rank busy building histograms
  /// does not service its channel), so the budget must cover the peer's
  /// longest compute phase between messages. Size it for the workload:
  /// a slow-but-alive worker that overruns it is declared dead and its
  /// shards re-executed (correct but wasteful); a worker whose
  /// coordinator overruns it aborts loudly.
  std::uint32_t max_attempts = 40;
  /// Sent frames kept per peer for retransmission, bounded by count and
  /// by bytes (shard histograms are the big frames; the protocol is
  /// lock-stepped a few messages deep, so the byte cap trims dead weight
  /// without ever dropping a frame a live peer could still re-request --
  /// a re-request beyond the window aborts loudly, never silently).
  std::uint32_t resend_window = 512;
  std::uint64_t resend_window_bytes = 32ull << 20;
  /// Attempt budget for shutdown-barrier receives (the goodbye handshake):
  /// long enough to heal a live peer's lost tail frames -- each heal
  /// round costs one attempt -- but bounded, because a peer that already
  /// exited leaves nothing to wait for.
  std::uint32_t shutdown_attempts = 16;
};

struct ReliableStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t retransmits = 0;      // frames re-sent on nack
  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t corrupt_frames = 0;   // frames failing HistogramCodec checks
  std::uint64_t parked_frames = 0;    // out-of-order frames buffered
};

class ReliableChannel {
 public:
  /// Borrows `transport` (not owned). One ReliableChannel per rank,
  /// multiplexing all of that rank's peers; drive it from one thread.
  explicit ReliableChannel(Transport* transport, ReliableConfig cfg = {});

  Transport* transport() { return transport_; }
  const ReliableConfig& config() const { return cfg_; }

  /// Sends one typed message to `dst` (assigns the next sequence number
  /// and records the frame for retransmission).
  void send(std::uint32_t dst, MessageType type,
            std::span<const std::uint8_t> payload);

  /// Receives the next in-order message from `src`. Returns false when
  /// the peer stayed unresponsive through the attempt budget
  /// (cfg.max_attempts, or `attempts_override` when non-zero) -- the
  /// caller's cue to declare it dead. Control frames (nacks) from `src`
  /// are handled internally and never surface.
  bool recv(std::uint32_t src, Frame* out, std::uint32_t attempts_override = 0);

  const ReliableStats& stats() const { return stats_; }

 private:
  struct PeerTx {
    std::uint64_t next_seq = 1;
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> window;
    std::uint64_t window_bytes = 0;
  };
  struct PeerRx {
    std::uint64_t expected_seq = 1;
    std::map<std::uint64_t, Frame> parked;  // out-of-order, keyed by seq
  };

  void send_nack(std::uint32_t dst, std::uint64_t from_seq);
  void handle_nack(std::uint32_t src, const Frame& frame);
  /// Pulls transport frames from src until one data frame is deliverable
  /// or the timeout lapses.
  RecvStatus pump(std::uint32_t src, Frame* out,
                  std::chrono::milliseconds timeout);

  Transport* transport_;
  ReliableConfig cfg_;
  std::vector<PeerTx> tx_;
  std::vector<PeerRx> rx_;
  ReliableStats stats_;
};

}  // namespace booster::ipc
