#include "ipc/poller.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>

#include "util/check.h"

namespace booster::ipc {

namespace {

std::uint32_t interest_mask(bool want_read, bool want_write) {
  std::uint32_t events = EPOLLRDHUP;  // half-closed peers surface as events
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}

}  // namespace

Poller::Poller() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  BOOSTER_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool Poller::add(int fd, std::uint64_t tag, bool want_read, bool want_write) {
  struct epoll_event ev {};
  ev.events = interest_mask(want_read, want_write);
  ev.data.u64 = tag;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool Poller::modify(int fd, std::uint64_t tag, bool want_read,
                    bool want_write) {
  struct epoll_event ev {};
  ev.events = interest_mask(want_read, want_write);
  ev.data.u64 = tag;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Poller::remove(int fd) {
  struct epoll_event ev {};  // ignored for DEL; non-null for old kernels
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
}

int Poller::wait(std::chrono::milliseconds timeout, std::vector<Event>* out) {
  out->clear();
  struct epoll_event raw[64];
  const int timeout_ms =
      timeout.count() < 0 ? 0 : static_cast<int>(timeout.count());
  const int n = ::epoll_wait(epoll_fd_, raw, 64, timeout_ms);
  if (n < 0) {
    // EINTR is a non-event: the caller's deadline loop decides whether to
    // retry. Anything else is a programming error worth failing loudly.
    BOOSTER_CHECK_MSG(errno == EINTR, "epoll_wait failed");
    return 0;
  }
  out->reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event e;
    e.tag = raw[i].data.u64;
    e.readable = (raw[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0;
    e.writable = (raw[i].events & EPOLLOUT) != 0;
    e.hangup = (raw[i].events & (EPOLLRDHUP | EPOLLHUP)) != 0;
    e.error = (raw[i].events & EPOLLERR) != 0;
    out->push_back(e);
  }
  return n;
}

}  // namespace booster::ipc
