#include "ipc/poller.h"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"

namespace booster::ipc {

namespace {

std::uint32_t interest_mask(bool want_read, bool want_write) {
  std::uint32_t events = EPOLLRDHUP;  // half-closed peers surface as events
  if (want_read) events |= EPOLLIN;
  if (want_write) events |= EPOLLOUT;
  return events;
}

}  // namespace

Poller::Poller() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  BOOSTER_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool Poller::add(int fd, std::uint64_t tag, bool want_read, bool want_write) {
  struct epoll_event ev {};
  ev.events = interest_mask(want_read, want_write);
  ev.data.u64 = tag;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool Poller::modify(int fd, std::uint64_t tag, bool want_read,
                    bool want_write) {
  struct epoll_event ev {};
  ev.events = interest_mask(want_read, want_write);
  ev.data.u64 = tag;
  return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Poller::remove(int fd) {
  struct epoll_event ev {};  // ignored for DEL; non-null for old kernels
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev);
}

int Poller::wait(std::chrono::milliseconds timeout, std::vector<Event>* out) {
  out->clear();
  struct epoll_event raw[64];
  const int timeout_ms =
      timeout.count() < 0 ? 0 : static_cast<int>(timeout.count());
  const int n = ::epoll_wait(epoll_fd_, raw, 64, timeout_ms);
  if (n < 0) {
    // EINTR is a non-event: the caller's deadline loop decides whether to
    // retry. Anything else is a programming error worth failing loudly.
    BOOSTER_CHECK_MSG(errno == EINTR, "epoll_wait failed");
    return 0;
  }
  out->reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Event e;
    e.tag = raw[i].data.u64;
    e.readable = (raw[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0;
    e.writable = (raw[i].events & EPOLLOUT) != 0;
    e.hangup = (raw[i].events & (EPOLLRDHUP | EPOLLHUP)) != 0;
    e.error = (raw[i].events & EPOLLERR) != 0;
    out->push_back(e);
  }
  return n;
}

int listen_tcp_loopback(std::uint16_t port, std::uint16_t* bound_port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 128) != 0) {
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      ::close(fd);
      return -1;
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int accept_nonblocking(int listen_fd) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return fd;
    // A connection that died in the accept queue is not "queue drained":
    // keep going so a burst of arrivals behind it is not stranded until
    // the next readiness event.
    if (errno == ECONNABORTED || errno == EINTR) continue;
    return -1;
  }
}

TimerFd::TimerFd() {
  fd_ = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  BOOSTER_CHECK_MSG(fd_ >= 0, "timerfd_create failed");
}

TimerFd::~TimerFd() {
  if (fd_ >= 0) ::close(fd_);
}

void TimerFd::arm_once(std::chrono::microseconds delay) {
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(delay).count();
  itimerspec spec{};
  // An all-zero it_value means "disarm" to timerfd; a caller arming with
  // zero (or negative) delay means "fire now", so clamp to 1ns.
  const long long clamped = ns > 0 ? ns : 1;
  spec.it_value.tv_sec = static_cast<time_t>(clamped / 1000000000LL);
  spec.it_value.tv_nsec = static_cast<long>(clamped % 1000000000LL);
  BOOSTER_CHECK(::timerfd_settime(fd_, 0, &spec, nullptr) == 0);
}

void TimerFd::disarm() {
  itimerspec spec{};
  BOOSTER_CHECK(::timerfd_settime(fd_, 0, &spec, nullptr) == 0);
}

std::uint64_t TimerFd::consume() {
  std::uint64_t expirations = 0;
  const ssize_t n = ::read(fd_, &expirations, sizeof(expirations));
  return n == sizeof(expirations) ? expirations : 0;
}

WakeFd::WakeFd() {
  fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  BOOSTER_CHECK_MSG(fd_ >= 0, "eventfd failed");
}

WakeFd::~WakeFd() {
  if (fd_ >= 0) ::close(fd_);
}

void WakeFd::notify() {
  const std::uint64_t one = 1;
  // The counter saturating (EAGAIN) still leaves the fd readable, which
  // is all a wake-up needs; nothing to handle.
  [[maybe_unused]] const ssize_t n = ::write(fd_, &one, sizeof(one));
}

std::uint64_t WakeFd::drain() {
  std::uint64_t count = 0;
  const ssize_t n = ::read(fd_, &count, sizeof(count));
  return n == sizeof(count) ? count : 0;
}

}  // namespace booster::ipc
