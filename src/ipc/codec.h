// Wire format of the cross-process training protocol (gbdt::
// DistributedTrainer): a versioned, length-prefixed, checksummed frame
// carrying one typed message -- per-node shard histograms, split decisions,
// finished trees, per-tree loss terms, and the control traffic of the
// retry protocol (ipc::ReliableChannel).
//
// The layout is *golden*: every integer and every IEEE-754 double is
// serialized little-endian byte by byte (doubles as their uint64 bit
// pattern), so histograms and split decisions cross the wire bit-exactly
// -- the property the distributed trainer's bit-identity contract rests on
// -- and the byte stream is identical on every host. tests/test_ipc_codec.cc
// pins the layout against literal byte arrays.
//
// Frame layout (kHeaderBytes = 24, all little-endian):
//   [0..3]   magic 'B' 'S' 'T' 'R'
//   [4..5]   wire version (kWireVersion)
//   [6]      message type (MessageType)
//   [7]      reserved (0)
//   [8..15]  sequence number (assigned by ReliableChannel; 0 = control)
//   [16..19] payload length in bytes
//   [20..23] CRC-32 (IEEE reflected, poly 0xEDB88320) over header bytes
//            [0..19] followed by the payload -- the checksum covers the
//            sequence number and type, not just the payload bytes
//   [24..]   payload
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gbdt/histogram.h"
#include "gbdt/split.h"
#include "gbdt/tree.h"

namespace booster::ipc {

inline constexpr std::uint8_t kMagic[4] = {'B', 'S', 'T', 'R'};
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
/// Upper bound on a frame's payload: large enough for any realistic
/// histogram (a 10k-bin histogram is ~240 KiB), small enough that a
/// corrupted length field is rejected before anyone allocates gigabytes.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 28;

/// CRC-32 (IEEE 802.3 reflected polynomial) over `bytes`.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

enum class MessageType : std::uint8_t {
  /// Worker -> rank 0: one shard's histogram for the current build point.
  kShardHistogram = 1,
  /// Rank 0 -> worker: the find_best outcome for the head frontier node.
  kSplitDecision = 2,
  /// Rank 0 -> worker: the finished tree (structure + weights + gains).
  kTreeComplete = 3,
  /// Worker -> rank 0: per-group hop and quantized-loss sums for one tree.
  kShardSummary = 4,
  /// Rank 0 -> worker: per-tree loss + the step-6 continue/stop decision.
  kTreeVerdict = 5,
  /// Worker -> rank 0: confirms the final (stop_training) verdict arrived.
  /// The shutdown barrier: rank 0 keeps servicing re-requests until every
  /// live worker confirms, so a lost *tail* frame (the one message with
  /// no successor) still heals instead of stranding the worker.
  kGoodbye = 6,
  /// Rank 0 -> worker (elastic): the worker's shard range for one tree
  /// under the current membership view -- or, with final_assign set, the
  /// end-of-training signal.
  kShardAssign = 7,
  /// Rank 0 -> joining worker (elastic): every finished tree plus its
  /// per-tree loss, so a late joiner replays the model and enters the
  /// protocol at the current boundary.
  kCatchUp = 8,
  /// Control (ReliableChannel): re-request of frames from a sequence
  /// number on. Never carries a data sequence number itself.
  kNack = 0xf0,
  /// Control (ReliableChannel): sign of life while blocked in recv.
  /// Carries no payload and no sequence number; receiving one refreshes
  /// the peer's liveness deadline and nothing else.
  kHeartbeat = 0xf1,
};

const char* message_type_name(MessageType type);

/// Why a frame failed to decode. The classes are distinct on purpose: the
/// fault-injection tests assert that every corruption mode is diagnosed as
/// itself, not as a generic failure.
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,    // shorter than the header or the declared payload
  kBadMagic,     // first four bytes are not 'BSTR'
  kBadVersion,   // version field != kWireVersion
  kBadLength,    // declared payload length exceeds kMaxPayloadBytes
  kBadChecksum,  // payload CRC mismatch
  kTrailing,     // bytes beyond the declared payload (framing error)
};

const char* decode_status_name(DecodeStatus status);

/// One decoded frame.
struct Frame {
  MessageType type = MessageType::kNack;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// Little-endian byte writer (append-only). All multi-byte quantities in
/// the wire format go through these helpers, never through memcpy of host
/// structs -- the layout must not depend on host endianness or padding.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>* out) : out_(out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  /// IEEE-754 double as its uint64 bit pattern: bit-exact round-trips.
  void f64(double v);

 private:
  std::vector<std::uint8_t>* out_;
};

/// Little-endian byte reader over a payload span. Reads past the end set a
/// sticky failure flag instead of touching out-of-range memory; callers
/// check ok() once at the end (the frame CRC already vouches for content,
/// so a failed read means a protocol bug or a version mismatch).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();

  bool ok() const { return ok_; }
  /// True when every payload byte was consumed (and no read overran).
  bool exhausted() const { return ok_ && pos_ == bytes_.size(); }
  /// Unconsumed bytes -- lets decoders sanity-check an element count
  /// against the space it would need before allocating.
  std::size_t remaining() const { return ok_ ? bytes_.size() - pos_ : 0; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------- payloads

/// Worker -> rank 0 shard histogram: which (tree, build point, shard) the
/// bins belong to, plus the histogram itself. build_seq is the per-tree
/// build counter both sides advance in lock step; a mismatch means the
/// protocol lost sync and is a loud error, not a retryable fault.
struct ShardHistogramMsg {
  std::uint32_t tree = 0;
  std::uint32_t build_seq = 0;
  std::uint32_t shard = 0;
  gbdt::Histogram histogram;
};

/// Rank 0 -> worker split decision for one popped frontier node.
struct SplitDecisionMsg {
  std::uint32_t tree = 0;
  std::uint32_t decision_seq = 0;
  bool has_split = false;
  gbdt::SplitInfo split;
};

struct TreeCompleteMsg {
  std::uint32_t tree = 0;
  std::vector<gbdt::TreeNode> nodes;
};

struct ShardSummaryMsg {
  std::uint32_t tree = 0;
  std::uint32_t shard_begin = 0;
  std::uint32_t shard_end = 0;
  double hops = 0.0;
  double quantized_loss = 0.0;
};

struct TreeVerdictMsg {
  std::uint32_t tree = 0;
  double train_loss = 0.0;
  bool stop_training = false;
  bool early_stopped = false;
};

/// Rank 0 -> worker shard assignment for one tree boundary (elastic
/// membership). With final_assign set, tree is one past the last trained
/// tree, the range is empty, and early_stopped carries the run verdict --
/// the worker's cue to send its goodbye and return.
struct ShardAssignMsg {
  std::uint32_t tree = 0;
  std::uint32_t view_epoch = 0;
  std::uint32_t num_shards = 0;
  std::uint32_t shard_begin = 0;
  std::uint32_t shard_end = 0;
  bool final_assign = false;
  bool early_stopped = false;
};

/// Rank 0 -> joining worker: the finished prefix of the model. One entry
/// per tree, in training order.
struct CatchUpMsg {
  struct TreeEntry {
    std::vector<gbdt::TreeNode> nodes;
    double train_loss = 0.0;
  };
  std::vector<TreeEntry> trees;
};

/// Encoder/decoder of the distributed-training wire format. Frame-level
/// encode/decode is symmetric (encode -> decode is the identity); payload
/// codecs are fixpoints on their message structs, bit for bit.
class HistogramCodec {
 public:
  /// Assembles a complete frame (header + payload) ready for a Transport.
  static std::vector<std::uint8_t> encode_frame(
      MessageType type, std::uint64_t seq,
      std::span<const std::uint8_t> payload);

  /// Validates and splits a frame. On kOk fills *out; any other status
  /// leaves *out unspecified.
  static DecodeStatus decode_frame(std::span<const std::uint8_t> frame,
                                   Frame* out);

  // -- payload encoders (append to *out) and decoders (read via reader).
  // Decoders return false when the payload does not parse or does not use
  // every byte; they never abort, so corrupt-but-checksum-valid payloads
  // (a protocol-version bug, not line noise) surface as errors.

  static void encode_histogram(const gbdt::Histogram& h,
                               std::vector<std::uint8_t>* out);
  /// Decodes into a fresh histogram of the encoded shape.
  static bool decode_histogram(ByteReader& r, gbdt::Histogram* out);

  /// Decodes into an existing histogram whose shape must match the
  /// encoded one -- lets the receiver decode into pooled buffers so the
  /// merge rank stays allocation-free in steady state.
  static bool decode_histogram_into(ByteReader& r, gbdt::Histogram* out);

  static std::vector<std::uint8_t> encode_shard_histogram(
      const ShardHistogramMsg& msg);
  /// By-reference variant (no Histogram copy into a message struct) --
  /// the layout is the one golden-pinned encoder; the struct variant
  /// forwards here.
  static std::vector<std::uint8_t> encode_shard_histogram(
      std::uint32_t tree, std::uint32_t build_seq, std::uint32_t shard,
      const gbdt::Histogram& histogram);
  static bool decode_shard_histogram(std::span<const std::uint8_t> payload,
                                     ShardHistogramMsg* out);
  /// Pooled variant: fills the message header fields of *out and decodes
  /// the bins into *into (shape-checked).
  static bool decode_shard_histogram_into(std::span<const std::uint8_t> payload,
                                          ShardHistogramMsg* out,
                                          gbdt::Histogram* into);

  static std::vector<std::uint8_t> encode_split_decision(
      const SplitDecisionMsg& msg);
  static bool decode_split_decision(std::span<const std::uint8_t> payload,
                                    SplitDecisionMsg* out);

  static std::vector<std::uint8_t> encode_tree_complete(
      const TreeCompleteMsg& msg);
  static bool decode_tree_complete(std::span<const std::uint8_t> payload,
                                   TreeCompleteMsg* out);

  static std::vector<std::uint8_t> encode_shard_summary(
      const ShardSummaryMsg& msg);
  static bool decode_shard_summary(std::span<const std::uint8_t> payload,
                                   ShardSummaryMsg* out);

  static std::vector<std::uint8_t> encode_tree_verdict(
      const TreeVerdictMsg& msg);
  static bool decode_tree_verdict(std::span<const std::uint8_t> payload,
                                  TreeVerdictMsg* out);

  static std::vector<std::uint8_t> encode_shard_assign(
      const ShardAssignMsg& msg);
  static bool decode_shard_assign(std::span<const std::uint8_t> payload,
                                  ShardAssignMsg* out);

  static std::vector<std::uint8_t> encode_catch_up(const CatchUpMsg& msg);
  static bool decode_catch_up(std::span<const std::uint8_t> payload,
                              CatchUpMsg* out);

  /// Encoded size of one histogram payload of `h`'s shape -- what one
  /// shard merge moves over the wire (bench_sharded's merge-bytes column).
  static std::uint64_t encoded_histogram_bytes(const gbdt::Histogram& h);
};

}  // namespace booster::ipc
