// Local-socket transport: AF_UNIX stream sockets in a star around rank 0
// (the merge rank). Rank 0 binds and accepts world_size - 1 connections;
// every worker rank connects and identifies itself with a 4-byte hello.
// The star matches the protocol's traffic exactly -- shard histograms and
// summaries flow worker -> rank 0, decisions and trees flow rank 0 ->
// worker -- so worker<->worker channels are deliberately unsupported
// (send() to one returns false). Frames are length-prefixed on the stream.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ipc/transport.h"

namespace booster::ipc {

class SocketTransport final : public Transport {
 public:
  /// Rank 0: binds `path` (unlinking any stale socket), listens, and
  /// accepts world_size - 1 identified connections. Blocks up to `timeout`
  /// for the full world to assemble; aborts loudly on a malformed hello.
  /// Returns nullptr when the world cannot assemble in time.
  static std::unique_ptr<SocketTransport> serve(
      const std::string& path, std::uint32_t world_size,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  /// Ranks 1..world_size-1: connects to rank 0 at `path`, retrying until
  /// the socket exists or `timeout` elapses. Returns nullptr on timeout.
  static std::unique_ptr<SocketTransport> connect(
      const std::string& path, std::uint32_t world_size, std::uint32_t rank,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(10000));

  ~SocketTransport() override;

  std::uint32_t world_size() const override { return world_size_; }
  std::uint32_t rank() const override { return rank_; }
  const char* kind() const override { return "socket"; }

  bool send(std::uint32_t dst, std::span<const std::uint8_t> frame) override;
  RecvStatus recv(std::uint32_t src, std::vector<std::uint8_t>* frame,
                  std::chrono::milliseconds timeout) override;

 private:
  SocketTransport(std::uint32_t world_size, std::uint32_t rank);

  int peer_fd(std::uint32_t peer) const;

  std::uint32_t world_size_;
  std::uint32_t rank_;
  int listen_fd_ = -1;
  /// Rank 0: fds_[r] is the stream to rank r (fds_[0] unused). Workers:
  /// fds_[0] is the stream to rank 0.
  std::vector<int> fds_;
  /// Per-peer receive buffer: bytes read off the stream but not yet
  /// assembled into a full frame.
  std::vector<std::vector<std::uint8_t>> rx_;
};

}  // namespace booster::ipc
