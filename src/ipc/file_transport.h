// File/pipe transport: one append-only spool file per directed rank pair
// inside a shared directory ("msg-<src>-to-<dst>.spool"), each frame
// length-prefixed. Exactly one writer per file (the sending rank) and one
// reader (the receiving rank, polling at its own offset), so no file
// locking is needed -- the one-writer-per-shard discipline the ROADMAP's
// cross-process follow-on prescribes. Works across processes (the
// multi_process example forks real workers over it) and doubles as a
// post-mortem artifact: the full message history of a run stays on disk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ipc/transport.h"

namespace booster::ipc {

class FileTransport final : public Transport {
 public:
  /// Joins the world rooted at directory `dir` (created if missing) as
  /// `rank`. No rendezvous: every rank can construct its endpoint
  /// independently, before or after its peers exist.
  FileTransport(std::string dir, std::uint32_t world_size, std::uint32_t rank);
  ~FileTransport() override;

  std::uint32_t world_size() const override { return world_size_; }
  std::uint32_t rank() const override { return rank_; }
  const char* kind() const override { return "file"; }

  bool send(std::uint32_t dst, std::span<const std::uint8_t> frame) override;
  RecvStatus recv(std::uint32_t src, std::vector<std::uint8_t>* frame,
                  std::chrono::milliseconds timeout) override;

 private:
  std::string spool_path(std::uint32_t src, std::uint32_t dst) const;

  std::string dir_;
  std::uint32_t world_size_;
  std::uint32_t rank_;
  std::vector<int> write_fds_;      // per dst; -1 until first send
  std::vector<int> read_fds_;       // per src; -1 until the file exists
  std::vector<std::uint64_t> read_offsets_;  // per src
};

}  // namespace booster::ipc
