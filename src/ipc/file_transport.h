// File/pipe transport: one append-only spool file per directed rank pair
// inside a shared directory ("msg-<src>-to-<dst>.spool"), each frame
// length-prefixed. Exactly one writer per file (the sending rank) and one
// reader (the receiving rank, polling at its own offset), so no file
// locking is needed -- the one-writer-per-shard discipline the ROADMAP's
// cross-process follow-on prescribes. Works across processes (the
// multi_process example forks real workers over it) and doubles as a
// post-mortem artifact: the full message history of a run stays on disk.
//
// Every spool starts with a 16-byte epoch header (magic 'B' 'S' 'P' 'L',
// u32 version, u64 run epoch). A writer that opens a spool whose header
// carries a *different* epoch truncates it first -- a stale file from a
// crashed earlier run is recycled, never appended to -- and a reader
// refuses to consume frames under a foreign epoch, so a rank restarted
// into an old spool directory cannot replay last run's messages as fresh
// ones. With cleanup_own_files set, the destructor removes this rank's
// outgoing spools (and the directory, once the last rank leaves).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ipc/transport.h"

namespace booster::ipc {

struct FileTransportOptions {
  /// Identifies one run of the world; see the header comment. All ranks
  /// of a run must agree on it. The default (0) keeps single-run worlds
  /// -- fresh scratch directory per world -- working unchanged.
  std::uint64_t run_epoch = 0;
  /// Unlink this rank's outgoing spool files on destruction, and remove
  /// the spool directory once it is empty (best effort).
  bool cleanup_own_files = false;
};

class FileTransport final : public Transport {
 public:
  /// Joins the world rooted at directory `dir` (created if missing) as
  /// `rank`. No rendezvous: every rank can construct its endpoint
  /// independently, before or after its peers exist.
  FileTransport(std::string dir, std::uint32_t world_size, std::uint32_t rank,
                FileTransportOptions opts = {});
  ~FileTransport() override;

  std::uint32_t world_size() const override { return world_size_; }
  std::uint32_t rank() const override { return rank_; }
  const char* kind() const override { return "file"; }

  bool send(std::uint32_t dst, std::span<const std::uint8_t> frame) override;
  RecvStatus recv(std::uint32_t src, std::vector<std::uint8_t>* frame,
                  std::chrono::milliseconds timeout) override;

 private:
  std::string spool_path(std::uint32_t src, std::uint32_t dst) const;
  /// Validates/installs the epoch header on a freshly opened write fd
  /// (truncating a stale spool). False on I/O failure.
  bool ensure_write_header(int fd);
  /// Reader-side header check: kOk once this run's header is in place,
  /// kTimeout while the file is short or carries a foreign epoch (the
  /// writer will truncate it), kClosed on a non-spool file.
  RecvStatus check_read_header(std::uint32_t src);

  std::string dir_;
  std::uint32_t world_size_;
  std::uint32_t rank_;
  FileTransportOptions opts_;
  std::vector<int> write_fds_;      // per dst; -1 until first send
  std::vector<int> read_fds_;       // per src; -1 until the file exists
  std::vector<std::uint64_t> read_offsets_;  // per src
  std::vector<std::uint8_t> header_seen_;    // per src: epoch validated
};

}  // namespace booster::ipc
