#include "ipc/world.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>

#include "ipc/file_transport.h"
#include "ipc/socket_transport.h"
#include "ipc/tcp_transport.h"
#include "util/check.h"

namespace booster::ipc {

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kLoopback: return "loopback";
    case TransportKind::kFile: return "file";
    case TransportKind::kSocket: return "socket";
    case TransportKind::kTcp: return "tcp";
  }
  return "unknown";
}

std::optional<TransportKind> transport_kind_from_name(std::string_view name) {
  if (name == "loopback") return TransportKind::kLoopback;
  if (name == "file") return TransportKind::kFile;
  if (name == "socket") return TransportKind::kSocket;
  if (name == "tcp") return TransportKind::kTcp;
  return std::nullopt;
}

std::string unique_ipc_path(const std::string& tag) {
  static std::atomic<std::uint64_t> counter{0};
  const char* tmp = std::getenv("TMPDIR");
  std::string base = (tmp != nullptr && *tmp != '\0') ? tmp : "/tmp";
  // Short on purpose: sockaddr_un.sun_path caps AF_UNIX paths at ~100
  // bytes, and spool paths inherit this prefix too.
  return base + "/booster-" + tag + "-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1));
}

InProcessWorld::InProcessWorld(TransportKind kind, std::uint32_t world_size,
                               std::optional<FaultConfig> faults,
                               std::uint64_t fault_seed)
    : kind_(kind),
      world_size_(world_size),
      faults_(faults),
      fault_seed_(fault_seed),
      inner_(world_size),
      wrapped_(world_size) {
  BOOSTER_CHECK_MSG(world_size >= 1, "world needs at least one rank");
  switch (kind_) {
    case TransportKind::kLoopback:
      hub_ = std::make_unique<LoopbackHub>(world_size);
      break;
    case TransportKind::kFile:
      path_ = unique_ipc_path("spool");
      break;
    case TransportKind::kSocket:
      path_ = unique_ipc_path("sock");
      break;
    case TransportKind::kTcp:
      break;  // rank 0 publishes its ephemeral port from endpoint()
  }
}

InProcessWorld::~InProcessWorld() {
  // Close every endpoint (open spool fds / sockets) before removing the
  // scratch path.
  wrapped_.clear();
  inner_.clear();
  if (!path_.empty()) {
    std::error_code ec;  // best effort; never throw from a destructor
    std::filesystem::remove_all(path_, ec);
  }
}

Transport* InProcessWorld::endpoint(std::uint32_t rank) {
  BOOSTER_CHECK_MSG(rank < world_size_, "world rank out of range");
  // Socket endpoints rendezvous (rank 0 accepts while workers connect),
  // so they must be constructed outside the lock.
  std::unique_ptr<Transport> t;
  switch (kind_) {
    case TransportKind::kLoopback: {
      std::lock_guard<std::mutex> lock(mutex_);
      t = hub_->endpoint(rank);
      break;
    }
    case TransportKind::kFile:
      t = std::make_unique<FileTransport>(path_, world_size_, rank);
      break;
    case TransportKind::kSocket:
      t = rank == 0 ? SocketTransport::serve(path_, world_size_)
                    : SocketTransport::connect(path_, world_size_, rank);
      break;
    case TransportKind::kTcp: {
      if (rank == 0) {
        auto t0 = TcpTransport::listen("127.0.0.1", 0, world_size_);
        BOOSTER_CHECK_MSG(t0 != nullptr, "tcp world: listen failed");
        {
          std::lock_guard<std::mutex> lock(mutex_);
          tcp_port_ = t0->port();
        }
        tcp_port_cv_.notify_all();
        t = std::move(t0);
      } else {
        std::uint16_t port = 0;
        {
          std::unique_lock<std::mutex> lock(mutex_);
          const bool ok = tcp_port_cv_.wait_for(
              lock, std::chrono::seconds(30), [&] { return tcp_port_ != 0; });
          BOOSTER_CHECK_MSG(ok, "tcp world: rank 0 never published its port");
          port = tcp_port_;
        }
        t = TcpTransport::connect("127.0.0.1", port, world_size_, rank);
      }
      break;
    }
  }
  BOOSTER_CHECK_MSG(t != nullptr, "transport endpoint failed to assemble");
  std::lock_guard<std::mutex> lock(mutex_);
  inner_[rank] = std::move(t);
  if (faults_.has_value()) {
    wrapped_[rank] = std::make_unique<FaultyTransport>(
        inner_[rank].get(), *faults_, fault_seed_ + rank);
    return wrapped_[rank].get();
  }
  return inner_[rank].get();
}

const FaultStats* InProcessWorld::fault_stats(std::uint32_t rank) const {
  if (rank >= world_size_ || wrapped_[rank] == nullptr) return nullptr;
  return &static_cast<const FaultyTransport*>(wrapped_[rank].get())
              ->fault_stats();
}

}  // namespace booster::ipc
