#include "ipc/membership.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>

#include "gbdt/shard_ops.h"
#include "util/check.h"
#include "util/rng.h"

namespace booster::ipc {

std::chrono::milliseconds BackoffPolicy::delay(std::uint32_t attempt,
                                               std::uint64_t seed) const {
  // base * 2^attempt, saturating at cap (attempt is clamped so the shift
  // cannot overflow).
  const std::uint32_t shift = std::min<std::uint32_t>(attempt, 20);
  std::int64_t ms = base.count() << shift;
  if (ms > cap.count() || ms < base.count()) ms = cap.count();
  // Deterministic jitter in [1 - jitter, 1 + jitter] from (seed, attempt).
  util::SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (attempt + 1)));
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  const double factor = 1.0 + jitter * (2.0 * u - 1.0);
  ms = static_cast<std::int64_t>(static_cast<double>(ms) * factor);
  if (ms < 1) ms = 1;
  return std::chrono::milliseconds(ms);
}

std::uint64_t generate_session_nonce() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t mix =
      (static_cast<std::uint64_t>(::getpid()) << 32) ^
      static_cast<std::uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (counter.fetch_add(1) << 1);
  util::SplitMix64 sm(mix);
  std::uint64_t nonce = sm.next();
  if (nonce == 0) nonce = 1;  // 0 is the "no session" sentinel
  return nonce;
}

MembershipTracker::MembershipTracker(std::uint32_t world_size)
    : world_size_(world_size), live_(world_size, 0) {
  BOOSTER_CHECK_MSG(world_size >= 1, "membership needs at least rank 0");
  rebuild_participants();
}

bool MembershipTracker::admit(std::uint32_t rank) {
  BOOSTER_CHECK_MSG(rank >= 1 && rank < world_size_,
                    "membership admit of an out-of-world rank");
  if (live_[rank] != 0) return false;
  live_[rank] = 1;
  ++view_epoch_;
  rebuild_participants();
  return true;
}

bool MembershipTracker::remove(std::uint32_t rank) {
  BOOSTER_CHECK_MSG(rank >= 1 && rank < world_size_,
                    "membership remove of an out-of-world rank");
  if (live_[rank] == 0) return false;
  live_[rank] = 0;
  ++view_epoch_;
  rebuild_participants();
  return true;
}

bool MembershipTracker::is_live(std::uint32_t rank) const {
  return rank < world_size_ && live_[rank] != 0;
}

void MembershipTracker::rebuild_participants() {
  participants_.clear();
  participants_.push_back(0);
  for (std::uint32_t r = 1; r < world_size_; ++r) {
    if (live_[r] != 0) participants_.push_back(r);
  }
}

std::pair<std::uint32_t, std::uint32_t> MembershipTracker::assignment(
    std::uint32_t num_shards, std::uint32_t participant_index) const {
  const auto L = static_cast<std::uint32_t>(participants_.size());
  BOOSTER_CHECK_MSG(participant_index < L,
                    "membership assignment index out of range");
  const auto [b, e] =
      gbdt::shard_row_range(num_shards, L, participant_index);
  return {static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(e)};
}

std::optional<ChurnSchedule> ChurnSchedule::parse(std::string_view text) {
  ChurnSchedule out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    std::string_view item = text.substr(
        pos, comma == std::string_view::npos ? std::string_view::npos
                                             : comma - pos);
    pos = comma == std::string_view::npos ? text.size() : comma + 1;
    if (item.empty()) continue;

    const std::size_t colon = item.find(':');
    const std::size_t at = item.find('@');
    if (colon == std::string_view::npos || at == std::string_view::npos ||
        at < colon + 2 || at + 1 >= item.size()) {
      return std::nullopt;
    }
    const std::string_view verb = item.substr(0, colon);
    ChurnEvent ev;
    if (verb == "kill") {
      ev.kind = ChurnEvent::Kind::kKill;
    } else if (verb == "hang") {
      ev.kind = ChurnEvent::Kind::kHang;
    } else if (verb == "join") {
      ev.kind = ChurnEvent::Kind::kJoin;
    } else {
      return std::nullopt;
    }
    const auto parse_u32 = [](std::string_view s,
                              std::uint32_t* v) -> bool {
      if (s.empty() || s.size() > 9) return false;
      std::uint32_t acc = 0;
      for (const char c : s) {
        if (c < '0' || c > '9') return false;
        acc = acc * 10 + static_cast<std::uint32_t>(c - '0');
      }
      *v = acc;
      return true;
    };
    if (!parse_u32(item.substr(colon + 1, at - colon - 1), &ev.rank) ||
        !parse_u32(item.substr(at + 1), &ev.tree)) {
      return std::nullopt;
    }
    out.events.push_back(ev);
  }
  return out;
}

std::string ChurnSchedule::to_string() const {
  std::string out;
  for (const ChurnEvent& ev : events) {
    if (!out.empty()) out += ',';
    switch (ev.kind) {
      case ChurnEvent::Kind::kKill: out += "kill"; break;
      case ChurnEvent::Kind::kHang: out += "hang"; break;
      case ChurnEvent::Kind::kJoin: out += "join"; break;
    }
    out += ':';
    out += std::to_string(ev.rank);
    out += '@';
    out += std::to_string(ev.tree);
  }
  return out;
}

}  // namespace booster::ipc
