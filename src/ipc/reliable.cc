#include "ipc/reliable.h"

#include "util/check.h"

namespace booster::ipc {

ReliableChannel::ReliableChannel(Transport* transport, ReliableConfig cfg)
    : transport_(transport),
      cfg_(cfg),
      tx_(transport->world_size()),
      rx_(transport->world_size()) {}

void ReliableChannel::send(std::uint32_t dst, MessageType type,
                           std::span<const std::uint8_t> payload) {
  BOOSTER_CHECK_MSG(dst < tx_.size(), "reliable send to unknown rank");
  PeerTx& tx = tx_[dst];
  const std::uint64_t seq = tx.next_seq++;
  std::vector<std::uint8_t> frame =
      HistogramCodec::encode_frame(type, seq, payload);
  transport_->send(dst, frame);
  tx.window_bytes += frame.size();
  tx.window.emplace_back(seq, std::move(frame));
  // Prune by count and by bytes, but never below one frame -- the most
  // recent message must always be re-requestable.
  while (tx.window.size() > 1 &&
         (tx.window.size() > cfg_.resend_window ||
          tx.window_bytes > cfg_.resend_window_bytes)) {
    tx.window_bytes -= tx.window.front().second.size();
    tx.window.pop_front();
  }
  ++stats_.messages_sent;
}

void ReliableChannel::send_nack(std::uint32_t dst, std::uint64_t from_seq) {
  std::vector<std::uint8_t> payload;
  ByteWriter w(&payload);
  w.u64(from_seq);
  transport_->send(
      dst, HistogramCodec::encode_frame(MessageType::kNack, 0, payload));
  ++stats_.nacks_sent;
}

void ReliableChannel::handle_nack(std::uint32_t src, const Frame& frame) {
  ++stats_.nacks_received;
  ByteReader r(frame.payload);
  const std::uint64_t from_seq = r.u64();
  if (!r.exhausted()) {
    ++stats_.corrupt_frames;  // a corrupt nack; the peer will re-nack
    return;
  }
  PeerTx& tx = tx_[src];
  // from_seq == next_seq means the peer timed out waiting for a message
  // we have not produced yet (it is pacing a slow computation, not a
  // loss); there is nothing to retransmit. Anything further ahead is a
  // desynced peer; anything behind the pruned window is an overrun. Both
  // of those are protocol failures, not line faults.
  if (from_seq == tx.next_seq) return;
  BOOSTER_CHECK_MSG(from_seq < tx.next_seq,
                    "ipc nack re-requests a frame that was never sent "
                    "(protocol desync)");
  BOOSTER_CHECK_MSG(tx.window.empty() || tx.window.front().first <= from_seq,
                    "ipc nack re-requests a frame beyond the resend window; "
                    "enlarge ReliableConfig.resend_window");
  for (const auto& [seq, bytes] : tx.window) {
    if (seq < from_seq) continue;
    transport_->send(src, bytes);
    ++stats_.retransmits;
  }
}

RecvStatus ReliableChannel::pump(std::uint32_t src, Frame* out,
                                 std::chrono::milliseconds timeout) {
  PeerRx& rx = rx_[src];
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    // Deliver from the parked buffer first: the gap may have just filled.
    auto parked = rx.parked.find(rx.expected_seq);
    if (parked != rx.parked.end()) {
      *out = std::move(parked->second);
      rx.parked.erase(parked);
      ++rx.expected_seq;
      ++stats_.messages_received;
      return RecvStatus::kOk;
    }

    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return RecvStatus::kTimeout;
    std::vector<std::uint8_t> bytes;
    const RecvStatus st = transport_->recv(
        src, &bytes,
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (st != RecvStatus::kOk) return st;

    Frame frame;
    const DecodeStatus ds = HistogramCodec::decode_frame(bytes, &frame);
    if (ds != DecodeStatus::kOk) {
      // Truncated / bit-flipped / garbled frame: we cannot even trust its
      // sequence number, so re-request from the first one we are missing.
      ++stats_.corrupt_frames;
      send_nack(src, rx.expected_seq);
      continue;
    }
    if (frame.type == MessageType::kNack) {
      handle_nack(src, frame);
      continue;
    }
    if (frame.seq < rx.expected_seq) {
      ++stats_.duplicates_dropped;
      continue;
    }
    if (frame.seq > rx.expected_seq) {
      // Out of order (reorder fault or a loss ahead of it): park it and
      // re-request the gap. Bounded: parked frames only ever span the
      // sender's resend window.
      ++stats_.parked_frames;
      rx.parked.emplace(frame.seq, std::move(frame));
      send_nack(src, rx.expected_seq);
      continue;
    }
    ++rx.expected_seq;
    ++stats_.messages_received;
    *out = std::move(frame);
    return RecvStatus::kOk;
  }
}

bool ReliableChannel::recv(std::uint32_t src, Frame* out,
                           std::uint32_t attempts_override) {
  BOOSTER_CHECK_MSG(src < rx_.size(), "reliable recv from unknown rank");
  const std::uint32_t attempts =
      attempts_override != 0 ? attempts_override : cfg_.max_attempts;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    const RecvStatus st = pump(src, out, cfg_.recv_timeout);
    if (st == RecvStatus::kOk) return true;
    if (st == RecvStatus::kClosed) return false;
    // Timeout: the frame (or our nack, or the retransmission) was lost.
    // Re-request and try again, up to the attempt budget.
    send_nack(src, rx_[src].expected_seq);
  }
  return false;
}

}  // namespace booster::ipc
