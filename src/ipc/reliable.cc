#include "ipc/reliable.h"

#include "util/check.h"

namespace booster::ipc {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

ReliableChannel::ReliableChannel(Transport* transport, ReliableConfig cfg)
    : transport_(transport),
      cfg_(cfg),
      tx_(transport->world_size()),
      rx_(transport->world_size()),
      peer_active_(transport->world_size(), 0),
      heartbeat_sent_(transport->world_size()) {}

void ReliableChannel::send(std::uint32_t dst, MessageType type,
                           std::span<const std::uint8_t> payload) {
  BOOSTER_CHECK_MSG(dst < tx_.size(), "reliable send to unknown rank");
  peer_active_[dst] = 1;
  PeerTx& tx = tx_[dst];
  const std::uint64_t seq = tx.next_seq++;
  std::vector<std::uint8_t> frame =
      HistogramCodec::encode_frame(type, seq, payload);
  transport_->send(dst, frame);
  tx.window_bytes += frame.size();
  tx.window.emplace_back(seq, std::move(frame));
  // Prune by count and by bytes, but never below one frame -- the most
  // recent message must always be re-requestable.
  while (tx.window.size() > 1 &&
         (tx.window.size() > cfg_.resend_window ||
          tx.window_bytes > cfg_.resend_window_bytes)) {
    tx.window_bytes -= tx.window.front().second.size();
    tx.window.pop_front();
  }
  ++stats_.messages_sent;
}

void ReliableChannel::send_nack(std::uint32_t dst, std::uint64_t from_seq) {
  std::vector<std::uint8_t> payload;
  ByteWriter w(&payload);
  w.u64(from_seq);
  transport_->send(
      dst, HistogramCodec::encode_frame(MessageType::kNack, 0, payload));
  ++stats_.nacks_sent;
}

void ReliableChannel::handle_nack(std::uint32_t src, const Frame& frame) {
  ++stats_.nacks_received;
  ByteReader r(frame.payload);
  const std::uint64_t from_seq = r.u64();
  if (!r.exhausted()) {
    ++stats_.corrupt_frames;  // a corrupt nack; the peer will re-nack
    return;
  }
  PeerTx& tx = tx_[src];
  // from_seq == next_seq means the peer timed out waiting for a message
  // we have not produced yet (it is pacing a slow computation, not a
  // loss); there is nothing to retransmit. Anything further ahead is a
  // desynced peer; anything behind the pruned window is an overrun. Both
  // of those are protocol failures, not line faults.
  if (from_seq == tx.next_seq) return;
  BOOSTER_CHECK_MSG(from_seq < tx.next_seq,
                    "ipc nack re-requests a frame that was never sent "
                    "(protocol desync)");
  BOOSTER_CHECK_MSG(tx.window.empty() || tx.window.front().first <= from_seq,
                    "ipc nack re-requests a frame beyond the resend window; "
                    "enlarge ReliableConfig.resend_window");
  for (const auto& [seq, bytes] : tx.window) {
    if (seq < from_seq) continue;
    transport_->send(src, bytes);
    ++stats_.retransmits;
  }
}

void ReliableChannel::maybe_heartbeat() {
  if (cfg_.heartbeat_interval.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (std::uint32_t p = 0; p < peer_active_.size(); ++p) {
    if (peer_active_[p] == 0) continue;
    if (heartbeat_sent_[p].time_since_epoch().count() != 0 &&
        now - heartbeat_sent_[p] < cfg_.heartbeat_interval) {
      continue;
    }
    // Best effort, seq 0, empty payload: a lost heartbeat just means the
    // peer's deadline refreshes one interval later.
    transport_->send(
        p, HistogramCodec::encode_frame(MessageType::kHeartbeat, 0, {}));
    heartbeat_sent_[p] = now;
    ++stats_.heartbeats_sent;
  }
}

void ReliableChannel::reset_peer(std::uint32_t rank) {
  BOOSTER_CHECK_MSG(rank < tx_.size(), "reliable reset of unknown rank");
  tx_[rank] = PeerTx{};
  rx_[rank] = PeerRx{};
}

RecvStatus ReliableChannel::pump(
    std::uint32_t src, Frame* out, std::chrono::milliseconds timeout,
    std::chrono::steady_clock::time_point* last_life) {
  PeerRx& rx = rx_[src];
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    maybe_heartbeat();
    // Deliver from the parked buffer first: the gap may have just filled.
    auto parked = rx.parked.find(rx.expected_seq);
    if (parked != rx.parked.end()) {
      *out = std::move(parked->second);
      rx.parked.erase(parked);
      ++rx.expected_seq;
      ++stats_.messages_received;
      return RecvStatus::kOk;
    }

    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return RecvStatus::kTimeout;
    // Cap each blocking wait at the heartbeat cadence, so this rank keeps
    // emitting signs of life even while its own peer stays quiet.
    auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    if (cfg_.heartbeat_interval.count() > 0 &&
        wait > cfg_.heartbeat_interval) {
      wait = cfg_.heartbeat_interval;
    }
    std::vector<std::uint8_t> bytes;
    const RecvStatus st = transport_->recv(src, &bytes, wait);
    if (st == RecvStatus::kClosed) return st;
    if (st == RecvStatus::kTimeout) continue;  // heartbeat + deadline re-check
    *last_life = std::chrono::steady_clock::now();

    Frame frame;
    const DecodeStatus ds = HistogramCodec::decode_frame(bytes, &frame);
    if (ds != DecodeStatus::kOk) {
      // Truncated / bit-flipped / garbled frame: we cannot even trust its
      // sequence number, so re-request from the first one we are missing.
      // (It still counts as a sign of life: the link delivered bytes.)
      ++stats_.corrupt_frames;
      send_nack(src, rx.expected_seq);
      continue;
    }
    if (frame.type == MessageType::kNack) {
      handle_nack(src, frame);
      continue;
    }
    if (frame.type == MessageType::kHeartbeat) {
      ++stats_.heartbeats_received;
      continue;
    }
    if (frame.seq < rx.expected_seq) {
      ++stats_.duplicates_dropped;
      continue;
    }
    if (frame.seq > rx.expected_seq) {
      // Out of order (reorder fault or a loss ahead of it): park it and
      // re-request the gap. Bounded: parked frames only ever span the
      // sender's resend window.
      ++stats_.parked_frames;
      rx.parked.emplace(frame.seq, std::move(frame));
      send_nack(src, rx.expected_seq);
      continue;
    }
    ++rx.expected_seq;
    ++stats_.messages_received;
    *out = std::move(frame);
    return RecvStatus::kOk;
  }
}

bool ReliableChannel::recv(std::uint32_t src, Frame* out,
                           std::uint32_t attempts_override) {
  BOOSTER_CHECK_MSG(src < rx_.size(), "reliable recv from unknown rank");
  peer_active_[src] = 1;
  const auto start = std::chrono::steady_clock::now();
  auto last_life = start;

  if (attempts_override != 0) {
    // Attempt-counted wait (the shutdown barrier): bounded by rounds, not
    // by the liveness deadline, and never recorded as a detected death --
    // a peer that already exited leaves nothing to detect.
    for (std::uint32_t attempt = 0; attempt < attempts_override; ++attempt) {
      const RecvStatus st = pump(src, out, cfg_.recv_timeout, &last_life);
      if (st == RecvStatus::kOk) return true;
      if (st == RecvStatus::kClosed) return false;
      send_nack(src, rx_[src].expected_seq);
    }
    return false;
  }

  std::uint32_t attempts = 0;
  for (;;) {
    const RecvStatus st = pump(src, out, cfg_.recv_timeout, &last_life);
    if (st == RecvStatus::kOk) return true;
    const auto now = std::chrono::steady_clock::now();
    const bool lifeless = now - last_life >= cfg_.liveness_timeout;
    const bool exhausted =
        cfg_.max_attempts != 0 && ++attempts >= cfg_.max_attempts;
    if (st == RecvStatus::kClosed || lifeless || exhausted) {
      ++stats_.peers_declared_dead;
      stats_.last_detect_ms = elapsed_ms(start, now);
      if (stats_.last_detect_ms > stats_.max_detect_ms) {
        stats_.max_detect_ms = stats_.last_detect_ms;
      }
      return false;
    }
    // Timeout: the frame (or our nack, or the retransmission) was lost.
    // Re-request and try again until the peer goes lifeless.
    send_nack(src, rx_[src].expected_seq);
  }
}

}  // namespace booster::ipc
