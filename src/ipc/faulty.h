// Fault-injection transport decorator: wraps any Transport and perturbs
// *outgoing* frames with a seeded, deterministic fault schedule -- drop,
// truncate, duplicate, reorder, and bit-flip -- so the retry protocol
// (ipc::ReliableChannel) can be driven through every failure class it
// claims to survive, reproducibly. Each endpoint's fault decisions depend
// only on its seed and its own send sequence (one trainer thread per
// endpoint), never on cross-thread timing, so a failing test replays.
//
// Retransmitted frames pass through the same fault schedule as originals:
// a retry can itself be dropped or corrupted, which is exactly the case a
// bounded-attempts protocol has to get right.
#pragma once

#include <cstdint>
#include <vector>

#include "ipc/transport.h"
#include "util/rng.h"

namespace booster::ipc {

/// Per-frame fault probabilities in [0, 1]. At most one fault is applied
/// per frame (drawn in the order below), keeping injected behavior easy to
/// reason about while still composing across frames.
struct FaultConfig {
  double drop = 0.0;       // frame vanishes
  double truncate = 0.0;   // only a strict prefix is delivered
  double duplicate = 0.0;  // frame delivered twice
  double reorder = 0.0;    // frame held back until after the next send
  double bitflip = 0.0;    // one random bit flipped
};

struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t truncated = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t bitflipped = 0;

  std::uint64_t total() const {
    return dropped + truncated + duplicated + reordered + bitflipped;
  }
};

class FaultyTransport final : public Transport {
 public:
  /// Borrows `inner` (not owned); the caller keeps it alive.
  FaultyTransport(Transport* inner, FaultConfig faults, std::uint64_t seed);

  std::uint32_t world_size() const override { return inner_->world_size(); }
  std::uint32_t rank() const override { return inner_->rank(); }
  const char* kind() const override { return "faulty"; }

  bool send(std::uint32_t dst, std::span<const std::uint8_t> frame) override;
  RecvStatus recv(std::uint32_t src, std::vector<std::uint8_t>* frame,
                  std::chrono::milliseconds timeout) override;

  // Membership is a property of the wrapped transport; faults only touch
  // the frame stream, never the connection machinery.
  bool membership_capable() const override {
    return inner_->membership_capable();
  }
  void pump(std::chrono::milliseconds timeout) override {
    inner_->pump(timeout);
  }
  std::vector<PeerEvent> take_peer_events() override {
    return inner_->take_peer_events();
  }
  bool peer_connected(std::uint32_t rank) const override {
    return inner_->peer_connected(rank);
  }
  void drop_peer(std::uint32_t rank) override { inner_->drop_peer(rank); }
  void shutdown_hard() override { inner_->shutdown_hard(); }

  const FaultStats& fault_stats() const { return fault_stats_; }

 private:
  bool deliver(std::uint32_t dst, std::span<const std::uint8_t> frame);

  Transport* inner_;
  FaultConfig faults_;
  util::Rng rng_;
  FaultStats fault_stats_;
  /// Held-back frame per destination (reorder fault): flushed after the
  /// next frame to the same destination goes out.
  std::vector<std::vector<std::uint8_t>> held_;
  std::vector<bool> holding_;
};

}  // namespace booster::ipc
