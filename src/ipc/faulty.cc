#include "ipc/faulty.h"

namespace booster::ipc {

FaultyTransport::FaultyTransport(Transport* inner, FaultConfig faults,
                                 std::uint64_t seed)
    : inner_(inner),
      faults_(faults),
      rng_(seed),
      held_(inner->world_size()),
      holding_(inner->world_size(), false) {}

bool FaultyTransport::deliver(std::uint32_t dst,
                              std::span<const std::uint8_t> frame) {
  const bool ok = inner_->send(dst, frame);
  if (ok) {
    ++stats_.frames_sent;
    stats_.bytes_sent += frame.size();
  }
  return ok;
}

bool FaultyTransport::send(std::uint32_t dst,
                           std::span<const std::uint8_t> frame) {
  // Fault draws happen in a fixed order so the schedule is a pure function
  // of (seed, send index) regardless of which fault rates are enabled.
  const double u_drop = rng_.next_double();
  const double u_trunc = rng_.next_double();
  const double u_dup = rng_.next_double();
  const double u_reorder = rng_.next_double();
  const double u_flip = rng_.next_double();
  const double u_where = rng_.next_double();

  bool ok = true;
  if (u_drop < faults_.drop) {
    ++fault_stats_.dropped;
  } else if (u_trunc < faults_.truncate && !frame.empty()) {
    ++fault_stats_.truncated;
    const std::size_t keep =
        static_cast<std::size_t>(u_where * static_cast<double>(frame.size()));
    ok = deliver(dst, frame.subspan(0, keep));
  } else if (u_dup < faults_.duplicate) {
    ++fault_stats_.duplicated;
    ok = deliver(dst, frame) && deliver(dst, frame);
  } else if (u_reorder < faults_.reorder && dst < held_.size() &&
             !holding_[dst]) {
    // Hold this frame; it goes out right after the next frame to `dst`.
    ++fault_stats_.reordered;
    held_[dst].assign(frame.begin(), frame.end());
    holding_[dst] = true;
    return true;
  } else if (u_flip < faults_.bitflip && !frame.empty()) {
    ++fault_stats_.bitflipped;
    std::vector<std::uint8_t> corrupted(frame.begin(), frame.end());
    const std::uint64_t bit = rng_.next_below(corrupted.size() * 8);
    corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    ok = deliver(dst, corrupted);
  } else {
    ok = deliver(dst, frame);
  }

  if (dst < held_.size() && holding_[dst]) {
    holding_[dst] = false;
    ok = deliver(dst, held_[dst]) && ok;
    held_[dst].clear();
  }
  return ok;
}

RecvStatus FaultyTransport::recv(std::uint32_t src,
                                 std::vector<std::uint8_t>* frame,
                                 std::chrono::milliseconds timeout) {
  const RecvStatus st = inner_->recv(src, frame, timeout);
  if (st == RecvStatus::kOk) {
    ++stats_.frames_received;
    stats_.bytes_received += frame->size();
  }
  return st;
}

}  // namespace booster::ipc
