// Liveness and membership primitives for the elastic TCP world:
//
//   * BackoffPolicy -- capped exponential backoff with deterministic
//     jitter for a worker's reconnect loop (jitter decorrelates workers
//     that lost the same coordinator at the same instant);
//   * session nonces -- a reconnecting worker presents the nonce of its
//     previous session; a matching nonce resumes the ReliableChannel
//     sequence state, a fresh nonce is a new incarnation (the old
//     session's state is discarded and the worker re-joins from scratch);
//   * MembershipTracker -- rank 0's view of which worker ranks currently
//     participate in training, versioned by a view epoch that bumps on
//     every change, plus the shard assignment derived from it (the same
//     contiguous near-equal split as shard_row_range, over the ordered
//     live participant list, so any membership view yields a valid
//     partition and the quantized-exact merge keeps the model
//     bit-identical across views);
//   * ChurnSchedule -- the seeded "kill:1@2,join:3@4" grammar the tests,
//     the scenario runner, and bench_distributed use to script worker
//     churn at tree boundaries.
//
// Deadline-based failure detection itself lives in ipc::ReliableChannel
// (ReliableConfig.liveness_timeout + heartbeats); this header is the
// bookkeeping around it.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace booster::ipc {

/// Capped exponential backoff with multiplicative jitter. delay(k) for
/// attempt k (0-based) is base * 2^k clamped to `cap`, scaled by a
/// deterministic jitter factor in [1 - jitter, 1 + jitter] derived from
/// (seed, k) -- reproducible per worker, decorrelated across workers.
struct BackoffPolicy {
  std::chrono::milliseconds base{10};
  std::chrono::milliseconds cap{500};
  double jitter = 0.2;

  std::chrono::milliseconds delay(std::uint32_t attempt,
                                  std::uint64_t seed) const;
};

/// A 64-bit session nonce: unique per worker incarnation (pid, a
/// process-wide counter, and wall-clock entropy mixed through SplitMix64).
/// Never 0 -- 0 is the "no session" sentinel.
std::uint64_t generate_session_nonce();

/// Rank 0's membership view: which worker ranks are live participants of
/// the shard partition. Rank 0 itself is always participant 0.
class MembershipTracker {
 public:
  explicit MembershipTracker(std::uint32_t world_size);

  /// Adds a worker rank to the live set (no-op when already live).
  /// Returns true when the view changed.
  bool admit(std::uint32_t rank);
  /// Removes a worker rank from the live set (death or departure).
  /// Returns true when the view changed.
  bool remove(std::uint32_t rank);

  bool is_live(std::uint32_t rank) const;
  /// Live participants in assignment order: rank 0 first, then live
  /// worker ranks ascending.
  const std::vector<std::uint32_t>& participants() const {
    return participants_;
  }
  /// Bumped on every successful admit/remove; lets the trainer tell
  /// assignments from different views apart.
  std::uint32_t view_epoch() const { return view_epoch_; }

  /// Shard range [begin, end) of participant index `i` (not rank!) under
  /// the current view: the shard_row_range rule over participants, so
  /// every shard is owned by exactly one live rank.
  std::pair<std::uint32_t, std::uint32_t> assignment(
      std::uint32_t num_shards, std::uint32_t participant_index) const;

 private:
  std::uint32_t world_size_;
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> participants_;
  std::uint32_t view_epoch_ = 0;

  void rebuild_participants();
};

/// One scripted membership change, applied when rank 0 reaches the tree-`
/// tree` boundary (kJoin: a fresh worker incarnation for `rank` connects)
/// or when worker `rank` reaches it (kKill: abrupt close, no goodbye;
/// kHang: goes silent but keeps the connection open -- the half-open
/// case only the liveness deadline can catch).
struct ChurnEvent {
  enum class Kind : std::uint8_t { kKill = 0, kHang, kJoin };
  Kind kind = Kind::kKill;
  std::uint32_t rank = 0;
  std::uint32_t tree = 0;
};

/// "kill:<rank>@<tree>,hang:<rank>@<tree>,join:<rank>@<tree>" -- the
/// churn grammar of runner.churn and the elastic tests. Whitespace-free;
/// empty string parses to an empty schedule.
struct ChurnSchedule {
  std::vector<ChurnEvent> events;

  static std::optional<ChurnSchedule> parse(std::string_view text);
  std::string to_string() const;

  bool empty() const { return events.empty(); }
};

}  // namespace booster::ipc
