// In-memory loopback transport: the whole world lives in one process, one
// thread per rank, frames move through mutex-protected per-pair queues.
// The zero-configuration transport for tests (the fault-injection layer
// wraps it), for the scenario runner's in-process distributed worlds, and
// for sanitizer runs (ASan/UBSan see every byte of the protocol without
// any kernel plumbing in the way).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "ipc/transport.h"

namespace booster::ipc {

/// Shared state of one loopback world. Create the hub, then hand
/// endpoint(r) to rank r's thread. The hub must outlive its endpoints.
class LoopbackHub {
 public:
  explicit LoopbackHub(std::uint32_t world_size);

  std::uint32_t world_size() const { return world_size_; }

  /// The Transport endpoint of rank `rank`. Each rank's endpoint is meant
  /// to be driven by exactly one thread (send and recv are still mutually
  /// thread-safe, as they only touch locked queues).
  std::unique_ptr<Transport> endpoint(std::uint32_t rank);

  /// One directed frame queue. Exposed for the endpoint implementation
  /// only; treat as internal.
  struct Channel {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> frames;
  };

  Channel& channel(std::uint32_t src, std::uint32_t dst) {
    return *channels_[static_cast<std::size_t>(src) * world_size_ + dst];
  }

 private:
  std::uint32_t world_size_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

}  // namespace booster::ipc
