// In-process world assembly for the pluggable transports: one object that
// hands each rank thread its Transport endpoint, whatever the kind --
// loopback (shared hub), file (shared spool directory), or socket (rank 0
// serves, workers connect). Optionally wraps every endpoint in a seeded
// ipc::FaultyTransport, which is how the fault-injection tests drive the
// whole training protocol through loss/corruption/reordering without
// touching trainer code. Cross-process worlds (examples/multi_process.cpp)
// construct FileTransport / SocketTransport endpoints directly instead.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ipc/faulty.h"
#include "ipc/loopback.h"
#include "ipc/transport.h"

namespace booster::ipc {

enum class TransportKind : std::uint8_t { kLoopback = 0, kFile, kSocket, kTcp };

const char* transport_kind_name(TransportKind kind);
std::optional<TransportKind> transport_kind_from_name(std::string_view name);

/// A unique scratch path under the system temp directory (spool dir for
/// file transports, socket path for socket transports). Distinct on every
/// call, also across processes.
std::string unique_ipc_path(const std::string& tag);

class InProcessWorld {
 public:
  /// For kFile/kSocket a fresh unique_ipc_path() is used automatically.
  /// With `faults`, every endpoint is wrapped in a FaultyTransport seeded
  /// with seed + rank (deterministic per rank).
  InProcessWorld(TransportKind kind, std::uint32_t world_size,
                 std::optional<FaultConfig> faults = std::nullopt,
                 std::uint64_t fault_seed = 0);
  /// Removes the scratch spool directory / socket path (after closing
  /// the endpoints), so test grids don't litter the temp directory.
  ~InProcessWorld();

  std::uint32_t world_size() const { return world_size_; }
  TransportKind transport_kind() const { return kind_; }

  /// Rank `rank`'s endpoint. For socket worlds this *blocks* (rank 0
  /// accepting, workers connecting), so every rank must call it from its
  /// own thread concurrently -- exactly how the rank threads start up.
  /// The returned transport is owned by the world; the per-rank fault
  /// stats can be read from it after the run.
  Transport* endpoint(std::uint32_t rank);

  /// Fault counters of `rank`'s FaultyTransport wrapper; nullptr when the
  /// world runs fault-free or the endpoint was never created.
  const FaultStats* fault_stats(std::uint32_t rank) const;

 private:
  TransportKind kind_;
  std::uint32_t world_size_;
  std::string path_;
  std::optional<FaultConfig> faults_;
  std::uint64_t fault_seed_;
  std::unique_ptr<LoopbackHub> hub_;
  std::mutex mutex_;
  /// TCP worlds: rank 0 publishes its ephemeral port here; workers wait.
  std::uint16_t tcp_port_ = 0;
  std::condition_variable tcp_port_cv_;
  std::vector<std::unique_ptr<Transport>> inner_;
  std::vector<std::unique_ptr<Transport>> wrapped_;
};

}  // namespace booster::ipc
