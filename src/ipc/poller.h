// Dependency-free epoll wrapper: the event loop underneath TcpTransport
// and, by design, the ROADMAP's serving layer -- one readiness
// multiplexer instead of per-connection poll() calls, so a rank (or a
// future model server) can watch a listening socket and every peer
// connection at once and still honor a caller-supplied timeout.
//
// Deliberately thin: no callbacks, no ownership of file descriptors, no
// threads. The caller registers fds with a 64-bit tag, wait() fills a
// caller-owned event vector, and the caller dispatches on tags. That
// keeps the poller reusable (transport today, server tomorrow) and
// trivially testable with a pipe.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace booster::ipc {

class Poller {
 public:
  struct Event {
    std::uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    /// Peer hangup or error on the fd: the owner should read until EOF
    /// (hangup may still have buffered bytes) and then tear down.
    bool hangup = false;
    bool error = false;
  };

  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Registers `fd` with interest in readability and/or writability.
  /// `tag` comes back verbatim in events (typically the peer rank or the
  /// fd itself). Returns false when the kernel rejects the registration.
  bool add(int fd, std::uint64_t tag, bool want_read, bool want_write);

  /// Updates the interest set / tag of an already-registered fd.
  bool modify(int fd, std::uint64_t tag, bool want_read, bool want_write);

  /// Deregisters `fd` (must happen before the fd is closed, or epoll
  /// keeps stale interest on a recycled descriptor).
  void remove(int fd);

  /// Blocks up to `timeout` for readiness. Appends to *out (cleared
  /// first) and returns the number of events; 0 on timeout, and on EINTR
  /// (the caller's deadline loop retries).
  int wait(std::chrono::milliseconds timeout, std::vector<Event>* out);

  int fd() const { return epoll_fd_; }

 private:
  int epoll_fd_ = -1;
};

// -- Event-loop building blocks for servers on top of the poller. --------
// Same philosophy as the Poller itself: thin, no callbacks; the fds these
// helpers produce are registered with Poller::add and dispatched by tag.

/// Creates a non-blocking close-on-exec TCP listener bound to
/// 127.0.0.1:`port` (port 0 asks the kernel for a free one;
/// `*bound_port`, optional, receives the actual port). Loopback-only by
/// design: the serving and bench processes this repo runs are
/// same-machine, and not binding a routable address keeps tests and CI
/// hermetic. Returns the listening fd, or -1 on failure.
int listen_tcp_loopback(std::uint16_t port, std::uint16_t* bound_port);

/// Accepts one pending connection from `listen_fd` as non-blocking
/// close-on-exec. Transient per-connection failures (ECONNABORTED,
/// EINTR) are skipped internally; returns -1 once the accept queue is
/// drained, so a level-triggered readable event is handled by looping
/// until -1.
int accept_nonblocking(int listen_fd);

/// RAII one-shot monotonic timerfd -- the batching-window clock: arm a
/// deadline, poll its fd for readability, consume() when it fires.
/// Re-arming replaces any pending deadline; consume() drains, so a
/// handled expiration can never be observed twice.
class TimerFd {
 public:
  TimerFd();  // aborts if the kernel refuses a timerfd
  ~TimerFd();
  TimerFd(const TimerFd&) = delete;
  TimerFd& operator=(const TimerFd&) = delete;

  /// Fires once, `delay` from now (clamped to >= 1ns: timerfd treats an
  /// all-zero deadline as disarm, but callers mean "immediately").
  void arm_once(std::chrono::microseconds delay);

  void disarm();

  /// Number of expirations since the last consume (0 or 1 for one-shot
  /// use; 0 when the timer has not fired).
  std::uint64_t consume();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// RAII eventfd for waking the event loop from another thread (stop
/// requests, hot model-swap notifications): notify() from any thread,
/// drain() on the loop thread after the poller reports the fd readable.
class WakeFd {
 public:
  WakeFd();  // aborts if the kernel refuses an eventfd
  ~WakeFd();
  WakeFd(const WakeFd&) = delete;
  WakeFd& operator=(const WakeFd&) = delete;

  void notify();

  /// Returns and clears the pending notification count (0 if none).
  std::uint64_t drain();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace booster::ipc
