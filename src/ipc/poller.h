// Dependency-free epoll wrapper: the event loop underneath TcpTransport
// and, by design, the ROADMAP's serving layer -- one readiness
// multiplexer instead of per-connection poll() calls, so a rank (or a
// future model server) can watch a listening socket and every peer
// connection at once and still honor a caller-supplied timeout.
//
// Deliberately thin: no callbacks, no ownership of file descriptors, no
// threads. The caller registers fds with a 64-bit tag, wait() fills a
// caller-owned event vector, and the caller dispatches on tags. That
// keeps the poller reusable (transport today, server tomorrow) and
// trivially testable with a pipe.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace booster::ipc {

class Poller {
 public:
  struct Event {
    std::uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    /// Peer hangup or error on the fd: the owner should read until EOF
    /// (hangup may still have buffered bytes) and then tear down.
    bool hangup = false;
    bool error = false;
  };

  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Registers `fd` with interest in readability and/or writability.
  /// `tag` comes back verbatim in events (typically the peer rank or the
  /// fd itself). Returns false when the kernel rejects the registration.
  bool add(int fd, std::uint64_t tag, bool want_read, bool want_write);

  /// Updates the interest set / tag of an already-registered fd.
  bool modify(int fd, std::uint64_t tag, bool want_read, bool want_write);

  /// Deregisters `fd` (must happen before the fd is closed, or epoll
  /// keeps stale interest on a recycled descriptor).
  void remove(int fd);

  /// Blocks up to `timeout` for readiness. Appends to *out (cleared
  /// first) and returns the number of events; 0 on timeout, and on EINTR
  /// (the caller's deadline loop retries).
  int wait(std::chrono::milliseconds timeout, std::vector<Event>* out);

  int fd() const { return epoll_fd_; }

 private:
  int epoll_fd_ = -1;
};

}  // namespace booster::ipc
