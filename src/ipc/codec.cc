#include "ipc/codec.h"

#include <array>
#include <bit>

#include "util/check.h"

namespace booster::ipc {

namespace {

/// CRC-32 lookup table for the reflected IEEE polynomial, built once.
std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

namespace {

std::uint32_t crc32_update(std::uint32_t c, std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  for (const std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xffu] ^ (c >> 8);
  }
  return c;
}

/// Frame checksum: all header bytes before the CRC field itself, then the
/// payload. Covering the header means a bit flip in the *sequence number*
/// (or type, or length) is caught exactly like one in the payload --
/// otherwise a corrupted seq could poison the receiver's reorder buffer
/// with a frame that later delivers in the wrong slot.
std::uint32_t frame_crc(std::span<const std::uint8_t> frame) {
  std::uint32_t c = 0xffffffffu;
  c = crc32_update(c, frame.subspan(0, 20));
  c = crc32_update(c, frame.subspan(kHeaderBytes));
  return c ^ 0xffffffffu;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  return crc32_update(0xffffffffu, bytes) ^ 0xffffffffu;
}

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kShardHistogram: return "shard-histogram";
    case MessageType::kSplitDecision: return "split-decision";
    case MessageType::kTreeComplete: return "tree-complete";
    case MessageType::kShardSummary: return "shard-summary";
    case MessageType::kTreeVerdict: return "tree-verdict";
    case MessageType::kGoodbye: return "goodbye";
    case MessageType::kShardAssign: return "shard-assign";
    case MessageType::kCatchUp: return "catch-up";
    case MessageType::kNack: return "nack";
    case MessageType::kHeartbeat: return "heartbeat";
  }
  return "unknown";
}

const char* decode_status_name(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadLength: return "bad-length";
    case DecodeStatus::kBadChecksum: return "bad-checksum";
    case DecodeStatus::kTrailing: return "trailing-bytes";
  }
  return "unknown";
}

void ByteWriter::u16(std::uint16_t v) {
  out_->push_back(static_cast<std::uint8_t>(v));
  out_->push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

std::uint8_t ByteReader::u8() {
  if (pos_ + 1 > bytes_.size()) {
    ok_ = false;
    return 0;
  }
  return bytes_[pos_++];
}

std::uint16_t ByteReader::u16() {
  if (pos_ + 2 > bytes_.size()) {
    ok_ = false;
    return 0;
  }
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(bytes_[pos_++]) << (8 * i)));
  }
  return v;
}

std::uint32_t ByteReader::u32() {
  if (pos_ + 4 > bytes_.size()) {
    ok_ = false;
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  if (pos_ + 8 > bytes_.size()) {
    ok_ = false;
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
  }
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::vector<std::uint8_t> HistogramCodec::encode_frame(
    MessageType type, std::uint64_t seq,
    std::span<const std::uint8_t> payload) {
  BOOSTER_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
                    "ipc frame payload exceeds kMaxPayloadBytes");
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + payload.size());
  ByteWriter w(&frame);
  for (const std::uint8_t m : kMagic) w.u8(m);
  w.u16(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(0);  // reserved
  w.u64(seq);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(0);  // CRC placeholder, patched below
  frame.insert(frame.end(), payload.begin(), payload.end());
  const std::uint32_t crc = frame_crc(frame);
  for (int i = 0; i < 4; ++i) {
    frame[20 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  return frame;
}

DecodeStatus HistogramCodec::decode_frame(std::span<const std::uint8_t> frame,
                                          Frame* out) {
  if (frame.size() < kHeaderBytes) return DecodeStatus::kTruncated;
  for (int i = 0; i < 4; ++i) {
    if (frame[i] != kMagic[i]) return DecodeStatus::kBadMagic;
  }
  ByteReader r(frame.subspan(4));
  const std::uint16_t version = r.u16();
  const std::uint8_t type = r.u8();
  r.u8();  // reserved
  const std::uint64_t seq = r.u64();
  const std::uint32_t payload_len = r.u32();
  const std::uint32_t crc = r.u32();
  if (version != kWireVersion) return DecodeStatus::kBadVersion;
  if (payload_len > kMaxPayloadBytes) return DecodeStatus::kBadLength;
  if (frame.size() < kHeaderBytes + payload_len) return DecodeStatus::kTruncated;
  if (frame.size() > kHeaderBytes + payload_len) return DecodeStatus::kTrailing;
  const auto payload = frame.subspan(kHeaderBytes, payload_len);
  if (frame_crc(frame) != crc) return DecodeStatus::kBadChecksum;
  out->type = static_cast<MessageType>(type);
  out->seq = seq;
  out->payload.assign(payload.begin(), payload.end());
  return DecodeStatus::kOk;
}

void HistogramCodec::encode_histogram(const gbdt::Histogram& h,
                                      std::vector<std::uint8_t>* out) {
  ByteWriter w(out);
  const std::uint32_t num_fields = h.num_fields();
  w.u32(num_fields);
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    w.u32(static_cast<std::uint32_t>(h.field(f).size()));
  }
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    for (const gbdt::BinStats& b : h.field(f)) {
      w.f64(b.count);
      w.f64(b.g);
      w.f64(b.h);
    }
  }
}

bool HistogramCodec::decode_histogram(ByteReader& r, gbdt::Histogram* out) {
  const std::uint32_t num_fields = r.u32();
  // A corrupt-free payload always fits the declared field count; guard the
  // multiplication anyway so a protocol bug cannot request a huge resize.
  if (!r.ok() || num_fields > (1u << 20)) return false;
  std::vector<std::uint32_t> bins_per_field(num_fields);
  std::uint64_t total_bins = 0;
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    bins_per_field[f] = r.u32();
    total_bins += bins_per_field[f];
  }
  if (!r.ok() || total_bins * 24 > kMaxPayloadBytes) return false;
  *out = gbdt::Histogram(bins_per_field);
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    for (gbdt::BinStats& b : out->mutable_field(f)) {
      b.count = r.f64();
      b.g = r.f64();
      b.h = r.f64();
    }
  }
  return r.ok();
}

bool HistogramCodec::decode_histogram_into(ByteReader& r,
                                           gbdt::Histogram* out) {
  const std::uint32_t num_fields = r.u32();
  if (!r.ok() || num_fields != out->num_fields()) return false;
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    if (r.u32() != out->field(f).size()) return false;
  }
  if (!r.ok()) return false;
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    for (gbdt::BinStats& b : out->mutable_field(f)) {
      b.count = r.f64();
      b.g = r.f64();
      b.h = r.f64();
    }
  }
  return r.ok();
}

std::vector<std::uint8_t> HistogramCodec::encode_shard_histogram(
    const ShardHistogramMsg& msg) {
  return encode_shard_histogram(msg.tree, msg.build_seq, msg.shard,
                                msg.histogram);
}

std::vector<std::uint8_t> HistogramCodec::encode_shard_histogram(
    std::uint32_t tree, std::uint32_t build_seq, std::uint32_t shard,
    const gbdt::Histogram& histogram) {
  std::vector<std::uint8_t> out;
  ByteWriter w(&out);
  w.u32(tree);
  w.u32(build_seq);
  w.u32(shard);
  encode_histogram(histogram, &out);
  return out;
}

bool HistogramCodec::decode_shard_histogram(
    std::span<const std::uint8_t> payload, ShardHistogramMsg* out) {
  ByteReader r(payload);
  out->tree = r.u32();
  out->build_seq = r.u32();
  out->shard = r.u32();
  if (!decode_histogram(r, &out->histogram)) return false;
  return r.exhausted();
}

bool HistogramCodec::decode_shard_histogram_into(
    std::span<const std::uint8_t> payload, ShardHistogramMsg* out,
    gbdt::Histogram* into) {
  ByteReader r(payload);
  out->tree = r.u32();
  out->build_seq = r.u32();
  out->shard = r.u32();
  if (!decode_histogram_into(r, into)) return false;
  return r.exhausted();
}

namespace {

void encode_split_info(ByteWriter& w, const gbdt::SplitInfo& s) {
  w.u32(s.field);
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.u16(s.threshold_bin);
  w.u8(s.default_left ? 1 : 0);
  w.f64(s.gain);
  for (const gbdt::BinStats* b : {&s.left, &s.right}) {
    w.f64(b->count);
    w.f64(b->g);
    w.f64(b->h);
  }
}

bool decode_split_info(ByteReader& r, gbdt::SplitInfo* s) {
  s->field = r.u32();
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(gbdt::PredicateKind::kCategoryEqual)) {
    return false;
  }
  s->kind = static_cast<gbdt::PredicateKind>(kind);
  s->threshold_bin = r.u16();
  s->default_left = r.u8() != 0;
  s->gain = r.f64();
  for (gbdt::BinStats* b : {&s->left, &s->right}) {
    b->count = r.f64();
    b->g = r.f64();
    b->h = r.f64();
  }
  return r.ok();
}

}  // namespace

std::vector<std::uint8_t> HistogramCodec::encode_split_decision(
    const SplitDecisionMsg& msg) {
  std::vector<std::uint8_t> out;
  ByteWriter w(&out);
  w.u32(msg.tree);
  w.u32(msg.decision_seq);
  w.u8(msg.has_split ? 1 : 0);
  if (msg.has_split) encode_split_info(w, msg.split);
  return out;
}

bool HistogramCodec::decode_split_decision(
    std::span<const std::uint8_t> payload, SplitDecisionMsg* out) {
  ByteReader r(payload);
  out->tree = r.u32();
  out->decision_seq = r.u32();
  out->has_split = r.u8() != 0;
  if (out->has_split && !decode_split_info(r, &out->split)) return false;
  return r.exhausted();
}

namespace {

/// One tree's node list: count-prefixed, 37 bytes per node. Shared by
/// kTreeComplete and kCatchUp so the golden node layout exists once.
void write_tree_nodes(const std::vector<gbdt::TreeNode>& nodes,
                      ByteWriter* w) {
  w->u32(static_cast<std::uint32_t>(nodes.size()));
  for (const gbdt::TreeNode& n : nodes) {
    w->u8(n.is_leaf ? 1 : 0);
    w->u8(static_cast<std::uint8_t>(n.kind));
    w->u16(n.threshold_bin);
    w->u32(n.field);
    w->u8(n.default_left ? 1 : 0);
    w->i32(n.left);
    w->i32(n.right);
    w->i32(n.depth);
    w->f64(n.weight);
    w->f64(n.gain);
  }
}

bool read_tree_nodes(ByteReader& r, std::vector<gbdt::TreeNode>* nodes) {
  const std::uint32_t count = r.u32();
  // Each node encodes to 37 bytes, so a count the payload cannot hold is
  // rejected before the allocation, not after a huge assign.
  if (!r.ok() || count > r.remaining() / 37) return false;
  nodes->assign(count, gbdt::TreeNode{});
  for (gbdt::TreeNode& n : *nodes) {
    n.is_leaf = r.u8() != 0;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(gbdt::PredicateKind::kCategoryEqual)) {
      return false;
    }
    n.kind = static_cast<gbdt::PredicateKind>(kind);
    n.threshold_bin = r.u16();
    n.field = r.u32();
    n.default_left = r.u8() != 0;
    n.left = r.i32();
    n.right = r.i32();
    n.depth = r.i32();
    n.weight = r.f64();
    n.gain = r.f64();
  }
  return r.ok();
}

}  // namespace

std::vector<std::uint8_t> HistogramCodec::encode_tree_complete(
    const TreeCompleteMsg& msg) {
  std::vector<std::uint8_t> out;
  ByteWriter w(&out);
  w.u32(msg.tree);
  write_tree_nodes(msg.nodes, &w);
  return out;
}

bool HistogramCodec::decode_tree_complete(std::span<const std::uint8_t> payload,
                                          TreeCompleteMsg* out) {
  ByteReader r(payload);
  out->tree = r.u32();
  if (!read_tree_nodes(r, &out->nodes)) return false;
  return r.exhausted();
}

std::vector<std::uint8_t> HistogramCodec::encode_shard_summary(
    const ShardSummaryMsg& msg) {
  std::vector<std::uint8_t> out;
  ByteWriter w(&out);
  w.u32(msg.tree);
  w.u32(msg.shard_begin);
  w.u32(msg.shard_end);
  w.f64(msg.hops);
  w.f64(msg.quantized_loss);
  return out;
}

bool HistogramCodec::decode_shard_summary(std::span<const std::uint8_t> payload,
                                          ShardSummaryMsg* out) {
  ByteReader r(payload);
  out->tree = r.u32();
  out->shard_begin = r.u32();
  out->shard_end = r.u32();
  out->hops = r.f64();
  out->quantized_loss = r.f64();
  return r.exhausted();
}

std::vector<std::uint8_t> HistogramCodec::encode_tree_verdict(
    const TreeVerdictMsg& msg) {
  std::vector<std::uint8_t> out;
  ByteWriter w(&out);
  w.u32(msg.tree);
  w.f64(msg.train_loss);
  w.u8(msg.stop_training ? 1 : 0);
  w.u8(msg.early_stopped ? 1 : 0);
  return out;
}

bool HistogramCodec::decode_tree_verdict(std::span<const std::uint8_t> payload,
                                         TreeVerdictMsg* out) {
  ByteReader r(payload);
  out->tree = r.u32();
  out->train_loss = r.f64();
  out->stop_training = r.u8() != 0;
  out->early_stopped = r.u8() != 0;
  return r.exhausted();
}

std::vector<std::uint8_t> HistogramCodec::encode_shard_assign(
    const ShardAssignMsg& msg) {
  std::vector<std::uint8_t> out;
  ByteWriter w(&out);
  w.u32(msg.tree);
  w.u32(msg.view_epoch);
  w.u32(msg.num_shards);
  w.u32(msg.shard_begin);
  w.u32(msg.shard_end);
  w.u8(msg.final_assign ? 1 : 0);
  w.u8(msg.early_stopped ? 1 : 0);
  return out;
}

bool HistogramCodec::decode_shard_assign(std::span<const std::uint8_t> payload,
                                         ShardAssignMsg* out) {
  ByteReader r(payload);
  out->tree = r.u32();
  out->view_epoch = r.u32();
  out->num_shards = r.u32();
  out->shard_begin = r.u32();
  out->shard_end = r.u32();
  out->final_assign = r.u8() != 0;
  out->early_stopped = r.u8() != 0;
  return r.exhausted() && out->shard_begin <= out->shard_end &&
         out->shard_end <= out->num_shards;
}

std::vector<std::uint8_t> HistogramCodec::encode_catch_up(
    const CatchUpMsg& msg) {
  std::vector<std::uint8_t> out;
  ByteWriter w(&out);
  w.u32(static_cast<std::uint32_t>(msg.trees.size()));
  for (const CatchUpMsg::TreeEntry& entry : msg.trees) {
    write_tree_nodes(entry.nodes, &w);
    w.f64(entry.train_loss);
  }
  return out;
}

bool HistogramCodec::decode_catch_up(std::span<const std::uint8_t> payload,
                                     CatchUpMsg* out) {
  ByteReader r(payload);
  const std::uint32_t count = r.u32();
  // Every tree entry needs at least its node count and loss (12 bytes).
  if (!r.ok() || count > r.remaining() / 12) return false;
  out->trees.assign(count, CatchUpMsg::TreeEntry{});
  for (CatchUpMsg::TreeEntry& entry : out->trees) {
    if (!read_tree_nodes(r, &entry.nodes)) return false;
    entry.train_loss = r.f64();
  }
  return r.exhausted();
}

std::uint64_t HistogramCodec::encoded_histogram_bytes(
    const gbdt::Histogram& h) {
  return 4 + 4ull * h.num_fields() + 24ull * h.total_bins();
}

}  // namespace booster::ipc
