// TCP star transport around rank 0, multiplexed on the epoll Poller --
// the cross-machine leg of the distributed trainer and the robustness
// tentpole on top of it:
//
//   * rank 0 listens (127.0.0.1 by default; any interface on request)
//     and accepts workers at *any* time, not just at startup -- the
//     elastic trainer admits late joiners at tree boundaries;
//   * every connection is non-blocking with TCP_NODELAY; frames use the
//     same 4-byte little-endian length prefix as the socket/file
//     transports, clamped at kMaxFrameBytes before any allocation;
//   * each peer has a bounded send buffer (byte cap): sends flush
//     opportunistically, a frame that would overflow the cap is dropped
//     and counted -- backpressure against a non-draining peer instead of
//     a wedged sender; the reliable layer re-requests dropped frames;
//   * a worker that loses its coordinator reconnects with capped
//     exponential backoff + jitter (ipc::BackoffPolicy), re-presenting
//     its session nonce. The coordinator acks the hello: a matching
//     nonce resumes the stream (ReliableChannel state survives), a fresh
//     nonce is a new worker incarnation (old session state discarded).
//     A worker whose resume is rejected, or that stays disconnected past
//     reconnect_window, reports kClosed;
//   * rank 0 exposes the membership surface (Transport::take_peer_events
//     etc.): joined / resumed / new-session / disconnected events, which
//     the elastic trainer folds into its shard assignment at tree
//     boundaries.
//
// Hello wire format (16 bytes, little-endian): magic 'B','T','C','P',
// u32 rank, u64 session nonce. Ack: one byte, 1 = fresh session,
// 2 = resumed.
//
// Like every transport here, one endpoint is driven from one thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "ipc/membership.h"
#include "ipc/poller.h"
#include "ipc/transport.h"

namespace booster::ipc {

struct TcpOptions {
  /// Budget for the initial connect() (covering a coordinator that has
  /// not bound its port yet).
  std::chrono::milliseconds connect_timeout{10000};
  /// Worker reconnect backoff after a lost coordinator connection.
  BackoffPolicy backoff{};
  /// How long a lost connection may stay down before the endpoint gives
  /// up for good (recv reports kClosed). Applies to the worker's
  /// reconnect loop and to rank 0's patience with a vanished worker.
  std::chrono::milliseconds reconnect_window{10000};
  /// Workers: reconnect automatically after a lost connection. Off, the
  /// first disconnect is final (static-topology behavior).
  bool auto_reconnect = true;
  /// Per-peer send buffer cap in bytes; a frame that would overflow it
  /// is dropped (send returns false, frames_dropped() counts it).
  std::uint64_t send_buffer_cap = 64ull << 20;
  /// This endpoint's session nonce; 0 generates a fresh one. A restarted
  /// worker process gets a fresh nonce by construction, which is exactly
  /// what makes it a *new* session instead of a resumed one.
  std::uint64_t session_nonce = 0;
};

class TcpTransport final : public Transport {
 public:
  /// Rank 0: binds `host`:`port` (port 0 picks an ephemeral one, see
  /// port()) and returns immediately -- workers are accepted during
  /// wait_for_world()/pump()/recv(). nullptr on bind failure.
  static std::unique_ptr<TcpTransport> listen(const std::string& host,
                                              std::uint16_t port,
                                              std::uint32_t world_size,
                                              TcpOptions opts = {});

  /// Worker `rank`: connects (and completes the hello/ack handshake)
  /// within opts.connect_timeout. nullptr on failure.
  static std::unique_ptr<TcpTransport> connect(const std::string& host,
                                               std::uint16_t port,
                                               std::uint32_t world_size,
                                               std::uint32_t rank,
                                               TcpOptions opts = {});

  ~TcpTransport() override;

  /// Rank 0: pumps until `ranks` ranks (rank 0 included) are connected
  /// or the timeout lapses. The initial-world rendezvous.
  bool wait_for_world(std::uint32_t ranks, std::chrono::milliseconds timeout);

  /// The bound port (after listen with port 0: the kernel-assigned one).
  std::uint16_t port() const { return port_; }
  std::uint64_t session_nonce() const { return opts_.session_nonce; }
  /// Frames dropped against the send-buffer cap (backpressure).
  std::uint64_t frames_dropped() const { return frames_dropped_; }

  // --- Transport ---
  std::uint32_t world_size() const override { return world_size_; }
  std::uint32_t rank() const override { return rank_; }
  const char* kind() const override { return "tcp"; }
  bool send(std::uint32_t dst, std::span<const std::uint8_t> frame) override;
  RecvStatus recv(std::uint32_t src, std::vector<std::uint8_t>* frame,
                  std::chrono::milliseconds timeout) override;

  // --- membership surface (rank 0) ---
  bool membership_capable() const override { return rank_ == 0; }
  void pump(std::chrono::milliseconds timeout) override;
  std::vector<PeerEvent> take_peer_events() override;
  bool peer_connected(std::uint32_t rank) const override;
  void drop_peer(std::uint32_t rank) override;
  void shutdown_hard() override;

  /// Test hook: abruptly closes the live connection(s) as a simulated
  /// link cut. A worker with auto_reconnect then heals through the
  /// backoff loop; rank 0 sees a disconnect event per peer.
  void debug_break_connection();

 private:
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> rx;
    std::deque<std::vector<std::uint8_t>> tx;  // length-prefixed frames
    std::size_t tx_off = 0;  // bytes of tx.front() already written
    std::uint64_t tx_bytes = 0;
    bool want_write = false;
  };
  /// Accepted connection whose hello has not fully arrived yet.
  struct PendingConn {
    int fd = -1;
    std::vector<std::uint8_t> rx;
  };
  enum class WorkerState : std::uint8_t {
    kDisconnected = 0,  // waiting out the backoff
    kConnecting,        // non-blocking connect in flight
    kHelloSent,         // connected; hello written / ack awaited
    kConnected,
    kFailed,  // resume rejected or reconnect disabled: terminal
  };

  TcpTransport(std::uint32_t world_size, std::uint32_t rank, TcpOptions opts);

  /// One event-loop round: accepts, reads, flushes, progresses the
  /// worker reconnect machine; blocks at most `timeout`.
  void pump_once(std::chrono::milliseconds timeout);
  void handle_listen_ready();
  void handle_pending_ready(std::size_t index);
  void install_hello(int fd, std::uint32_t peer, std::uint64_t nonce);
  void read_conn(std::uint32_t peer);
  void flush_conn(std::uint32_t peer);
  void update_interest(std::uint32_t peer);
  void disconnect(std::uint32_t peer, bool emit_event);
  bool parse_frames(std::uint32_t peer);

  // Worker-side connect machine.
  void progress_connect(std::chrono::steady_clock::time_point now);
  void start_connect();
  void on_connect_ready();
  void handle_ack();
  void fail_connection();

  bool closed_for_good(std::uint32_t src) const;

  std::uint32_t world_size_;
  std::uint32_t rank_;
  TcpOptions opts_;
  Poller poller_;

  // Shared per-peer state (workers only use slot 0).
  std::vector<Conn> conns_;
  std::vector<std::deque<std::vector<std::uint8_t>>> frames_;
  std::uint64_t frames_dropped_ = 0;

  // Rank 0.
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<PendingConn> pending_;
  std::vector<std::uint64_t> sessions_;  // nonce per rank; 0 = none
  std::vector<std::chrono::steady_clock::time_point> down_since_;
  std::vector<PeerEvent> events_;

  // Worker.
  std::string host_;
  WorkerState wstate_ = WorkerState::kDisconnected;
  bool ever_connected_ = false;
  std::uint32_t attempt_ = 0;
  std::chrono::steady_clock::time_point next_attempt_{};
  std::chrono::steady_clock::time_point worker_down_since_{};
  std::vector<std::uint8_t> hello_out_;  // unwritten hello bytes
};

}  // namespace booster::ipc
