#include "ipc/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace booster::ipc {

namespace {

constexpr std::uint8_t kHelloMagic[4] = {'B', 'T', 'C', 'P'};
constexpr std::size_t kHelloBytes = 16;
constexpr std::uint8_t kAckFresh = 1;
constexpr std::uint8_t kAckResumed = 2;
constexpr std::size_t kReadChunk = 64 * 1024;
/// Poller tag for the listening socket (fds are non-negative, so any
/// value above INT_MAX is free).
constexpr std::uint64_t kListenTag = ~0ull;

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

int make_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

bool resolve(const std::string& host, std::uint16_t port, sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* h = host.empty() ? "127.0.0.1" : host.c_str();
  return ::inet_pton(AF_INET, h, &addr->sin_addr) == 1;
}

}  // namespace

TcpTransport::TcpTransport(std::uint32_t world_size, std::uint32_t rank,
                           TcpOptions opts)
    : world_size_(world_size), rank_(rank), opts_(opts) {
  BOOSTER_CHECK_MSG(world_size >= 1, "tcp transport needs world_size >= 1");
  BOOSTER_CHECK_MSG(rank < world_size, "tcp transport rank out of range");
  if (opts_.session_nonce == 0) opts_.session_nonce = generate_session_nonce();
  conns_.resize(world_size);
  frames_.resize(world_size);
  if (rank == 0) {
    sessions_.assign(world_size, 0);
    down_since_.resize(world_size);
  }
}

TcpTransport::~TcpTransport() { shutdown_hard(); }

std::unique_ptr<TcpTransport> TcpTransport::listen(const std::string& host,
                                                   std::uint16_t port,
                                                   std::uint32_t world_size,
                                                   TcpOptions opts) {
  auto t = std::unique_ptr<TcpTransport>(
      new TcpTransport(world_size, /*rank=*/0, opts));
  const int fd = make_socket();
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  if (!resolve(host, port, &addr) ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return nullptr;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return nullptr;
  }
  t->listen_fd_ = fd;
  t->port_ = ntohs(addr.sin_port);
  t->poller_.add(fd, kListenTag, /*want_read=*/true, /*want_write=*/false);
  return t;
}

std::unique_ptr<TcpTransport> TcpTransport::connect(const std::string& host,
                                                    std::uint16_t port,
                                                    std::uint32_t world_size,
                                                    std::uint32_t rank,
                                                    TcpOptions opts) {
  BOOSTER_CHECK_MSG(rank >= 1, "rank 0 listens; workers connect");
  auto t = std::unique_ptr<TcpTransport>(
      new TcpTransport(world_size, rank, opts));
  t->host_ = host.empty() ? "127.0.0.1" : host;
  t->port_ = port;
  t->next_attempt_ = std::chrono::steady_clock::now();
  const auto deadline =
      std::chrono::steady_clock::now() + t->opts_.connect_timeout;
  while (t->wstate_ != WorkerState::kConnected) {
    if (t->wstate_ == WorkerState::kFailed ||
        std::chrono::steady_clock::now() >= deadline) {
      return nullptr;
    }
    t->pump_once(std::chrono::milliseconds(20));
  }
  return t;
}

bool TcpTransport::wait_for_world(std::uint32_t ranks,
                                  std::chrono::milliseconds timeout) {
  BOOSTER_CHECK_MSG(rank_ == 0, "wait_for_world is a rank-0 call");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    std::uint32_t connected = 1;  // self
    for (std::uint32_t r = 1; r < world_size_; ++r) {
      if (conns_[r].fd >= 0) ++connected;
    }
    if (connected >= ranks) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    pump_once(std::min(wait, std::chrono::milliseconds(50)));
  }
}

// ------------------------------------------------------------------- send

bool TcpTransport::send(std::uint32_t dst, std::span<const std::uint8_t> frame) {
  BOOSTER_CHECK_MSG(dst < world_size_ && dst != rank_,
                    "tcp send to invalid rank");
  BOOSTER_CHECK_MSG(rank_ == 0 || dst == 0,
                    "tcp transport is a star: workers only talk to rank 0");
  BOOSTER_CHECK_MSG(frame.size() <= kMaxFrameBytes, "tcp frame too large");
  Conn& c = conns_[dst];
  if (rank_ == 0) {
    // No live connection, no delivery: the reliable layer retransmits once
    // the worker resumes (its nacks survive in its own queue, not ours).
    if (c.fd < 0) return false;
  } else {
    if (wstate_ == WorkerState::kFailed) return false;
    // Disconnected-but-reconnecting: queue, bounded by the cap below. The
    // resumed stream replays the queue in order.
    if (!opts_.auto_reconnect && wstate_ != WorkerState::kConnected &&
        wstate_ != WorkerState::kHelloSent) {
      return false;
    }
  }
  std::vector<std::uint8_t> buf;
  buf.reserve(4 + frame.size());
  put_u32(&buf, static_cast<std::uint32_t>(frame.size()));
  buf.insert(buf.end(), frame.begin(), frame.end());
  if (c.tx_bytes + buf.size() > opts_.send_buffer_cap) {
    ++frames_dropped_;  // backpressure: drop whole frames, never bytes
    return false;
  }
  c.tx_bytes += buf.size();
  c.tx.push_back(std::move(buf));
  ++stats_.frames_sent;
  stats_.bytes_sent += frame.size();
  if (c.fd >= 0 &&
      (rank_ != 0 ? wstate_ == WorkerState::kConnected : true)) {
    flush_conn(dst);
  }
  return true;
}

void TcpTransport::flush_conn(std::uint32_t peer) {
  Conn& c = conns_[peer];
  if (c.fd < 0) return;
  while (!c.tx.empty()) {
    const std::vector<std::uint8_t>& front = c.tx.front();
    const ssize_t n = ::send(c.fd, front.data() + c.tx_off,
                             front.size() - c.tx_off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      disconnect(peer, /*emit_event=*/true);
      return;
    }
    c.tx_off += static_cast<std::size_t>(n);
    if (c.tx_off < front.size()) break;  // kernel buffer full mid-frame
    c.tx_bytes -= front.size();
    c.tx.pop_front();
    c.tx_off = 0;
  }
  update_interest(peer);
}

void TcpTransport::update_interest(std::uint32_t peer) {
  Conn& c = conns_[peer];
  if (c.fd < 0) return;
  const bool want_write = !c.tx.empty() || !hello_out_.empty();
  if (want_write == c.want_write) return;
  c.want_write = want_write;
  poller_.modify(c.fd, static_cast<std::uint64_t>(c.fd), /*want_read=*/true,
                 want_write);
}

// ------------------------------------------------------------------- recv

RecvStatus TcpTransport::recv(std::uint32_t src,
                              std::vector<std::uint8_t>* frame,
                              std::chrono::milliseconds timeout) {
  BOOSTER_CHECK_MSG(src < world_size_ && src != rank_,
                    "tcp recv from invalid rank");
  if (rank_ != 0 && src != 0) return RecvStatus::kClosed;  // star topology
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (!frames_[src].empty()) {
      *frame = std::move(frames_[src].front());
      frames_[src].pop_front();
      ++stats_.frames_received;
      stats_.bytes_received += frame->size();
      return RecvStatus::kOk;
    }
    if (closed_for_good(src)) return RecvStatus::kClosed;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return RecvStatus::kTimeout;
    auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    pump_once(std::min(wait, std::chrono::milliseconds(50)));
  }
}

bool TcpTransport::closed_for_good(std::uint32_t src) const {
  const auto now = std::chrono::steady_clock::now();
  if (rank_ != 0) {
    if (wstate_ == WorkerState::kFailed) return true;
    if (wstate_ == WorkerState::kConnected) return false;
    if (!opts_.auto_reconnect) return true;
    return now - worker_down_since_ > opts_.reconnect_window;
  }
  // Rank 0: a rank that was connected once and has been gone past the
  // reconnect window is closed; one that never connected is merely slow
  // (timeout), so startup races resolve at the caller's deadline.
  const Conn& c = conns_[src];
  if (c.fd >= 0) return false;
  if (sessions_[src] == 0) return false;
  return now - down_since_[src] > opts_.reconnect_window;
}

// ------------------------------------------------------------------- pump

void TcpTransport::pump(std::chrono::milliseconds timeout) {
  pump_once(timeout);
}

void TcpTransport::pump_once(std::chrono::milliseconds timeout) {
  auto now = std::chrono::steady_clock::now();
  if (rank_ != 0) {
    progress_connect(now);
    // Never sleep past the next reconnect attempt.
    if (wstate_ == WorkerState::kDisconnected) {
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
          next_attempt_ - now);
      if (until < timeout) timeout = std::max(until, std::chrono::milliseconds(1));
    }
  }
  std::vector<Poller::Event> events;
  poller_.wait(timeout, &events);
  for (const Poller::Event& ev : events) {
    if (ev.tag == kListenTag) {
      handle_listen_ready();
      continue;
    }
    const int fd = static_cast<int>(ev.tag);
    // Pending (pre-hello) connections.
    bool was_pending = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].fd == fd) {
        was_pending = true;
        if (ev.error || (ev.hangup && !ev.readable)) {
          ::close(fd);
          poller_.remove(fd);
          pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        } else if (ev.readable) {
          handle_pending_ready(i);
        }
        break;
      }
    }
    if (was_pending) continue;
    // Established connections (worker slot 0 or rank-0 slots 1..world).
    for (std::uint32_t r = 0; r < world_size_; ++r) {
      if (conns_[r].fd != fd) continue;
      if (rank_ != 0 && wstate_ == WorkerState::kConnecting) {
        if (ev.writable || ev.error || ev.hangup) on_connect_ready();
        break;
      }
      if (ev.error) {
        disconnect(r, /*emit_event=*/true);
        break;
      }
      if (ev.writable) {
        if (rank_ != 0 && !hello_out_.empty()) {
          // Finish writing the hello before anything else.
          const ssize_t n = ::send(conns_[r].fd, hello_out_.data(),
                                   hello_out_.size(),
                                   MSG_NOSIGNAL | MSG_DONTWAIT);
          if (n > 0) {
            hello_out_.erase(hello_out_.begin(), hello_out_.begin() + n);
          } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR) {
            fail_connection();
            break;
          }
          update_interest(r);
        } else {
          flush_conn(r);
        }
      }
      if (conns_[r].fd >= 0 && ev.readable) read_conn(r);
      break;
    }
  }
}

// ------------------------------------------------------------- rank 0 side

void TcpTransport::handle_listen_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: next pump retries
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    pending_.push_back(PendingConn{fd, {}});
    poller_.add(fd, static_cast<std::uint64_t>(fd), /*want_read=*/true,
                /*want_write=*/false);
  }
}

void TcpTransport::handle_pending_ready(std::size_t index) {
  PendingConn& p = pending_[index];
  std::uint8_t buf[kHelloBytes];
  while (p.rx.size() < kHelloBytes) {
    const ssize_t n = ::recv(p.fd, buf, kHelloBytes - p.rx.size(),
                             MSG_DONTWAIT);
    if (n > 0) {
      p.rx.insert(p.rx.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return;  // hello still in flight
    }
    // EOF or hard error before the hello completed: drop the stranger.
    poller_.remove(p.fd);
    ::close(p.fd);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
    return;
  }
  const int fd = p.fd;
  const bool magic_ok = std::memcmp(p.rx.data(), kHelloMagic, 4) == 0;
  const std::uint32_t peer = get_u32(p.rx.data() + 4);
  const std::uint64_t nonce = get_u64(p.rx.data() + 8);
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
  if (!magic_ok || peer == 0 || peer >= world_size_ || nonce == 0) {
    poller_.remove(fd);
    ::close(fd);
    return;
  }
  install_hello(fd, peer, nonce);
}

void TcpTransport::install_hello(int fd, std::uint32_t peer,
                                 std::uint64_t nonce) {
  Conn& c = conns_[peer];
  const bool resumed = sessions_[peer] == nonce;
  PeerEventKind kind;
  if (sessions_[peer] == 0) {
    kind = PeerEventKind::kJoined;
  } else if (resumed) {
    kind = PeerEventKind::kResumed;
  } else {
    kind = PeerEventKind::kNewSession;
  }
  if (c.fd >= 0) {
    // The worker reconnected before we noticed the old stream die.
    poller_.remove(c.fd);
    ::close(c.fd);
    c.fd = -1;
  }
  if (!resumed) {
    // New incarnation: its stream starts from scratch on both sides.
    c.tx.clear();
    c.tx_bytes = 0;
    frames_[peer].clear();
  }
  c.rx.clear();
  c.tx_off = 0;  // resend the partially-written frame from its first byte
  c.want_write = false;
  sessions_[peer] = nonce;
  const std::uint8_t ack = resumed ? kAckResumed : kAckFresh;
  if (::send(fd, &ack, 1, MSG_NOSIGNAL | MSG_DONTWAIT) != 1) {
    // A fresh socket whose 1-byte write fails is broken; the worker
    // retries the whole handshake.
    poller_.remove(fd);
    ::close(fd);
    return;
  }
  c.fd = fd;
  poller_.modify(fd, static_cast<std::uint64_t>(fd), /*want_read=*/true,
                 /*want_write=*/!c.tx.empty());
  c.want_write = !c.tx.empty();
  if (resumed) ++stats_.reconnects;
  events_.push_back(PeerEvent{peer, kind, nonce});
  flush_conn(peer);
}

// ------------------------------------------------------------- worker side

void TcpTransport::progress_connect(std::chrono::steady_clock::time_point now) {
  if (wstate_ != WorkerState::kDisconnected) return;
  // The *initial* connect retries regardless of auto_reconnect (bounded
  // by connect_timeout in connect()); reconnects after a lost session are
  // governed by auto_reconnect + reconnect_window.
  if (ever_connected_) {
    if (!opts_.auto_reconnect ||
        now - worker_down_since_ > opts_.reconnect_window) {
      wstate_ = WorkerState::kFailed;
      return;
    }
  }
  if (now < next_attempt_) return;
  start_connect();
}

void TcpTransport::start_connect() {
  sockaddr_in addr;
  if (!resolve(host_, port_, &addr)) {
    wstate_ = WorkerState::kFailed;
    return;
  }
  const int fd = make_socket();
  if (fd < 0) {
    fail_connection();
    return;
  }
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    fail_connection();
    return;
  }
  conns_[0].fd = fd;
  conns_[0].rx.clear();
  conns_[0].tx_off = 0;
  conns_[0].want_write = true;
  poller_.add(fd, static_cast<std::uint64_t>(fd), /*want_read=*/true,
              /*want_write=*/true);
  wstate_ = WorkerState::kConnecting;
}

void TcpTransport::on_connect_ready() {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(conns_[0].fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
      err != 0) {
    poller_.remove(conns_[0].fd);
    ::close(conns_[0].fd);
    conns_[0].fd = -1;
    fail_connection();
    return;
  }
  // Connected: present the hello, then await the one-byte ack. Written
  // in place into a fixed-size buffer (GCC 12's -Warray-bounds false-
  // fires on growing a small vector from a pointer range).
  hello_out_.assign(kHelloBytes, 0);
  std::memcpy(hello_out_.data(), kHelloMagic, 4);
  for (int i = 0; i < 4; ++i) {
    hello_out_[4 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(rank_ >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    hello_out_[8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(opts_.session_nonce >> (8 * i));
  }
  wstate_ = WorkerState::kHelloSent;
  const ssize_t n = ::send(conns_[0].fd, hello_out_.data(), hello_out_.size(),
                           MSG_NOSIGNAL | MSG_DONTWAIT);
  if (n > 0) hello_out_.erase(hello_out_.begin(), hello_out_.begin() + n);
  conns_[0].want_write = !hello_out_.empty();
  poller_.modify(conns_[0].fd, static_cast<std::uint64_t>(conns_[0].fd),
                 /*want_read=*/true, conns_[0].want_write);
}

void TcpTransport::handle_ack() {
  std::uint8_t ack = 0;
  const ssize_t n = ::recv(conns_[0].fd, &ack, 1, MSG_DONTWAIT);
  if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                 errno != EINTR)) {
    poller_.remove(conns_[0].fd);
    ::close(conns_[0].fd);
    conns_[0].fd = -1;
    fail_connection();
    return;
  }
  if (n < 0) return;  // ack still in flight
  if (ever_connected_ && ack != kAckResumed) {
    // The coordinator no longer holds our session (it evicted us, or it
    // restarted): resuming the stream would desync, so this incarnation
    // is done. A *new* transport with a fresh nonce can rejoin.
    poller_.remove(conns_[0].fd);
    ::close(conns_[0].fd);
    conns_[0].fd = -1;
    wstate_ = WorkerState::kFailed;
    return;
  }
  if (ever_connected_) ++stats_.reconnects;
  ever_connected_ = true;
  attempt_ = 0;
  wstate_ = WorkerState::kConnected;
  flush_conn(0);
}

void TcpTransport::fail_connection() {
  // One attempt burned: back off before the next.
  if (conns_[0].fd >= 0) {
    poller_.remove(conns_[0].fd);
    ::close(conns_[0].fd);
    conns_[0].fd = -1;
  }
  if (!ever_connected_) worker_down_since_ = std::chrono::steady_clock::now();
  wstate_ = WorkerState::kDisconnected;
  next_attempt_ = std::chrono::steady_clock::now() +
                  opts_.backoff.delay(attempt_, opts_.session_nonce);
  if (attempt_ < 0xffffffffu) ++attempt_;
}

// -------------------------------------------------------------- stream IO

void TcpTransport::read_conn(std::uint32_t peer) {
  if (rank_ != 0 && wstate_ == WorkerState::kHelloSent) {
    handle_ack();
    if (wstate_ != WorkerState::kConnected) return;
  }
  Conn& c = conns_[peer];
  std::uint8_t buf[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      c.rx.insert(c.rx.end(), buf, buf + n);
      if (!parse_frames(peer)) return;  // poisoned stream: disconnected
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return;
    }
    disconnect(peer, /*emit_event=*/true);  // EOF or hard error
    return;
  }
}

bool TcpTransport::parse_frames(std::uint32_t peer) {
  Conn& c = conns_[peer];
  std::size_t pos = 0;
  while (c.rx.size() - pos >= 4) {
    const std::uint32_t len = get_u32(c.rx.data() + pos);
    if (len > kMaxFrameBytes) {
      // Desynced or hostile stream: poison the connection before touching
      // the length. A resuming worker restarts the stream cleanly.
      c.rx.clear();
      disconnect(peer, /*emit_event=*/true);
      return false;
    }
    if (c.rx.size() - pos - 4 < len) break;
    frames_[peer].emplace_back(c.rx.begin() + static_cast<std::ptrdiff_t>(pos) + 4,
                               c.rx.begin() + static_cast<std::ptrdiff_t>(pos) +
                                   4 + len);
    pos += 4 + len;
  }
  if (pos > 0) c.rx.erase(c.rx.begin(), c.rx.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

void TcpTransport::disconnect(std::uint32_t peer, bool emit_event) {
  Conn& c = conns_[peer];
  if (c.fd < 0) return;
  poller_.remove(c.fd);
  ::close(c.fd);
  c.fd = -1;
  c.rx.clear();
  c.tx_off = 0;  // the reconnected stream resends the frame whole
  c.want_write = false;
  if (rank_ == 0) {
    down_since_[peer] = std::chrono::steady_clock::now();
    if (emit_event) {
      events_.push_back(PeerEvent{peer, PeerEventKind::kDisconnected,
                                  sessions_[peer]});
    }
  } else {
    hello_out_.clear();
    worker_down_since_ = std::chrono::steady_clock::now();
    attempt_ = 0;
    next_attempt_ = std::chrono::steady_clock::now() +
                    opts_.backoff.delay(attempt_, opts_.session_nonce);
    ++attempt_;
    wstate_ = opts_.auto_reconnect ? WorkerState::kDisconnected
                                   : WorkerState::kFailed;
  }
}

// ------------------------------------------------------------- membership

std::vector<PeerEvent> TcpTransport::take_peer_events() {
  std::vector<PeerEvent> out;
  out.swap(events_);
  return out;
}

bool TcpTransport::peer_connected(std::uint32_t rank) const {
  if (rank == rank_) return true;
  if (rank >= world_size_) return false;
  if (rank_ != 0) return wstate_ == WorkerState::kConnected;
  return conns_[rank].fd >= 0;
}

void TcpTransport::drop_peer(std::uint32_t rank) {
  if (rank_ != 0 || rank == 0 || rank >= world_size_) return;
  disconnect(rank, /*emit_event=*/false);
  sessions_[rank] = 0;  // only a fresh session can come back
  conns_[rank].tx.clear();
  conns_[rank].tx_bytes = 0;
  frames_[rank].clear();
}

void TcpTransport::shutdown_hard() {
  for (std::uint32_t r = 0; r < world_size_; ++r) {
    Conn& c = conns_[r];
    if (c.fd >= 0) {
      poller_.remove(c.fd);
      ::close(c.fd);
      c.fd = -1;
    }
    c.tx.clear();
    c.tx_bytes = 0;
    c.tx_off = 0;
  }
  for (PendingConn& p : pending_) {
    poller_.remove(p.fd);
    ::close(p.fd);
  }
  pending_.clear();
  if (listen_fd_ >= 0) {
    poller_.remove(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  opts_.auto_reconnect = false;
  if (rank_ != 0) wstate_ = WorkerState::kFailed;
}

void TcpTransport::debug_break_connection() {
  if (rank_ != 0) {
    if (conns_[0].fd >= 0) {
      poller_.remove(conns_[0].fd);
      ::close(conns_[0].fd);
      conns_[0].fd = -1;
      hello_out_.clear();
      worker_down_since_ = std::chrono::steady_clock::now();
      attempt_ = 0;
      next_attempt_ = std::chrono::steady_clock::now();  // retry immediately
      wstate_ = opts_.auto_reconnect ? WorkerState::kDisconnected
                                     : WorkerState::kFailed;
    }
    return;
  }
  for (std::uint32_t r = 1; r < world_size_; ++r) {
    if (conns_[r].fd >= 0) disconnect(r, /*emit_event=*/true);
  }
}

}  // namespace booster::ipc
