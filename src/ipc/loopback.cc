#include "ipc/loopback.h"

#include "util/check.h"

namespace booster::ipc {

namespace {

class LoopbackTransportImpl final : public Transport {
 public:
  LoopbackTransportImpl(LoopbackHub* hub, std::uint32_t rank)
      : hub_(hub), rank_(rank) {}

  std::uint32_t world_size() const override { return hub_->world_size(); }
  std::uint32_t rank() const override { return rank_; }
  const char* kind() const override { return "loopback"; }

  bool send(std::uint32_t dst, std::span<const std::uint8_t> frame) override {
    if (dst >= hub_->world_size() || dst == rank_) return false;
    auto& ch = hub_->channel(rank_, dst);
    {
      std::lock_guard<std::mutex> lock(ch.mutex);
      ch.frames.emplace_back(frame.begin(), frame.end());
    }
    ch.cv.notify_all();
    ++stats_.frames_sent;
    stats_.bytes_sent += frame.size();
    return true;
  }

  RecvStatus recv(std::uint32_t src, std::vector<std::uint8_t>* frame,
                  std::chrono::milliseconds timeout) override {
    if (src >= hub_->world_size() || src == rank_) return RecvStatus::kClosed;
    auto& ch = hub_->channel(src, rank_);
    std::unique_lock<std::mutex> lock(ch.mutex);
    if (!ch.cv.wait_for(lock, timeout, [&] { return !ch.frames.empty(); })) {
      return RecvStatus::kTimeout;
    }
    *frame = std::move(ch.frames.front());
    ch.frames.pop_front();
    ++stats_.frames_received;
    stats_.bytes_received += frame->size();
    return RecvStatus::kOk;
  }

 private:
  LoopbackHub* hub_;
  std::uint32_t rank_;
};

}  // namespace

LoopbackHub::LoopbackHub(std::uint32_t world_size) : world_size_(world_size) {
  BOOSTER_CHECK_MSG(world_size >= 1, "loopback world needs at least one rank");
  channels_.resize(static_cast<std::size_t>(world_size) * world_size);
  for (auto& ch : channels_) ch = std::make_unique<Channel>();
}

std::unique_ptr<Transport> LoopbackHub::endpoint(std::uint32_t rank) {
  BOOSTER_CHECK_MSG(rank < world_size_, "loopback rank out of range");
  return std::make_unique<LoopbackTransportImpl>(this, rank);
}

}  // namespace booster::ipc
