// Pluggable byte-frame transports for the distributed trainer. A Transport
// connects `world_size` ranks with point-to-point frame channels: send()
// moves one opaque frame (produced by ipc::HistogramCodec) toward a peer,
// recv() takes the next frame a peer sent to this rank, in the order the
// peer's frames arrive. Transports deliver *frames*, not reliability:
// loss, duplication, reordering, and corruption are tolerated one layer up
// (ipc::ReliableChannel), which is what lets ipc::FaultyTransport inject
// exactly those faults underneath an unchanged protocol.
//
// Implementations (one writer per directed channel, as the ROADMAP's
// cross-process follow-on prescribes):
//   * LoopbackTransport (loopback.h) -- in-memory queues, threads-as-ranks;
//   * FileTransport (file_transport.h) -- one append-only spool file per
//     directed pair, readable across processes;
//   * SocketTransport (socket_transport.h) -- AF_UNIX stream sockets in a
//     star around rank 0.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

namespace booster::ipc {

/// Upper bound on one transport frame: the codec's maximum payload plus
/// header slack. Length-prefixed transports (file, socket) reject a
/// larger prefix *before* allocating -- a corrupted spool or desynced
/// stream must surface as a closed channel, not a multi-gigabyte resize.
inline constexpr std::size_t kMaxFrameBytes = (1u << 28) + 256;

enum class RecvStatus : std::uint8_t {
  kOk = 0,
  kTimeout,  // no complete frame from the peer within the timeout
  kClosed,   // the peer's channel is gone (socket EOF, hub shut down)
};

struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::uint32_t world_size() const = 0;
  virtual std::uint32_t rank() const = 0;
  /// Transport kind for logs/benches ("loopback", "file", "socket", ...).
  virtual const char* kind() const = 0;

  /// Sends one frame to rank `dst`. Returns false when the transport
  /// cannot carry it (unknown peer, closed channel); best-effort delivery
  /// otherwise -- the frame may still be lost in transit.
  virtual bool send(std::uint32_t dst, std::span<const std::uint8_t> frame) = 0;

  /// Receives the next frame rank `src` sent to this rank, blocking up to
  /// `timeout`. Frames from one peer arrive in send order on fault-free
  /// transports; the reliable layer never assumes more than that.
  virtual RecvStatus recv(std::uint32_t src, std::vector<std::uint8_t>* frame,
                          std::chrono::milliseconds timeout) = 0;

  const TransportStats& stats() const { return stats_; }

 protected:
  TransportStats stats_;
};

}  // namespace booster::ipc
