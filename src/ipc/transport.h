// Pluggable byte-frame transports for the distributed trainer. A Transport
// connects `world_size` ranks with point-to-point frame channels: send()
// moves one opaque frame (produced by ipc::HistogramCodec) toward a peer,
// recv() takes the next frame a peer sent to this rank, in the order the
// peer's frames arrive. Transports deliver *frames*, not reliability:
// loss, duplication, reordering, and corruption are tolerated one layer up
// (ipc::ReliableChannel), which is what lets ipc::FaultyTransport inject
// exactly those faults underneath an unchanged protocol.
//
// Implementations (one writer per directed channel, as the ROADMAP's
// cross-process follow-on prescribes):
//   * LoopbackTransport (loopback.h) -- in-memory queues, threads-as-ranks;
//   * FileTransport (file_transport.h) -- one append-only spool file per
//     directed pair, readable across processes;
//   * SocketTransport (socket_transport.h) -- AF_UNIX stream sockets in a
//     star around rank 0;
//   * TcpTransport (tcp_transport.h) -- TCP star multiplexed on an epoll
//     Poller, with reconnect/backoff, session nonces, and the membership
//     surface (peer events) the elastic trainer consumes.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

namespace booster::ipc {

/// Upper bound on one transport frame: the codec's maximum payload plus
/// header slack. Length-prefixed transports (file, socket) reject a
/// larger prefix *before* allocating -- a corrupted spool or desynced
/// stream must surface as a closed channel, not a multi-gigabyte resize.
inline constexpr std::size_t kMaxFrameBytes = (1u << 28) + 256;

enum class RecvStatus : std::uint8_t {
  kOk = 0,
  kTimeout,  // no complete frame from the peer within the timeout
  kClosed,   // the peer's channel is gone (socket EOF, hub shut down)
};

struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  /// Successful re-establishments of a lost connection (TCP transports;
  /// 0 elsewhere).
  std::uint64_t reconnects = 0;
};

/// Membership change observed by a connection-oriented transport.
/// Consumed by the elastic trainer on rank 0 via take_peer_events().
enum class PeerEventKind : std::uint8_t {
  kJoined = 0,   // first connection of this rank
  kResumed,      // reconnect presenting the same session nonce
  kNewSession,   // reconnect with a fresh nonce (a new worker incarnation)
  kDisconnected  // connection lost (EOF / error); may yet reconnect
};

struct PeerEvent {
  std::uint32_t rank = 0;
  PeerEventKind kind = PeerEventKind::kJoined;
  std::uint64_t session_nonce = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::uint32_t world_size() const = 0;
  virtual std::uint32_t rank() const = 0;
  /// Transport kind for logs/benches ("loopback", "file", "socket", ...).
  virtual const char* kind() const = 0;

  /// Sends one frame to rank `dst`. Returns false when the transport
  /// cannot carry it (unknown peer, closed channel); best-effort delivery
  /// otherwise -- the frame may still be lost in transit.
  virtual bool send(std::uint32_t dst, std::span<const std::uint8_t> frame) = 0;

  /// Receives the next frame rank `src` sent to this rank, blocking up to
  /// `timeout`. Frames from one peer arrive in send order on fault-free
  /// transports; the reliable layer never assumes more than that.
  virtual RecvStatus recv(std::uint32_t src, std::vector<std::uint8_t>* frame,
                          std::chrono::milliseconds timeout) = 0;

  // --- membership surface (connection-oriented transports only) ---
  // The elastic trainer drives these on rank 0; queue-backed transports
  // keep the defaults (no membership: every rank is permanently
  // "connected" and no events ever fire).

  /// True when this endpoint observes peer connect/disconnect events.
  virtual bool membership_capable() const { return false; }
  /// Progresses the event loop (accepting, reading, flushing) without
  /// consuming data frames -- lets rank 0 notice joins between recvs.
  virtual void pump(std::chrono::milliseconds /*timeout*/) {}
  /// Drains the queued membership events (oldest first).
  virtual std::vector<PeerEvent> take_peer_events() { return {}; }
  /// True when a live connection to `rank` exists right now.
  virtual bool peer_connected(std::uint32_t /*rank*/) const { return true; }
  /// Forgets `rank`'s connection *and* session, so only a fresh session
  /// can re-join (rank 0 evicting a stale member).
  virtual void drop_peer(std::uint32_t /*rank*/) {}
  /// Abruptly closes this endpoint's channels without any goodbye --
  /// simulated crash for churn tests; no reconnect attempts follow.
  virtual void shutdown_hard() {}

  const TransportStats& stats() const { return stats_; }

 protected:
  TransportStats stats_;
};

}  // namespace booster::ipc
