// AVX2 kernel table. This TU (alone) is compiled with -mavx2 (see the
// top-level CMakeLists); when the toolchain lacks the flag the __AVX2__
// guard reduces it to a nullptr stub and dispatch stays scalar. Every
// helper lives in the anonymous namespace so no -mavx2-compiled body can
// leak into other TUs through linker folding.
#include "util/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

namespace booster::util::simd {

namespace {

#include "util/simd_body.inl"

// Elementwise double ops, 8 doubles (two 256-bit vectors) per iteration.
// Unaligned loads: the histogram buffers are 64-byte aligned (and loadu on
// an aligned address costs the same), but the kernels must also serve
// arbitrary spans.

void avx2_add(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_loadu_pd(dst + i);
    const __m256d a1 = _mm256_loadu_pd(dst + i + 4);
    const __m256d b0 = _mm256_loadu_pd(src + i);
    const __m256d b1 = _mm256_loadu_pd(src + i + 4);
    _mm256_storeu_pd(dst + i, _mm256_add_pd(a0, b0));
    _mm256_storeu_pd(dst + i + 4, _mm256_add_pd(a1, b1));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void avx2_sub(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_loadu_pd(dst + i);
    const __m256d a1 = _mm256_loadu_pd(dst + i + 4);
    const __m256d b0 = _mm256_loadu_pd(src + i);
    const __m256d b1 = _mm256_loadu_pd(src + i + 4);
    _mm256_storeu_pd(dst + i, _mm256_sub_pd(a0, b0));
    _mm256_storeu_pd(dst + i + 4, _mm256_sub_pd(a1, b1));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

void avx2_diff(double* dst, const double* a, const double* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_loadu_pd(a + i);
    const __m256d a1 = _mm256_loadu_pd(a + i + 4);
    const __m256d b0 = _mm256_loadu_pd(b + i);
    const __m256d b1 = _mm256_loadu_pd(b + i + 4);
    _mm256_storeu_pd(dst + i, _mm256_sub_pd(a0, b0));
    _mm256_storeu_pd(dst + i + 4, _mm256_sub_pd(a1, b1));
  }
  for (; i < n; ++i) dst[i] = a[i] - b[i];
}

void avx2_zero(double* dst, std::size_t n) {
  const __m256d z = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_pd(dst + i, z);
    _mm256_storeu_pd(dst + i + 4, z);
  }
  for (; i < n; ++i) dst[i] = 0.0;
}

void avx2_quantize_gather(const float* pairs, const std::uint32_t* rows,
                          std::size_t n, double inv_quantum, double quantum,
                          double* qg, double* qh) {
  const __m256d inv = _mm256_set1_pd(inv_quantum);
  const __m256d quant = _mm256_set1_pd(quantum);
  // Lane selectors for deinterleaving a gathered [g h g h ...] float
  // vector into g lanes (even) and h lanes (odd).
  const __m256i even = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256i odd = _mm256_setr_epi32(1, 3, 5, 7, 0, 0, 0, 0);
  constexpr int kRound = _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + i));
    // One 8-byte gather per record fetches its whole {g, h} pair -- exactly
    // the bytes the scalar loop reads, no overread at the array tail.
    const __m256i p64 = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(pairs), idx, /*scale=*/8);
    const __m256 interleaved = _mm256_castsi256_ps(p64);
    const __m128 g4 =
        _mm256_castps256_ps128(_mm256_permutevar8x32_ps(interleaved, even));
    const __m128 h4 =
        _mm256_castps256_ps128(_mm256_permutevar8x32_ps(interleaved, odd));
    // nearbyint(x * inv) * quant, elementwise -- the same three operations
    // (exact float->double widen, multiply, current-mode round, multiply)
    // as gbdt::quantize_stat, hence bit-identical.
    const __m256d gq = _mm256_mul_pd(
        _mm256_round_pd(_mm256_mul_pd(_mm256_cvtps_pd(g4), inv), kRound),
        quant);
    const __m256d hq = _mm256_mul_pd(
        _mm256_round_pd(_mm256_mul_pd(_mm256_cvtps_pd(h4), inv), kRound),
        quant);
    _mm256_storeu_pd(qg + i, gq);
    _mm256_storeu_pd(qh + i, hq);
  }
  generic_quantize_gather(pairs, rows + i, n - i, inv_quantum, quantum,
                          qg + i, qh + i);
}

void avx2_prefix_sum3(const double* src, std::size_t n, double* dst) {
  // One masked 3-lane vector add per triple with a running carry: the
  // per-component addition order is exactly the scalar loop's
  // (carry += triple), so this path is bit-identical by construction --
  // it wins by turning three strided scalar add/store chains into one.
  const __m256i m3 = _mm256_setr_epi64x(-1, -1, -1, 0);
  __m256d carry = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; ++i) {
    carry = _mm256_add_pd(carry, _mm256_maskload_pd(src + 3 * i, m3));
    _mm256_maskstore_pd(dst + 3 * i, m3, carry);
  }
}

const Kernels kAvx2Table = {
    Level::kAvx2, avx2_add,   avx2_sub,
    avx2_diff,    avx2_zero,  avx2_quantize_gather,
    avx2_prefix_sum3,         generic_traverse_block,
    /*predict_tile=*/8,
};

}  // namespace

namespace detail {
const Kernels* avx2_kernel_table() { return &kAvx2Table; }
}  // namespace detail

}  // namespace booster::util::simd

#else  // !defined(__AVX2__)

namespace booster::util::simd::detail {
const Kernels* avx2_kernel_table() { return nullptr; }
}  // namespace booster::util::simd::detail

#endif
