// Small statistics helpers shared by the benches and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace booster::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs);

/// Geometric mean; all inputs must be > 0. Used for the paper's geomean
/// speedups (Fig 7, Fig 12).
double geomean(std::span<const double> xs);

/// Sample variance (n-1 denominator); returns 0 for fewer than two samples.
double variance(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Copies + sorts internally.
double percentile(std::span<const double> xs, double p);

/// Online accumulator for mean/min/max over a stream of values.
class Accumulator {
 public:
  void add(double x);
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  std::size_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace booster::util
