#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace booster::util {

unsigned ThreadPool::default_threads() {
  if (const char* env = std::getenv("BOOSTER_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads)
    : num_threads_(std::min(num_threads == 0 ? default_threads() : num_threads,
                            kMaxThreads)) {
  workers_.reserve(num_threads_ - 1);
  for (unsigned i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

// Tasks are statically assigned: task t belongs to participant (t mod
// num_threads); workers take ids 0..T-2, the calling thread id T-1. A new
// generation only starts after the previous one's done-count completed, so
// a worker observing a generation change always reads that generation's
// task {ctx, fn} -- there is no window where a late claim could touch a
// finished generation's (stack-resident, already out-of-scope) callable,
// and no shared claim counter to reset racily between generations.
void ThreadPool::worker_loop(unsigned worker_id) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    void* ctx = nullptr;
    TaskFn fn = nullptr;
    unsigned total = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(
          lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      ctx = task_ctx_;
      fn = task_fn_;
      total = num_tasks_;
    }
    for (unsigned t = worker_id; t < total; t += num_threads_) {
      fn(ctx, t);
      if (done_tasks_.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::run_tasks_impl(unsigned num_tasks, void* ctx, TaskFn fn) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (unsigned t = 0; t < num_tasks; ++t) fn(ctx, t);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ctx_ = ctx;
    task_fn_ = fn;
    num_tasks_ = num_tasks;
    done_tasks_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  start_cv_.notify_all();
  // The calling thread runs its own share alongside the workers.
  for (unsigned t = num_threads_ - 1; t < num_tasks; t += num_threads_) {
    fn(ctx, t);
    done_tasks_.fetch_add(1, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return done_tasks_.load(std::memory_order_acquire) == num_tasks;
  });
  task_ctx_ = nullptr;
  task_fn_ = nullptr;
}

unsigned ThreadPool::num_chunks(std::uint64_t count,
                                std::uint64_t min_grain) const {
  if (count == 0) return 0;
  const std::uint64_t grain = std::max<std::uint64_t>(1, min_grain);
  // Floor division: parallelize only when every chunk gets at least
  // min_grain items; a range barely over the grain stays serial.
  const std::uint64_t by_grain = std::max<std::uint64_t>(1, count / grain);
  return static_cast<unsigned>(
      std::min<std::uint64_t>(num_threads_, by_grain));
}

}  // namespace booster::util
