#include "util/simd.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace booster::util::simd {

namespace {

#include "util/simd_body.inl"

const Kernels kScalarTable = {
    Level::kScalar, generic_add,             generic_sub,
    generic_diff,   generic_zero,            generic_quantize_gather,
    generic_prefix_sum3,                     generic_traverse_block,
    /*predict_tile=*/4,
};

const Kernels* table_or_null(Level level) {
  switch (level) {
    case Level::kScalar:
      return &kScalarTable;
    case Level::kAvx2:
      return detail::avx2_kernel_table();
    case Level::kAvx512:
      return detail::avx512_kernel_table();
  }
  return nullptr;
}

bool host_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Level::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Level::kAvx512:
      return __builtin_cpu_supports("avx512f");
#else
    case Level::kAvx2:
    case Level::kAvx512:
      return false;
#endif
  }
  return false;
}

/// The active level, resolved once (env + cpuid) and mutable only through
/// set_active_for_testing. Relaxed is enough: the value is a plain config
/// byte, and test-time writes are documented as non-concurrent.
std::atomic<Level>& active_slot() {
  static std::atomic<Level> slot{resolve(detected(), std::getenv("BOOSTER_SIMD"))};
  return slot;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool parse_level(const char* text, Level* out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    *out = Level::kScalar;
  } else if (std::strcmp(text, "avx2") == 0) {
    *out = Level::kAvx2;
  } else if (std::strcmp(text, "avx512") == 0) {
    *out = Level::kAvx512;
  } else {
    return false;
  }
  return true;
}

Level compiled_max() {
  if (detail::avx512_kernel_table() != nullptr) return Level::kAvx512;
  if (detail::avx2_kernel_table() != nullptr) return Level::kAvx2;
  return Level::kScalar;
}

Level detected() {
  static const Level level = [] {
    for (const Level l : {Level::kAvx512, Level::kAvx2}) {
      if (table_or_null(l) != nullptr && host_supports(l)) return l;
    }
    return Level::kScalar;
  }();
  return level;
}

Level resolve(Level detected_level, const char* override_text) {
  if (override_text == nullptr || override_text[0] == '\0') {
    return detected_level;
  }
  Level requested;
  if (!parse_level(override_text, &requested)) {
    std::fprintf(stderr,
                 "BOOSTER_SIMD=%s is not scalar|avx2|avx512; using %s\n",
                 override_text, level_name(detected_level));
    return detected_level;
  }
  // An override may force a narrower path (CI honesty legs, debugging) but
  // can never promise lanes the host or binary lacks.
  return requested < detected_level ? requested : detected_level;
}

Level active() { return active_slot().load(std::memory_order_relaxed); }

void set_active_for_testing(Level level) {
  if (level > detected()) level = detected();
  active_slot().store(level, std::memory_order_relaxed);
}

const Kernels& kernels() { return kernels(active()); }

const Kernels& kernels(Level level) {
  if (level > detected()) return kScalarTable;
  const Kernels* table = table_or_null(level);
  return table != nullptr ? *table : kScalarTable;
}

}  // namespace booster::util::simd
