// AVX-512 kernel table. This TU (alone) is compiled with -mavx512f; without
// the flag the __AVX512F__ guard reduces it to a nullptr stub. Anonymous
// namespace for every body -- see simd_avx2.cc for the linkage rationale.
#include "util/simd.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cmath>
#include <cstdint>

namespace booster::util::simd {

namespace {

#include "util/simd_body.inl"

// Elementwise double ops: one full 512-bit vector (8 doubles) per
// iteration plus a masked tail, so even odd-length buffers never fall back
// to scalar stores.

void avx512_add(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_add_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_loadu_pd(src + i)));
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512d a = _mm512_maskz_loadu_pd(m, dst + i);
    const __m512d b = _mm512_maskz_loadu_pd(m, src + i);
    _mm512_mask_storeu_pd(dst + i, m, _mm512_add_pd(a, b));
  }
}

void avx512_sub(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_sub_pd(_mm512_loadu_pd(dst + i),
                                            _mm512_loadu_pd(src + i)));
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512d a = _mm512_maskz_loadu_pd(m, dst + i);
    const __m512d b = _mm512_maskz_loadu_pd(m, src + i);
    _mm512_mask_storeu_pd(dst + i, m, _mm512_sub_pd(a, b));
  }
}

void avx512_diff(double* dst, const double* a, const double* b,
                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(dst + i, _mm512_sub_pd(_mm512_loadu_pd(a + i),
                                            _mm512_loadu_pd(b + i)));
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512d av = _mm512_maskz_loadu_pd(m, a + i);
    const __m512d bv = _mm512_maskz_loadu_pd(m, b + i);
    _mm512_mask_storeu_pd(dst + i, m, _mm512_sub_pd(av, bv));
  }
}

void avx512_zero(double* dst, std::size_t n) {
  const __m512d z = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) _mm512_storeu_pd(dst + i, z);
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1u);
    _mm512_mask_storeu_pd(dst + i, m, z);
  }
}

void avx512_quantize_gather(const float* pairs, const std::uint32_t* rows,
                            std::size_t n, double inv_quantum, double quantum,
                            double* qg, double* qh) {
  const __m512d inv = _mm512_set1_pd(inv_quantum);
  const __m512d quant = _mm512_set1_pd(quantum);
  // roundscale with scale 0, MXCSR rounding mode, exceptions suppressed --
  // exactly nearbyint, lane-wise.
  constexpr int kRound = _MM_FROUND_CUR_DIRECTION | _MM_FROUND_NO_EXC;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
    // 8-byte gathers fetch each record's whole {g, h} pair; the low 32 bits
    // of each lane are g's float bits, the high 32 are h's.
    const __m512i p64 = _mm512_i32gather_epi64(idx, pairs, /*scale=*/8);
    const __m256 g8 = _mm256_castsi256_ps(_mm512_cvtepi64_epi32(p64));
    const __m256 h8 =
        _mm256_castsi256_ps(_mm512_cvtepi64_epi32(_mm512_srli_epi64(p64, 32)));
    const __m512d gq = _mm512_mul_pd(
        _mm512_roundscale_pd(_mm512_mul_pd(_mm512_cvtps_pd(g8), inv), kRound),
        quant);
    const __m512d hq = _mm512_mul_pd(
        _mm512_roundscale_pd(_mm512_mul_pd(_mm512_cvtps_pd(h8), inv), kRound),
        quant);
    _mm512_storeu_pd(qg + i, gq);
    _mm512_storeu_pd(qh + i, hq);
  }
  generic_quantize_gather(pairs, rows + i, n - i, inv_quantum, quantum,
                          qg + i, qh + i);
}

void avx512_prefix_sum3(const double* src, std::size_t n, double* dst) {
  // Two triples per iteration: lanes 0-2 carry triple a, lanes 3-5 triple
  // b. An in-register shift adds a into b's lanes, then one add folds the
  // running carry into both. The b lanes associate as (a + b) + carry
  // where the scalar does (carry + a) + b -- identical bits because every
  // operand is exact on the quantized grid (see Kernels::prefix_sum3).
  const __mmask8 m6 = 0x3F;
  const __mmask8 m3 = 0x07;
  const __mmask8 m_hi = 0x38;
  const __m512i shift_up = _mm512_setr_epi64(0, 1, 2, 0, 1, 2, 6, 7);
  const __m512i dup_hi = _mm512_setr_epi64(3, 4, 5, 3, 4, 5, 3, 4);
  __m512d carry = _mm512_setzero_pd();  // running triple in lanes 0-5
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m512d v = _mm512_maskz_loadu_pd(m6, src + 3 * i);
    const __m512d lifted = _mm512_maskz_permutexvar_pd(m_hi, shift_up, v);
    const __m512d out = _mm512_add_pd(_mm512_add_pd(v, lifted), carry);
    _mm512_mask_storeu_pd(dst + 3 * i, m6, out);
    carry = _mm512_permutexvar_pd(dup_hi, out);
  }
  if (i < n) {
    const __m512d v = _mm512_maskz_loadu_pd(m3, src + 3 * i);
    _mm512_mask_storeu_pd(dst + 3 * i, m3, _mm512_add_pd(v, carry));
  }
}

const Kernels kAvx512Table = {
    Level::kAvx512, avx512_add,  avx512_sub,
    avx512_diff,    avx512_zero, avx512_quantize_gather,
    avx512_prefix_sum3,          generic_traverse_block,
    /*predict_tile=*/16,
};

}  // namespace

namespace detail {
const Kernels* avx512_kernel_table() { return &kAvx512Table; }
}  // namespace detail

}  // namespace booster::util::simd

#else  // !defined(__AVX512F__)

namespace booster::util::simd::detail {
const Kernels* avx512_kernel_table() { return nullptr; }
}  // namespace booster::util::simd::detail

#endif
