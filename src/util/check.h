// Lightweight invariant checking. BOOSTER_CHECK is always on (simulation
// correctness beats a few percent of speed); BOOSTER_DCHECK compiles out in
// release builds for hot loops.
#pragma once

#include <cstdio>
#include <cstdlib>

#define BOOSTER_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define BOOSTER_CHECK_MSG(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define BOOSTER_DCHECK(cond) ((void)0)
#else
#define BOOSTER_DCHECK(cond) BOOSTER_CHECK(cond)
#endif
