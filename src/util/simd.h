// Dependency-free SIMD layer with runtime CPU dispatch for the training and
// inference hot kernels. Three dispatch levels -- scalar, AVX2, AVX-512 --
// selected once per process from cpuid detection, clamped by the
// BOOSTER_SIMD environment variable (scalar|avx2|avx512), and overridable
// in-process for tests and benches.
//
// Every kernel is *elementwise-identical* to its scalar reference: the
// vector paths perform exactly the same IEEE operations on exactly the same
// operands, only more of them per instruction -- no reassociation, no FMA
// contraction, no reduced-precision shortcuts. Combined with the quantized
// gradient grid (gbdt::quantize_stat), this makes training and prediction
// outputs bit-identical at every dispatch level, which is what lets the
// whole equivalence-test edifice (threads, shards, processes, machines)
// assert EXPECT_EQ across ISAs instead of tolerances.
//
// Build scheme: the AVX2/AVX-512 kernel tables live in their own
// translation units (simd_avx2.cc / simd_avx512.cc) compiled with per-file
// -mavx2 / -mavx512f flags, so the rest of the binary carries no wide
// instructions and runs on any x86-64 (or non-x86) host; each wide TU keeps
// all of its helpers at internal linkage so the linker can never fold a
// wide-compiled body into the portable code path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace booster::util::simd {

/// Dispatch levels, in strictly increasing capability order.
enum class Level : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Stable lowercase name ("scalar" / "avx2" / "avx512") -- the spelling the
/// BOOSTER_SIMD override, TrainResult.hot_path.simd, and every bench's
/// provenance header use.
const char* level_name(Level level);

/// Parses a level name (the BOOSTER_SIMD spellings). Returns false on
/// anything unrecognized.
bool parse_level(const char* text, Level* out);

/// Highest level whose kernel table was compiled into this binary (depends
/// on the toolchain understanding -mavx2/-mavx512f, not on the host CPU).
Level compiled_max();

/// Highest level this host can execute (cpuid) *and* this binary carries.
Level detected();

/// The level resolution rule: `detected` clamped by the BOOSTER_SIMD
/// override (an override can force a lower level, never raise one above
/// what the host supports; unrecognized values fall back to `detected`).
/// Pure -- exposed so tests can exercise the rule without env mutation.
Level resolve(Level detected, const char* override_text);

/// The process-wide active level: resolve(detected(), getenv("BOOSTER_SIMD")),
/// computed once on first use.
Level active();

/// Repoints active() (clamped to detected()) -- for tests and benches that
/// compare levels in one process. Not thread-safe against concurrent
/// kernel users; call between training runs only.
void set_active_for_testing(Level level);

/// RAII form of set_active_for_testing.
class ScopedLevelForTesting {
 public:
  explicit ScopedLevelForTesting(Level level) : prev_(active()) {
    set_active_for_testing(level);
  }
  ~ScopedLevelForTesting() { set_active_for_testing(prev_); }
  ScopedLevelForTesting(const ScopedLevelForTesting&) = delete;
  ScopedLevelForTesting& operator=(const ScopedLevelForTesting&) = delete;

 private:
  Level prev_;
};

/// Upper bound on Kernels::predict_tile -- callers size their per-tile
/// stack buffers with this.
inline constexpr std::size_t kMaxPredictTile = 16;

/// SoA view of one decision tree's node table (gbdt::FlatTree owns the
/// arrays). Raw pointers keep the util layer free of gbdt types.
struct FlatTreeView {
  const std::int32_t* left = nullptr;
  const std::int32_t* right = nullptr;
  const std::int32_t* field = nullptr;
  const std::uint16_t* threshold = nullptr;
  const std::uint8_t* flags = nullptr;  // kNode* bits below
  const double* weight = nullptr;
};

inline constexpr std::uint8_t kNodeLeaf = 1;         // node is a leaf
inline constexpr std::uint8_t kNodeCategorical = 2;  // predicate: bin == thr
inline constexpr std::uint8_t kNodeDefaultLeft = 4;  // missing goes left

/// One dispatch level's kernel table. All array kernels are elementwise and
/// alignment-agnostic (the histogram buffers they usually run on are
/// 64-byte aligned, see util/aligned.h, which the wide paths exploit).
struct Kernels {
  Level level = Level::kScalar;

  /// dst[i] += src[i].
  void (*add)(double* dst, const double* src, std::size_t n);
  /// dst[i] -= src[i].
  void (*sub)(double* dst, const double* src, std::size_t n);
  /// dst[i] = a[i] - b[i].
  void (*diff)(double* dst, const double* a, const double* b, std::size_t n);
  /// dst[i] = 0.
  void (*zero)(double* dst, std::size_t n);

  /// Batch gather-quantize of interleaved {g, h} float pairs onto the
  /// quantum grid: for i in [0, n),
  ///   qg[i] = nearbyint(pairs[2 * rows[i]]     * inv_quantum) * quantum
  ///   qh[i] = nearbyint(pairs[2 * rows[i] + 1] * inv_quantum) * quantum
  /// computed with the same operations as gbdt::quantize_stat (round uses
  /// the current rounding mode on every path), so results are bit-identical
  /// to the scalar loop at every level.
  void (*quantize_gather)(const float* pairs, const std::uint32_t* rows,
                          std::size_t n, double inv_quantum, double quantum,
                          double* qg, double* qh);

  /// Inclusive prefix sum over `n` contiguous {count, g, h} triples:
  /// dst[3i + k] = sum_{j <= i} src[3j + k]. The split scan's left-bucket
  /// accumulation (gbdt::SplitFinder::scan_numeric) runs through this on a
  /// histogram field's value bins. Wide paths may reassociate the adds
  /// across triples; the operands are always exact (integer counts and
  /// 2^-24-quantum gradient multiples within kStatSumCapacity), so every
  /// association yields the same bits -- the same argument that makes
  /// histogram merges order-insensitive.
  void (*prefix_sum3)(const double* src, std::size_t n, double* dst);

  /// Level-synchronous blocked traversal: records [first_record,
  /// first_record + count) advance one tree level per sweep across the
  /// whole tile (count <= kMaxPredictTile), so each lane's pending bin load
  /// overlaps the others'. columns[f] is field f's bin column. Writes each
  /// record's leaf weight and, when `hops` is non-null, its path length.
  /// Pure routing (integer compares + a weight copy): identical output at
  /// every level by construction.
  void (*traverse_block)(const FlatTreeView& tree,
                         const std::uint16_t* const* columns,
                         std::uint64_t first_record, std::size_t count,
                         double* weights, std::uint32_t* hops);

  /// Preferred record-tile width for blocked prediction at this level.
  unsigned predict_tile = 4;
};

/// Kernel table of the active level.
const Kernels& kernels();

/// Kernel table of a specific level; falls back to scalar when the level is
/// not compiled in or not supported by this host.
const Kernels& kernels(Level level);

namespace detail {
/// Defined in simd_avx2.cc / simd_avx512.cc: the level's table, or nullptr
/// when the toolchain could not compile that ISA (the TU then contains only
/// this stub, keeping the dispatch logic flag-free).
const Kernels* avx2_kernel_table();
const Kernels* avx512_kernel_table();
}  // namespace detail

}  // namespace booster::util::simd
