#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace booster::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    BOOSTER_CHECK_MSG(x > 0.0, "geomean requires positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  BOOSTER_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

}  // namespace booster::util
