// Fixed-format ASCII table printer used by every bench binary so the
// regenerated tables/figures are easy to diff against the paper.
#pragma once

#include <string>
#include <vector>

namespace booster::util {

/// Accumulates rows of strings and prints them with aligned columns.
/// Numeric cells should be pre-formatted by the caller (see fmt helpers).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table (header, separator, rows) to a string.
  std::string to_string() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` digits after the decimal point.
std::string fmt(double v, int digits = 2);

/// Formats a value as a multiplier, e.g. "11.4x".
std::string fmt_x(double v, int digits = 1);

/// Formats a fraction as a percentage, e.g. "98.2%".
std::string fmt_pct(double fraction, int digits = 1);

/// Human-readable byte count (e.g. "6.4 MB").
std::string fmt_bytes(double bytes);

/// Human-readable seconds (e.g. "1.2 s", "3.4 ms", "2.1 min").
std::string fmt_time(double seconds);

}  // namespace booster::util
