// Generic (ISA-independent) kernel bodies shared by the scalar, AVX2, and
// AVX-512 translation units. Included inside each TU's anonymous namespace
// so every copy has internal linkage: a body compiled with -mavx2 can then
// never be folded by the linker into the portable dispatch path (the
// illegal-instruction hazard per-TU ISA flags otherwise create).
//
// The scalar loops here are the bit-identity reference: each wide TU either
// reuses them verbatim (traversal -- pure integer routing) or replaces them
// with intrinsics performing the same IEEE operations elementwise.

inline void generic_add(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

inline void generic_sub(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] -= src[i];
}

inline void generic_diff(double* dst, const double* a, const double* b,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] - b[i];
}

inline void generic_zero(double* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = 0.0;
}

inline void generic_quantize_gather(const float* pairs,
                                    const std::uint32_t* rows, std::size_t n,
                                    double inv_quantum, double quantum,
                                    double* qg, double* qh) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t p = static_cast<std::size_t>(rows[i]) * 2;
    qg[i] = std::nearbyint(static_cast<double>(pairs[p]) * inv_quantum) *
            quantum;
    qh[i] = std::nearbyint(static_cast<double>(pairs[p + 1]) * inv_quantum) *
            quantum;
  }
}

inline void generic_prefix_sum3(const double* src, std::size_t n,
                                double* dst) {
  double c = 0.0, g = 0.0, h = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    c += src[3 * i];
    g += src[3 * i + 1];
    h += src[3 * i + 2];
    dst[3 * i] = c;
    dst[3 * i + 1] = g;
    dst[3 * i + 2] = h;
  }
}

inline void generic_traverse_block(
    const booster::util::simd::FlatTreeView& tree,
    const std::uint16_t* const* columns, std::uint64_t first_record,
    std::size_t count, double* weights, std::uint32_t* hops) {
  namespace simd = booster::util::simd;
  std::int32_t id[simd::kMaxPredictTile];
  std::uint32_t hop[simd::kMaxPredictTile];
  std::size_t lane[simd::kMaxPredictTile];
  // Level-synchronous sweeps over a compacted active-lane list: every
  // still-interior lane advances one edge per pass, so up to `count`
  // independent bin loads are in flight at once and the tree's upper nodes
  // stay hot across the whole tile; lanes that reach a leaf drop out of
  // the sweep instead of being re-scanned. Per-lane routing is
  // independent, so compaction order cannot change any lane's path.
  std::size_t active = 0;
  const bool root_leaf = (tree.flags[0] & simd::kNodeLeaf) != 0;
  for (std::size_t i = 0; i < count; ++i) {
    id[i] = 0;
    hop[i] = 0;
    if (!root_leaf) lane[active++] = i;
  }
  while (active > 0) {
    std::size_t kept = 0;
    for (std::size_t a = 0; a < active; ++a) {
      const std::size_t i = lane[a];
      const std::int32_t node = id[i];
      const std::uint8_t f = tree.flags[node];
      const std::uint16_t bin =
          columns[tree.field[node]][first_record + i];
      // The routes_left rule (gbdt/split.h): missing (bin 0) follows the
      // learned default; categorical matches, numeric thresholds.
      const bool left =
          bin == 0 ? (f & simd::kNodeDefaultLeft) != 0
                   : ((f & simd::kNodeCategorical) != 0
                          ? bin == tree.threshold[node]
                          : bin <= tree.threshold[node]);
      const std::int32_t next = left ? tree.left[node] : tree.right[node];
      id[i] = next;
      ++hop[i];
      if ((tree.flags[next] & simd::kNodeLeaf) == 0) lane[kept++] = i;
    }
    active = kept;
  }
  for (std::size_t i = 0; i < count; ++i) weights[i] = tree.weight[id[i]];
  if (hops != nullptr) {
    for (std::size_t i = 0; i < count; ++i) hops[i] = hop[i];
  }
}
