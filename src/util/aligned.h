// Minimal over-aligned allocator for std::vector buffers the SIMD kernels
// stream (util/simd.h): a 64-byte-aligned start lets the widest (AVX-512)
// loads be cacheline-aligned and guarantees no kernel block straddles more
// cachelines than it must. C++17 aligned operator new does the work; no
// platform-specific allocation calls.
#pragma once

#include <cstddef>
#include <new>

namespace booster::util {

template <class T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

}  // namespace booster::util
