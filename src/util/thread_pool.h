// Persistent worker-thread pool for the training hot path. Built once per
// Trainer::train call and reused across every tree, so thread start-up cost
// never lands inside the timed loop. The calling thread always participates
// in the work, so a pool of size 1 runs everything inline with zero
// synchronization overhead.
//
// Dispatch is allocation-free: callables are passed as a {context pointer,
// trampoline} pair (the callable lives on the caller's stack for the
// duration of the blocking call), never as a std::function.
//
// parallel_for partitions a range into at most num_threads() contiguous
// chunks whose boundaries depend only on (range, num_threads) -- results of
// chunk-wise reductions are therefore deterministic for a fixed thread
// count, which the hot-path equivalence tests rely on.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace booster::util {

class ThreadPool {
 public:
  /// Hard cap on pool size: protects against absurd requests (a negative
  /// count cast to unsigned, a fat-fingered BOOSTER_THREADS) turning into
  /// millions of std::thread constructions and a std::system_error.
  static constexpr unsigned kMaxThreads = 256;

  /// `num_threads` counts the calling thread: a pool of size T spawns T-1
  /// workers. 0 means default_threads(). Clamped to kMaxThreads.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return num_threads_; }

  /// Runs fn(task) for every task in [0, num_tasks), distributed over the
  /// workers plus the calling thread; blocks until all tasks finished.
  /// Not reentrant: fn must not call back into the same pool. fn is
  /// borrowed, not copied -- no allocation.
  template <typename Fn>
  void run_tasks(unsigned num_tasks, Fn&& fn) {
    run_tasks_impl(num_tasks, const_cast<void*>(static_cast<const void*>(&fn)),
                   [](void* ctx, unsigned t) {
                     (*static_cast<std::remove_reference_t<Fn>*>(ctx))(t);
                   });
  }

  /// Chunked parallel loop over [begin, end): calls
  /// fn(chunk_begin, chunk_end, chunk_index) for num_chunks(end - begin,
  /// min_grain) contiguous, near-equal chunks covering the range in order.
  /// With one chunk the body is invoked directly on the calling thread.
  template <typename Fn>
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    std::uint64_t min_grain, Fn&& fn) {
    if (begin >= end) return;
    const std::uint64_t count = end - begin;
    const unsigned chunks = num_chunks(count, min_grain);
    if (chunks <= 1) {
      fn(begin, end, 0u);
      return;
    }
    run_tasks(chunks, [&](unsigned c) {
      const std::uint64_t c_begin = begin + count * c / chunks;
      const std::uint64_t c_end = begin + count * (c + 1) / chunks;
      fn(c_begin, c_end, c);
    });
  }

  /// Alias kept for call sites that emphasize the serial fast path; the
  /// direct-invoke behavior now lives in parallel_for itself.
  template <typename Fn>
  void for_chunks(std::uint64_t begin, std::uint64_t end,
                  std::uint64_t min_grain, Fn&& fn) {
    parallel_for(begin, end, min_grain, std::forward<Fn>(fn));
  }

  /// Number of chunks parallel_for uses for `count` items: capped by the
  /// thread count and by floor(count / min_grain), so every chunk gets at
  /// least min_grain items (small ranges stay serial). Callers sizing
  /// per-chunk scratch (partial histograms, partition counters) use this
  /// to pre-allocate.
  unsigned num_chunks(std::uint64_t count, std::uint64_t min_grain) const;

  /// Thread count used when the constructor argument is 0: the
  /// BOOSTER_THREADS environment variable when set to a positive integer,
  /// otherwise std::thread::hardware_concurrency() (min 1).
  static unsigned default_threads();

 private:
  using TaskFn = void (*)(void* ctx, unsigned task);

  void run_tasks_impl(unsigned num_tasks, void* ctx, TaskFn fn);
  void worker_loop(unsigned worker_id);

  unsigned num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  void* task_ctx_ = nullptr;
  TaskFn task_fn_ = nullptr;
  unsigned num_tasks_ = 0;
  std::atomic<unsigned> done_tasks_{0};
};

}  // namespace booster::util
