// Deterministic pseudo-random number generation for workload synthesis and
// property tests. We avoid std::mt19937 in hot paths: xoshiro256** is ~4x
// faster and has well-understood statistical quality, which matters when
// synthesizing multi-million-record datasets.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace booster::util {

/// SplitMix64: used to seed Xoshiro from a single 64-bit value.
/// Reference: Steele & Lea (2014), public domain.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the project-wide PRNG. Deterministic given the seed, so
/// every dataset, trace, and experiment in this repo is reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the negligible bias is irrelevant for workload synthesis.
  std::uint64_t next_below(std::uint64_t bound) {
    const auto x = next_u64();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal via Box-Muller (one value per call; cheap enough here).
  double normal() {
    double u1 = next_double();
    const double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;  // avoid log(0)
    constexpr double kTwoPi = 6.283185307179586;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Zipf-distributed categorical sampler over [0, k): category c has weight
/// 1/(c+1)^s. Precomputes the CDF once so draws are O(log k). Used to
/// reproduce the paper's lopsided categorical splits (99%/1% children) for
/// Allstate/Flight-shaped datasets.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t k, double s) : cdf_(k > 0 ? k : 1) {
    double acc = 0.0;
    for (std::uint64_t c = 0; c < cdf_.size(); ++c) {
      acc += 1.0 / std::pow(static_cast<double>(c + 1), s);
      cdf_[c] = acc;
    }
    for (auto& v : cdf_) v /= acc;
  }

  std::uint64_t draw(Rng& rng) const {
    const double u = rng.next_double();
    // Binary search for the first cdf entry >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace booster::util
