#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace booster::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  BOOSTER_CHECK_MSG(row.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << row[c];
      out << std::string(widths[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_x(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", digits, v);
  return buf;
}

std::string fmt_pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string fmt_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", bytes, units[u]);
  return buf;
}

std::string fmt_time(double seconds) {
  char buf[64];
  if (seconds >= 90.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace booster::util
