#include "gbdt/importance.h"

#include <algorithm>
#include <map>

namespace booster::gbdt {

std::vector<FieldImportance> feature_importance(const Model& model) {
  std::map<std::uint32_t, FieldImportance> by_field;
  for (const auto& tree : model.trees()) {
    for (std::uint32_t id = 0; id < tree.num_nodes(); ++id) {
      const TreeNode& n = tree.node(static_cast<std::int32_t>(id));
      if (n.is_leaf) continue;
      auto& entry = by_field[n.field];
      entry.field = n.field;
      ++entry.split_count;
      entry.total_gain += n.gain;
    }
  }
  std::vector<FieldImportance> result;
  result.reserve(by_field.size());
  for (const auto& [field, importance] : by_field) result.push_back(importance);
  std::sort(result.begin(), result.end(),
            [](const FieldImportance& a, const FieldImportance& b) {
              if (a.total_gain != b.total_gain) return a.total_gain > b.total_gain;
              if (a.split_count != b.split_count) return a.split_count > b.split_count;
              return a.field < b.field;
            });
  return result;
}

}  // namespace booster::gbdt
