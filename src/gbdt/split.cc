#include "gbdt/split.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace booster::gbdt {

double leaf_weight(const BinStats& totals, double lambda) {
  return -totals.g / (totals.h + lambda);
}

double bucket_score(const BinStats& totals, double lambda) {
  return totals.g * totals.g / (totals.h + lambda);
}

void SplitFinder::consider(std::uint32_t field, PredicateKind kind,
                           std::uint16_t threshold_bin,
                           const BinStats& left_no_missing,
                           const BinStats& missing, const BinStats& totals,
                           std::optional<SplitInfo>& best) const {
  const double parent_score = bucket_score(totals, cfg_.lambda);
  for (const bool missing_left : {false, true}) {
    BinStats left = left_no_missing;
    if (missing_left) left += missing;
    BinStats right = totals;
    right -= left;
    if (left.h < cfg_.min_child_weight || right.h < cfg_.min_child_weight) {
      continue;
    }
    if (left.count <= 0.0 || right.count <= 0.0) continue;
    const double gain = 0.5 * (bucket_score(left, cfg_.lambda) +
                               bucket_score(right, cfg_.lambda) - parent_score) -
                        cfg_.gamma;
    if (gain < cfg_.min_split_gain) continue;
    if (!best || gain > best->gain) {
      SplitInfo info;
      info.field = field;
      info.kind = kind;
      info.threshold_bin = threshold_bin;
      info.default_left = missing_left;
      info.gain = gain;
      info.left = left;
      info.right = right;
      best = info;
    }
  }
}

void SplitFinder::scan_numeric(std::uint32_t field,
                               std::span<const BinStats> bins,
                               const BinStats& totals,
                               std::optional<SplitInfo>& best) const {
  // bins[0] is the missing bin; value bins are 1..k. The split point starts
  // left of all bins and moves right one bin at a time, accumulating the
  // left bucket (paper Fig 3). The last boundary (everything left) is not a
  // split, so we stop one bin early.
  // The left-bucket accumulation runs through the SIMD prefix-sum kernel
  // over the value bins' {count, g, h} triples (a BinStats is exactly three
  // contiguous doubles), into a per-thread scratch that warms up once and
  // then recycles. Wide kernel levels may reassociate the additions, but
  // every operand is exact on the quantized grid, so the prefixes -- and
  // therefore every candidate gain -- are bit-identical to this loop's
  // serial replay in scan_bin_range at every dispatch level.
  static_assert(sizeof(BinStats) == 3 * sizeof(double),
                "prefix_sum3 streams BinStats as raw double triples");
  const BinStats& missing = bins[0];
  if (bins.size() < 3) return;  // no candidate boundary
  const std::size_t candidates = bins.size() - 2;
  static thread_local std::vector<BinStats> prefix;
  if (prefix.size() < candidates) prefix.resize(candidates);
  util::simd::kernels().prefix_sum3(
      reinterpret_cast<const double*>(bins.data() + 1), candidates,
      reinterpret_cast<double*>(prefix.data()));
  for (std::size_t b = 1; b + 1 < bins.size(); ++b) {
    consider(field, PredicateKind::kNumericLE, static_cast<std::uint16_t>(b),
             prefix[b - 1], missing, totals, best);
  }
}

void SplitFinder::scan_categorical(std::uint32_t field,
                                   std::span<const BinStats> bins,
                                   const BinStats& totals,
                                   std::optional<SplitInfo>& best) const {
  // One-hot semantics: each category c yields the predicate "category == c".
  // The left bucket is exactly the category's "yes" bin; the "no" side is
  // reconstructed as totals - yes (- missing, handled by consider()).
  const BinStats& missing = bins[0];
  for (std::size_t b = 1; b < bins.size(); ++b) {
    consider(field, PredicateKind::kCategoryEqual,
             static_cast<std::uint16_t>(b), bins[b], missing, totals, best);
  }
}

void SplitFinder::scan_fields(const Histogram& hist, const BinnedDataset& data,
                              const BinStats& totals, std::uint32_t begin,
                              std::uint32_t end,
                              std::optional<SplitInfo>& best,
                              std::uint64_t& scanned) const {
  for (std::uint32_t f = begin; f < end; ++f) {
    const auto bins = hist.field(f);
    if (bins.size() <= 1) continue;
    if (data.field_bins(f).kind == FieldKind::kNumeric) {
      scan_numeric(f, bins, totals, best);
    } else {
      scan_categorical(f, bins, totals, best);
    }
    scanned += bins.size();
  }
}

void SplitFinder::scan_bin_range(const Histogram& hist,
                                 const BinnedDataset& data,
                                 const BinStats& totals, std::uint64_t begin,
                                 std::uint64_t end,
                                 std::optional<SplitInfo>& best,
                                 std::uint64_t& scanned) const {
  std::uint64_t field_offset = 0;
  for (std::uint32_t f = 0; f < hist.num_fields(); ++f) {
    const auto bins = hist.field(f);
    const std::uint64_t field_begin = field_offset;
    const std::uint64_t field_end = field_begin + bins.size();
    field_offset = field_end;
    if (field_end <= begin) continue;
    if (field_begin >= end) break;  // fields are laid out in order
    if (bins.size() <= 1) continue;
    // Local bin range [lo, hi) of this field covered by the chunk.
    const std::size_t lo = std::max(begin, field_begin) - field_begin;
    const std::size_t hi = std::min(end, field_end) - field_begin;
    scanned += hi - lo;

    const BinStats& missing = bins[0];
    if (data.field_bins(f).kind == FieldKind::kNumeric) {
      // Serial candidates are b in [1, size-1) with left = sum bins[1..b].
      // Replay the prefix up to the chunk's first candidate with the exact
      // additions the serial scan performs, then continue in place.
      const std::size_t first = std::max<std::size_t>(lo, 1);
      BinStats left;
      for (std::size_t b = 1; b < first; ++b) left += bins[b];
      for (std::size_t b = first; b < hi && b + 1 < bins.size(); ++b) {
        left += bins[b];
        consider(f, PredicateKind::kNumericLE, static_cast<std::uint16_t>(b),
                 left, missing, totals, best);
      }
    } else {
      // Categorical candidates are independent: b in [1, size).
      for (std::size_t b = std::max<std::size_t>(lo, 1); b < hi; ++b) {
        consider(f, PredicateKind::kCategoryEqual,
                 static_cast<std::uint16_t>(b), bins[b], missing, totals,
                 best);
      }
    }
  }
}

std::optional<SplitInfo> SplitFinder::find_best(
    const Histogram& hist, const BinnedDataset& data,
    std::uint64_t* bins_scanned) const {
  return find_best(hist, data, /*pool=*/nullptr, bins_scanned);
}

std::optional<SplitInfo> SplitFinder::find_best(
    const Histogram& hist, const BinnedDataset& data, util::ThreadPool* pool,
    std::uint64_t* bins_scanned) const {
  const std::uint32_t num_fields = hist.num_fields();
  const BinStats totals = hist.totals();
  const unsigned chunks =
      pool != nullptr ? pool->num_chunks(num_fields, kSplitScanGrain) : 1;

  // Field chunks are balanced only when no single field dwarfs a fair
  // per-thread share of the bins; one dominating categorical field
  // (ROADMAP "chunk by bins") would serialize the scan into its chunk --
  // or, with only 2-3 fields, prevent field-parallelism entirely. Switch
  // to bin-granular chunks in that case (checked before the field-chunk
  // fallback so few-field/huge-field histograms still parallelize). Both
  // paths are serial-identical, so which one runs never changes the
  // result.
  if (pool != nullptr) {
    const std::uint64_t total_bins = hist.total_bins();
    std::uint64_t max_field_bins = 0;
    for (std::uint32_t f = 0; f < num_fields; ++f) {
      max_field_bins = std::max<std::uint64_t>(max_field_bins,
                                               hist.field(f).size());
    }
    const unsigned threads = std::max(1u, pool->num_threads());
    const unsigned bin_chunks =
        pool->num_chunks(total_bins, kSplitScanBinGrain);
    const bool dominated = max_field_bins > 2 * total_bins / threads;
    if (dominated && bin_chunks > 1) {
      std::vector<std::optional<SplitInfo>> chunk_best(bin_chunks);
      std::vector<std::uint64_t> chunk_scanned(bin_chunks, 0);
      pool->parallel_for(0, total_bins, kSplitScanBinGrain,
                         [&](std::uint64_t begin, std::uint64_t end,
                             unsigned c) {
                           scan_bin_range(hist, data, totals, begin, end,
                                          chunk_best[c], chunk_scanned[c]);
                         });
      std::optional<SplitInfo> best;
      std::uint64_t scanned = 0;
      for (unsigned c = 0; c < bin_chunks; ++c) {
        scanned += chunk_scanned[c];
        if (chunk_best[c] && (!best || chunk_best[c]->gain > best->gain)) {
          best = chunk_best[c];
        }
      }
      if (bins_scanned != nullptr) *bins_scanned = scanned;
      return best;
    }
  }

  if (chunks <= 1) {
    std::optional<SplitInfo> best;
    std::uint64_t scanned = 0;
    scan_fields(hist, data, totals, 0, num_fields, best, scanned);
    if (bins_scanned != nullptr) *bins_scanned = scanned;
    return best;
  }

  std::vector<std::optional<SplitInfo>> chunk_best(chunks);
  std::vector<std::uint64_t> chunk_scanned(chunks, 0);
  pool->parallel_for(
      0, num_fields, kSplitScanGrain,
      [&](std::uint64_t begin, std::uint64_t end, unsigned c) {
        scan_fields(hist, data, totals, static_cast<std::uint32_t>(begin),
                    static_cast<std::uint32_t>(end), chunk_best[c],
                    chunk_scanned[c]);
      });

  // Merge in chunk order with strict > : keeps the earliest maximum, which
  // is exactly the serial scan's tie-breaking (fields scan in order within
  // each chunk, and chunks cover the fields in order).
  std::optional<SplitInfo> best;
  std::uint64_t scanned = 0;
  for (unsigned c = 0; c < chunks; ++c) {
    scanned += chunk_scanned[c];
    if (chunk_best[c] && (!best || chunk_best[c]->gain > best->gain)) {
      best = chunk_best[c];
    }
  }
  if (bins_scanned != nullptr) *bins_scanned = scanned;
  return best;
}

}  // namespace booster::gbdt
