// Sharded GBDT training (ROADMAP "Sharded training"): partition the
// records into K contiguous row shards, give every shard its own histogram
// pool and ping-pong row arenas, run the per-shard histogram build /
// partition / traversal as shard tasks on util::ThreadPool, and merge the
// per-node shard histograms with Histogram::add in fixed shard order before
// running the (already-threaded) SplitFinder on the merged result.
//
// Because histogram accumulation is quantized-exact (gbdt::quantize_stat),
// the shard merge is *exactly* order-insensitive, and because the per-shard
// partition is stable and shard ranges are contiguous, concatenating the
// shards' arena spans in shard order reproduces the single-shard row order
// node by node. The trained model -- tree structure, split decisions, leaf
// weights, gains, predictions, and per-tree metrics -- is therefore
// bit-identical to gbdt::Trainer at every shard count, which is what the
// equivalence-test layer (tests/test_sharded_equivalence.cc) asserts and
// what makes the engine trustworthy for the 50M-record nominal workloads
// the paper sizes Booster against (the same merge operator distributes
// across processes; see ROADMAP follow-ons).
#pragma once

#include <cstdint>
#include <utility>

#include "gbdt/trainer.h"

namespace booster::gbdt {

/// Row range [begin, end) of shard `s` out of `shards` over `n` records:
/// contiguous, near-equal, boundaries a pure function of (n, shards) --
/// the same fixed-share rule util::ThreadPool::parallel_for uses for
/// chunks. Requires n * shards < 2^64 (always true for row counts).
inline std::pair<std::uint64_t, std::uint64_t> shard_row_range(
    std::uint64_t n, std::uint32_t shards, std::uint32_t s) {
  return {n * s / shards, n * (s + 1) / shards};
}

/// Drop-in sharded replacement for Trainer::train. Constructed from the
/// same TrainerConfig; cfg.num_shards selects the shard count (values 0/1
/// still run through the sharded engine with one shard -- useful for
/// equivalence tests -- whereas Trainer::train only delegates here for
/// num_shards > 1). Shard tasks run on a pool of cfg.num_threads threads;
/// shard count and thread count are independent knobs. Known limitation:
/// parallelism tops out at num_shards (each shard's work is one serial
/// task), so threads > shards idle the surplus -- exactness would survive
/// per-shard sub-chunking (any grouping merges to the same bits), it just
/// has not been needed yet; see the ROADMAP follow-on.
class ShardedTrainer {
 public:
  explicit ShardedTrainer(TrainerConfig cfg = {}) : cfg_(cfg) {}

  const TrainerConfig& config() const { return cfg_; }

  /// Trains an ensemble; same contract as Trainer::train, bit-identical
  /// output at every (num_shards, num_threads). TrainResult.hot_path
  /// carries per-shard pool/arena stats (HotPathStats::per_shard).
  TrainResult train(const BinnedDataset& data,
                    trace::StepTrace* trace = nullptr,
                    trace::WorkloadInfo* info = nullptr) const;

 private:
  TrainerConfig cfg_;
};

}  // namespace booster::gbdt
