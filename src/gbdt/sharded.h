// Sharded GBDT training (ROADMAP "Sharded training"): partition the
// records into K contiguous row shards, give every shard its own histogram
// pool and ping-pong row arenas, run the per-shard histogram build /
// partition / traversal as (sub-chunked) shard tasks on util::ThreadPool,
// and merge the per-shard histograms with Histogram::add in fixed shard
// order before running the (already-threaded) SplitFinder on the merged
// result.
//
// Since the cross-process PR the engine itself lives in
// gbdt::DistributedTrainer (distributed.h) with the per-shard half in
// gbdt::ShardGroup (shard_ops.h); ShardedTrainer is the zero-transport
// single-rank world of that engine. Because histogram accumulation is
// quantized-exact (gbdt::quantize_stat), the shard merge is *exactly*
// order-insensitive, and because the per-shard partition is stable over
// contiguous shard ranges, the trained model -- tree structure, split
// decisions, leaf weights, gains, predictions, and per-tree metrics -- is
// bit-identical to gbdt::Trainer at every shard count, thread count, and
// sub-chunking, which is what the equivalence-test layer
// (tests/test_sharded_equivalence.cc) asserts. The same merge operator
// distributes across processes -- tests/test_distributed.cc extends the
// contract over real transports.
#pragma once

#include <cstdint>

#include "gbdt/shard_ops.h"
#include "gbdt/trainer.h"

namespace booster::gbdt {

/// Drop-in sharded replacement for Trainer::train. Constructed from the
/// same TrainerConfig; cfg.num_shards selects the shard count (values 0/1
/// still run through the sharded engine with one shard -- useful for
/// equivalence tests -- whereas Trainer::train only delegates here for
/// num_shards > 1). Shard tasks run on a pool of cfg.num_threads threads;
/// shard count and thread count are independent knobs. When threads >
/// shards, every per-shard task is sub-chunked into ceil(threads / shards)
/// contiguous row chunks (ShardHotPathStats::sub_chunks), so the surplus
/// threads contribute instead of idling -- exactness is grouping-
/// independent, so this is pure scheduling.
class ShardedTrainer {
 public:
  explicit ShardedTrainer(TrainerConfig cfg = {}) : cfg_(cfg) {}

  const TrainerConfig& config() const { return cfg_; }

  /// Trains an ensemble; same contract as Trainer::train, bit-identical
  /// output at every (num_shards, num_threads). TrainResult.hot_path
  /// carries per-shard pool/arena stats (HotPathStats::per_shard).
  TrainResult train(const BinnedDataset& data,
                    trace::StepTrace* trace = nullptr,
                    trace::WorkloadInfo* info = nullptr) const;

 private:
  TrainerConfig cfg_;
};

}  // namespace booster::gbdt
