// Differentiable convex losses and their first/second-order gradient
// statistics (g_i, h_i) -- the quantities the histogram bins accumulate.
// GB is agnostic to the loss as long as it is differentiable and convex
// (paper §II-A); we provide the two the evaluated workloads need plus a
// pairwise-ranking surrogate for the Mq2008-style workload.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace booster::gbdt {

/// First- and second-order gradient statistics of one record.
struct GradientPair {
  float g = 0.0f;
  float h = 0.0f;
};

class Loss {
 public:
  virtual ~Loss() = default;

  /// Gradient statistics of l(pred, y) with respect to the raw prediction.
  virtual GradientPair gradients(float pred, float y) const = 0;

  /// Loss value for reporting/early-stopping.
  virtual double value(float pred, float y) const = 0;

  /// Transforms a raw model output into the task's response (identity for
  /// regression, sigmoid for binary classification).
  virtual double transform(double raw) const { return raw; }

  /// Base score: the constant raw prediction the ensemble starts from.
  virtual double base_score(double label_mean) const { return label_mean; }

  virtual std::string name() const = 0;
};

/// Squared error: l = 1/2 (pred - y)^2; g = pred - y, h = 1.
class SquaredLoss final : public Loss {
 public:
  GradientPair gradients(float pred, float y) const override;
  double value(float pred, float y) const override;
  std::string name() const override { return "squared"; }
};

/// Logistic loss for y in {0,1}: g = sigmoid(pred) - y,
/// h = sigmoid(pred) * (1 - sigmoid(pred)).
class LogisticLoss final : public Loss {
 public:
  GradientPair gradients(float pred, float y) const override;
  double value(float pred, float y) const override;
  double transform(double raw) const override;
  double base_score(double label_mean) const override;
  std::string name() const override { return "logistic"; }
};

/// Pointwise surrogate for supervised ranking (Mq2008-style workloads):
/// squared error on graded relevance labels. Real LambdaMART gradients are
/// pairwise; the *computational* profile per record (one g/h pair feeding
/// the same binning/partition/traversal steps) is identical, which is what
/// the performance study needs (see DESIGN.md substitutions).
class RankingLoss final : public Loss {
 public:
  GradientPair gradients(float pred, float y) const override;
  double value(float pred, float y) const override;
  std::string name() const override { return "ranking-pointwise"; }
};

/// Factory by name ("squared", "logistic", "ranking").
std::unique_ptr<Loss> make_loss(const std::string& name);

}  // namespace booster::gbdt
