#include "gbdt/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace booster::gbdt {

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

GradientPair SquaredLoss::gradients(float pred, float y) const {
  return GradientPair{pred - y, 1.0f};
}

double SquaredLoss::value(float pred, float y) const {
  const double d = static_cast<double>(pred) - y;
  return 0.5 * d * d;
}

GradientPair LogisticLoss::gradients(float pred, float y) const {
  const double p = sigmoid(pred);
  return GradientPair{static_cast<float>(p - y),
                      static_cast<float>(std::max(p * (1.0 - p), 1e-16))};
}

double LogisticLoss::value(float pred, float y) const {
  const double p = std::clamp(sigmoid(pred), 1e-15, 1.0 - 1e-15);
  return -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
}

double LogisticLoss::transform(double raw) const { return sigmoid(raw); }

double LogisticLoss::base_score(double label_mean) const {
  const double p = std::clamp(label_mean, 1e-6, 1.0 - 1e-6);
  return std::log(p / (1.0 - p));  // logit of the positive rate
}

GradientPair RankingLoss::gradients(float pred, float y) const {
  return GradientPair{pred - y, 1.0f};
}

double RankingLoss::value(float pred, float y) const {
  const double d = static_cast<double>(pred) - y;
  return 0.5 * d * d;
}

std::unique_ptr<Loss> make_loss(const std::string& name) {
  if (name == "squared") return std::make_unique<SquaredLoss>();
  if (name == "logistic") return std::make_unique<LogisticLoss>();
  if (name == "ranking") return std::make_unique<RankingLoss>();
  BOOSTER_CHECK_MSG(false, ("unknown loss: " + name).c_str());
  return nullptr;
}

}  // namespace booster::gbdt
