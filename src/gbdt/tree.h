// Regression tree over binned features, plus the trained ensemble (Model).
// Interior nodes hold the split predicates chosen by step 2; leaves hold
// weights already scaled by the learning rate. Trees are stored as flat
// node tables -- exactly the representation Booster broadcasts into its
// SRAMs for one-tree traversal and batch inference (paper §III-B, §III-D).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/loss.h"
#include "gbdt/split.h"

namespace booster::gbdt {

struct TreeNode {
  bool is_leaf = true;
  double weight = 0.0;  // leaf output (already shrunk by learning rate)

  // Split predicate (interior nodes).
  std::uint32_t field = 0;
  PredicateKind kind = PredicateKind::kNumericLE;
  std::uint16_t threshold_bin = 0;
  bool default_left = false;
  std::int32_t left = -1;
  std::int32_t right = -1;
  std::int32_t depth = 0;
  /// Objective improvement the split realized (for feature importance).
  double gain = 0.0;
};

class Tree {
 public:
  /// Creates a tree consisting of a single (yet unweighted) root leaf.
  Tree();

  /// Reconstructs a tree from a flat node table -- the inverse of reading
  /// nodes_ out node by node, used when a finished tree arrives over the
  /// wire (ipc::HistogramCodec's tree-complete message). Validates the
  /// table's structural invariants (root at 0, children appended after
  /// their parent, consistent depths) and aborts on violations: trees come
  /// from rank 0 over a checksummed channel, so a bad table is a protocol
  /// bug, not line noise.
  static Tree from_nodes(std::vector<TreeNode> nodes);

  std::int32_t root() const { return 0; }
  const TreeNode& node(std::int32_t id) const { return nodes_[id]; }
  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// Turns leaf `id` into an interior node with two fresh leaf children;
  /// returns {left_id, right_id}.
  std::pair<std::int32_t, std::int32_t> split_leaf(std::int32_t id,
                                                   const SplitInfo& info);

  void set_leaf_weight(std::int32_t id, double w);

  /// True if the record routes left at interior node `id`.
  bool goes_left(std::int32_t id, BinIndex bin) const;

  /// Traverses the tree for one record; returns the leaf weight.
  double predict(const BinnedDataset& data, std::uint64_t record) const;

  /// Path length (edges traversed) for one record.
  std::uint32_t path_length(const BinnedDataset& data,
                            std::uint64_t record) const;

  std::uint32_t num_leaves() const;
  std::uint32_t max_depth() const;

  /// Distinct fields referenced by the tree's predicates -- the set whose
  /// columns Booster fetches in one-tree traversal (paper §III-B step 5).
  std::vector<std::uint32_t> relevant_fields() const;

  /// Bytes of the node-table encoding loaded into a BU's SRAM: predicate
  /// (field#, bin#, kind/default flags) + two child pointers + weight,
  /// packed into 8 bytes per node as in the paper's table encoding.
  std::uint64_t table_bytes() const { return nodes_.size() * 8; }

 private:
  std::vector<TreeNode> nodes_;
};

/// A trained gradient-boosting ensemble.
class Model {
 public:
  Model(double base_score, std::unique_ptr<Loss> loss)
      : base_score_(base_score), loss_(std::move(loss)) {}

  void add_tree(Tree tree) { trees_.push_back(std::move(tree)); }

  /// Deep copy (Model is move-only because of the owned Loss; the loss is
  /// re-made by name). The streaming retrainer clones the previous
  /// generation to warm-start the next one while the original stays
  /// installed in the serving slot.
  Model clone() const;

  const std::vector<Tree>& trees() const { return trees_; }
  std::uint32_t num_trees() const {
    return static_cast<std::uint32_t>(trees_.size());
  }
  double base_score() const { return base_score_; }
  const Loss& loss() const { return *loss_; }

  /// Raw (untransformed) ensemble output for one record.
  double predict_raw(const BinnedDataset& data, std::uint64_t record) const;

  /// Task-space prediction (sigmoid-transformed for logistic).
  double predict(const BinnedDataset& data, std::uint64_t record) const;

  /// Mean path length per tree over a batch -- drives the CPU-side cost of
  /// batch inference (Booster's cost depends on the max depth instead).
  double avg_path_length(const BinnedDataset& data) const;

  std::uint32_t max_tree_depth() const;

 private:
  std::vector<Tree> trees_;
  double base_score_ = 0.0;
  std::unique_ptr<Loss> loss_;
};

}  // namespace booster::gbdt
