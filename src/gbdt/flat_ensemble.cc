#include "gbdt/flat_ensemble.h"

#include <algorithm>
#include <type_traits>

#include "gbdt/loss.h"
#include "gbdt/split.h"
#include "util/check.h"

namespace booster::gbdt {

// The traversal kernel reads bins as raw uint16 columns.
static_assert(std::is_same_v<BinIndex, std::uint16_t>,
              "traverse_block assumes 16-bit bin indices");

void FlatTree::assign(const Tree& tree) {
  const std::uint32_t n = tree.num_nodes();
  left_.resize(n);
  right_.resize(n);
  field_.resize(n);
  threshold_.resize(n);
  flags_.resize(n);
  weight_.resize(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    const TreeNode& nd = tree.node(static_cast<std::int32_t>(id));
    left_[id] = nd.left;
    right_[id] = nd.right;
    field_[id] = static_cast<std::int32_t>(nd.field);
    threshold_[id] = nd.threshold_bin;
    flags_[id] = static_cast<std::uint8_t>(
        (nd.is_leaf ? util::simd::kNodeLeaf : 0) |
        (nd.kind == PredicateKind::kCategoryEqual ? util::simd::kNodeCategorical
                                                  : 0) |
        (nd.default_left ? util::simd::kNodeDefaultLeft : 0));
    weight_[id] = nd.weight;
  }
}

FlatEnsemble::FlatEnsemble(const Model& model)
    : base_score_(model.base_score()), loss_(&model.loss()) {
  trees_.reserve(model.num_trees());
  for (const Tree& t : model.trees()) trees_.emplace_back(t);
}

std::vector<const BinIndex*> column_pointers(const BinnedDataset& data) {
  std::vector<const BinIndex*> cols(data.num_fields());
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    cols[f] = data.column(f).data();
  }
  return cols;
}

void FlatEnsemble::predict_raw_many(const BinIndex* const* columns,
                                    std::uint64_t count,
                                    std::span<double> out) const {
  BOOSTER_CHECK(out.size() >= count);
  const auto& ker = util::simd::kernels();
  const std::uint64_t tile = ker.predict_tile;
  double wts[util::simd::kMaxPredictTile];
  for (std::uint64_t r0 = 0; r0 < count; r0 += tile) {
    const std::size_t m = static_cast<std::size_t>(std::min(tile, count - r0));
    double* acc = out.data() + r0;
    for (std::size_t i = 0; i < m; ++i) acc[i] = base_score_;
    // Tree-major over the tile: each tree's nodes are touched once per
    // tile instead of once per record, and each record still accumulates
    // base + w0 + w1 + ... in ensemble order -- the same additions in the
    // same order as Model::predict_raw, hence bit-identical.
    for (const FlatTree& t : trees_) {
      ker.traverse_block(t.view(), columns, r0, m, wts, nullptr);
      for (std::size_t i = 0; i < m; ++i) acc[i] += wts[i];
    }
  }
}

void FlatEnsemble::predict_many(const BinIndex* const* columns,
                                std::uint64_t count,
                                std::span<double> out) const {
  predict_raw_many(columns, count, out);
  for (std::uint64_t i = 0; i < count; ++i) {
    out[i] = loss_->transform(out[i]);
  }
}

void FlatEnsemble::predict_raw_many(const BinnedDataset& data,
                                    std::uint64_t begin, std::uint64_t end,
                                    std::span<double> out) const {
  BOOSTER_CHECK(begin <= end && end <= data.num_records());
  // Offset the column bases so the pointer entry's record 0 is `begin`:
  // the kernel then performs the same loads as before, bit for bit.
  auto cols = column_pointers(data);
  for (auto& c : cols) c += begin;
  predict_raw_many(cols.data(), end - begin, out);
}

void FlatEnsemble::predict_many(const BinnedDataset& data, std::uint64_t begin,
                                std::uint64_t end,
                                std::span<double> out) const {
  predict_raw_many(data, begin, end, out);
  for (std::uint64_t i = 0; i < end - begin; ++i) {
    out[i] = loss_->transform(out[i]);
  }
}

}  // namespace booster::gbdt
