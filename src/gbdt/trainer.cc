#include "gbdt/trainer.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "gbdt/flat_ensemble.h"
#include "gbdt/hotpath.h"
#include "gbdt/sharded.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace booster::gbdt {

namespace {

using trace::StepEvent;
using trace::StepKind;
using trace::StepTrace;

/// Rows per chunk for the embarrassingly parallel per-record loops
/// (gradient refresh, step-5 traversal, loss evaluation).
constexpr std::uint64_t kRecordGrain = 2048;

/// Mutable state of one frontier node during tree growth. The node's
/// records are the span [begin, end) of one of the trainer's two ping-pong
/// row arenas (`buf` says which) -- no per-node row storage. Partitioning
/// writes a node's children into the opposite arena, which is safe because
/// the frontier is processed strictly breadth-first: all nodes of depth d
/// (whose rows live in arena d mod 2) are consumed before any depth-d+1
/// node overwrites that arena's parity.
struct FrontierNode {
  std::int32_t tree_node = 0;
  std::int32_t depth = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint8_t buf = 0;
  Histogram hist;
  BinStats totals;

  std::uint64_t num_rows() const { return end - begin; }
};

void emit(StepTrace* trace, StepEvent e) {
  if (trace != nullptr) trace->add(e);
}

}  // namespace

TrainResult Trainer::train(const BinnedDataset& data, StepTrace* trace,
                           trace::WorkloadInfo* info) const {
  if (cfg_.num_shards > 1) {
    // Sharded training is a drop-in engine swap: per-shard histograms
    // merged in fixed shard order, bit-identical output (sharded.h).
    return ShardedTrainer(cfg_).train(data, trace, info);
  }
  const std::uint64_t n = data.num_records();
  BOOSTER_CHECK_MSG(n > 0, "cannot train on an empty dataset");
  auto loss = make_loss(cfg_.loss);
  const std::uint32_t num_fields = data.num_fields();

  // One pool + one histogram pool + one row arena for the whole run; the
  // per-tree loop below performs no allocations once these are warm.
  util::ThreadPool pool(cfg_.num_threads);
  HistogramPool hist_pool(data);
  std::vector<std::uint32_t> row_bufs[2] = {std::vector<std::uint32_t>(n),
                                            std::vector<std::uint32_t>(n)};
  std::vector<std::uint64_t> chunk_counts(pool.num_threads() + 1, 0);
  std::vector<double> chunk_sums(pool.num_threads(), 0.0);
  std::vector<Histogram> partials_scratch;

  // Base score from the label mean (logit-transformed for logistic loss),
  // or inherited from the warm-start model so its leaf weights keep
  // meaning the same raw-score deltas.
  double base_score;
  if (cfg_.init_model != nullptr) {
    BOOSTER_CHECK_MSG(cfg_.init_model->loss().name() == cfg_.loss,
                      "warm start: init model's loss differs from the "
                      "config's loss");
    base_score = cfg_.init_model->base_score();
  } else {
    double label_mean = 0.0;
    for (float y : data.labels()) label_mean += y;
    label_mean /= static_cast<double>(n);
    base_score = loss->base_score(label_mean);
  }

  std::vector<float> preds(n, static_cast<float>(base_score));
  std::vector<GradientPair> gradients(n);
  // Initial gradient pass: part of pre-processing (no tree to traverse),
  // so it is not a step-5 event.
  pool.for_chunks(0, n, kRecordGrain,
                    [&](std::uint64_t b, std::uint64_t e, unsigned) {
                      for (std::uint64_t r = b; r < e; ++r) {
                        gradients[r] =
                            loss->gradients(preds[r], data.labels()[r]);
                      }
                    });

  const SplitFinder finder(cfg_.split);
  TrainResult result{.model = Model(base_score, make_loss(cfg_.loss))};

  // Step-5 traversal runs the completed tree in flat SoA form through the
  // blocked SIMD traversal kernel; one scratch FlatTree is re-encoded per
  // tree (allocation-free once capacity is warm), and the per-field column
  // pointers never change.
  const std::vector<const BinIndex*> col_ptrs = column_pointers(data);
  FlatTree flat_scratch;

  // Warm start: copy the init ensemble into the result and replay each of
  // its trees through the same blocked step-5 traversal the training loop
  // uses, updating preds and recomputing gradients in ascending record
  // order -- the identical arithmetic a cold run would have performed had
  // it just grown these trees, so everything downstream (histograms,
  // splits, weights) is bit-identical across threads / shards / SIMD.
  if (cfg_.init_model != nullptr) {
    const auto& ker0 = util::simd::kernels();
    for (const Tree& init_tree : cfg_.init_model->trees()) {
      flat_scratch.assign(init_tree);
      pool.for_chunks(
          0, n, kRecordGrain,
          [&](std::uint64_t b, std::uint64_t e, unsigned) {
            double wts[util::simd::kMaxPredictTile];
            std::uint32_t tile_hops[util::simd::kMaxPredictTile];
            const util::simd::FlatTreeView view = flat_scratch.view();
            for (std::uint64_t r0 = b; r0 < e; r0 += ker0.predict_tile) {
              const std::size_t m = static_cast<std::size_t>(
                  std::min<std::uint64_t>(ker0.predict_tile, e - r0));
              ker0.traverse_block(view, col_ptrs.data(), r0, m, wts,
                                  tile_hops);
              for (std::size_t i = 0; i < m; ++i) {
                const std::uint64_t r = r0 + i;
                preds[r] += static_cast<float>(wts[i]);
                gradients[r] = loss->gradients(preds[r], data.labels()[r]);
              }
            }
          });
      // Placeholder stats keep tree_stats index-aligned with model.trees()
      // (the distributed catch-up payload relies on that alignment).
      TreeStats init_stats;
      init_stats.leaves = init_tree.num_leaves();
      init_stats.depth = init_tree.max_depth();
      result.tree_stats.push_back(init_stats);
      result.model.add_tree(init_tree);
    }
  }

  double leaf_depth_sum = 0.0;
  std::uint64_t leaf_count = 0;
  double prev_loss = std::numeric_limits<double>::infinity();
  std::uint32_t stagnant_trees = 0;

  for (std::uint32_t t = 0; t < cfg_.num_trees; ++t) {
    Tree tree;
    std::deque<FrontierNode> frontier;
    // Level-by-level growth aggregates child binning per level (one record
    // stream per level, paper SS II-A); indexed by depth. The node count
    // rides along so the aggregated event reports how many per-node
    // histograms it covers (StepEvent::histograms).
    std::vector<std::uint64_t> level_hist_records;
    std::vector<std::uint32_t> level_hist_nodes;

    // Reset arena 0 to ascending row order: the partition is stable, so
    // every node span stays ascending all the way down -- histogram
    // gathers then stream the row-major matrix forward (the cache behavior
    // the seed got from its freshly-copied sorted row vectors) instead of
    // walking the previous tree's permutation.
    pool.for_chunks(0, n, kRecordGrain,
                      [&](std::uint64_t b, std::uint64_t e, unsigned) {
                        for (std::uint64_t r = b; r < e; ++r) {
                          row_bufs[0][r] = static_cast<std::uint32_t>(r);
                        }
                      });

    // Root: bin all records (step 1 at the root covers the full dataset).
    {
      FrontierNode root;
      root.tree_node = tree.root();
      root.depth = 0;
      root.begin = 0;
      root.end = n;
      root.buf = 0;
      root.hist = hist_pool.acquire();
      build_histogram_parallel(root.hist, data, row_bufs[0], gradients, pool,
                               hist_pool, partials_scratch);
      root.totals = root.hist.totals();
      emit(trace, StepEvent{.kind = StepKind::kHistogram,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = 0,
                            .records = n,
                            .fields_touched = num_fields,
                            .record_fields = num_fields});
      frontier.push_back(std::move(root));
    }

    while (!frontier.empty()) {
      FrontierNode node = std::move(frontier.front());
      frontier.pop_front();

      auto make_leaf = [&](const BinStats& totals) {
        tree.set_leaf_weight(node.tree_node,
                             cfg_.learning_rate *
                                 leaf_weight(totals, cfg_.split.lambda));
        leaf_depth_sum += node.depth;
        ++leaf_count;
        hist_pool.release(std::move(node.hist));
      };

      if (node.depth >= static_cast<std::int32_t>(cfg_.max_depth) ||
          node.num_rows() < cfg_.min_node_records) {
        make_leaf(node.totals);
        continue;
      }

      // Step 2: scan every bin of every field for the best split (host).
      std::uint64_t bins_scanned = 0;
      const auto split = finder.find_best(node.hist, data, &pool, &bins_scanned);
      emit(trace, StepEvent{.kind = StepKind::kSplitSelect,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = node.depth,
                            .bins_scanned = bins_scanned});
      if (!split) {
        make_leaf(node.totals);
        continue;
      }

      // Step 3: apply the predicate to partition the node's arena span into
      // the opposite ping-pong arena (stable: identical row order to the
      // scalar two-vector reference at any thread count).
      // The split's left-bucket histogram count is the exact left-row
      // count (counts are exact integers in a double); partition_to aborts
      // if the realized partition disagrees.
      const std::uint64_t n_left = split->left.count_u64();
      BOOSTER_CHECK_MSG(n_left > 0 && n_left < node.num_rows(),
                        "split produced an empty child");
      const std::uint8_t child_buf = node.buf ^ 1;
      partition_to(row_bufs[node.buf], row_bufs[child_buf], node.begin,
                   node.end, n_left, data, *split, pool, chunk_counts);
      emit(trace, StepEvent{.kind = StepKind::kPartition,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = node.depth,
                            .records = node.num_rows(),
                            .fields_touched = 1,
                            .record_fields = num_fields});
      const std::uint64_t n_right = node.num_rows() - n_left;

      const auto [left_id, right_id] = tree.split_leaf(node.tree_node, *split);

      const std::int32_t child_depth = node.depth + 1;
      const bool children_may_split =
          child_depth < static_cast<std::int32_t>(cfg_.max_depth);

      if (!children_may_split) {
        // Children are leaves; their totals come from the split evaluation,
        // no further binning needed.
        tree.set_leaf_weight(left_id, cfg_.learning_rate *
                                          leaf_weight(split->left,
                                                      cfg_.split.lambda));
        tree.set_leaf_weight(right_id, cfg_.learning_rate *
                                           leaf_weight(split->right,
                                                       cfg_.split.lambda));
        leaf_depth_sum += 2.0 * child_depth;
        leaf_count += 2;
        hist_pool.release(std::move(node.hist));
        continue;
      }

      // Step 1 at the children: explicitly bin only the smaller child; the
      // larger child's histogram is parent - smaller (paper §II-A), computed
      // in place in the parent's recycled buffer.
      const bool left_smaller = n_left <= n_right;
      FrontierNode small;
      FrontierNode large;
      small.tree_node = left_smaller ? left_id : right_id;
      large.tree_node = left_smaller ? right_id : left_id;
      small.depth = large.depth = child_depth;
      small.buf = large.buf = child_buf;
      const std::uint64_t mid = node.begin + n_left;
      small.begin = left_smaller ? node.begin : mid;
      small.end = left_smaller ? mid : node.end;
      large.begin = left_smaller ? mid : node.begin;
      large.end = left_smaller ? node.end : mid;

      small.hist = hist_pool.acquire();
      build_histogram_parallel(
          small.hist, data,
          std::span<const std::uint32_t>(row_bufs[child_buf].data() +
                                             small.begin,
                                         small.num_rows()),
          gradients, pool, hist_pool, partials_scratch);
      small.totals = small.hist.totals();
      if (cfg_.growth == GrowthOrder::kVertexByVertex) {
        emit(trace, StepEvent{.kind = StepKind::kHistogram,
                              .tree = static_cast<std::int32_t>(t),
                              .depth = child_depth,
                              .records = small.num_rows(),
                              .fields_touched = num_fields,
                              .record_fields = num_fields,
                              .used_sibling_subtraction = true});
      } else {
        if (level_hist_records.size() <=
            static_cast<std::size_t>(child_depth)) {
          level_hist_records.resize(child_depth + 1, 0);
          level_hist_nodes.resize(child_depth + 1, 0);
        }
        level_hist_records[child_depth] += small.num_rows();
        ++level_hist_nodes[child_depth];
      }

      large.hist = std::move(node.hist);
      large.hist.subtract(small.hist);
      large.totals = large.hist.totals();

      frontier.push_back(std::move(small));
      frontier.push_back(std::move(large));
    }

    // Level-by-level mode: one aggregated histogram event per level (the
    // level's smaller children are binned from a single record stream).
    if (cfg_.growth == GrowthOrder::kLevelByLevel) {
      for (std::size_t depth = 0; depth < level_hist_records.size(); ++depth) {
        if (level_hist_records[depth] == 0) continue;
        emit(trace, StepEvent{.kind = StepKind::kHistogram,
                              .tree = static_cast<std::int32_t>(t),
                              .depth = static_cast<std::int32_t>(depth),
                              .records = level_hist_records[depth],
                              .fields_touched = num_fields,
                              .record_fields = num_fields,
                              .histograms = level_hist_nodes[depth],
                              .used_sibling_subtraction = true});
      }
    }

    // Step 5: pass every record through the completed tree, update the
    // prediction, and recompute gradient statistics for the next tree.
    // Records are independent; per-chunk hop sums are integers, so the
    // reduction is exact at any thread count.
    std::fill(chunk_sums.begin(), chunk_sums.end(), 0.0);
    flat_scratch.assign(tree);
    const auto& ker = util::simd::kernels();
    pool.for_chunks(
        0, n, kRecordGrain, [&](std::uint64_t b, std::uint64_t e, unsigned c) {
          double chunk_hops = 0.0;
          double wts[util::simd::kMaxPredictTile];
          std::uint32_t tile_hops[util::simd::kMaxPredictTile];
          const util::simd::FlatTreeView view = flat_scratch.view();
          // Column-major access: records are visited in ascending order, so
          // the tree's few relevant columns stream from cache; the blocked
          // kernel advances a whole tile level-synchronously, overlapping
          // the tile's bin loads. Traversal is pure routing and the
          // per-record updates below run in ascending record order, so the
          // output matches the per-record loop bit for bit at every
          // dispatch level.
          for (std::uint64_t r0 = b; r0 < e; r0 += ker.predict_tile) {
            const std::size_t m = static_cast<std::size_t>(
                std::min<std::uint64_t>(ker.predict_tile, e - r0));
            ker.traverse_block(view, col_ptrs.data(), r0, m, wts, tile_hops);
            for (std::size_t i = 0; i < m; ++i) {
              const std::uint64_t r = r0 + i;
              preds[r] += static_cast<float>(wts[i]);
              gradients[r] = loss->gradients(preds[r], data.labels()[r]);
              chunk_hops += tile_hops[i];
            }
          }
          chunk_sums[c] += chunk_hops;
        });
    double hops = 0.0;
    for (const double s : chunk_sums) hops += s;
    emit(trace, StepEvent{.kind = StepKind::kTraversal,
                          .tree = static_cast<std::int32_t>(t),
                          .depth = static_cast<std::int32_t>(tree.max_depth()),
                          .records = n,
                          .fields_touched = static_cast<std::uint32_t>(
                              tree.relevant_fields().size()),
                          .record_fields = num_fields,
                          .avg_path_length = hops / static_cast<double>(n)});

    TreeStats stats;
    stats.leaves = tree.num_leaves();
    stats.depth = tree.max_depth();
    std::fill(chunk_sums.begin(), chunk_sums.end(), 0.0);
    pool.for_chunks(
        0, n, kRecordGrain, [&](std::uint64_t b, std::uint64_t e, unsigned c) {
          double chunk_loss = 0.0;
          for (std::uint64_t r = b; r < e; ++r) {
            // Quantized terms make the reduction exact in any grouping, so
            // train_loss (and the step-6 early-stop decisions it feeds) is
            // bit-identical across thread and shard counts.
            chunk_loss += quantize_stat(loss->value(preds[r], data.labels()[r]));
          }
          chunk_sums[c] += chunk_loss;
        });
    double total_loss = 0.0;
    for (const double s : chunk_sums) total_loss += s;
    // Loss terms are non-negative, so the total bounds every partial sum;
    // within capacity the quantized reduction is exact in any grouping
    // (same guard as Histogram::totals -- fail loudly, never drift).
    BOOSTER_CHECK_MSG(total_loss <= kStatSumCapacity,
                      "training-loss sum exceeds the quantized-exact "
                      "capacity (2^29); normalize labels or enlarge "
                      "kStatQuantum");
    stats.train_loss = total_loss / static_cast<double>(n);
    result.tree_stats.push_back(stats);
    result.model.add_tree(std::move(tree));

    // Step 6: keep adding trees only while the loss keeps improving.
    if (cfg_.early_stop_rel_improvement > 0.0) {
      const double improvement =
          prev_loss <= 0.0 ? 0.0 : (prev_loss - stats.train_loss) / prev_loss;
      if (std::isfinite(prev_loss) &&
          improvement < cfg_.early_stop_rel_improvement) {
        if (++stagnant_trees >= cfg_.early_stop_patience) {
          result.early_stopped = true;
          break;
        }
      } else {
        stagnant_trees = 0;
      }
      prev_loss = stats.train_loss;
    }
  }

  result.avg_leaf_depth =
      leaf_count == 0 ? 0.0 : leaf_depth_sum / static_cast<double>(leaf_count);

  result.hot_path.threads = pool.num_threads();
  result.hot_path.simd = util::simd::level_name(util::simd::active());
  result.hot_path.histogram_allocations = hist_pool.allocations();
  result.hot_path.histogram_acquires = hist_pool.acquires();
  result.hot_path.arena_bytes =
      (row_bufs[0].size() + row_bufs[1].size()) * sizeof(std::uint32_t);
  result.hot_path.row_major_matrix_bytes =
      RecordLayout::software_row_major_bytes(n, num_fields, sizeof(BinIndex));

  detail::fill_workload_info(data, cfg_, result, info);

  return result;
}

namespace detail {

void fill_workload_info(const BinnedDataset& data, const TrainerConfig& cfg,
                        const TrainResult& result,
                        trace::WorkloadInfo* info) {
  if (info == nullptr) return;
  const std::uint32_t num_fields = data.num_fields();
  info->nominal_records = data.num_records();
  info->fields = num_fields;
  info->categorical_fields = 0;
  std::uint64_t onehot = 0;
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    const auto& fb = data.field_bins(f);
    if (fb.kind == FieldKind::kCategorical) {
      ++info->categorical_fields;
      onehot += fb.num_bins - 1;  // per-category one-hot features
    } else {
      ++onehot;
    }
  }
  info->features_onehot = static_cast<std::uint32_t>(onehot);
  info->total_bins = data.total_bins();
  info->max_bins_per_field = data.max_bins_per_field();
  info->bins_per_field.clear();
  info->bins_per_field.reserve(num_fields);
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    info->bins_per_field.push_back(data.field_bins(f).num_bins);
  }
  info->trees = cfg.num_trees;
  info->max_depth = cfg.max_depth;
  info->avg_leaf_depth = result.avg_leaf_depth;
  info->record_bytes = data.layout().record_bytes;
}

}  // namespace detail

}  // namespace booster::gbdt
