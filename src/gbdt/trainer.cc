#include "gbdt/trainer.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "util/check.h"

namespace booster::gbdt {

namespace {

using trace::StepEvent;
using trace::StepKind;
using trace::StepTrace;

/// Mutable state of one frontier node during tree growth.
struct FrontierNode {
  std::int32_t tree_node = 0;
  std::int32_t depth = 0;
  std::vector<std::uint32_t> rows;
  Histogram hist;
  BinStats totals;
};

void emit(StepTrace* trace, StepEvent e) {
  if (trace != nullptr) trace->add(e);
}

}  // namespace

TrainResult Trainer::train(const BinnedDataset& data, StepTrace* trace,
                           trace::WorkloadInfo* info) const {
  const std::uint64_t n = data.num_records();
  BOOSTER_CHECK_MSG(n > 0, "cannot train on an empty dataset");
  auto loss = make_loss(cfg_.loss);
  const std::uint32_t num_fields = data.num_fields();

  // Base score from the label mean (logit-transformed for logistic loss).
  double label_mean = 0.0;
  for (float y : data.labels()) label_mean += y;
  label_mean /= static_cast<double>(n);
  const double base_score = loss->base_score(label_mean);

  std::vector<float> preds(n, static_cast<float>(base_score));
  std::vector<GradientPair> gradients(n);
  auto refresh_gradients = [&] {
    for (std::uint64_t r = 0; r < n; ++r) {
      gradients[r] = loss->gradients(preds[r], data.labels()[r]);
    }
  };
  // Initial gradient pass: part of pre-processing (no tree to traverse),
  // so it is not a step-5 event.
  refresh_gradients();

  const SplitFinder finder(cfg_.split);
  TrainResult result{Model(base_score, make_loss(cfg_.loss)), {}, 0.0};

  std::vector<std::uint32_t> all_rows(n);
  for (std::uint64_t r = 0; r < n; ++r) all_rows[r] = static_cast<std::uint32_t>(r);

  double leaf_depth_sum = 0.0;
  std::uint64_t leaf_count = 0;
  double prev_loss = std::numeric_limits<double>::infinity();
  std::uint32_t stagnant_trees = 0;

  for (std::uint32_t t = 0; t < cfg_.num_trees; ++t) {
    Tree tree;
    std::deque<FrontierNode> frontier;
    // Level-by-level growth aggregates child binning per level (one record
    // stream per level, paper SS II-A); indexed by depth.
    std::vector<std::uint64_t> level_hist_records;

    // Root: bin all records (step 1 at the root covers the full dataset).
    {
      FrontierNode root;
      root.tree_node = tree.root();
      root.depth = 0;
      root.rows = all_rows;
      root.hist = Histogram(data);
      root.hist.build(data, root.rows, gradients);
      root.totals = root.hist.totals();
      emit(trace, StepEvent{.kind = StepKind::kHistogram,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = 0,
                            .records = n,
                            .fields_touched = num_fields,
                            .record_fields = num_fields});
      frontier.push_back(std::move(root));
    }

    while (!frontier.empty()) {
      FrontierNode node = std::move(frontier.front());
      frontier.pop_front();

      auto make_leaf = [&](const BinStats& totals) {
        tree.set_leaf_weight(node.tree_node,
                             cfg_.learning_rate *
                                 leaf_weight(totals, cfg_.split.lambda));
        leaf_depth_sum += node.depth;
        ++leaf_count;
      };

      if (node.depth >= static_cast<std::int32_t>(cfg_.max_depth) ||
          node.rows.size() < cfg_.min_node_records) {
        make_leaf(node.totals);
        continue;
      }

      // Step 2: scan every bin of every field for the best split (host).
      std::uint64_t bins_scanned = 0;
      const auto split = finder.find_best(node.hist, data, &bins_scanned);
      emit(trace, StepEvent{.kind = StepKind::kSplitSelect,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = node.depth,
                            .bins_scanned = bins_scanned});
      if (!split) {
        make_leaf(node.totals);
        continue;
      }

      // Step 3: apply the predicate to partition the node's records.
      std::vector<std::uint32_t> left_rows;
      std::vector<std::uint32_t> right_rows;
      left_rows.reserve(static_cast<std::size_t>(split->left.count) + 1);
      right_rows.reserve(static_cast<std::size_t>(split->right.count) + 1);
      {
        const auto& col = data.column(split->field);
        const bool numeric = split->kind == PredicateKind::kNumericLE;
        for (const std::uint32_t r : node.rows) {
          const BinIndex bin = col[r];
          const bool go_left =
              bin == 0 ? split->default_left
                       : (numeric ? bin <= split->threshold_bin
                                  : bin == split->threshold_bin);
          (go_left ? left_rows : right_rows).push_back(r);
        }
      }
      emit(trace, StepEvent{.kind = StepKind::kPartition,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = node.depth,
                            .records = node.rows.size(),
                            .fields_touched = 1,
                            .record_fields = num_fields});
      BOOSTER_CHECK_MSG(!left_rows.empty() && !right_rows.empty(),
                        "split produced an empty child");

      const auto [left_id, right_id] = tree.split_leaf(node.tree_node, *split);

      const std::int32_t child_depth = node.depth + 1;
      const bool children_may_split =
          child_depth < static_cast<std::int32_t>(cfg_.max_depth);

      if (!children_may_split) {
        // Children are leaves; their totals come from the split evaluation,
        // no further binning needed.
        tree.set_leaf_weight(left_id, cfg_.learning_rate *
                                          leaf_weight(split->left,
                                                      cfg_.split.lambda));
        tree.set_leaf_weight(right_id, cfg_.learning_rate *
                                           leaf_weight(split->right,
                                                       cfg_.split.lambda));
        leaf_depth_sum += 2.0 * child_depth;
        leaf_count += 2;
        continue;
      }

      // Step 1 at the children: explicitly bin only the smaller child; the
      // larger child's histogram is parent - smaller (paper §II-A).
      const bool left_smaller = left_rows.size() <= right_rows.size();
      FrontierNode small;
      FrontierNode large;
      small.tree_node = left_smaller ? left_id : right_id;
      large.tree_node = left_smaller ? right_id : left_id;
      small.depth = large.depth = child_depth;
      small.rows = left_smaller ? std::move(left_rows) : std::move(right_rows);
      large.rows = left_smaller ? std::move(right_rows) : std::move(left_rows);

      small.hist = Histogram(data);
      small.hist.build(data, small.rows, gradients);
      small.totals = small.hist.totals();
      if (cfg_.growth == GrowthOrder::kVertexByVertex) {
        emit(trace, StepEvent{.kind = StepKind::kHistogram,
                              .tree = static_cast<std::int32_t>(t),
                              .depth = child_depth,
                              .records = small.rows.size(),
                              .fields_touched = num_fields,
                              .record_fields = num_fields,
                              .used_sibling_subtraction = true});
      } else {
        if (level_hist_records.size() <=
            static_cast<std::size_t>(child_depth)) {
          level_hist_records.resize(child_depth + 1, 0);
        }
        level_hist_records[child_depth] += small.rows.size();
      }

      large.hist.subtract_from(node.hist, small.hist);
      large.totals = large.hist.totals();

      frontier.push_back(std::move(small));
      frontier.push_back(std::move(large));
    }

    // Level-by-level mode: one aggregated histogram event per level (the
    // level's smaller children are binned from a single record stream).
    if (cfg_.growth == GrowthOrder::kLevelByLevel) {
      for (std::size_t depth = 0; depth < level_hist_records.size(); ++depth) {
        if (level_hist_records[depth] == 0) continue;
        emit(trace, StepEvent{.kind = StepKind::kHistogram,
                              .tree = static_cast<std::int32_t>(t),
                              .depth = static_cast<std::int32_t>(depth),
                              .records = level_hist_records[depth],
                              .fields_touched = num_fields,
                              .record_fields = num_fields,
                              .used_sibling_subtraction = true});
      }
    }

    // Step 5: pass every record through the completed tree, update the
    // prediction, and recompute gradient statistics for the next tree.
    double hops = 0.0;
    for (std::uint64_t r = 0; r < n; ++r) {
      std::int32_t id = tree.root();
      std::uint32_t path = 0;
      while (!tree.node(id).is_leaf) {
        const TreeNode& nd = tree.node(id);
        id = tree.goes_left(id, data.bin(nd.field, r)) ? nd.left : nd.right;
        ++path;
      }
      preds[r] += static_cast<float>(tree.node(id).weight);
      gradients[r] = loss->gradients(preds[r], data.labels()[r]);
      hops += path;
    }
    emit(trace, StepEvent{.kind = StepKind::kTraversal,
                          .tree = static_cast<std::int32_t>(t),
                          .depth = static_cast<std::int32_t>(tree.max_depth()),
                          .records = n,
                          .fields_touched = static_cast<std::uint32_t>(
                              tree.relevant_fields().size()),
                          .record_fields = num_fields,
                          .avg_path_length = hops / static_cast<double>(n)});

    TreeStats stats;
    stats.leaves = tree.num_leaves();
    stats.depth = tree.max_depth();
    double total_loss = 0.0;
    for (std::uint64_t r = 0; r < n; ++r) {
      total_loss += loss->value(preds[r], data.labels()[r]);
    }
    stats.train_loss = total_loss / static_cast<double>(n);
    result.tree_stats.push_back(stats);
    result.model.add_tree(std::move(tree));

    // Step 6: keep adding trees only while the loss keeps improving.
    if (cfg_.early_stop_rel_improvement > 0.0) {
      const double improvement =
          prev_loss <= 0.0 ? 0.0 : (prev_loss - stats.train_loss) / prev_loss;
      if (std::isfinite(prev_loss) &&
          improvement < cfg_.early_stop_rel_improvement) {
        if (++stagnant_trees >= cfg_.early_stop_patience) {
          result.early_stopped = true;
          break;
        }
      } else {
        stagnant_trees = 0;
      }
      prev_loss = stats.train_loss;
    }
  }

  result.avg_leaf_depth =
      leaf_count == 0 ? 0.0 : leaf_depth_sum / static_cast<double>(leaf_count);

  if (info != nullptr) {
    info->nominal_records = n;
    info->fields = num_fields;
    info->categorical_fields = 0;
    std::uint64_t onehot = 0;
    for (std::uint32_t f = 0; f < num_fields; ++f) {
      const auto& fb = data.field_bins(f);
      if (fb.kind == FieldKind::kCategorical) {
        ++info->categorical_fields;
        onehot += fb.num_bins - 1;  // per-category one-hot features
      } else {
        ++onehot;
      }
    }
    info->features_onehot = static_cast<std::uint32_t>(onehot);
    info->total_bins = data.total_bins();
    info->max_bins_per_field = data.max_bins_per_field();
    info->bins_per_field.clear();
    info->bins_per_field.reserve(num_fields);
    for (std::uint32_t f = 0; f < num_fields; ++f) {
      info->bins_per_field.push_back(data.field_bins(f).num_bins);
    }
    info->trees = cfg_.num_trees;
    info->max_depth = cfg_.max_depth;
    info->avg_leaf_depth = result.avg_leaf_depth;
    info->record_bytes = data.layout().record_bytes;
  }

  return result;
}

}  // namespace booster::gbdt
