#include "gbdt/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace booster::gbdt {

double rmse(const Model& model, const BinnedDataset& data) {
  const std::uint64_t n = data.num_records();
  if (n == 0) return 0.0;
  double sq = 0.0;
  for (std::uint64_t r = 0; r < n; ++r) {
    const double d = model.predict(data, r) - data.labels()[r];
    sq += d * d;
  }
  return std::sqrt(sq / static_cast<double>(n));
}

double accuracy(const Model& model, const BinnedDataset& data) {
  const std::uint64_t n = data.num_records();
  if (n == 0) return 0.0;
  std::uint64_t correct = 0;
  for (std::uint64_t r = 0; r < n; ++r) {
    const bool pred = model.predict(data, r) >= 0.5;
    const bool truth = data.labels()[r] >= 0.5f;
    correct += (pred == truth) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

double auc(const Model& model, const BinnedDataset& data) {
  const std::uint64_t n = data.num_records();
  if (n == 0) return 0.5;
  std::vector<double> scores(n);
  for (std::uint64_t r = 0; r < n; ++r) scores[r] = model.predict(data, r);
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
    return scores[a] < scores[b];
  });
  // Rank-sum (Mann-Whitney) AUC with midranks for ties.
  double rank_sum_pos = 0.0;
  std::uint64_t positives = 0;
  std::uint64_t i = 0;
  while (i < n) {
    std::uint64_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    for (std::uint64_t k = i; k < j; ++k) {
      if (data.labels()[order[k]] >= 0.5f) {
        rank_sum_pos += midrank;
        ++positives;
      }
    }
    i = j;
  }
  const std::uint64_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(positives) * (positives + 1) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

double mean_loss(const Model& model, const BinnedDataset& data) {
  const std::uint64_t n = data.num_records();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (std::uint64_t r = 0; r < n; ++r) {
    total += model.loss().value(
        static_cast<float>(model.predict_raw(data, r)), data.labels()[r]);
  }
  return total / static_cast<double>(n);
}

}  // namespace booster::gbdt
