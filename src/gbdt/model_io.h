// Model serialization: a line-oriented text format so trained ensembles can
// be saved, shipped to an inference service (or a Booster device image),
// and reloaded. The format is versioned and self-describing; round-tripping
// is exact for the quantities that matter (bin thresholds are integral,
// weights are serialized with full double precision).
//
// Format:
//   booster-model v1
//   base_score <double>
//   loss <name>
//   trees <count>
//   tree <index> nodes <count>
//   node <id> leaf <weight>
//   node <id> split <field> <kind> <threshold_bin> <default_left> <left> <right>
#pragma once

#include <iosfwd>
#include <string>

#include "gbdt/tree.h"

namespace booster::gbdt {

/// Writes the model to a stream; throws nothing, reports via stream state.
void save_model(const Model& model, std::ostream& out);

/// Saves to a file; returns false on I/O failure.
bool save_model_file(const Model& model, const std::string& path);

/// Parses a model from a stream. Aborts (BOOSTER_CHECK) on malformed input
/// -- model files are trusted artifacts produced by save_model.
Model load_model(std::istream& in);

/// Loads from a file; aborts if the file cannot be opened or parsed.
Model load_model_file(const std::string& path);

}  // namespace booster::gbdt
