// Model serialization: a line-oriented text format so trained ensembles can
// be saved, shipped to an inference service (or a Booster device image),
// and reloaded. The format is versioned and self-describing; round-tripping
// is exact for the quantities that matter (bin thresholds are integral,
// weights are serialized with full double precision).
//
// Format:
//   booster-model v1
//   base_score <double>
//   loss <name>
//   trees <count>
//   tree <index> nodes <count>
//   node <id> leaf <weight>
//   node <id> split <field> <kind> <threshold_bin> <default_left> <left> <right>
// For artifacts that cross an unreliable boundary (files handed to a
// serving process, shipped between machines) the *checked container*
// wraps the v1 text in a one-line header carrying the payload length and
// a CRC-32 over the payload bytes -- the same end-to-end discipline as
// the ipc::HistogramCodec wire format:
//   booster-model-container v1 bytes <N> crc32 <8 hex digits>
//   <N payload bytes: exactly the v1 text above>
// Checked loads validate magic, version, length, and checksum *before*
// parsing, and report a distinct ModelFileStatus per failure mode instead
// of aborting -- serve::ModelSlot keeps serving the old model on anything
// but kOk.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "gbdt/tree.h"

namespace booster::gbdt {

/// Writes the model to a stream; throws nothing, reports via stream state.
void save_model(const Model& model, std::ostream& out);

/// Saves to a file; returns false on I/O failure.
bool save_model_file(const Model& model, const std::string& path);

/// Parses a model from a stream. Aborts (BOOSTER_CHECK) on malformed input
/// -- model files are trusted artifacts produced by save_model.
Model load_model(std::istream& in);

/// Loads from a file; aborts if the file cannot be opened or parsed.
Model load_model_file(const std::string& path);

/// Why a checked container load was refused. Every mode is distinct so
/// operators (and tests) can tell a wrong file from a torn write from
/// bit rot.
enum class ModelFileStatus : std::uint8_t {
  kOk = 0,
  kIoError,      // cannot open / read the file at all
  kBadMagic,     // not a booster-model-container header
  kBadVersion,   // container version this build does not speak
  kTruncated,    // payload shorter than the header's byte count
  kBadChecksum,  // CRC-32 mismatch over the payload bytes
};

/// Stable lowercase name for logs and error responses
/// ("ok" / "io-error" / "bad-magic" / ...).
const char* model_file_status_name(ModelFileStatus status);

/// Writes the checked container (header + v1 payload + CRC).
void save_model_checked(const Model& model, std::ostream& out);

/// Saves the checked container to a file; returns false on I/O failure.
bool save_model_checked_file(const Model& model, const std::string& path);

/// Validates the container header and checksum, then parses the payload.
/// On kOk, `*out` holds the model; on any failure `*out` is untouched and
/// the status says which integrity check failed. Never aborts on a bad
/// container (the payload parse still aborts on a corrupt *payload that
/// passes its CRC*, which cannot happen by accident).
ModelFileStatus load_model_checked(std::istream& in,
                                   std::optional<Model>* out);

/// File form of load_model_checked; kIoError when the file cannot be
/// opened.
ModelFileStatus load_model_checked_file(const std::string& path,
                                        std::optional<Model>* out);

}  // namespace booster::gbdt
