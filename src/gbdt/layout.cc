#include "gbdt/layout.h"

#include "util/check.h"

namespace booster::gbdt {

RecordLayout RecordLayout::from_field_features(
    const std::vector<std::uint32_t>& features_per_field,
    std::uint32_t sram_features) {
  BOOSTER_CHECK(sram_features > 0);
  RecordLayout layout;
  layout.field_slot_bytes.reserve(features_per_field.size());
  std::uint32_t total = 0;
  for (std::uint32_t features : features_per_field) {
    // A field spanning k SRAMs repeats its bin byte k times so the
    // one-to-one field->SRAM feed stays a fixed left-to-right distribution.
    const std::uint32_t slots =
        features == 0 ? 1 : (features + sram_features - 1) / sram_features;
    layout.field_slot_bytes.push_back(slots);
    total += slots;
  }
  layout.record_bytes = total;
  return layout;
}

}  // namespace booster::gbdt
