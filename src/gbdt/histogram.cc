#include "gbdt/histogram.h"

#include "util/check.h"

namespace booster::gbdt {

Histogram::Histogram(const BinnedDataset& data) {
  fields_.resize(data.num_fields());
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    fields_[f].assign(data.field_bins(f).num_bins, BinStats{});
  }
}

void Histogram::build(const BinnedDataset& data,
                      std::span<const std::uint32_t> rows,
                      std::span<const GradientPair> gradients) {
  BOOSTER_CHECK(fields_.size() == data.num_fields());
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    auto& bins = fields_[f];
    const auto& col = data.column(f);
    for (const std::uint32_t r : rows) {
      BOOSTER_DCHECK(col[r] < bins.size());
      bins[col[r]].add(gradients[r]);
    }
  }
}

void Histogram::subtract_from(const Histogram& parent,
                              const Histogram& sibling) {
  BOOSTER_CHECK(parent.fields_.size() == sibling.fields_.size());
  fields_.resize(parent.fields_.size());
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    const auto& p = parent.fields_[f];
    const auto& s = sibling.fields_[f];
    BOOSTER_CHECK(p.size() == s.size());
    fields_[f].resize(p.size());
    for (std::size_t b = 0; b < p.size(); ++b) {
      fields_[f][b] = p[b];
      fields_[f][b] -= s[b];
    }
  }
}

void Histogram::clear() {
  for (auto& f : fields_) {
    for (auto& b : f) b = BinStats{};
  }
}

BinStats Histogram::totals() const {
  BinStats t;
  if (fields_.empty()) return t;
  for (const auto& b : fields_[0]) t += b;
  return t;
}

std::uint64_t Histogram::total_bins() const {
  std::uint64_t total = 0;
  for (const auto& f : fields_) total += f.size();
  return total;
}

}  // namespace booster::gbdt
