#include "gbdt/histogram.h"

#include <utility>

#include "util/check.h"

namespace booster::gbdt {

Histogram::Histogram(const BinnedDataset& data) {
  const std::uint32_t num_fields = data.num_fields();
  offsets_.resize(num_fields + 1);
  std::uint32_t total = 0;
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    offsets_[f] = total;
    total += data.field_bins(f).num_bins;
  }
  offsets_[num_fields] = total;
  bins_.assign(total, BinStats{});
}

Histogram::Histogram(std::span<const std::uint32_t> bins_per_field) {
  offsets_.resize(bins_per_field.size() + 1);
  std::uint32_t total = 0;
  for (std::size_t f = 0; f < bins_per_field.size(); ++f) {
    offsets_[f] = total;
    total += bins_per_field[f];
  }
  offsets_[bins_per_field.size()] = total;
  bins_.assign(total, BinStats{});
}

void Histogram::build(const BinnedDataset& data,
                      std::span<const std::uint32_t> rows,
                      std::span<const GradientPair> gradients) {
  BOOSTER_CHECK(num_fields() == data.num_fields());
  data.ensure_row_major();  // no-op after the first (pre-fan-out) call
  const BinIndex* row_major = data.row_major_bins();
  const std::size_t num_fields = data.num_fields();
  BinStats* bins = bins_.data();
  const std::uint32_t* offsets = offsets_.data();
  for (const std::uint32_t r : rows) {
    const BinIndex* record = row_major + static_cast<std::size_t>(r) * num_fields;
    // Quantize once per record (idempotent, so callers holding already
    // quantized pairs pay nothing); the F bin updates below are then exact
    // additions in any order -- see quantize_stat in the header.
    const double qg = quantize_stat(gradients[r].g);
    const double qh = quantize_stat(gradients[r].h);
    for (std::size_t f = 0; f < num_fields; ++f) {
      BOOSTER_DCHECK(offsets[f] + record[f] < offsets[f + 1]);
      bins[offsets[f] + record[f]].add_quantized(qg, qh);
    }
  }
}

void Histogram::build_reference(const BinnedDataset& data,
                                std::span<const std::uint32_t> rows,
                                std::span<const GradientPair> gradients) {
  BOOSTER_CHECK(num_fields() == data.num_fields());
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    const auto bins = mutable_field(f);
    const auto& col = data.column(f);
    for (const std::uint32_t r : rows) {
      BOOSTER_DCHECK(col[r] < bins.size());
      bins[col[r]].add(gradients[r]);
    }
  }
}

void Histogram::subtract_from(const Histogram& parent,
                              const Histogram& sibling) {
  BOOSTER_CHECK(parent.same_shape(sibling));
  offsets_ = parent.offsets_;
  bins_.resize(parent.bins_.size());
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    bins_[b] = parent.bins_[b];
    bins_[b] -= sibling.bins_[b];
  }
}

void Histogram::subtract(const Histogram& sibling) {
  BOOSTER_CHECK(same_shape(sibling));
  for (std::size_t b = 0; b < bins_.size(); ++b) bins_[b] -= sibling.bins_[b];
}

void Histogram::add(const Histogram& other) {
  BOOSTER_CHECK(same_shape(other));
  for (std::size_t b = 0; b < bins_.size(); ++b) bins_[b] += other.bins_[b];
}

void Histogram::clear() {
  for (auto& b : bins_) b = BinStats{};
}

BinStats Histogram::totals() const {
  BinStats t;
  if (num_fields() == 0) return t;
  for (const auto& b : field(0)) t += b;
  // Exactness guard (see kStatSumCapacity): the order-insensitivity of
  // quantized accumulation only holds while sums stay in the exact range.
  // totals() runs once per tree node in both trainers, so a workload that
  // outgrows the capacity fails loudly here instead of silently losing
  // the bit-identity contract.
  BOOSTER_CHECK_MSG(std::abs(t.g) <= kStatSumCapacity &&
                        t.h <= kStatSumCapacity,
                    "histogram G/H totals exceed the quantized-exact "
                    "capacity (2^29); normalize gradients or enlarge "
                    "kStatQuantum");
  return t;
}

void HistogramPool::configure(const BinnedDataset& data) {
  proto_ = Histogram(data);
  free_.clear();
  allocations_ = 0;
  acquires_ = 0;
}

Histogram HistogramPool::acquire() {
  ++acquires_;
  if (free_.empty()) {
    ++allocations_;
    return proto_;  // copy: the one place a fresh buffer is constructed
  }
  Histogram h = std::move(free_.back());
  free_.pop_back();
  h.clear();
  return h;
}

void HistogramPool::release(Histogram&& h) {
  BOOSTER_CHECK(h.same_shape(proto_));
  free_.push_back(std::move(h));
}

}  // namespace booster::gbdt
