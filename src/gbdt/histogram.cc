#include "gbdt/histogram.h"

#include <algorithm>
#include <type_traits>
#include <utility>

#include "util/check.h"
#include "util/simd.h"

namespace booster::gbdt {

namespace {

// The SIMD kernels stream BinStats buffers as raw double arrays: exactly
// the three members, no padding. Every kernel op is elementwise, so
// count/g/h are all handled uniformly and exactly.
static_assert(std::is_standard_layout_v<BinStats> &&
                  sizeof(BinStats) == 3 * sizeof(double),
              "BinStats must be three packed doubles for the SIMD kernels");
static_assert(sizeof(GradientPair) == 2 * sizeof(float),
              "quantize_gather assumes packed {g, h} float pairs");

double* flat(Histogram::Buffer& bins) {
  return reinterpret_cast<double*>(bins.data());
}
const double* flat(const Histogram::Buffer& bins) {
  return reinterpret_cast<const double*>(bins.data());
}

/// Rows whose quantized {g, h} are staged per block before the scatter
/// pass; sized so the staging buffers live comfortably in L1.
constexpr std::size_t kBuildBlock = 256;
/// Records of row-major prefetch lead in the scatter pass.
constexpr std::size_t kBuildPrefetch = 8;

}  // namespace

Histogram::Histogram(const BinnedDataset& data) {
  const std::uint32_t num_fields = data.num_fields();
  offsets_.resize(num_fields + 1);
  std::uint32_t total = 0;
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    offsets_[f] = total;
    total += data.field_bins(f).num_bins;
  }
  offsets_[num_fields] = total;
  bins_.assign(total, BinStats{});
}

Histogram::Histogram(std::span<const std::uint32_t> bins_per_field) {
  offsets_.resize(bins_per_field.size() + 1);
  std::uint32_t total = 0;
  for (std::size_t f = 0; f < bins_per_field.size(); ++f) {
    offsets_[f] = total;
    total += bins_per_field[f];
  }
  offsets_[bins_per_field.size()] = total;
  bins_.assign(total, BinStats{});
}

void Histogram::build(const BinnedDataset& data,
                      std::span<const std::uint32_t> rows,
                      std::span<const GradientPair> gradients) {
  BOOSTER_CHECK(num_fields() == data.num_fields());
  data.ensure_row_major();  // no-op after the first (pre-fan-out) call
  const BinIndex* row_major = data.row_major_bins();
  const std::size_t num_fields = data.num_fields();
  BinStats* bins = bins_.data();
  const std::uint32_t* offsets = offsets_.data();
  const auto& ker = util::simd::kernels();
  const float* pairs = reinterpret_cast<const float*>(gradients.data());
  const std::uint32_t* row_ptr = rows.data();
  const std::size_t total = rows.size();
  alignas(64) double qg[kBuildBlock];
  alignas(64) double qh[kBuildBlock];
  for (std::size_t base = 0; base < total; base += kBuildBlock) {
    const std::size_t m = std::min(kBuildBlock, total - base);
    // Stage 1 (vector): gather the block's {g, h} pairs and snap them to
    // the quantum grid in SIMD lanes. Quantization is idempotent, so
    // callers holding already-quantized pairs pay nothing; the bin updates
    // below are then exact additions in any order -- see quantize_stat in
    // the header.
    ker.quantize_gather(pairs, row_ptr + base, m, kStatInvQuantum,
                        kStatQuantum, qg, qh);
    // Stage 2 (scalar scatter): two records in flight with row-major
    // prefetch ahead. Bin conflicts forbid a vector scatter, but quantized
    // accumulation is order-insensitive, so interleaving two records'
    // updates -- even into the same bin -- merges to the same bits.
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
      if (base + j + kBuildPrefetch < total) {
        __builtin_prefetch(
            row_major +
            static_cast<std::size_t>(row_ptr[base + j + kBuildPrefetch]) *
                num_fields);
      }
      const BinIndex* rec0 =
          row_major +
          static_cast<std::size_t>(row_ptr[base + j]) * num_fields;
      const BinIndex* rec1 =
          row_major +
          static_cast<std::size_t>(row_ptr[base + j + 1]) * num_fields;
      const double qg0 = qg[j], qh0 = qh[j];
      const double qg1 = qg[j + 1], qh1 = qh[j + 1];
      for (std::size_t f = 0; f < num_fields; ++f) {
        BOOSTER_DCHECK(offsets[f] + rec0[f] < offsets[f + 1]);
        BOOSTER_DCHECK(offsets[f] + rec1[f] < offsets[f + 1]);
        bins[offsets[f] + rec0[f]].add_quantized(qg0, qh0);
        bins[offsets[f] + rec1[f]].add_quantized(qg1, qh1);
      }
    }
    for (; j < m; ++j) {
      const BinIndex* record =
          row_major +
          static_cast<std::size_t>(row_ptr[base + j]) * num_fields;
      for (std::size_t f = 0; f < num_fields; ++f) {
        BOOSTER_DCHECK(offsets[f] + record[f] < offsets[f + 1]);
        bins[offsets[f] + record[f]].add_quantized(qg[j], qh[j]);
      }
    }
  }
}

void Histogram::build_reference(const BinnedDataset& data,
                                std::span<const std::uint32_t> rows,
                                std::span<const GradientPair> gradients) {
  BOOSTER_CHECK(num_fields() == data.num_fields());
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    const auto bins = mutable_field(f);
    const auto& col = data.column(f);
    for (const std::uint32_t r : rows) {
      BOOSTER_DCHECK(col[r] < bins.size());
      bins[col[r]].add(gradients[r]);
    }
  }
}

void Histogram::subtract_from(const Histogram& parent,
                              const Histogram& sibling) {
  BOOSTER_CHECK(parent.same_shape(sibling));
  offsets_ = parent.offsets_;
  bins_.resize(parent.bins_.size());
  util::simd::kernels().diff(flat(bins_), flat(parent.bins_),
                             flat(sibling.bins_), 3 * bins_.size());
}

void Histogram::subtract(const Histogram& sibling) {
  BOOSTER_CHECK(same_shape(sibling));
  util::simd::kernels().sub(flat(bins_), flat(sibling.bins_),
                            3 * bins_.size());
}

void Histogram::add(const Histogram& other) {
  BOOSTER_CHECK(same_shape(other));
  util::simd::kernels().add(flat(bins_), flat(other.bins_),
                            3 * bins_.size());
}

void Histogram::clear() {
  util::simd::kernels().zero(flat(bins_), 3 * bins_.size());
}

BinStats Histogram::totals() const {
  BinStats t;
  if (num_fields() == 0) return t;
  for (const auto& b : field(0)) t += b;
  // Exactness guard (see kStatSumCapacity): the order-insensitivity of
  // quantized accumulation only holds while sums stay in the exact range.
  // totals() runs once per tree node in both trainers, so a workload that
  // outgrows the capacity fails loudly here instead of silently losing
  // the bit-identity contract.
  BOOSTER_CHECK_MSG(std::abs(t.g) <= kStatSumCapacity &&
                        t.h <= kStatSumCapacity,
                    "histogram G/H totals exceed the quantized-exact "
                    "capacity (2^29); normalize gradients or enlarge "
                    "kStatQuantum");
  return t;
}

void HistogramPool::configure(const BinnedDataset& data) {
  proto_ = Histogram(data);
  free_.clear();
  allocations_ = 0;
  acquires_ = 0;
}

Histogram HistogramPool::acquire() {
  ++acquires_;
  Histogram h;
  if (free_.empty()) {
    ++allocations_;
    h = proto_;  // copy: the one place a fresh buffer is constructed
  } else {
    h = std::move(free_.back());
    free_.pop_back();
    h.clear();
  }
  BOOSTER_CHECK_MSG(h.aligned_to(64),
                    "histogram buffer lost its 64-byte alignment");
  return h;
}

void HistogramPool::release(Histogram&& h) {
  BOOSTER_CHECK(h.same_shape(proto_));
  free_.push_back(std::move(h));
}

}  // namespace booster::gbdt
