// Feature-importance reporting -- the model-introspection API every GBDT
// library ships. Two standard measures over a trained ensemble:
//   * split count: how many interior nodes test each field,
//   * total gain: the summed objective improvement of those splits
//     (requires gains recorded at training time; the trainer stores each
//     node's realized gain in the tree, so this works on loaded models
//     trained by this library).
#pragma once

#include <cstdint>
#include <vector>

#include "gbdt/tree.h"

namespace booster::gbdt {

struct FieldImportance {
  std::uint32_t field = 0;
  std::uint64_t split_count = 0;
  double total_gain = 0.0;
};

/// Importance per field, sorted by total gain descending (ties broken by
/// split count, then field index). Fields never used do not appear.
std::vector<FieldImportance> feature_importance(const Model& model);

}  // namespace booster::gbdt
