// Byte accounting for the two data layouts of the paper's third
// contribution: the natural per-record row-major format and the redundant
// per-field column-major format. Performance models use these numbers to
// charge DRAM traffic; the functional library always has both views
// available (columns are the primary storage).
#pragma once

#include <cstdint>
#include <vector>

namespace booster::gbdt {

/// Describes the on-memory footprint of one binned record and of the
/// per-field columns.
struct RecordLayout {
  /// One byte per field, plus one extra byte per additional SRAM a wide
  /// field spans (paper §III-C extension 3: a field with more than 256
  /// features repeats its bin byte once per SRAM in its group).
  std::uint32_t record_bytes = 0;

  /// Bytes of the per-record gradient-statistics pair (g, h as fp32).
  static constexpr std::uint32_t kGradientBytes = 8;

  /// Bytes of one record pointer in the relevant-record streams.
  static constexpr std::uint32_t kPointerBytes = 4;

  /// Per-field column element size (one byte per field slot on hardware).
  static constexpr std::uint32_t kColumnElementBytes = 1;

  /// Memory block (DRAM burst) size used throughout the paper.
  static constexpr std::uint32_t kBlockBytes = 64;

  /// Bytes per field slot: fields wider than 256 features occupy multiple
  /// slots. Indexed by field.
  std::vector<std::uint32_t> field_slot_bytes;

  /// Effective bytes fetched per record in row-major format, applying the
  /// paper's packing rule: records are whole blocks; if a record is smaller
  /// than half a block, two records pack into one block (never more).
  double row_major_bytes_per_record() const {
    const auto b = static_cast<double>(kBlockBytes);
    if (record_bytes > kBlockBytes) {
      // Multi-block records round up to whole blocks.
      const auto blocks = (record_bytes + kBlockBytes - 1) / kBlockBytes;
      return static_cast<double>(blocks) * b;
    }
    if (record_bytes * 2 <= kBlockBytes) return b / 2.0;  // two per block
    return b;  // one record per block, possibly with slack
  }

  /// Bytes of the software trainer's in-memory row-major bin matrix (the
  /// redundant view BinnedDataset materializes): num_fields entries of
  /// sizeof(BinIndex) per record. Distinct from row_major_bytes_per_record,
  /// which models the hardware's byte-packed block format.
  static std::uint64_t software_row_major_bytes(std::uint64_t num_records,
                                                std::uint32_t num_fields,
                                                std::uint32_t element_bytes) {
    return num_records * static_cast<std::uint64_t>(num_fields) *
           element_bytes;
  }

  /// Computes slot widths from per-field feature counts (SRAM capacity in
  /// features, typically 256).
  static RecordLayout from_field_features(
      const std::vector<std::uint32_t>& features_per_field,
      std::uint32_t sram_features = 256);
};

}  // namespace booster::gbdt
