#include "gbdt/distributed.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "gbdt/shard_ops.h"
#include "ipc/codec.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace booster::gbdt {

namespace {

using ipc::Frame;
using ipc::HistogramCodec;
using ipc::MessageType;
using trace::StepEvent;
using trace::StepKind;
using trace::StepTrace;

void emit(StepTrace* trace, StepEvent e) {
  if (trace != nullptr) trace->add(e);
}

/// Clamp shards exactly like ShardedTrainer: empty shards would be
/// harmless but pointless. Every rank applies the same rule, so the
/// global partition agrees without communication.
std::uint32_t clamp_shards(std::uint32_t requested, std::uint64_t n) {
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(std::max(1u, requested), n));
}

/// The serial base-score pass shared by every rank (and by Trainer):
/// identical code => identical bits, no communication needed.
double compute_base_score(const BinnedDataset& data, const Loss& loss) {
  double label_mean = 0.0;
  for (float y : data.labels()) label_mean += y;
  label_mean /= static_cast<double>(data.num_records());
  return loss.base_score(label_mean);
}

/// Warm start takes the base score from the init model instead; every rank
/// resolves it identically from its own copy of the config.
double initial_base_score(const BinnedDataset& data, const Loss& loss,
                          const TrainerConfig& tcfg) {
  if (tcfg.init_model == nullptr) return compute_base_score(data, loss);
  BOOSTER_CHECK_MSG(tcfg.init_model->loss().name() == tcfg.loss,
                    "warm start: init model's loss differs from the "
                    "config's loss");
  return tcfg.init_model->base_score();
}

/// Pre-seeds a rank's result with copies of the warm-start trees plus
/// placeholder per-tree stats, keeping tree_stats index-aligned with
/// model.trees() (the catch-up payload pairs trees[i] with
/// tree_stats[i].train_loss). Every reset/rebuild path replays
/// result.model.trees() through the shard groups afterwards, so the init
/// trees flow into preds/gradients exactly like finished trees do.
void seed_warm_start(TrainResult* result, const TrainerConfig& tcfg) {
  if (tcfg.init_model == nullptr) return;
  for (const Tree& t : tcfg.init_model->trees()) {
    TreeStats stats;
    stats.leaves = t.num_leaves();
    stats.depth = t.max_depth();
    result->tree_stats.push_back(stats);
    result->model.add_tree(t);
  }
}

/// One frontier node of the rank-0 driver: global bookkeeping plus the
/// merged histogram (the groups hold the arena spans).
struct DriverNode {
  std::int32_t tree_node = 0;
  std::int32_t depth = 0;
  std::uint64_t rows = 0;
  Histogram hist;
  BinStats totals;
};

/// A worker rank as seen from rank 0.
struct Remote {
  std::uint32_t rank = 0;
  std::uint32_t shard_begin = 0;
  std::uint32_t shard_end = 0;
  bool alive = true;

  std::uint32_t shards() const { return shard_end - shard_begin; }
};

/// Leaf-depth bookkeeping workers derive from the finished tree itself
/// (rank 0 accumulates the same sums in its make_leaf paths; both are
/// integer sums over the same leaves, so avg_leaf_depth matches bitwise).
void accumulate_leaf_depths(const Tree& tree, double* leaf_depth_sum,
                            std::uint64_t* leaf_count) {
  for (std::uint32_t id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& n = tree.node(static_cast<std::int32_t>(id));
    if (n.is_leaf) {
      *leaf_depth_sum += n.depth;
      ++*leaf_count;
    }
  }
}

}  // namespace

DistributedTrainer::DistributedTrainer(DistributedConfig cfg,
                                       ipc::Transport* transport)
    : cfg_(cfg), transport_(transport) {}

std::uint32_t DistributedTrainer::rank() const {
  return transport_ == nullptr ? 0 : transport_->rank();
}

std::uint32_t DistributedTrainer::world_size() const {
  return transport_ == nullptr ? 1 : transport_->world_size();
}

TrainResult DistributedTrainer::train(const BinnedDataset& data,
                                      StepTrace* trace,
                                      trace::WorkloadInfo* info) {
  stats_ = DistributedStats{};
  stats_.world_size = world_size();
  stats_.rank = rank();
  if (cfg_.elastic && transport_ != nullptr) {
    if (rank() == 0) {
      BOOSTER_CHECK_MSG(transport_->membership_capable(),
                        "elastic training needs a membership-capable "
                        "transport on rank 0 (TcpTransport)");
      return train_rank0_elastic(data, trace, info);
    }
    return train_worker_elastic(data, info);
  }
  if (rank() == 0) return train_rank0(data, trace, info);
  return train_worker(data, info);
}

TrainResult DistributedTrainer::train_rank0(const BinnedDataset& data,
                                            StepTrace* trace,
                                            trace::WorkloadInfo* info) {
  const std::uint64_t n = data.num_records();
  BOOSTER_CHECK_MSG(n > 0, "cannot train on an empty dataset");
  const TrainerConfig& tcfg = cfg_.trainer;
  auto loss = make_loss(tcfg.loss);
  const std::uint32_t num_fields = data.num_fields();
  const std::uint32_t num_shards = clamp_shards(tcfg.num_shards, n);
  const std::uint32_t world = world_size();
  stats_.shards_total = num_shards;

  util::ThreadPool pool(tcfg.num_threads);
  data.ensure_row_major();

  // Rank 0 owns the first contiguous slice of the shard partition; each
  // worker rank r owns [S*r/R, S*(r+1)/R).
  const auto [my_begin, my_end] = shard_row_range(num_shards, world, 0);
  stats_.shards_local = static_cast<std::uint32_t>(my_end - my_begin);
  std::vector<std::unique_ptr<ShardGroup>> groups;
  groups.push_back(std::make_unique<ShardGroup>(
      data, tcfg, num_shards, static_cast<std::uint32_t>(my_begin),
      static_cast<std::uint32_t>(my_end), &pool));
  std::vector<Remote> remotes;
  for (std::uint32_t r = 1; r < world; ++r) {
    const auto [sb, se] = shard_row_range(num_shards, world, r);
    remotes.push_back(Remote{r, static_cast<std::uint32_t>(sb),
                             static_cast<std::uint32_t>(se), true});
  }
  std::unique_ptr<ipc::ReliableChannel> channel;
  if (transport_ != nullptr) {
    channel = std::make_unique<ipc::ReliableChannel>(transport_, cfg_.channel);
  }

  const double base_score = initial_base_score(data, *loss, tcfg);
  for (auto& g : groups) g->reset(*loss, base_score);

  HistogramPool merged_pool(data);
  HistogramPool rx_pool(data);
  std::vector<Histogram> rx_by_shard(num_shards);
  std::vector<std::uint8_t> rx_filled(num_shards, 0);
  std::uint64_t driver_merges = 0;

  const SplitFinder finder(tcfg.split);
  TrainResult result{.model = Model(base_score, make_loss(tcfg.loss))};
  // Warm start: seed the result with the init trees and replay them into
  // the freshly-reset groups (the adoption path below replays
  // result.model.trees() on its own and needs no extra handling).
  seed_warm_start(&result, tcfg);
  for (auto& g : groups) {
    for (const Tree& t : result.model.trees()) {
      g->finish_tree(t, *loss, nullptr, nullptr);
    }
  }

  double leaf_depth_sum = 0.0;
  std::uint64_t leaf_count = 0;
  double prev_loss = std::numeric_limits<double>::infinity();
  std::uint32_t stagnant_trees = 0;

  // Current-tree protocol state (shared with the adoption paths).
  std::vector<ipc::SplitDecisionMsg> decisions;
  std::uint32_t build_seq = 0;

  const auto owner_group = [&](std::uint32_t shard) -> ShardGroup* {
    for (auto& g : groups) {
      if (shard >= g->shard_begin() && shard < g->shard_end()) return g.get();
    }
    return nullptr;
  };

  /// Declares `remote` dead and re-executes its shards locally: fresh
  /// group, prediction catch-up through every finished tree, then a
  /// worker-loop replay of the current tree's decision log (leaving the
  /// group's frontier -- and its pending build -- exactly where the live
  /// worker's was). Pure recomputation of deterministic state, so the
  /// training result is unchanged.
  const auto adopt = [&](Remote& remote) -> ShardGroup* {
    BOOSTER_CHECK_MSG(cfg_.adopt_dead_workers,
                      "ipc worker declared dead and shard adoption is "
                      "disabled (DistributedConfig.adopt_dead_workers)");
    remote.alive = false;
    ++stats_.dead_workers;
    stats_.shards_adopted += remote.shards();
    auto g = std::make_unique<ShardGroup>(data, tcfg, num_shards,
                                          remote.shard_begin,
                                          remote.shard_end, &pool);
    g->reset(*loss, base_score);
    for (const Tree& t : result.model.trees()) {
      g->finish_tree(t, *loss, nullptr, nullptr);
    }
    g->begin_tree(n);
    std::size_t replay = 0;
    while (!g->frontier_empty()) {
      if (g->head_is_bounds_leaf()) {
        g->apply_leaf();
        continue;
      }
      if (replay == decisions.size()) break;
      const ipc::SplitDecisionMsg& d = decisions[replay++];
      if (d.has_split) {
        g->apply_split(d.split);
      } else {
        g->apply_leaf();
      }
    }
    groups.push_back(std::move(g));
    return groups.back().get();
  };

  /// Builds every group's pending node, collects the remote shard
  /// histograms for the same build point, and merges them all -- in fixed
  /// global shard order -- into one pooled histogram. Unresponsive
  /// workers are adopted mid-gather.
  const auto gather_merged = [&](std::uint32_t t) {
    const std::uint32_t build_idx = build_seq++;
    for (auto& g : groups) {
      if (g->num_local() > 0) g->build_pending();
    }
    for (Remote& remote : remotes) {
      if (!remote.alive || remote.shards() == 0) continue;
      for (std::uint32_t s = remote.shard_begin; s < remote.shard_end; ++s) {
        Frame frame;
        if (!channel->recv(remote.rank, &frame)) {
          ShardGroup* adopted = adopt(remote);
          adopted->build_pending();
          break;
        }
        BOOSTER_CHECK_MSG(frame.type == MessageType::kShardHistogram,
                          "unexpected message while gathering shard "
                          "histograms (protocol desync)");
        ipc::ShardHistogramMsg msg;
        Histogram rx = rx_pool.acquire();
        BOOSTER_CHECK_MSG(
            HistogramCodec::decode_shard_histogram_into(frame.payload, &msg,
                                                        &rx),
            "shard-histogram payload failed to decode (protocol desync)");
        BOOSTER_CHECK_MSG(msg.tree == t && msg.build_seq == build_idx &&
                              msg.shard == s,
                          "shard histogram for the wrong build point "
                          "(protocol desync)");
        rx_by_shard[s] = std::move(rx);
        rx_filled[s] = 1;
      }
    }
    Histogram merged = merged_pool.acquire();
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      if (const ShardGroup* g = owner_group(s)) {
        merged.add(g->built_histogram(s - g->shard_begin()));
      } else {
        BOOSTER_CHECK_MSG(rx_filled[s] != 0,
                          "no histogram source for a shard (protocol bug)");
        merged.add(rx_by_shard[s]);
      }
      ++driver_merges;
    }
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      if (rx_filled[s] != 0) {
        rx_pool.release(std::move(rx_by_shard[s]));
        rx_filled[s] = 0;
      }
    }
    for (auto& g : groups) {
      if (g->num_local() > 0) g->release_built();
    }
    return merged;
  };

  // Broadcasts go to *every* worker, dead-declared ones included (the
  // sends are best-effort and cheap): a worker whose outbound path failed
  // -- so rank 0 adopted its shards -- can still follow the inbound
  // stream to completion and exit cleanly instead of deadlocking, and a
  // genuinely dead process simply never reads them.
  const auto broadcast_decision = [&](const ipc::SplitDecisionMsg& msg) {
    decisions.push_back(msg);
    if (channel == nullptr) return;
    const auto payload = HistogramCodec::encode_split_decision(msg);
    for (const Remote& remote : remotes) {
      if (remote.shards() > 0) {
        channel->send(remote.rank, MessageType::kSplitDecision, payload);
      }
    }
  };

  const auto broadcast_all = [&](MessageType type,
                                 const std::vector<std::uint8_t>& payload) {
    if (channel == nullptr) return;
    for (const Remote& remote : remotes) {
      channel->send(remote.rank, type, payload);
    }
  };

  for (std::uint32_t t = 0; t < tcfg.num_trees; ++t) {
    Tree tree;
    std::deque<DriverNode> frontier;
    std::vector<std::uint64_t> level_hist_records;
    std::vector<std::uint32_t> level_hist_nodes;
    decisions.clear();
    build_seq = 0;
    std::uint32_t decision_seq = 0;

    for (auto& g : groups) g->begin_tree(n);

    {
      DriverNode root;
      root.tree_node = tree.root();
      root.depth = 0;
      root.rows = n;
      root.hist = gather_merged(t);
      root.totals = root.hist.totals();
      emit(trace, StepEvent{.kind = StepKind::kHistogram,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = 0,
                            .records = n,
                            .fields_touched = num_fields,
                            .record_fields = num_fields});
      frontier.push_back(std::move(root));
    }

    while (!frontier.empty()) {
      DriverNode node = std::move(frontier.front());
      frontier.pop_front();

      auto make_leaf = [&](const BinStats& totals) {
        tree.set_leaf_weight(node.tree_node,
                             tcfg.learning_rate *
                                 leaf_weight(totals, tcfg.split.lambda));
        leaf_depth_sum += node.depth;
        ++leaf_count;
        merged_pool.release(std::move(node.hist));
      };

      if (node.depth >= static_cast<std::int32_t>(tcfg.max_depth) ||
          node.rows < tcfg.min_node_records) {
        // Every rank reaches this decision from (depth, rows) alone; no
        // broadcast (the groups run the same rule in their own loops).
        for (auto& g : groups) {
          if (g->num_local() > 0) g->apply_leaf();
        }
        make_leaf(node.totals);
        continue;
      }

      std::uint64_t bins_scanned = 0;
      const auto split =
          finder.find_best(node.hist, data, &pool, &bins_scanned);
      emit(trace, StepEvent{.kind = StepKind::kSplitSelect,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = node.depth,
                            .bins_scanned = bins_scanned});

      ipc::SplitDecisionMsg decision;
      decision.tree = t;
      decision.decision_seq = decision_seq++;
      decision.has_split = split.has_value();
      if (split) decision.split = *split;
      broadcast_decision(decision);

      if (!split) {
        for (auto& g : groups) {
          if (g->num_local() > 0) g->apply_leaf();
        }
        make_leaf(node.totals);
        continue;
      }

      const std::uint64_t n_left = split->left.count_u64();
      BOOSTER_CHECK_MSG(n_left > 0 && n_left < node.rows,
                        "split produced an empty child");
      const bool children_may_split =
          node.depth + 1 < static_cast<std::int32_t>(tcfg.max_depth);
      for (auto& g : groups) {
        if (g->num_local() == 0) continue;
        const bool pushed = g->apply_split(*split);
        BOOSTER_CHECK(pushed == children_may_split);
      }
      emit(trace, StepEvent{.kind = StepKind::kPartition,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = node.depth,
                            .records = node.rows,
                            .fields_touched = 1,
                            .record_fields = num_fields});
      const std::uint64_t n_right = node.rows - n_left;

      const auto [left_id, right_id] = tree.split_leaf(node.tree_node, *split);

      const std::int32_t child_depth = node.depth + 1;

      if (!children_may_split) {
        tree.set_leaf_weight(left_id, tcfg.learning_rate *
                                          leaf_weight(split->left,
                                                      tcfg.split.lambda));
        tree.set_leaf_weight(right_id, tcfg.learning_rate *
                                           leaf_weight(split->right,
                                                       tcfg.split.lambda));
        leaf_depth_sum += 2.0 * child_depth;
        leaf_count += 2;
        merged_pool.release(std::move(node.hist));
        continue;
      }

      const bool left_smaller = n_left <= n_right;
      DriverNode small;
      DriverNode large;
      small.tree_node = left_smaller ? left_id : right_id;
      large.tree_node = left_smaller ? right_id : left_id;
      small.depth = large.depth = child_depth;
      small.rows = left_smaller ? n_left : n_right;
      large.rows = left_smaller ? n_right : n_left;

      small.hist = gather_merged(t);
      small.totals = small.hist.totals();
      if (tcfg.growth == GrowthOrder::kVertexByVertex) {
        emit(trace, StepEvent{.kind = StepKind::kHistogram,
                              .tree = static_cast<std::int32_t>(t),
                              .depth = child_depth,
                              .records = small.rows,
                              .fields_touched = num_fields,
                              .record_fields = num_fields,
                              .used_sibling_subtraction = true});
      } else {
        if (level_hist_records.size() <=
            static_cast<std::size_t>(child_depth)) {
          level_hist_records.resize(child_depth + 1, 0);
          level_hist_nodes.resize(child_depth + 1, 0);
        }
        level_hist_records[child_depth] += small.rows;
        ++level_hist_nodes[child_depth];
      }

      large.hist = std::move(node.hist);
      large.hist.subtract(small.hist);
      large.totals = large.hist.totals();

      frontier.push_back(std::move(small));
      frontier.push_back(std::move(large));
    }

    if (tcfg.growth == GrowthOrder::kLevelByLevel) {
      for (std::size_t depth = 0; depth < level_hist_records.size(); ++depth) {
        if (level_hist_records[depth] == 0) continue;
        emit(trace, StepEvent{.kind = StepKind::kHistogram,
                              .tree = static_cast<std::int32_t>(t),
                              .depth = static_cast<std::int32_t>(depth),
                              .records = level_hist_records[depth],
                              .fields_touched = num_fields,
                              .record_fields = num_fields,
                              .histograms = level_hist_nodes[depth],
                              .used_sibling_subtraction = true});
      }
    }

    // Broadcast the finished tree (all ranks, shard-bearing or not), then
    // collect step-5 summaries and reduce hop/loss sums in global shard
    // order (exact: integer hops, quantized loss terms).
    {
      ipc::TreeCompleteMsg msg;
      msg.tree = t;
      msg.nodes.reserve(tree.num_nodes());
      for (std::uint32_t id = 0; id < tree.num_nodes(); ++id) {
        msg.nodes.push_back(tree.node(static_cast<std::int32_t>(id)));
      }
      broadcast_all(MessageType::kTreeComplete,
                    HistogramCodec::encode_tree_complete(msg));
    }

    // (shard_begin, hops, loss) partials from local groups and live
    // workers; adopted groups fill in for the dead.
    std::vector<std::tuple<std::uint32_t, double, double>> partials;
    for (auto& g : groups) {
      if (g->num_local() == 0) continue;
      double hops = 0.0;
      double qloss = 0.0;
      g->finish_tree(tree, *loss, &hops, &qloss);
      partials.emplace_back(g->shard_begin(), hops, qloss);
    }
    for (Remote& remote : remotes) {
      if (!remote.alive || remote.shards() == 0) continue;
      Frame frame;
      ipc::ShardSummaryMsg msg;
      if (!channel->recv(remote.rank, &frame)) {
        ShardGroup* adopted = adopt(remote);
        double hops = 0.0;
        double qloss = 0.0;
        adopted->finish_tree(tree, *loss, &hops, &qloss);
        partials.emplace_back(adopted->shard_begin(), hops, qloss);
        continue;
      }
      BOOSTER_CHECK_MSG(frame.type == MessageType::kShardSummary,
                        "unexpected message while gathering summaries "
                        "(protocol desync)");
      BOOSTER_CHECK_MSG(
          HistogramCodec::decode_shard_summary(frame.payload, &msg) &&
              msg.tree == t && msg.shard_begin == remote.shard_begin &&
              msg.shard_end == remote.shard_end,
          "shard summary for the wrong tree or range (protocol desync)");
      partials.emplace_back(msg.shard_begin, msg.hops, msg.quantized_loss);
    }
    std::sort(partials.begin(), partials.end());
    double hops = 0.0;
    double total_loss = 0.0;
    for (const auto& [sb, h, l] : partials) {
      hops += h;
      total_loss += l;
    }
    emit(trace, StepEvent{.kind = StepKind::kTraversal,
                          .tree = static_cast<std::int32_t>(t),
                          .depth = static_cast<std::int32_t>(tree.max_depth()),
                          .records = n,
                          .fields_touched = static_cast<std::uint32_t>(
                              tree.relevant_fields().size()),
                          .record_fields = num_fields,
                          .avg_path_length = hops / static_cast<double>(n)});

    TreeStats stats;
    stats.leaves = tree.num_leaves();
    stats.depth = tree.max_depth();
    // Same exactness guard as Trainer: non-negative terms, so the total
    // bounds every partial.
    BOOSTER_CHECK_MSG(total_loss <= kStatSumCapacity,
                      "training-loss sum exceeds the quantized-exact "
                      "capacity (2^29); normalize labels or enlarge "
                      "kStatQuantum");
    stats.train_loss = total_loss / static_cast<double>(n);
    result.tree_stats.push_back(stats);
    result.model.add_tree(std::move(tree));

    // Step 6: identical early-stopping rule to Trainer; the verdict tells
    // workers whether to expect another tree.
    bool stop_now = t + 1 == tcfg.num_trees;
    bool early = false;
    if (tcfg.early_stop_rel_improvement > 0.0) {
      const double improvement =
          prev_loss <= 0.0 ? 0.0 : (prev_loss - stats.train_loss) / prev_loss;
      if (std::isfinite(prev_loss) &&
          improvement < tcfg.early_stop_rel_improvement) {
        if (++stagnant_trees >= tcfg.early_stop_patience) {
          result.early_stopped = true;
          early = true;
          stop_now = true;
        }
      } else {
        stagnant_trees = 0;
      }
      prev_loss = stats.train_loss;
    }

    {
      ipc::TreeVerdictMsg verdict;
      verdict.tree = t;
      verdict.train_loss = stats.train_loss;
      verdict.stop_training = stop_now;
      verdict.early_stopped = early;
      broadcast_all(MessageType::kTreeVerdict,
                    HistogramCodec::encode_tree_verdict(verdict));
    }
    if (early) break;
  }

  // Shutdown barrier: the final verdict is the one frame with no
  // successor, so a worker that lost it (or any earlier tail frame) can
  // only heal while rank 0 is still listening. Wait for each live
  // worker's goodbye -- the recv loop services their re-requests -- and
  // shrug off the ones that never answer (training is already complete;
  // there is nothing left to adopt).
  if (channel != nullptr) {
    for (Remote& remote : remotes) {
      if (!remote.alive) continue;
      Frame frame;
      if (!channel->recv(remote.rank, &frame,
                         cfg_.channel.shutdown_attempts)) {
        remote.alive = false;
        continue;
      }
      BOOSTER_CHECK_MSG(frame.type == MessageType::kGoodbye,
                        "unexpected message at shutdown (protocol desync)");
    }
  }

  result.avg_leaf_depth =
      leaf_count == 0 ? 0.0 : leaf_depth_sum / static_cast<double>(leaf_count);

  result.hot_path.threads = pool.num_threads();
  result.hot_path.simd = util::simd::level_name(util::simd::active());
  result.hot_path.shards = num_shards;
  result.hot_path.histogram_merges = driver_merges;
  result.hot_path.histogram_allocations =
      merged_pool.allocations() + rx_pool.allocations();
  result.hot_path.histogram_acquires =
      merged_pool.acquires() + rx_pool.acquires();
  result.hot_path.arena_bytes = 0;
  // Per-shard stats in global shard order over the shards this rank
  // executed (every shard on a single-rank world).
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) {
              return a->shard_begin() < b->shard_begin();
            });
  for (const auto& g : groups) {
    result.hot_path.chunk_merges += g->internal_merges();
    for (const ShardHotPathStats& ss : g->shard_stats()) {
      result.hot_path.histogram_allocations += ss.histogram_allocations;
      result.hot_path.histogram_acquires += ss.histogram_acquires;
      result.hot_path.arena_bytes += ss.arena_bytes;
      result.hot_path.per_shard.push_back(ss);
    }
  }
  result.hot_path.row_major_matrix_bytes =
      RecordLayout::software_row_major_bytes(n, num_fields, sizeof(BinIndex));

  if (channel != nullptr) stats_.channel = channel->stats();
  if (transport_ != nullptr) stats_.transport = transport_->stats();
  detail::fill_workload_info(data, tcfg, result, info);
  return result;
}

TrainResult DistributedTrainer::train_rank0_elastic(const BinnedDataset& data,
                                                    StepTrace* trace,
                                                    trace::WorkloadInfo* info) {
  const std::uint64_t n = data.num_records();
  BOOSTER_CHECK_MSG(n > 0, "cannot train on an empty dataset");
  const TrainerConfig& tcfg = cfg_.trainer;
  auto loss = make_loss(tcfg.loss);
  const std::uint32_t num_fields = data.num_fields();
  const std::uint32_t num_shards = clamp_shards(tcfg.num_shards, n);
  const std::uint32_t world = world_size();
  stats_.shards_total = num_shards;

  util::ThreadPool pool(tcfg.num_threads);
  data.ensure_row_major();

  ipc::ReliableChannel channel(transport_, cfg_.channel);
  ipc::MembershipTracker members(world);

  /// A worker rank's protocol standing. Pending and active are the live
  /// states; a zombie was declared dead mid-tree (its shards adopted) but
  /// may still be connected and following the broadcast stream, so it can
  /// finish cleanly; gone is evicted for good (only a fresh session
  /// nonce re-joins).
  enum class Standing : std::uint8_t {
    kNever = 0,
    kPending,
    kActive,
    kZombie,
    kGone
  };
  std::vector<Standing> standing(world, Standing::kNever);

  const double base_score = initial_base_score(data, *loss, tcfg);

  // Rank 0's groups: exactly one covering its current assignment at every
  // tree start; mid-tree adoptions append temporaries that the next
  // boundary's rebuild retires.
  std::vector<std::unique_ptr<ShardGroup>> groups;
  std::uint32_t my_begin = 0;
  std::uint32_t my_end = 0;
  bool have_group = false;

  HistogramPool merged_pool(data);
  HistogramPool rx_pool(data);
  std::vector<Histogram> rx_by_shard(num_shards);
  std::vector<std::uint8_t> rx_filled(num_shards, 0);
  std::uint64_t driver_merges = 0;

  const SplitFinder finder(tcfg.split);
  TrainResult result{.model = Model(base_score, make_loss(tcfg.loss))};
  // Warm start: seed the result before the first assign_tree -- the group
  // (re)build below replays result.model.trees(), and the catch-up payload
  // ships the init trees to joiners like any finished-tree prefix.
  seed_warm_start(&result, tcfg);

  double leaf_depth_sum = 0.0;
  std::uint64_t leaf_count = 0;
  double prev_loss = std::numeric_limits<double>::infinity();
  std::uint32_t stagnant_trees = 0;

  std::vector<ipc::SplitDecisionMsg> decisions;
  std::uint32_t build_seq = 0;
  std::vector<Remote> remotes;  // this tree's active workers

  const auto owner_group = [&](std::uint32_t shard) -> ShardGroup* {
    for (auto& g : groups) {
      if (shard >= g->shard_begin() && shard < g->shard_end()) return g.get();
    }
    return nullptr;
  };

  /// The finished-model prefix a joiner needs to enter the protocol.
  const auto catch_up_payload = [&]() {
    ipc::CatchUpMsg msg;
    const auto& trees = result.model.trees();
    msg.trees.reserve(trees.size());
    for (std::size_t i = 0; i < trees.size(); ++i) {
      ipc::CatchUpMsg::TreeEntry entry;
      entry.nodes.reserve(trees[i].num_nodes());
      for (std::uint32_t id = 0; id < trees[i].num_nodes(); ++id) {
        entry.nodes.push_back(trees[i].node(static_cast<std::int32_t>(id)));
      }
      entry.train_loss = result.tree_stats[i].train_loss;
      msg.trees.push_back(std::move(entry));
    }
    return HistogramCodec::encode_catch_up(msg);
  };

  /// Folds the transport's peer events into the membership view and
  /// admits/evicts at a tree boundary (or, with fire_hook off, at the
  /// final sweep).
  const auto process_membership = [&](std::uint32_t t, bool fire_hook) {
    if (fire_hook && cfg_.on_tree_boundary) cfg_.on_tree_boundary(t);
    transport_->pump(std::chrono::milliseconds(0));
    for (const ipc::PeerEvent& ev : transport_->take_peer_events()) {
      if (ev.kind == ipc::PeerEventKind::kJoined ||
          ev.kind == ipc::PeerEventKind::kNewSession) {
        // A fresh incarnation of the rank: wipe both sides' protocol
        // memory and queue it for (re-)admission with a catch-up.
        channel.reset_peer(ev.rank);
        if (standing[ev.rank] == Standing::kActive) members.remove(ev.rank);
        standing[ev.rank] = Standing::kPending;
      }
      // kResumed continues the same stream (nothing to do); a
      // kDisconnected peer may still resume within its window, so
      // liveness -- not the event -- decides its fate mid-tree.
    }
    for (std::uint32_t r = 1; r < world; ++r) {
      if (standing[r] == Standing::kZombie && !transport_->peer_connected(r)) {
        transport_->drop_peer(r);
        standing[r] = Standing::kGone;
      }
      if (standing[r] == Standing::kPending && transport_->peer_connected(r)) {
        channel.send(r, MessageType::kCatchUp, catch_up_payload());
        members.admit(r);
        standing[r] = Standing::kActive;
        if (t > 0) ++stats_.joins;
      }
    }
  };

  /// Recomputes the shard assignment from the current view, rebuilds rank
  /// 0's own group when its range moved, and tells every follower its
  /// range for tree `t`.
  const auto assign_tree = [&](std::uint32_t t) {
    const auto& parts = members.participants();
    const auto [b0, e0] = members.assignment(num_shards, 0);
    if (!have_group || b0 != my_begin || e0 != my_end || groups.size() != 1) {
      groups.clear();
      groups.push_back(std::make_unique<ShardGroup>(data, tcfg, num_shards,
                                                    b0, e0, &pool));
      groups[0]->reset(*loss, base_score);
      for (const Tree& tr : result.model.trees()) {
        groups[0]->finish_tree(tr, *loss, nullptr, nullptr);
      }
      my_begin = b0;
      my_end = e0;
      have_group = true;
    }
    if (t == 0) stats_.shards_local = my_end - my_begin;
    remotes.clear();
    for (std::uint32_t i = 1; i < parts.size(); ++i) {
      const auto [sb, se] = members.assignment(num_shards, i);
      remotes.push_back(Remote{parts[i], sb, se, true});
    }
    ipc::ShardAssignMsg msg;
    msg.tree = t;
    msg.view_epoch = members.view_epoch();
    msg.num_shards = num_shards;
    for (const Remote& remote : remotes) {
      msg.shard_begin = remote.shard_begin;
      msg.shard_end = remote.shard_end;
      channel.send(remote.rank, MessageType::kShardAssign,
                   HistogramCodec::encode_shard_assign(msg));
    }
    // Connected zombies get an empty range: they follow the stream (and
    // exit at the final assignment) without contributing shards.
    msg.shard_begin = msg.shard_end = 0;
    for (std::uint32_t r = 1; r < world; ++r) {
      if (standing[r] == Standing::kZombie && transport_->peer_connected(r)) {
        channel.send(r, MessageType::kShardAssign,
                     HistogramCodec::encode_shard_assign(msg));
      }
    }
  };

  const auto adopt = [&](Remote& remote) -> ShardGroup* {
    BOOSTER_CHECK_MSG(cfg_.adopt_dead_workers,
                      "ipc worker declared dead and shard adoption is "
                      "disabled (DistributedConfig.adopt_dead_workers)");
    remote.alive = false;
    ++stats_.dead_workers;
    stats_.shards_adopted += remote.shards();
    members.remove(remote.rank);
    standing[remote.rank] = Standing::kZombie;
    auto g = std::make_unique<ShardGroup>(data, tcfg, num_shards,
                                          remote.shard_begin,
                                          remote.shard_end, &pool);
    g->reset(*loss, base_score);
    for (const Tree& t : result.model.trees()) {
      g->finish_tree(t, *loss, nullptr, nullptr);
    }
    g->begin_tree(n);
    std::size_t replay = 0;
    while (!g->frontier_empty()) {
      if (g->head_is_bounds_leaf()) {
        g->apply_leaf();
        continue;
      }
      if (replay == decisions.size()) break;
      const ipc::SplitDecisionMsg& d = decisions[replay++];
      if (d.has_split) {
        g->apply_split(d.split);
      } else {
        g->apply_leaf();
      }
    }
    groups.push_back(std::move(g));
    return groups.back().get();
  };

  const auto gather_merged = [&](std::uint32_t t) {
    const std::uint32_t build_idx = build_seq++;
    for (auto& g : groups) {
      if (g->num_local() > 0) g->build_pending();
    }
    for (Remote& remote : remotes) {
      if (!remote.alive || remote.shards() == 0) continue;
      for (std::uint32_t s = remote.shard_begin; s < remote.shard_end; ++s) {
        Frame frame;
        if (!channel.recv(remote.rank, &frame)) {
          ShardGroup* adopted = adopt(remote);
          adopted->build_pending();
          break;
        }
        BOOSTER_CHECK_MSG(frame.type == MessageType::kShardHistogram,
                          "unexpected message while gathering shard "
                          "histograms (protocol desync)");
        ipc::ShardHistogramMsg msg;
        Histogram rx = rx_pool.acquire();
        BOOSTER_CHECK_MSG(
            HistogramCodec::decode_shard_histogram_into(frame.payload, &msg,
                                                        &rx),
            "shard-histogram payload failed to decode (protocol desync)");
        BOOSTER_CHECK_MSG(msg.tree == t && msg.build_seq == build_idx &&
                              msg.shard == s,
                          "shard histogram for the wrong build point "
                          "(protocol desync)");
        rx_by_shard[s] = std::move(rx);
        rx_filled[s] = 1;
      }
    }
    Histogram merged = merged_pool.acquire();
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      if (const ShardGroup* g = owner_group(s)) {
        merged.add(g->built_histogram(s - g->shard_begin()));
      } else {
        BOOSTER_CHECK_MSG(rx_filled[s] != 0,
                          "no histogram source for a shard (protocol bug)");
        merged.add(rx_by_shard[s]);
      }
      ++driver_merges;
    }
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      if (rx_filled[s] != 0) {
        rx_pool.release(std::move(rx_by_shard[s]));
        rx_filled[s] = 0;
      }
    }
    for (auto& g : groups) {
      if (g->num_local() > 0) g->release_built();
    }
    return merged;
  };

  const auto broadcast_decision = [&](const ipc::SplitDecisionMsg& msg) {
    decisions.push_back(msg);
    const auto payload = HistogramCodec::encode_split_decision(msg);
    for (const Remote& remote : remotes) {
      if (remote.shards() > 0) {
        channel.send(remote.rank, MessageType::kSplitDecision, payload);
      }
    }
  };

  // Tree-complete and verdict frames go to every follower: this tree's
  // remotes (dead-declared included, same best-effort rationale as the
  // static path) plus connected zombies from earlier trees.
  const auto broadcast_all = [&](MessageType type,
                                 const std::vector<std::uint8_t>& payload) {
    for (const Remote& remote : remotes) {
      channel.send(remote.rank, type, payload);
    }
    for (std::uint32_t r = 1; r < world; ++r) {
      if (standing[r] != Standing::kZombie ||
          !transport_->peer_connected(r)) {
        continue;
      }
      bool in_remotes = false;
      for (const Remote& remote : remotes) {
        if (remote.rank == r) in_remotes = true;
      }
      if (!in_remotes) channel.send(r, type, payload);
    }
  };

  std::vector<std::uint32_t> prev_parts;
  for (std::uint32_t t = 0; t < tcfg.num_trees; ++t) {
    process_membership(t, /*fire_hook=*/true);
    if (t > 0 && members.participants() != prev_parts) ++stats_.repartitions;
    prev_parts = members.participants();
    assign_tree(t);

    Tree tree;
    std::deque<DriverNode> frontier;
    std::vector<std::uint64_t> level_hist_records;
    std::vector<std::uint32_t> level_hist_nodes;
    decisions.clear();
    build_seq = 0;
    std::uint32_t decision_seq = 0;

    for (auto& g : groups) g->begin_tree(n);

    {
      DriverNode root;
      root.tree_node = tree.root();
      root.depth = 0;
      root.rows = n;
      root.hist = gather_merged(t);
      root.totals = root.hist.totals();
      emit(trace, StepEvent{.kind = StepKind::kHistogram,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = 0,
                            .records = n,
                            .fields_touched = num_fields,
                            .record_fields = num_fields});
      frontier.push_back(std::move(root));
    }

    while (!frontier.empty()) {
      DriverNode node = std::move(frontier.front());
      frontier.pop_front();

      auto make_leaf = [&](const BinStats& totals) {
        tree.set_leaf_weight(node.tree_node,
                             tcfg.learning_rate *
                                 leaf_weight(totals, tcfg.split.lambda));
        leaf_depth_sum += node.depth;
        ++leaf_count;
        merged_pool.release(std::move(node.hist));
      };

      if (node.depth >= static_cast<std::int32_t>(tcfg.max_depth) ||
          node.rows < tcfg.min_node_records) {
        for (auto& g : groups) {
          if (g->num_local() > 0) g->apply_leaf();
        }
        make_leaf(node.totals);
        continue;
      }

      std::uint64_t bins_scanned = 0;
      const auto split =
          finder.find_best(node.hist, data, &pool, &bins_scanned);
      emit(trace, StepEvent{.kind = StepKind::kSplitSelect,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = node.depth,
                            .bins_scanned = bins_scanned});

      ipc::SplitDecisionMsg decision;
      decision.tree = t;
      decision.decision_seq = decision_seq++;
      decision.has_split = split.has_value();
      if (split) decision.split = *split;
      broadcast_decision(decision);

      if (!split) {
        for (auto& g : groups) {
          if (g->num_local() > 0) g->apply_leaf();
        }
        make_leaf(node.totals);
        continue;
      }

      const std::uint64_t n_left = split->left.count_u64();
      BOOSTER_CHECK_MSG(n_left > 0 && n_left < node.rows,
                        "split produced an empty child");
      const bool children_may_split =
          node.depth + 1 < static_cast<std::int32_t>(tcfg.max_depth);
      for (auto& g : groups) {
        if (g->num_local() == 0) continue;
        const bool pushed = g->apply_split(*split);
        BOOSTER_CHECK(pushed == children_may_split);
      }
      emit(trace, StepEvent{.kind = StepKind::kPartition,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = node.depth,
                            .records = node.rows,
                            .fields_touched = 1,
                            .record_fields = num_fields});
      const std::uint64_t n_right = node.rows - n_left;

      const auto [left_id, right_id] = tree.split_leaf(node.tree_node, *split);
      const std::int32_t child_depth = node.depth + 1;

      if (!children_may_split) {
        tree.set_leaf_weight(left_id, tcfg.learning_rate *
                                          leaf_weight(split->left,
                                                      tcfg.split.lambda));
        tree.set_leaf_weight(right_id, tcfg.learning_rate *
                                           leaf_weight(split->right,
                                                       tcfg.split.lambda));
        leaf_depth_sum += 2.0 * child_depth;
        leaf_count += 2;
        merged_pool.release(std::move(node.hist));
        continue;
      }

      const bool left_smaller = n_left <= n_right;
      DriverNode small;
      DriverNode large;
      small.tree_node = left_smaller ? left_id : right_id;
      large.tree_node = left_smaller ? right_id : left_id;
      small.depth = large.depth = child_depth;
      small.rows = left_smaller ? n_left : n_right;
      large.rows = left_smaller ? n_right : n_left;

      small.hist = gather_merged(t);
      small.totals = small.hist.totals();
      if (tcfg.growth == GrowthOrder::kVertexByVertex) {
        emit(trace, StepEvent{.kind = StepKind::kHistogram,
                              .tree = static_cast<std::int32_t>(t),
                              .depth = child_depth,
                              .records = small.rows,
                              .fields_touched = num_fields,
                              .record_fields = num_fields,
                              .used_sibling_subtraction = true});
      } else {
        if (level_hist_records.size() <=
            static_cast<std::size_t>(child_depth)) {
          level_hist_records.resize(child_depth + 1, 0);
          level_hist_nodes.resize(child_depth + 1, 0);
        }
        level_hist_records[child_depth] += small.rows;
        ++level_hist_nodes[child_depth];
      }

      large.hist = std::move(node.hist);
      large.hist.subtract(small.hist);
      large.totals = large.hist.totals();

      frontier.push_back(std::move(small));
      frontier.push_back(std::move(large));
    }

    if (tcfg.growth == GrowthOrder::kLevelByLevel) {
      for (std::size_t depth = 0; depth < level_hist_records.size(); ++depth) {
        if (level_hist_records[depth] == 0) continue;
        emit(trace, StepEvent{.kind = StepKind::kHistogram,
                              .tree = static_cast<std::int32_t>(t),
                              .depth = static_cast<std::int32_t>(depth),
                              .records = level_hist_records[depth],
                              .fields_touched = num_fields,
                              .record_fields = num_fields,
                              .histograms = level_hist_nodes[depth],
                              .used_sibling_subtraction = true});
      }
    }

    {
      ipc::TreeCompleteMsg msg;
      msg.tree = t;
      msg.nodes.reserve(tree.num_nodes());
      for (std::uint32_t id = 0; id < tree.num_nodes(); ++id) {
        msg.nodes.push_back(tree.node(static_cast<std::int32_t>(id)));
      }
      broadcast_all(MessageType::kTreeComplete,
                    HistogramCodec::encode_tree_complete(msg));
    }

    std::vector<std::tuple<std::uint32_t, double, double>> partials;
    for (auto& g : groups) {
      if (g->num_local() == 0) continue;
      double hops = 0.0;
      double qloss = 0.0;
      g->finish_tree(tree, *loss, &hops, &qloss);
      partials.emplace_back(g->shard_begin(), hops, qloss);
    }
    for (Remote& remote : remotes) {
      if (!remote.alive || remote.shards() == 0) continue;
      Frame frame;
      ipc::ShardSummaryMsg msg;
      if (!channel.recv(remote.rank, &frame)) {
        ShardGroup* adopted = adopt(remote);
        double hops = 0.0;
        double qloss = 0.0;
        adopted->finish_tree(tree, *loss, &hops, &qloss);
        partials.emplace_back(adopted->shard_begin(), hops, qloss);
        continue;
      }
      BOOSTER_CHECK_MSG(frame.type == MessageType::kShardSummary,
                        "unexpected message while gathering summaries "
                        "(protocol desync)");
      BOOSTER_CHECK_MSG(
          HistogramCodec::decode_shard_summary(frame.payload, &msg) &&
              msg.tree == t && msg.shard_begin == remote.shard_begin &&
              msg.shard_end == remote.shard_end,
          "shard summary for the wrong tree or range (protocol desync)");
      partials.emplace_back(msg.shard_begin, msg.hops, msg.quantized_loss);
    }
    std::sort(partials.begin(), partials.end());
    double hops = 0.0;
    double total_loss = 0.0;
    for (const auto& [sb, h, l] : partials) {
      hops += h;
      total_loss += l;
    }
    emit(trace, StepEvent{.kind = StepKind::kTraversal,
                          .tree = static_cast<std::int32_t>(t),
                          .depth = static_cast<std::int32_t>(tree.max_depth()),
                          .records = n,
                          .fields_touched = static_cast<std::uint32_t>(
                              tree.relevant_fields().size()),
                          .record_fields = num_fields,
                          .avg_path_length = hops / static_cast<double>(n)});

    TreeStats tstats;
    tstats.leaves = tree.num_leaves();
    tstats.depth = tree.max_depth();
    BOOSTER_CHECK_MSG(total_loss <= kStatSumCapacity,
                      "training-loss sum exceeds the quantized-exact "
                      "capacity (2^29); normalize labels or enlarge "
                      "kStatQuantum");
    tstats.train_loss = total_loss / static_cast<double>(n);
    result.tree_stats.push_back(tstats);
    result.model.add_tree(std::move(tree));

    bool stop_now = t + 1 == tcfg.num_trees;
    bool early = false;
    if (tcfg.early_stop_rel_improvement > 0.0) {
      const double improvement =
          prev_loss <= 0.0 ? 0.0 : (prev_loss - tstats.train_loss) / prev_loss;
      if (std::isfinite(prev_loss) &&
          improvement < tcfg.early_stop_rel_improvement) {
        if (++stagnant_trees >= tcfg.early_stop_patience) {
          result.early_stopped = true;
          early = true;
          stop_now = true;
        }
      } else {
        stagnant_trees = 0;
      }
      prev_loss = tstats.train_loss;
    }

    {
      ipc::TreeVerdictMsg verdict;
      verdict.tree = t;
      verdict.train_loss = tstats.train_loss;
      verdict.stop_training = stop_now;
      verdict.early_stopped = early;
      broadcast_all(MessageType::kTreeVerdict,
                    HistogramCodec::encode_tree_verdict(verdict));
    }
    if (early) break;
  }

  // Final sweep: admit joiners that connected during the last tree (they
  // still deserve the full model), then hand every follower the final
  // assignment -- the elastic exit signal -- and run the goodbye barrier
  // over the active ones.
  const auto trees_done =
      static_cast<std::uint32_t>(result.model.trees().size());
  process_membership(trees_done, /*fire_hook=*/false);
  {
    ipc::ShardAssignMsg fin;
    fin.tree = trees_done;
    fin.view_epoch = members.view_epoch();
    fin.num_shards = num_shards;
    fin.final_assign = true;
    fin.early_stopped = result.early_stopped;
    const auto payload = HistogramCodec::encode_shard_assign(fin);
    for (std::uint32_t r = 1; r < world; ++r) {
      const bool follower =
          standing[r] == Standing::kActive ||
          (standing[r] == Standing::kZombie && transport_->peer_connected(r));
      if (follower) channel.send(r, MessageType::kShardAssign, payload);
    }
  }
  for (std::uint32_t r = 1; r < world; ++r) {
    if (standing[r] != Standing::kActive) continue;
    Frame frame;
    if (!channel.recv(r, &frame, cfg_.channel.shutdown_attempts)) continue;
    BOOSTER_CHECK_MSG(frame.type == MessageType::kGoodbye,
                      "unexpected message at shutdown (protocol desync)");
  }

  result.avg_leaf_depth =
      leaf_count == 0 ? 0.0 : leaf_depth_sum / static_cast<double>(leaf_count);
  result.hot_path.threads = pool.num_threads();
  result.hot_path.simd = util::simd::level_name(util::simd::active());
  result.hot_path.shards = num_shards;
  result.hot_path.histogram_merges = driver_merges;
  result.hot_path.histogram_allocations =
      merged_pool.allocations() + rx_pool.allocations();
  result.hot_path.histogram_acquires =
      merged_pool.acquires() + rx_pool.acquires();
  result.hot_path.arena_bytes = 0;
  std::sort(groups.begin(), groups.end(),
            [](const auto& a, const auto& b) {
              return a->shard_begin() < b->shard_begin();
            });
  for (const auto& g : groups) {
    result.hot_path.chunk_merges += g->internal_merges();
    for (const ShardHotPathStats& ss : g->shard_stats()) {
      result.hot_path.histogram_allocations += ss.histogram_allocations;
      result.hot_path.histogram_acquires += ss.histogram_acquires;
      result.hot_path.arena_bytes += ss.arena_bytes;
      result.hot_path.per_shard.push_back(ss);
    }
  }
  result.hot_path.row_major_matrix_bytes =
      RecordLayout::software_row_major_bytes(n, num_fields, sizeof(BinIndex));

  stats_.channel = channel.stats();
  stats_.transport = transport_->stats();
  detail::fill_workload_info(data, tcfg, result, info);
  return result;
}

TrainResult DistributedTrainer::train_worker_elastic(
    const BinnedDataset& data, trace::WorkloadInfo* info) {
  const std::uint64_t n = data.num_records();
  BOOSTER_CHECK_MSG(n > 0, "cannot train on an empty dataset");
  const TrainerConfig& tcfg = cfg_.trainer;
  auto loss = make_loss(tcfg.loss);
  const std::uint32_t num_shards = clamp_shards(tcfg.num_shards, n);
  stats_.shards_total = num_shards;

  util::ThreadPool pool(tcfg.num_threads);
  ipc::ReliableChannel channel(transport_, cfg_.channel);
  const double base_score = initial_base_score(data, *loss, tcfg);

  // NOT seeded with warm-start trees: an elastic worker receives the full
  // finished-tree prefix (init trees included) in its admission catch-up,
  // so seeding here would double them.
  TrainResult result{.model = Model(base_score, make_loss(tcfg.loss))};
  double leaf_depth_sum = 0.0;
  std::uint64_t leaf_count = 0;
  std::unique_ptr<ShardGroup> group;

  const auto finalize = [&]() -> TrainResult {
    result.avg_leaf_depth =
        leaf_count == 0 ? 0.0
                        : leaf_depth_sum / static_cast<double>(leaf_count);
    result.hot_path.threads = pool.num_threads();
    result.hot_path.simd = util::simd::level_name(util::simd::active());
    result.hot_path.shards = num_shards;
    if (group != nullptr) {
      result.hot_path.chunk_merges = group->internal_merges();
      for (const ShardHotPathStats& ss : group->shard_stats()) {
        result.hot_path.histogram_allocations += ss.histogram_allocations;
        result.hot_path.histogram_acquires += ss.histogram_acquires;
        result.hot_path.arena_bytes += ss.arena_bytes;
        result.hot_path.per_shard.push_back(ss);
      }
    }
    result.hot_path.row_major_matrix_bytes =
        RecordLayout::software_row_major_bytes(n, data.num_fields(),
                                               sizeof(BinIndex));
    stats_.channel = channel.stats();
    stats_.transport = transport_->stats();
    detail::fill_workload_info(data, tcfg, result, info);
    return std::move(result);
  };

  /// Churn-hook dispatch; true means "return now" (the caller's result is
  /// whatever prefix it has).
  const auto churn_says_die = [&](std::uint32_t t, ElasticChurnPoint point) {
    if (!cfg_.churn_hook) return false;
    switch (cfg_.churn_hook(t, point)) {
      case ElasticChurnAction::kContinue:
        return false;
      case ElasticChurnAction::kCrash:
        transport_->shutdown_hard();  // abrupt: rank 0 sees a dead socket
        return true;
      case ElasticChurnAction::kHang:
        return true;  // connection stays half-open: only liveness catches it
    }
    return false;
  };

  // Admission: the coordinator's first message is the catch-up carrying
  // every already-finished tree. Failing to get it means the coordinator
  // was gone before this worker ever joined -- return gracefully.
  Frame frame;
  if (!channel.recv(0, &frame)) {
    stats_.orphaned = 1;
    return finalize();
  }
  BOOSTER_CHECK_MSG(frame.type == MessageType::kCatchUp,
                    "elastic worker expected a catch-up (protocol desync)");
  {
    ipc::CatchUpMsg catch_up;
    BOOSTER_CHECK_MSG(HistogramCodec::decode_catch_up(frame.payload, &catch_up),
                      "catch-up payload failed to decode (protocol desync)");
    for (auto& entry : catch_up.trees) {
      Tree tree = Tree::from_nodes(std::move(entry.nodes));
      accumulate_leaf_depths(tree, &leaf_depth_sum, &leaf_count);
      TreeStats ts;
      ts.leaves = tree.num_leaves();
      ts.depth = tree.max_depth();
      ts.train_loss = entry.train_loss;
      result.tree_stats.push_back(ts);
      result.model.add_tree(std::move(tree));
    }
  }

  std::uint32_t cur_begin = 0;
  std::uint32_t cur_end = 0;
  bool have_group = false;

  const auto send_built = [&](std::uint32_t t, std::uint32_t build_idx) {
    group->build_pending();
    for (std::uint32_t ls = 0; ls < group->num_local(); ++ls) {
      channel.send(0, MessageType::kShardHistogram,
                   HistogramCodec::encode_shard_histogram(
                       t, build_idx, group->shard_begin() + ls,
                       group->built_histogram(ls)));
    }
    group->release_built();
  };

  for (;;) {
    if (!channel.recv(0, &frame)) {
      stats_.orphaned = 1;
      break;
    }
    BOOSTER_CHECK_MSG(frame.type == MessageType::kShardAssign,
                      "elastic worker expected an assignment (protocol "
                      "desync)");
    ipc::ShardAssignMsg assign;
    BOOSTER_CHECK_MSG(
        HistogramCodec::decode_shard_assign(frame.payload, &assign),
        "shard-assign payload failed to decode (protocol desync)");
    if (assign.final_assign) {
      // The elastic exit signal (the verdict's stop flag is advisory
      // here: a worker admitted at the last boundary never saw one).
      result.early_stopped = assign.early_stopped;
      channel.send(0, MessageType::kGoodbye, {});
      break;
    }
    BOOSTER_CHECK_MSG(assign.num_shards == num_shards,
                      "shard-count mismatch across the elastic world");
    const std::uint32_t t = assign.tree;

    if (churn_says_die(t, ElasticChurnPoint::kTreeStart)) return finalize();

    if (!have_group || assign.shard_begin != cur_begin ||
        assign.shard_end != cur_end) {
      group = std::make_unique<ShardGroup>(data, tcfg, num_shards,
                                           assign.shard_begin,
                                           assign.shard_end, &pool);
      group->reset(*loss, base_score);
      for (const Tree& tr : result.model.trees()) {
        group->finish_tree(tr, *loss, nullptr, nullptr);
      }
      cur_begin = assign.shard_begin;
      cur_end = assign.shard_end;
      have_group = true;
      stats_.shards_local = cur_end - cur_begin;
    }

    bool lost = false;
    if (group->num_local() > 0) {
      std::uint32_t build_seq = 0;
      std::uint32_t decision_seq = 0;
      group->begin_tree(n);
      send_built(t, build_seq++);
      if (churn_says_die(t, ElasticChurnPoint::kAfterFirstBuild)) {
        return finalize();
      }
      while (!group->frontier_empty()) {
        if (group->head_is_bounds_leaf()) {
          group->apply_leaf();
          continue;
        }
        if (!channel.recv(0, &frame)) {
          stats_.orphaned = 1;
          lost = true;
          break;
        }
        BOOSTER_CHECK_MSG(frame.type == MessageType::kSplitDecision,
                          "unexpected message type (protocol desync)");
        ipc::SplitDecisionMsg msg;
        BOOSTER_CHECK_MSG(
            HistogramCodec::decode_split_decision(frame.payload, &msg) &&
                msg.tree == t && msg.decision_seq == decision_seq,
            "split decision out of step (protocol desync)");
        ++decision_seq;
        if (!msg.has_split) {
          group->apply_leaf();
          continue;
        }
        if (group->apply_split(msg.split)) send_built(t, build_seq++);
      }
    } else if (churn_says_die(t, ElasticChurnPoint::kAfterFirstBuild)) {
      // An empty-range follower still honors its churn schedule.
      return finalize();
    }
    if (lost) break;

    if (!channel.recv(0, &frame)) {
      stats_.orphaned = 1;
      break;
    }
    BOOSTER_CHECK_MSG(frame.type == MessageType::kTreeComplete,
                      "unexpected message type (protocol desync)");
    ipc::TreeCompleteMsg tree_msg;
    BOOSTER_CHECK_MSG(
        HistogramCodec::decode_tree_complete(frame.payload, &tree_msg) &&
            tree_msg.tree == t,
        "finished tree out of step (protocol desync)");
    Tree tree = Tree::from_nodes(std::move(tree_msg.nodes));

    if (group->num_local() > 0) {
      ipc::ShardSummaryMsg summary;
      summary.tree = t;
      summary.shard_begin = group->shard_begin();
      summary.shard_end = group->shard_end();
      group->finish_tree(tree, *loss, &summary.hops, &summary.quantized_loss);
      channel.send(0, MessageType::kShardSummary,
                   HistogramCodec::encode_shard_summary(summary));
    }

    if (!channel.recv(0, &frame)) {
      stats_.orphaned = 1;
      break;
    }
    BOOSTER_CHECK_MSG(frame.type == MessageType::kTreeVerdict,
                      "unexpected message type (protocol desync)");
    ipc::TreeVerdictMsg verdict;
    BOOSTER_CHECK_MSG(
        HistogramCodec::decode_tree_verdict(frame.payload, &verdict) &&
            verdict.tree == t,
        "tree verdict out of step (protocol desync)");

    accumulate_leaf_depths(tree, &leaf_depth_sum, &leaf_count);
    TreeStats ts;
    ts.leaves = tree.num_leaves();
    ts.depth = tree.max_depth();
    ts.train_loss = verdict.train_loss;
    result.tree_stats.push_back(ts);
    result.model.add_tree(std::move(tree));
  }

  return finalize();
}

TrainResult DistributedTrainer::train_worker(const BinnedDataset& data,
                                             trace::WorkloadInfo* info) {
  const std::uint64_t n = data.num_records();
  BOOSTER_CHECK_MSG(n > 0, "cannot train on an empty dataset");
  const TrainerConfig& tcfg = cfg_.trainer;
  auto loss = make_loss(tcfg.loss);
  const std::uint32_t num_shards = clamp_shards(tcfg.num_shards, n);
  const std::uint32_t world = world_size();
  const std::uint32_t my_rank = rank();
  stats_.shards_total = num_shards;

  util::ThreadPool pool(tcfg.num_threads);
  const auto [my_begin, my_end] = shard_row_range(num_shards, world, my_rank);
  stats_.shards_local = static_cast<std::uint32_t>(my_end - my_begin);
  ShardGroup group(data, tcfg, num_shards, static_cast<std::uint32_t>(my_begin),
                   static_cast<std::uint32_t>(my_end), &pool);
  ipc::ReliableChannel channel(transport_, cfg_.channel);

  const double base_score = initial_base_score(data, *loss, tcfg);
  group.reset(*loss, base_score);

  TrainResult result{.model = Model(base_score, make_loss(tcfg.loss))};
  // Warm start: every rank carries the same init model in its config, so
  // the worker seeds and replays locally -- identical to rank 0's seeding,
  // no wire traffic.
  seed_warm_start(&result, tcfg);
  for (const Tree& t : result.model.trees()) {
    group.finish_tree(t, *loss, nullptr, nullptr);
  }
  double leaf_depth_sum = 0.0;
  std::uint64_t leaf_count = 0;

  const auto recv_expect = [&](MessageType type, Frame* frame) {
    BOOSTER_CHECK_MSG(channel.recv(0, frame),
                      "worker lost its coordinator (rank 0 unreachable)");
    BOOSTER_CHECK_MSG(frame->type == type,
                      "unexpected message type (protocol desync)");
  };

  const auto send_built = [&](std::uint32_t t, std::uint32_t build_idx) {
    group.build_pending();
    for (std::uint32_t ls = 0; ls < group.num_local(); ++ls) {
      channel.send(0, MessageType::kShardHistogram,
                   HistogramCodec::encode_shard_histogram(
                       t, build_idx, group.shard_begin() + ls,
                       group.built_histogram(ls)));
    }
    group.release_built();
  };

  for (std::uint32_t t = 0; t < tcfg.num_trees; ++t) {
    if (group.num_local() > 0) {
      std::uint32_t build_seq = 0;
      std::uint32_t decision_seq = 0;
      group.begin_tree(n);
      send_built(t, build_seq++);
      while (!group.frontier_empty()) {
        if (group.head_is_bounds_leaf()) {
          group.apply_leaf();
          continue;
        }
        Frame frame;
        recv_expect(MessageType::kSplitDecision, &frame);
        ipc::SplitDecisionMsg msg;
        BOOSTER_CHECK_MSG(
            HistogramCodec::decode_split_decision(frame.payload, &msg) &&
                msg.tree == t && msg.decision_seq == decision_seq,
            "split decision out of step (protocol desync)");
        ++decision_seq;
        if (!msg.has_split) {
          group.apply_leaf();
          continue;
        }
        if (group.apply_split(msg.split)) send_built(t, build_seq++);
      }
    }

    Frame frame;
    recv_expect(MessageType::kTreeComplete, &frame);
    ipc::TreeCompleteMsg tree_msg;
    BOOSTER_CHECK_MSG(
        HistogramCodec::decode_tree_complete(frame.payload, &tree_msg) &&
            tree_msg.tree == t,
        "finished tree out of step (protocol desync)");
    Tree tree = Tree::from_nodes(std::move(tree_msg.nodes));

    if (group.num_local() > 0) {
      ipc::ShardSummaryMsg summary;
      summary.tree = t;
      summary.shard_begin = group.shard_begin();
      summary.shard_end = group.shard_end();
      group.finish_tree(tree, *loss, &summary.hops, &summary.quantized_loss);
      channel.send(0, MessageType::kShardSummary,
                   HistogramCodec::encode_shard_summary(summary));
    }

    recv_expect(MessageType::kTreeVerdict, &frame);
    ipc::TreeVerdictMsg verdict;
    BOOSTER_CHECK_MSG(
        HistogramCodec::decode_tree_verdict(frame.payload, &verdict) &&
            verdict.tree == t,
        "tree verdict out of step (protocol desync)");

    accumulate_leaf_depths(tree, &leaf_depth_sum, &leaf_count);
    TreeStats stats;
    stats.leaves = tree.num_leaves();
    stats.depth = tree.max_depth();
    stats.train_loss = verdict.train_loss;
    result.tree_stats.push_back(stats);
    result.model.add_tree(std::move(tree));
    if (verdict.stop_training) {
      result.early_stopped = verdict.early_stopped;
      // Confirm the final verdict (shutdown barrier; see train_rank0).
      channel.send(0, MessageType::kGoodbye, {});
      break;
    }
  }

  result.avg_leaf_depth =
      leaf_count == 0 ? 0.0 : leaf_depth_sum / static_cast<double>(leaf_count);
  result.hot_path.threads = pool.num_threads();
  result.hot_path.simd = util::simd::level_name(util::simd::active());
  result.hot_path.shards = num_shards;
  result.hot_path.chunk_merges = group.internal_merges();
  for (const ShardHotPathStats& ss : group.shard_stats()) {
    result.hot_path.histogram_allocations += ss.histogram_allocations;
    result.hot_path.histogram_acquires += ss.histogram_acquires;
    result.hot_path.arena_bytes += ss.arena_bytes;
    result.hot_path.per_shard.push_back(ss);
  }
  result.hot_path.row_major_matrix_bytes =
      RecordLayout::software_row_major_bytes(n, data.num_fields(),
                                             sizeof(BinIndex));

  stats_.channel = channel.stats();
  stats_.transport = transport_->stats();
  detail::fill_workload_info(data, tcfg, result, info);
  return result;
}

TrainResult train_in_process(const DistributedConfig& cfg,
                             ipc::InProcessWorld& world,
                             const BinnedDataset& data, StepTrace* trace,
                             trace::WorkloadInfo* info,
                             std::vector<TrainResult>* all_results,
                             std::vector<DistributedStats>* all_stats) {
  const std::uint32_t R = world.world_size();
  // The row-major view must exist before rank threads race to train on
  // the shared dataset.
  data.ensure_row_major();
  std::vector<std::optional<TrainResult>> results(R);
  std::vector<DistributedStats> stats(R);
  std::vector<std::thread> threads;
  threads.reserve(R);
  for (std::uint32_t r = 0; r < R; ++r) {
    threads.emplace_back([&, r] {
      DistributedTrainer trainer(cfg, world.endpoint(r));
      results[r] = trainer.train(data, r == 0 ? trace : nullptr,
                                 r == 0 ? info : nullptr);
      stats[r] = trainer.stats();
    });
  }
  for (auto& th : threads) th.join();
  if (all_stats != nullptr) *all_stats = std::move(stats);
  if (all_results != nullptr) {
    // Worker results only (rank-0's is the return value; TrainResult is
    // move-only, so it cannot live in both places).
    all_results->clear();
    for (std::uint32_t r = 1; r < R; ++r) {
      all_results->push_back(std::move(*results[r]));
    }
  }
  return std::move(*results[0]);
}

ElasticRunResult train_elastic_tcp(const ElasticWorldConfig& cfg,
                                   const BinnedDataset& data,
                                   trace::StepTrace* trace,
                                   trace::WorkloadInfo* info) {
  // The rank-address space must cover the initial workers and every rank
  // a churn event names (a join can target a rank that never existed).
  std::uint32_t max_world = cfg.max_world;
  if (max_world == 0) {
    std::uint32_t highest = cfg.initial_workers;
    for (const ipc::ChurnEvent& ev : cfg.churn.events) {
      highest = std::max(highest, ev.rank);
    }
    max_world = highest + 1;
  }
  BOOSTER_CHECK_MSG(max_world >= 2, "an elastic world needs at least one "
                                    "worker rank");
  BOOSTER_CHECK_MSG(cfg.initial_workers >= 1 &&
                        cfg.initial_workers < max_world,
                    "initial_workers out of range for the elastic world");

  data.ensure_row_major();

  auto listener = ipc::TcpTransport::listen("127.0.0.1", 0, max_world,
                                            cfg.tcp);
  BOOSTER_CHECK_MSG(listener != nullptr, "elastic world: tcp listen failed");
  const std::uint16_t port = listener->port();

  ElasticRunResult out;
  std::mutex mu;
  std::vector<std::thread> threads;
  // Kept alive until every thread is joined: a kHang incarnation returns
  // without closing its transport, and destroying it would close the
  // socket -- turning the half-open hang rank 0 must *detect* into an EOF
  // it would merely *observe*.
  std::vector<std::unique_ptr<ipc::TcpTransport>> worker_transports;

  /// One worker incarnation. `start_tree` scopes the churn schedule: a
  /// rejoined rank must not re-fire the kill that ended its predecessor.
  const auto run_worker = [&](std::uint32_t rank, std::uint32_t start_tree) {
    ipc::TcpOptions topts = cfg.tcp;
    topts.session_nonce = 0;  // fresh incarnation, fresh nonce
    auto owned = ipc::TcpTransport::connect("127.0.0.1", port, max_world,
                                            rank, topts);
    if (owned == nullptr) {
      std::lock_guard<std::mutex> lock(mu);
      ++out.orphaned;  // the coordinator was gone before we ever joined
      return;
    }
    ipc::TcpTransport* transport = owned.get();
    {
      std::lock_guard<std::mutex> lock(mu);
      worker_transports.push_back(std::move(owned));
    }
    DistributedConfig dist = cfg.dist;
    dist.elastic = true;
    dist.on_tree_boundary = nullptr;
    ElasticChurnAction injected = ElasticChurnAction::kContinue;
    dist.churn_hook = [&cfg, &injected, rank, start_tree](
                          std::uint32_t tree, ElasticChurnPoint point) {
      for (const ipc::ChurnEvent& ev : cfg.churn.events) {
        if (ev.rank != rank || ev.tree != tree || ev.tree < start_tree) {
          continue;
        }
        if (ev.kind == ipc::ChurnEvent::Kind::kKill &&
            point == ElasticChurnPoint::kAfterFirstBuild) {
          injected = ElasticChurnAction::kCrash;
          return ElasticChurnAction::kCrash;
        }
        if (ev.kind == ipc::ChurnEvent::Kind::kHang &&
            point == ElasticChurnPoint::kTreeStart) {
          injected = ElasticChurnAction::kHang;
          return ElasticChurnAction::kHang;
        }
      }
      return ElasticChurnAction::kContinue;
    };
    DistributedTrainer trainer(dist, transport);
    TrainResult res = trainer.train(data);
    std::lock_guard<std::mutex> lock(mu);
    if (injected == ElasticChurnAction::kCrash) {
      ++out.crashed;
    } else if (injected == ElasticChurnAction::kHang) {
      ++out.hung;
    } else if (trainer.stats().orphaned != 0) {
      ++out.orphaned;
    } else {
      out.completed.push_back(std::move(res));
      out.completed_stats.push_back(trainer.stats());
    }
  };

  for (std::uint32_t r = 1; r <= cfg.initial_workers; ++r) {
    threads.emplace_back([&run_worker, r] { run_worker(r, 0); });
  }
  BOOSTER_CHECK_MSG(
      listener->wait_for_world(1 + cfg.initial_workers, cfg.assemble_timeout),
      "elastic world failed to assemble within assemble_timeout");

  DistributedConfig d0 = cfg.dist;
  d0.elastic = true;
  d0.churn_hook = nullptr;
  d0.on_tree_boundary = [&](std::uint32_t tree) {
    std::vector<std::uint32_t> spawned;
    for (const ipc::ChurnEvent& ev : cfg.churn.events) {
      if (ev.kind != ipc::ChurnEvent::Kind::kJoin || ev.tree != tree) {
        continue;
      }
      const std::uint32_t rank = ev.rank;
      {
        std::lock_guard<std::mutex> lock(mu);
        threads.emplace_back(
            [&run_worker, rank, tree] { run_worker(rank, tree); });
      }
      spawned.push_back(rank);
    }
    // Pump the joiners' handshakes through before returning: the
    // schedule says "join at tree T", so make the admission land at this
    // boundary deterministically instead of racing a solo coordinator
    // that never blocks in recv. Bounded: a joiner that cannot connect
    // falls out after assemble_timeout.
    const auto deadline =
        std::chrono::steady_clock::now() + cfg.assemble_timeout;
    for (const std::uint32_t rank : spawned) {
      while (!listener->peer_connected(rank) &&
             std::chrono::steady_clock::now() < deadline) {
        listener->pump(std::chrono::milliseconds(5));
      }
    }
  };

  DistributedTrainer rank0(d0, listener.get());
  out.rank0 = rank0.train(data, trace, info);
  out.rank0_stats = rank0.stats();

  // Joiner threads may have been appended while training ran; drain until
  // the vector is empty (no more spawns once train() has returned).
  for (;;) {
    std::thread th;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (threads.empty()) break;
      th = std::move(threads.back());
      threads.pop_back();
    }
    th.join();
  }
  return out;
}

}  // namespace booster::gbdt
