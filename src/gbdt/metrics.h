// Evaluation metrics for trained models.
#pragma once

#include <span>

#include "gbdt/binning.h"
#include "gbdt/tree.h"

namespace booster::gbdt {

/// Root-mean-squared error of task-space predictions vs labels.
double rmse(const Model& model, const BinnedDataset& data);

/// Fraction of records whose thresholded prediction (>= 0.5) matches a
/// binary label.
double accuracy(const Model& model, const BinnedDataset& data);

/// Area under the ROC curve for binary labels (rank-based computation).
double auc(const Model& model, const BinnedDataset& data);

/// Mean training loss per the model's own loss function.
double mean_loss(const Model& model, const BinnedDataset& data);

}  // namespace booster::gbdt
