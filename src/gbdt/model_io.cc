#include "gbdt/model_io.h"

#include <fstream>
#include <iomanip>
#include <span>
#include <sstream>

#include "ipc/codec.h"  // ipc::crc32 -- the transport's checksum, reused
#include "util/check.h"

namespace booster::gbdt {

namespace {

/// Serializable view of a tree: nodes are written in index order; child
/// links are indices into the same table. Leaves reconstructed via
/// split_leaf replay would renumber nodes, so loading rebuilds the node
/// table directly through a builder tree and weight fix-up pass.
void save_tree(const Tree& tree, std::uint32_t index, std::ostream& out) {
  out << "tree " << index << " nodes " << tree.num_nodes() << "\n";
  for (std::uint32_t id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& n = tree.node(static_cast<std::int32_t>(id));
    if (n.is_leaf) {
      out << "node " << id << " leaf " << std::setprecision(17) << n.weight
          << "\n";
    } else {
      out << "node " << id << " split " << n.field << " "
          << (n.kind == PredicateKind::kNumericLE ? "le" : "eq") << " "
          << n.threshold_bin << " " << (n.default_left ? 1 : 0) << " "
          << n.left << " " << n.right << " " << std::setprecision(17)
          << n.gain << "\n";
    }
  }
}

struct ParsedNode {
  bool is_leaf = true;
  double weight = 0.0;
  SplitInfo split;
  std::int32_t left = -1;
  std::int32_t right = -1;
};

/// Rebuilds a Tree from parsed nodes by replaying splits in DFS order.
/// Replay preserves the invariant that split_leaf allocates children
/// contiguously, which holds for trees produced by the trainer; arbitrary
/// node orders are normalized by the recursion.
class TreeRebuilder {
 public:
  explicit TreeRebuilder(const std::vector<ParsedNode>& nodes)
      : nodes_(nodes) {}

  Tree build() {
    Tree tree;
    rebuild(tree, tree.root(), 0);
    return tree;
  }

 private:
  void rebuild(Tree& tree, std::int32_t dst, std::int32_t src) {
    const ParsedNode& n = nodes_[src];
    if (n.is_leaf) {
      tree.set_leaf_weight(dst, n.weight);
      return;
    }
    const auto [l, r] = tree.split_leaf(dst, n.split);
    rebuild(tree, l, n.left);
    rebuild(tree, r, n.right);
  }

  const std::vector<ParsedNode>& nodes_;
};

}  // namespace

void save_model(const Model& model, std::ostream& out) {
  out << "booster-model v1\n";
  out << "base_score " << std::setprecision(17) << model.base_score() << "\n";
  out << "loss " << model.loss().name() << "\n";
  out << "trees " << model.num_trees() << "\n";
  for (std::uint32_t t = 0; t < model.num_trees(); ++t) {
    save_tree(model.trees()[t], t, out);
  }
}

bool save_model_file(const Model& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_model(model, out);
  return static_cast<bool>(out);
}

Model load_model(std::istream& in) {
  std::string token;
  std::string version;
  in >> token >> version;
  BOOSTER_CHECK_MSG(token == "booster-model" && version == "v1",
                    "unsupported model format");
  double base_score = 0.0;
  in >> token >> base_score;
  BOOSTER_CHECK(token == "base_score");
  std::string loss_name;
  in >> token >> loss_name;
  BOOSTER_CHECK(token == "loss");
  // The serialized loss name may carry a variant suffix (e.g.
  // "ranking-pointwise"); map back to the factory name.
  if (loss_name.rfind("ranking", 0) == 0) loss_name = "ranking";
  std::uint32_t num_trees = 0;
  in >> token >> num_trees;
  BOOSTER_CHECK(token == "trees");

  Model model(base_score, make_loss(loss_name));
  for (std::uint32_t t = 0; t < num_trees; ++t) {
    std::uint32_t index = 0;
    std::uint32_t num_nodes = 0;
    in >> token >> index;
    BOOSTER_CHECK(token == "tree" && index == t);
    in >> token >> num_nodes;
    BOOSTER_CHECK(token == "nodes" && num_nodes >= 1);

    std::vector<ParsedNode> nodes(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; ++i) {
      std::uint32_t id = 0;
      std::string kind;
      in >> token >> id >> kind;
      BOOSTER_CHECK(token == "node" && id < num_nodes);
      ParsedNode& n = nodes[id];
      if (kind == "leaf") {
        n.is_leaf = true;
        in >> n.weight;
      } else {
        BOOSTER_CHECK_MSG(kind == "split", "unknown node kind");
        n.is_leaf = false;
        std::string pred;
        int default_left = 0;
        in >> n.split.field >> pred >> n.split.threshold_bin >> default_left >>
            n.left >> n.right >> n.split.gain;
        n.split.kind = pred == "le" ? PredicateKind::kNumericLE
                                    : PredicateKind::kCategoryEqual;
        n.split.default_left = default_left != 0;
        BOOSTER_CHECK(n.left >= 0 &&
                      n.left < static_cast<std::int32_t>(num_nodes));
        BOOSTER_CHECK(n.right >= 0 &&
                      n.right < static_cast<std::int32_t>(num_nodes));
      }
    }
    BOOSTER_CHECK_MSG(static_cast<bool>(in), "truncated model file");
    model.add_tree(TreeRebuilder(nodes).build());
  }
  return model;
}

Model load_model_file(const std::string& path) {
  std::ifstream in(path);
  BOOSTER_CHECK_MSG(static_cast<bool>(in), ("cannot open " + path).c_str());
  return load_model(in);
}

namespace {

constexpr const char kContainerMagic[] = "booster-model-container";

std::uint32_t payload_crc(const std::string& payload) {
  return ipc::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(payload.data()),
      payload.size()));
}

}  // namespace

const char* model_file_status_name(ModelFileStatus status) {
  switch (status) {
    case ModelFileStatus::kOk:
      return "ok";
    case ModelFileStatus::kIoError:
      return "io-error";
    case ModelFileStatus::kBadMagic:
      return "bad-magic";
    case ModelFileStatus::kBadVersion:
      return "bad-version";
    case ModelFileStatus::kTruncated:
      return "truncated";
    case ModelFileStatus::kBadChecksum:
      return "bad-checksum";
  }
  return "unknown";
}

void save_model_checked(const Model& model, std::ostream& out) {
  std::ostringstream payload_stream;
  save_model(model, payload_stream);
  const std::string payload = payload_stream.str();
  out << kContainerMagic << " v1 bytes " << payload.size() << " crc32 "
      << std::hex << std::setw(8) << std::setfill('0') << payload_crc(payload)
      << std::dec << std::setfill(' ') << "\n";
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

bool save_model_checked_file(const Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save_model_checked(model, out);
  return static_cast<bool>(out);
}

ModelFileStatus load_model_checked(std::istream& in,
                                   std::optional<Model>* out) {
  std::string header;
  if (!std::getline(in, header)) return ModelFileStatus::kIoError;
  std::istringstream fields(header);
  std::string magic, version, bytes_key, crc_key, crc_hex;
  std::uint64_t byte_count = 0;
  fields >> magic;
  if (magic != kContainerMagic) return ModelFileStatus::kBadMagic;
  fields >> version;
  if (version != "v1") return ModelFileStatus::kBadVersion;
  fields >> bytes_key >> byte_count >> crc_key >> crc_hex;
  if (!fields || bytes_key != "bytes" || crc_key != "crc32" ||
      crc_hex.size() != 8) {
    return ModelFileStatus::kBadMagic;  // header shape, not a version skew
  }
  std::uint32_t expected_crc = 0;
  for (const char c : crc_hex) {
    const int digit = c >= '0' && c <= '9'   ? c - '0'
                      : c >= 'a' && c <= 'f' ? c - 'a' + 10
                                             : -1;
    if (digit < 0) return ModelFileStatus::kBadMagic;
    expected_crc = expected_crc << 4 | static_cast<std::uint32_t>(digit);
  }

  std::string payload(byte_count, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(byte_count));
  if (static_cast<std::uint64_t>(in.gcount()) != byte_count) {
    return ModelFileStatus::kTruncated;
  }
  if (payload_crc(payload) != expected_crc) {
    return ModelFileStatus::kBadChecksum;
  }
  // The payload is now CRC-verified: load_model's abort-on-malformed
  // contract is safe to rely on (only a deliberately crafted file can
  // both pass the CRC and be unparsable).
  std::istringstream payload_stream(payload);
  out->emplace(load_model(payload_stream));
  return ModelFileStatus::kOk;
}

ModelFileStatus load_model_checked_file(const std::string& path,
                                        std::optional<Model>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return ModelFileStatus::kIoError;
  return load_model_checked(in, out);
}

}  // namespace booster::gbdt
