#include "gbdt/model_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/check.h"

namespace booster::gbdt {

namespace {

/// Serializable view of a tree: nodes are written in index order; child
/// links are indices into the same table. Leaves reconstructed via
/// split_leaf replay would renumber nodes, so loading rebuilds the node
/// table directly through a builder tree and weight fix-up pass.
void save_tree(const Tree& tree, std::uint32_t index, std::ostream& out) {
  out << "tree " << index << " nodes " << tree.num_nodes() << "\n";
  for (std::uint32_t id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& n = tree.node(static_cast<std::int32_t>(id));
    if (n.is_leaf) {
      out << "node " << id << " leaf " << std::setprecision(17) << n.weight
          << "\n";
    } else {
      out << "node " << id << " split " << n.field << " "
          << (n.kind == PredicateKind::kNumericLE ? "le" : "eq") << " "
          << n.threshold_bin << " " << (n.default_left ? 1 : 0) << " "
          << n.left << " " << n.right << " " << std::setprecision(17)
          << n.gain << "\n";
    }
  }
}

struct ParsedNode {
  bool is_leaf = true;
  double weight = 0.0;
  SplitInfo split;
  std::int32_t left = -1;
  std::int32_t right = -1;
};

/// Rebuilds a Tree from parsed nodes by replaying splits in DFS order.
/// Replay preserves the invariant that split_leaf allocates children
/// contiguously, which holds for trees produced by the trainer; arbitrary
/// node orders are normalized by the recursion.
class TreeRebuilder {
 public:
  explicit TreeRebuilder(const std::vector<ParsedNode>& nodes)
      : nodes_(nodes) {}

  Tree build() {
    Tree tree;
    rebuild(tree, tree.root(), 0);
    return tree;
  }

 private:
  void rebuild(Tree& tree, std::int32_t dst, std::int32_t src) {
    const ParsedNode& n = nodes_[src];
    if (n.is_leaf) {
      tree.set_leaf_weight(dst, n.weight);
      return;
    }
    const auto [l, r] = tree.split_leaf(dst, n.split);
    rebuild(tree, l, n.left);
    rebuild(tree, r, n.right);
  }

  const std::vector<ParsedNode>& nodes_;
};

}  // namespace

void save_model(const Model& model, std::ostream& out) {
  out << "booster-model v1\n";
  out << "base_score " << std::setprecision(17) << model.base_score() << "\n";
  out << "loss " << model.loss().name() << "\n";
  out << "trees " << model.num_trees() << "\n";
  for (std::uint32_t t = 0; t < model.num_trees(); ++t) {
    save_tree(model.trees()[t], t, out);
  }
}

bool save_model_file(const Model& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_model(model, out);
  return static_cast<bool>(out);
}

Model load_model(std::istream& in) {
  std::string token;
  std::string version;
  in >> token >> version;
  BOOSTER_CHECK_MSG(token == "booster-model" && version == "v1",
                    "unsupported model format");
  double base_score = 0.0;
  in >> token >> base_score;
  BOOSTER_CHECK(token == "base_score");
  std::string loss_name;
  in >> token >> loss_name;
  BOOSTER_CHECK(token == "loss");
  // The serialized loss name may carry a variant suffix (e.g.
  // "ranking-pointwise"); map back to the factory name.
  if (loss_name.rfind("ranking", 0) == 0) loss_name = "ranking";
  std::uint32_t num_trees = 0;
  in >> token >> num_trees;
  BOOSTER_CHECK(token == "trees");

  Model model(base_score, make_loss(loss_name));
  for (std::uint32_t t = 0; t < num_trees; ++t) {
    std::uint32_t index = 0;
    std::uint32_t num_nodes = 0;
    in >> token >> index;
    BOOSTER_CHECK(token == "tree" && index == t);
    in >> token >> num_nodes;
    BOOSTER_CHECK(token == "nodes" && num_nodes >= 1);

    std::vector<ParsedNode> nodes(num_nodes);
    for (std::uint32_t i = 0; i < num_nodes; ++i) {
      std::uint32_t id = 0;
      std::string kind;
      in >> token >> id >> kind;
      BOOSTER_CHECK(token == "node" && id < num_nodes);
      ParsedNode& n = nodes[id];
      if (kind == "leaf") {
        n.is_leaf = true;
        in >> n.weight;
      } else {
        BOOSTER_CHECK_MSG(kind == "split", "unknown node kind");
        n.is_leaf = false;
        std::string pred;
        int default_left = 0;
        in >> n.split.field >> pred >> n.split.threshold_bin >> default_left >>
            n.left >> n.right >> n.split.gain;
        n.split.kind = pred == "le" ? PredicateKind::kNumericLE
                                    : PredicateKind::kCategoryEqual;
        n.split.default_left = default_left != 0;
        BOOSTER_CHECK(n.left >= 0 &&
                      n.left < static_cast<std::int32_t>(num_nodes));
        BOOSTER_CHECK(n.right >= 0 &&
                      n.right < static_cast<std::int32_t>(num_nodes));
      }
    }
    BOOSTER_CHECK_MSG(static_cast<bool>(in), "truncated model file");
    model.add_tree(TreeRebuilder(nodes).build());
  }
  return model;
}

Model load_model_file(const std::string& path) {
  std::ifstream in(path);
  BOOSTER_CHECK_MSG(static_cast<bool>(in), ("cannot open " + path).c_str());
  return load_model(in);
}

}  // namespace booster::gbdt
