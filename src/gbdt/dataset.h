// Raw tabular dataset: the table-based input GB operates on (paper §II-A).
// Columns are either numeric (float, NaN = missing) or categorical
// (non-negative int, -1 = missing). Storage is columnar; the *binned*
// dataset (binning.h) adds the redundant row-major view.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace booster::gbdt {

enum class FieldKind : std::uint8_t { kNumeric, kCategorical };

struct FieldSchema {
  std::string name;
  FieldKind kind = FieldKind::kNumeric;
  /// Number of categories for categorical fields (0 for numeric).
  std::uint32_t cardinality = 0;
};

/// Sentinel for a missing categorical value.
inline constexpr std::int32_t kMissingCategory = -1;

/// Raw dataset. All columns have `num_records()` entries.
class Dataset {
 public:
  Dataset() = default;

  /// Declares a numeric field and returns its index.
  std::uint32_t add_numeric_field(std::string name);

  /// Declares a categorical field with `cardinality` categories.
  std::uint32_t add_categorical_field(std::string name,
                                      std::uint32_t cardinality);

  /// Reserves storage for `n` records in every declared column.
  void resize(std::uint64_t n);

  std::uint64_t num_records() const { return num_records_; }
  std::uint32_t num_fields() const {
    return static_cast<std::uint32_t>(schema_.size());
  }
  const FieldSchema& field(std::uint32_t f) const { return schema_[f]; }
  const std::vector<FieldSchema>& schema() const { return schema_; }

  /// Number of one-hot features the dataset expands to: numeric fields
  /// count as one feature; categorical fields expand to one binary feature
  /// per category (paper Table III "#Features (one-hot)").
  std::uint64_t onehot_features() const;

  std::uint32_t num_categorical_fields() const;

  // Column access. Numeric columns are indexed by the field's numeric slot,
  // resolved internally -- callers just use the field index.
  float numeric_value(std::uint32_t field, std::uint64_t record) const {
    return numeric_cols_[slot_[field]][record];
  }
  void set_numeric(std::uint32_t field, std::uint64_t record, float v) {
    numeric_cols_[slot_[field]][record] = v;
  }
  std::int32_t categorical_value(std::uint32_t field,
                                 std::uint64_t record) const {
    return categorical_cols_[slot_[field]][record];
  }
  void set_categorical(std::uint32_t field, std::uint64_t record,
                       std::int32_t v) {
    categorical_cols_[slot_[field]][record] = v;
  }

  /// Regression/classification target.
  void set_label(std::uint64_t record, float y) { labels_[record] = y; }
  float label(std::uint64_t record) const { return labels_[record]; }
  const std::vector<float>& labels() const { return labels_; }

 private:
  std::vector<FieldSchema> schema_;
  /// Maps field index -> column slot within its kind-specific storage.
  std::vector<std::uint32_t> slot_;
  std::vector<std::vector<float>> numeric_cols_;
  std::vector<std::vector<std::int32_t>> categorical_cols_;
  std::vector<float> labels_;
  std::uint64_t num_records_ = 0;
};

}  // namespace booster::gbdt
