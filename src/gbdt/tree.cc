#include "gbdt/tree.h"

#include <algorithm>

#include "util/check.h"

namespace booster::gbdt {

Tree::Tree() { nodes_.push_back(TreeNode{}); }

Tree Tree::from_nodes(std::vector<TreeNode> nodes) {
  BOOSTER_CHECK_MSG(!nodes.empty(), "tree node table is empty");
  BOOSTER_CHECK_MSG(nodes[0].depth == 0, "tree root must have depth 0");
  const auto count = static_cast<std::int32_t>(nodes.size());
  for (std::int32_t id = 0; id < count; ++id) {
    const TreeNode& n = nodes[id];
    if (n.is_leaf) continue;
    BOOSTER_CHECK_MSG(n.left > id && n.left < count && n.right > id &&
                          n.right < count,
                      "tree node table has out-of-range child links");
    BOOSTER_CHECK_MSG(nodes[n.left].depth == n.depth + 1 &&
                          nodes[n.right].depth == n.depth + 1,
                      "tree node table has inconsistent depths");
  }
  Tree tree;
  tree.nodes_ = std::move(nodes);
  return tree;
}

std::pair<std::int32_t, std::int32_t> Tree::split_leaf(std::int32_t id,
                                                       const SplitInfo& info) {
  BOOSTER_CHECK(nodes_[id].is_leaf);
  const auto left_id = static_cast<std::int32_t>(nodes_.size());
  const auto right_id = left_id + 1;
  TreeNode child;
  child.depth = nodes_[id].depth + 1;
  nodes_.push_back(child);
  nodes_.push_back(child);
  TreeNode& n = nodes_[id];
  n.is_leaf = false;
  n.field = info.field;
  n.kind = info.kind;
  n.threshold_bin = info.threshold_bin;
  n.default_left = info.default_left;
  n.left = left_id;
  n.right = right_id;
  n.gain = info.gain;
  return {left_id, right_id};
}

void Tree::set_leaf_weight(std::int32_t id, double w) {
  BOOSTER_CHECK(nodes_[id].is_leaf);
  nodes_[id].weight = w;
}

bool Tree::goes_left(std::int32_t id, BinIndex bin) const {
  const TreeNode& n = nodes_[id];
  BOOSTER_DCHECK(!n.is_leaf);
  return routes_left(n.kind, n.threshold_bin, n.default_left, bin);
}

double Tree::predict(const BinnedDataset& data, std::uint64_t record) const {
  std::int32_t id = root();
  while (!nodes_[id].is_leaf) {
    const TreeNode& n = nodes_[id];
    id = goes_left(id, data.bin(n.field, record)) ? n.left : n.right;
  }
  return nodes_[id].weight;
}

std::uint32_t Tree::path_length(const BinnedDataset& data,
                                std::uint64_t record) const {
  std::int32_t id = root();
  std::uint32_t hops = 0;
  while (!nodes_[id].is_leaf) {
    const TreeNode& n = nodes_[id];
    id = goes_left(id, data.bin(n.field, record)) ? n.left : n.right;
    ++hops;
  }
  return hops;
}

std::uint32_t Tree::num_leaves() const {
  std::uint32_t leaves = 0;
  for (const auto& n : nodes_) leaves += n.is_leaf ? 1 : 0;
  return leaves;
}

std::uint32_t Tree::max_depth() const {
  std::int32_t d = 0;
  for (const auto& n : nodes_) d = std::max(d, n.depth);
  return static_cast<std::uint32_t>(d);
}

std::vector<std::uint32_t> Tree::relevant_fields() const {
  std::vector<std::uint32_t> fields;
  for (const auto& n : nodes_) {
    if (!n.is_leaf) fields.push_back(n.field);
  }
  std::sort(fields.begin(), fields.end());
  fields.erase(std::unique(fields.begin(), fields.end()), fields.end());
  return fields;
}

Model Model::clone() const {
  Model copy(base_score_, make_loss(loss_->name()));
  for (const Tree& t : trees_) copy.add_tree(t);
  return copy;
}

double Model::predict_raw(const BinnedDataset& data,
                          std::uint64_t record) const {
  double sum = base_score_;
  for (const auto& t : trees_) sum += t.predict(data, record);
  return sum;
}

double Model::predict(const BinnedDataset& data, std::uint64_t record) const {
  return loss_->transform(predict_raw(data, record));
}

double Model::avg_path_length(const BinnedDataset& data) const {
  if (trees_.empty() || data.num_records() == 0) return 0.0;
  // Sampling a few thousand records is plenty for a mean path length.
  const std::uint64_t n = data.num_records();
  const std::uint64_t sample = std::min<std::uint64_t>(n, 4096);
  const std::uint64_t stride = std::max<std::uint64_t>(1, n / sample);
  double hops = 0.0;
  std::uint64_t count = 0;
  for (std::uint64_t r = 0; r < n; r += stride) {
    for (const auto& t : trees_) hops += t.path_length(data, r);
    ++count;
  }
  return hops / (static_cast<double>(count) * trees_.size());
}

std::uint32_t Model::max_tree_depth() const {
  std::uint32_t d = 0;
  for (const auto& t : trees_) d = std::max(d, t.max_depth());
  return d;
}

}  // namespace booster::gbdt
