// Split selection (paper step 2): scans every bin of every field of a node
// histogram as a candidate split point, evaluating the XGBoost gain
//
//   gain = 1/2 [ GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ] - gamma
//
// Numeric fields are scanned left-to-right with cumulative left/right
// buckets (paper Fig 3); categorical fields evaluate one-hot predicates
// ("category == c" vs rest) using only the per-category "yes" sums with the
// complement reconstructed by subtraction. Records with missing values are
// tried in both the left and right subtree and the better option is kept
// (the learned default direction).
#pragma once

#include <cstdint>
#include <optional>

#include "gbdt/histogram.h"

namespace booster::util {
class ThreadPool;
}

namespace booster::gbdt {

/// Minimum fields per chunk before the split scan goes parallel; a chunk
/// needs enough bins to amortize the fork/join (wide categorical fields
/// dominate either way, so a small grain suffices).
inline constexpr std::uint64_t kSplitScanGrain = 2;

/// Minimum bins per chunk for the bin-granular scan that kicks in when one
/// field's bin count dominates the histogram (a huge categorical field
/// would otherwise serialize the whole scan into its chunk).
inline constexpr std::uint64_t kSplitScanBinGrain = 128;

struct SplitConfig {
  double lambda = 1.0;           // L2 weight regularization
  double gamma = 0.0;            // per-leaf complexity penalty
  double min_child_weight = 1.0; // minimum sum of h per child
  double min_split_gain = 1e-6;  // numerical floor on accepted gains
};

/// How a node predicate routes records.
enum class PredicateKind : std::uint8_t {
  kNumericLE,     // go left if bin <= threshold_bin (value <= upper bound)
  kCategoryEqual, // go left if category bin == threshold_bin
};

struct SplitInfo {
  std::uint32_t field = 0;
  PredicateKind kind = PredicateKind::kNumericLE;
  /// Numeric: the highest value-bin index routed left.
  /// Categorical: the matching category bin index.
  std::uint16_t threshold_bin = 0;
  /// Where missing-value (bin 0) records go.
  bool default_left = false;
  double gain = 0.0;
  /// Gradient totals of the left child (right = node totals - left).
  BinStats left;
  BinStats right;
};

/// The routing rule every consumer of a split predicate must agree on:
/// bin 0 (missing) follows the learned default; numeric predicates route
/// left when bin <= threshold; categorical when bin == threshold. Shared
/// by step-3 partitioning (hotpath.h) and step-5 traversal
/// (Tree::goes_left) so the two can never drift apart.
inline bool routes_left(PredicateKind kind, std::uint16_t threshold_bin,
                        bool default_left, BinIndex bin) {
  if (bin == 0) return default_left;  // missing value: learned default
  return kind == PredicateKind::kNumericLE ? bin <= threshold_bin
                                           : bin == threshold_bin;
}

/// Leaf weight for totals (G, H): w* = -G / (H + lambda).
double leaf_weight(const BinStats& totals, double lambda);

/// Structure score contribution of one bucket: G^2 / (H + lambda).
double bucket_score(const BinStats& totals, double lambda);

class SplitFinder {
 public:
  explicit SplitFinder(SplitConfig cfg = {}) : cfg_(cfg) {}

  const SplitConfig& config() const { return cfg_; }

  /// Scans all bins of all fields; returns the best admissible split or
  /// nullopt if no split improves the objective by more than gamma.
  /// `bins_scanned` (optional) receives the number of candidate bins
  /// evaluated -- the quantity step 2's host cost is proportional to.
  std::optional<SplitInfo> find_best(const Histogram& hist,
                                     const BinnedDataset& data,
                                     std::uint64_t* bins_scanned = nullptr) const;

  /// Threaded variant: fields are scanned in parallel chunks over `pool`
  /// (nullptr or a 1-thread pool falls back to the serial scan). The result
  /// is identical to the serial scan at every thread count: chunks are
  /// contiguous ranges scanned in field order, and per-chunk bests merge in
  /// chunk order keeping the first maximum -- the serial first-max-wins
  /// tie-breaking, bit for bit. Chunks are normally whole-field ranges;
  /// when one field's bin count dwarfs a fair per-thread share (a huge
  /// categorical field -- including the 2-3-field histograms where field
  /// granularity cannot parallelize at all), the scan chunks by *bins*
  /// instead: chunks cover contiguous ranges of the global bin index
  /// space, and a chunk entering a numeric field mid-way first replays the
  /// field's left-prefix accumulation up to its start bin -- the same
  /// additions in the same order, so candidate gains stay bit-identical to
  /// the serial scan.
  std::optional<SplitInfo> find_best(const Histogram& hist,
                                     const BinnedDataset& data,
                                     util::ThreadPool* pool,
                                     std::uint64_t* bins_scanned = nullptr) const;

 private:
  /// Serial scan of fields [begin, end) (the per-chunk body).
  void scan_fields(const Histogram& hist, const BinnedDataset& data,
                   const BinStats& totals, std::uint32_t begin,
                   std::uint32_t end, std::optional<SplitInfo>& best,
                   std::uint64_t& scanned) const;

  /// Serial scan of the global bin index range [begin, end) -- the
  /// per-chunk body of the bin-granular scan. Fields overlapping the range
  /// are visited in field order; numeric fields entered mid-way replay
  /// their left-prefix first (see find_best). `scanned` counts the covered
  /// bins of fields with more than one bin, so per-chunk counts sum to the
  /// serial scan's total.
  void scan_bin_range(const Histogram& hist, const BinnedDataset& data,
                      const BinStats& totals, std::uint64_t begin,
                      std::uint64_t end, std::optional<SplitInfo>& best,
                      std::uint64_t& scanned) const;

  void scan_numeric(std::uint32_t field, std::span<const BinStats> bins,
                    const BinStats& totals, std::optional<SplitInfo>& best) const;
  void scan_categorical(std::uint32_t field, std::span<const BinStats> bins,
                        const BinStats& totals,
                        std::optional<SplitInfo>& best) const;

  /// Evaluates one candidate (left bucket vs totals-left) with the missing
  /// bin tried on both sides; updates `best` if admissible and better.
  void consider(std::uint32_t field, PredicateKind kind,
                std::uint16_t threshold_bin, const BinStats& left_no_missing,
                const BinStats& missing, const BinStats& totals,
                std::optional<SplitInfo>& best) const;

  SplitConfig cfg_;
};

}  // namespace booster::gbdt
