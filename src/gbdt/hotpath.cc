#include "gbdt/hotpath.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace booster::gbdt {

void build_histogram_parallel(Histogram& out, const BinnedDataset& data,
                              std::span<const std::uint32_t> rows,
                              std::span<const GradientPair> gradients,
                              util::ThreadPool& pool,
                              HistogramPool& hist_pool,
                              std::vector<Histogram>& partials_scratch) {
  const unsigned chunks = pool.num_chunks(rows.size(), kHistogramGrain);
  if (chunks <= 1) {
    out.build(data, rows, gradients);
    return;
  }
  // Materialize the row-major view on the calling thread before workers
  // start reading it concurrently.
  data.ensure_row_major();
  // Partials are pool buffers and the scratch vector keeps its capacity
  // (previous entries are moved-from husks), so steady-state parallel
  // builds allocate nothing. Acquire/release happen on the calling thread
  // only (the pool free list is not thread-safe).
  std::vector<Histogram>& partials = partials_scratch;
  partials.clear();
  partials.reserve(chunks - 1);
  for (unsigned c = 1; c < chunks; ++c) partials.push_back(hist_pool.acquire());

  pool.for_chunks(0, rows.size(), kHistogramGrain,
                  [&](std::uint64_t b, std::uint64_t e, unsigned c) {
                    Histogram& h = c == 0 ? out : partials[c - 1];
                    h.build(data, rows.subspan(b, e - b), gradients);
                  });

  for (auto& p : partials) {
    out.add(p);
    hist_pool.release(std::move(p));
  }
}

void partition_to(std::span<const std::uint32_t> src,
                  std::span<std::uint32_t> dst, std::uint64_t begin,
                  std::uint64_t end, std::uint64_t n_left,
                  const BinnedDataset& data, const SplitInfo& split,
                  util::ThreadPool& pool,
                  std::span<std::uint64_t> chunk_counts) {
  BOOSTER_CHECK(begin <= end && end <= src.size());
  BOOSTER_CHECK(dst.size() >= end);
  const std::uint64_t count = end - begin;
  BOOSTER_CHECK(n_left <= count);
  if (count == 0) return;
  const auto& col = data.column(split.field);

  const unsigned chunks = pool.num_chunks(count, kPartitionGrain);
  BOOSTER_CHECK(chunk_counts.size() >= chunks);

  if (chunks <= 1) {
    // Serial fast path: one fused pass with both sides written forward
    // (rights start at the position n_left fixes in advance).
    std::uint64_t left_w = begin;
    std::uint64_t right_w = begin + n_left;
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint32_t row = src[i];
      if (split_goes_left(split, col[row])) {
        // A left overflow stays inside [begin, end) (it bleeds into the
        // right region) and is caught by the final check; a right overflow
        // would write past `end`, so it must be checked before the write.
        dst[left_w++] = row;
      } else {
        BOOSTER_CHECK_MSG(right_w < end,
                          "partition disagrees with the split's bucket counts");
        dst[right_w++] = row;
      }
    }
    BOOSTER_CHECK_MSG(left_w == begin + n_left && right_w == end,
                      "partition disagrees with the split's bucket counts");
    return;
  }

  // Pass 1: per-chunk left counts (the parallel path still needs per-chunk
  // prefix offsets, not just the total).
  pool.for_chunks(begin, end, kPartitionGrain,
                  [&](std::uint64_t b, std::uint64_t e, unsigned c) {
                    std::uint64_t chunk_left = 0;
                    for (std::uint64_t i = b; i < e; ++i) {
                      chunk_left += split_goes_left(split, col[src[i]]);
                    }
                    chunk_counts[c] = chunk_left;
                  });

  // Exclusive prefix over chunk counts -> each chunk's left write base.
  std::uint64_t total_left = 0;
  for (unsigned c = 0; c < chunks; ++c) {
    const std::uint64_t chunk_left = chunk_counts[c];
    chunk_counts[c] = total_left;
    total_left += chunk_left;
  }
  BOOSTER_CHECK_MSG(total_left == n_left,
                    "partition disagrees with the split's bucket counts");

  // Pass 2: scatter -- chunk c's lefts start at begin + left_prefix[c]; its
  // rights start after all lefts, offset by the rights that precede the
  // chunk. Chunk-local writes preserve order, so the partition is stable.
  pool.for_chunks(begin, end, kPartitionGrain,
                  [&](std::uint64_t b, std::uint64_t e, unsigned c) {
                    std::uint64_t left_w = begin + chunk_counts[c];
                    std::uint64_t right_w =
                        begin + total_left + (b - begin) - chunk_counts[c];
                    for (std::uint64_t i = b; i < e; ++i) {
                      const std::uint32_t row = src[i];
                      if (split_goes_left(split, col[row])) {
                        dst[left_w++] = row;
                      } else {
                        dst[right_w++] = row;
                      }
                    }
                  });
}

}  // namespace booster::gbdt
