// Pre-processing (paper §II-A): discretizes numeric fields into quantile
// histogram bins, maps categorical fields to per-category bins, and reserves
// bin 0 of every field for missing values (the "absent" bin). The result is
// the BinnedDataset every training step operates on.
//
// Bin index layout per field:
//   bin 0            -> missing / absent
//   bins 1..k        -> numeric quantile bins (left-to-right value order)
//   bins 1..C        -> categorical categories ("yes" bins of the one-hot
//                       features; the "no" sums are reconstructed by
//                       subtraction, per the LightGBM optimization the
//                       paper adopts)
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "gbdt/dataset.h"
#include "gbdt/layout.h"

namespace booster::stream {
class FrozenBinMap;
}

namespace booster::gbdt {

/// Bin index within a field. uint16 functionally; the hardware layout packs
/// one byte per field and spreads >256-bin fields over SRAM groups
/// (paper §III-C extension 3) -- layout.h accounts for the extra bytes.
using BinIndex = std::uint16_t;

struct BinningConfig {
  /// Maximum value bins per numeric field, *excluding* the missing bin.
  /// The paper uses 128-256 in practice; 255 value bins + 1 missing bin
  /// keeps a numeric field within one byte.
  std::uint32_t max_numeric_bins = 255;
  /// Number of records sampled to build the quantile sketch.
  std::uint64_t quantile_sample = 100000;
};

/// Per-field binning metadata.
struct FieldBins {
  FieldKind kind = FieldKind::kNumeric;
  /// Total bins including the missing bin.
  std::uint32_t num_bins = 0;
  /// Upper boundaries of numeric value bins (size num_bins - 1 for numeric
  /// fields); value v falls in the first bin whose boundary is >= v.
  std::vector<float> upper_bounds;
};

/// Bins one raw numeric value against frozen field metadata: NaN (or a
/// field with no value bins) goes to missing bin 0; otherwise the first
/// value bin whose upper boundary is >= v, clamped to the last bin. This
/// is the *one* numeric binning rule -- the Binner uses it at training
/// time and serve::RowBinner uses it per request, so a served row can
/// never bin differently than training did.
BinIndex numeric_value_bin(float v, const FieldBins& fb);

/// Same for a categorical value: kMissingCategory maps to bin 0, category
/// c to bin c + 1. Out-of-range categories (negative or beyond the frozen
/// cardinality) also map to the missing bin -- a serving request may carry
/// categories the training schema never saw, and "unknown" already has
/// learned routing (the missing default).
BinIndex categorical_value_bin(std::int32_t v, const FieldBins& fb);

/// The binned dataset: column-major bin indices per field plus a packed
/// row-major bin matrix and the layout descriptor for byte accounting.
/// Keeping both views materialized is the "redundant format" of the paper's
/// third contribution: the per-field columns serve single-predicate steps
/// (partition, traversal), while the row-major matrix serves histogram
/// construction, whose inner loop reads every field of a record -- one
/// contiguous F-entry run per record instead of F strided column gathers.
class BinnedDataset {
 public:
  BinnedDataset() = default;
  // The atomic row-major flag is not copyable/movable, so spell out the
  // special members (copying/moving while another thread builds the view
  // is a caller error, same as for the data vectors themselves).
  BinnedDataset(const BinnedDataset& o)
      : fields_(o.fields_),
        columns_(o.columns_),
        row_major_(o.row_major_),
        labels_(o.labels_),
        num_records_(o.num_records_),
        layout_(o.layout_) {
    row_major_built_.store(o.row_major_built_.load());
  }
  BinnedDataset(BinnedDataset&& o) noexcept
      : fields_(std::move(o.fields_)),
        columns_(std::move(o.columns_)),
        row_major_(std::move(o.row_major_)),
        labels_(std::move(o.labels_)),
        num_records_(o.num_records_),
        layout_(std::move(o.layout_)) {
    row_major_built_.store(o.row_major_built_.load());
    // Leave the source empty-but-valid: its vectors were pilfered, so the
    // built flag and record count must not claim otherwise (a stale
    // row_major_built_ == true would make row_major_bins() hand out a
    // pointer into emptied storage).
    o.row_major_built_.store(false);
    o.num_records_ = 0;
  }
  BinnedDataset& operator=(const BinnedDataset& o) {
    if (this != &o) *this = BinnedDataset(o);
    return *this;
  }
  BinnedDataset& operator=(BinnedDataset&& o) noexcept {
    fields_ = std::move(o.fields_);
    columns_ = std::move(o.columns_);
    row_major_ = std::move(o.row_major_);
    labels_ = std::move(o.labels_);
    num_records_ = o.num_records_;
    layout_ = std::move(o.layout_);
    row_major_built_.store(o.row_major_built_.load());
    o.row_major_built_.store(false);
    o.num_records_ = 0;
    return *this;
  }

  std::uint64_t num_records() const { return num_records_; }
  std::uint32_t num_fields() const {
    return static_cast<std::uint32_t>(fields_.size());
  }
  const FieldBins& field_bins(std::uint32_t f) const { return fields_[f]; }

  BinIndex bin(std::uint32_t field, std::uint64_t record) const {
    return columns_[field][record];
  }
  /// Full column of one field (the hardware streams exactly this array in
  /// the single-predicate step).
  const std::vector<BinIndex>& column(std::uint32_t field) const {
    return columns_[field];
  }

  /// Packed row-major bin matrix: record r's bins occupy
  /// [r * num_fields, (r + 1) * num_fields). The histogram build kernel
  /// streams this directly. Only valid after ensure_row_major().
  const BinIndex* row_major_bins() const { return row_major_.data(); }

  /// Materializes the redundant row-major view on first call; later calls
  /// are a relaxed atomic load. Lazy so that consumers that never build
  /// histograms (perf models, metrics, inference) don't pay the
  /// num_records * num_fields * sizeof(BinIndex) footprint or the
  /// transpose. Thread-safe: concurrent first calls (e.g. two threads each
  /// running Trainer::train on one shared dataset) serialize on a mutex;
  /// once built the view is never written again.
  void ensure_row_major() const;

  const std::vector<float>& labels() const { return labels_; }

  /// Total histogram bins over all fields (missing bins included).
  std::uint64_t total_bins() const;

  std::uint32_t max_bins_per_field() const;

  /// Byte-accounting descriptor for the performance models.
  const RecordLayout& layout() const { return layout_; }

  friend class Binner;
  // The streaming path builds chunk datasets against frozen bin metadata
  // out-of-core, reusing recycled arenas in place of Binner's fresh ones.
  friend class booster::stream::FrozenBinMap;

 private:
  std::vector<FieldBins> fields_;
  std::vector<std::vector<BinIndex>> columns_;  // [field][record]
  // Lazily-built redundant row-major view ([record * num_fields + field]);
  // mutable so ensure_row_major() stays const for read-only consumers.
  mutable std::vector<BinIndex> row_major_;
  mutable std::atomic<bool> row_major_built_{false};
  std::vector<float> labels_;
  std::uint64_t num_records_ = 0;
  RecordLayout layout_;
};

/// Builds BinnedDatasets from raw Datasets.
class Binner {
 public:
  explicit Binner(BinningConfig cfg = {}) : cfg_(cfg) {}

  /// Computes quantile cut points (numeric fields) from a sample of the
  /// data, then bins every record. Deterministic.
  BinnedDataset bin(const Dataset& data) const;

 private:
  BinningConfig cfg_;
};

}  // namespace booster::gbdt
