#include "gbdt/dataset.h"

#include "util/check.h"

namespace booster::gbdt {

std::uint32_t Dataset::add_numeric_field(std::string name) {
  BOOSTER_CHECK_MSG(num_records_ == 0, "add fields before resize()");
  const auto index = static_cast<std::uint32_t>(schema_.size());
  schema_.push_back(FieldSchema{std::move(name), FieldKind::kNumeric, 0});
  slot_.push_back(static_cast<std::uint32_t>(numeric_cols_.size()));
  numeric_cols_.emplace_back();
  return index;
}

std::uint32_t Dataset::add_categorical_field(std::string name,
                                             std::uint32_t cardinality) {
  BOOSTER_CHECK_MSG(num_records_ == 0, "add fields before resize()");
  BOOSTER_CHECK(cardinality > 0);
  const auto index = static_cast<std::uint32_t>(schema_.size());
  schema_.push_back(
      FieldSchema{std::move(name), FieldKind::kCategorical, cardinality});
  slot_.push_back(static_cast<std::uint32_t>(categorical_cols_.size()));
  categorical_cols_.emplace_back();
  return index;
}

void Dataset::resize(std::uint64_t n) {
  num_records_ = n;
  for (std::uint32_t f = 0; f < num_fields(); ++f) {
    if (schema_[f].kind == FieldKind::kNumeric) {
      numeric_cols_[slot_[f]].assign(n, std::numeric_limits<float>::quiet_NaN());
    } else {
      categorical_cols_[slot_[f]].assign(n, kMissingCategory);
    }
  }
  labels_.assign(n, 0.0f);
}

std::uint64_t Dataset::onehot_features() const {
  std::uint64_t total = 0;
  for (const auto& f : schema_) {
    total += (f.kind == FieldKind::kNumeric) ? 1 : f.cardinality;
  }
  return total;
}

std::uint32_t Dataset::num_categorical_fields() const {
  std::uint32_t n = 0;
  for (const auto& f : schema_) {
    if (f.kind == FieldKind::kCategorical) ++n;
  }
  return n;
}

}  // namespace booster::gbdt
