// The per-shard half of sharded and distributed GBDT training: a
// ShardGroup owns a contiguous range of the global shard partition (its
// rows, gradient state, per-shard histogram pools, and ping-pong arenas)
// and replays the tree-growth decision stream against it -- per-shard
// histogram build, stable partition, and step-5 traversal. Both engines
// drive the same class:
//   * gbdt::ShardedTrainer / single-rank gbdt::DistributedTrainer: one
//     group covering every shard, driven inline;
//   * multi-rank gbdt::DistributedTrainer: one group per rank, remote
//     groups driven by the broadcast split decisions, their histograms
//     merged on rank 0 (plus freshly constructed groups when rank 0
//     adopts a dead worker's shards and replays the decision log).
//
// Every group-side operation is sub-chunked over the shared thread pool:
// each shard's rows are processed in up to ceil(threads / local_shards)
// contiguous chunks, so surplus threads stop idling when threads > shards
// (the ROADMAP scheduling follow-on). Chunk partials merge in chunk order;
// quantized-exact accumulation (gbdt::quantize_stat) makes every regrouping
// bit-identical, which is why sub-chunking -- and the cross-process
// distribution built on the same property -- never changes a trained bit.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/flat_ensemble.h"
#include "gbdt/histogram.h"
#include "gbdt/loss.h"
#include "gbdt/split.h"
#include "gbdt/trainer.h"
#include "gbdt/tree.h"

namespace booster::util {
class ThreadPool;
}

namespace booster::gbdt {

/// Row range [begin, end) of shard `s` out of `shards` over `n` records:
/// contiguous, near-equal, boundaries a pure function of (n, shards) --
/// the same fixed-share rule util::ThreadPool::parallel_for uses for
/// chunks. Requires n * shards < 2^64 (always true for row counts).
inline std::pair<std::uint64_t, std::uint64_t> shard_row_range(
    std::uint64_t n, std::uint32_t shards, std::uint32_t s) {
  return {n * s / shards, n * (s + 1) / shards};
}

class ShardGroup {
 public:
  /// A group owning global shards [shard_begin, shard_end) of a
  /// `num_shards`-way partition of `data` (an empty range is a valid,
  /// inert group -- a rank with more peers than shards). `pool` is
  /// borrowed and shared with the driver's split scans.
  ShardGroup(const BinnedDataset& data, const TrainerConfig& cfg,
             std::uint32_t num_shards, std::uint32_t shard_begin,
             std::uint32_t shard_end, util::ThreadPool* pool);

  std::uint32_t shard_begin() const { return shard_begin_; }
  std::uint32_t shard_end() const { return shard_end_; }
  std::uint32_t num_local() const { return shard_end_ - shard_begin_; }
  /// Sub-chunks per shard task: ceil(threads / local shards), >= 1.
  std::uint32_t sub_chunks() const { return sub_; }

  /// Resets prediction/gradient state for the owned rows to the ensemble
  /// base score. Call once before the first tree (and when an adopted
  /// group starts catching up).
  void reset(const Loss& loss, double base_score);

  // --- tree growth (all groups must see the same call sequence) ---

  /// Resets the arenas to ascending row order and seeds the frontier with
  /// the root (whole-shard spans, pending build).
  void begin_tree(std::uint64_t root_rows);

  bool frontier_empty() const { return frontier_.empty(); }
  /// True when the head must become a leaf without consulting the split
  /// finder -- the depth/min-records rule every rank evaluates locally
  /// (same inputs, no communication).
  bool head_is_bounds_leaf() const;

  /// Pops the head as a leaf.
  void apply_leaf();

  /// Pops the head, partitions every owned shard's span by `split`
  /// (stable, sub-chunked), and -- when the children may split further --
  /// pushes the smaller then the larger child and marks the smaller as
  /// the pending build. Returns true when children were pushed.
  bool apply_split(const SplitInfo& split);

  /// Builds the pending node's per-shard histograms (sub-chunked; chunk
  /// partials merged in chunk order). Histograms stay valid until
  /// release_built().
  void build_pending();
  bool has_pending_build() const { return pending_valid_; }
  const Histogram& built_histogram(std::uint32_t local_shard) const;
  void release_built();

  /// Step 5 for the owned rows: traverse the finished tree, update
  /// predictions, refresh gradients, and accumulate hop and quantized
  /// per-record loss sums (chunk partials reduced in chunk order -- exact,
  /// see histogram.h). Outputs may be null (adoption catch-up replays
  /// trees only for their prediction side effects).
  void finish_tree(const Tree& tree, const Loss& loss, double* hops,
                   double* quantized_loss);

  /// Per-shard diagnostics (rows, pool counters, arena bytes, sub-chunk
  /// count), in local shard order.
  std::vector<ShardHotPathStats> shard_stats() const;
  /// Histogram::add merges performed inside the group (chunk-partial
  /// reductions); the driver adds its own per-shard merges on top.
  std::uint64_t internal_merges() const { return internal_merges_; }

 private:
  struct Shard {
    std::uint64_t row_begin = 0;
    std::uint64_t row_end = 0;
    HistogramPool pool;
    std::vector<std::uint32_t> bufs[2];
    Histogram built;                  // per-shard result of build_pending
    std::vector<Histogram> partials;  // sub-chunk scratch (from `pool`)

    std::uint64_t num_rows() const { return row_end - row_begin; }
  };

  /// Frontier node: K local arena spans in one SpanPool-like slot.
  struct Node {
    std::uint32_t slot = 0;
    std::uint8_t buf = 0;
    std::int32_t depth = 0;
    std::uint64_t rows = 0;  // *global* rows (drives the bounds-leaf rule)
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  std::uint64_t& span_begin(std::uint32_t slot, std::uint32_t ls) {
    return span_bounds_[static_cast<std::size_t>(slot) * 2 * num_local() +
                        2 * ls];
  }
  std::uint64_t& span_end(std::uint32_t slot, std::uint32_t ls) {
    return span_bounds_[static_cast<std::size_t>(slot) * 2 * num_local() +
                        2 * ls + 1];
  }
  /// Sub-chunk [c_begin, c_end) of range [begin, end).
  static std::pair<std::uint64_t, std::uint64_t> chunk_range(
      std::uint64_t begin, std::uint64_t end, std::uint32_t c,
      std::uint32_t chunks) {
    const std::uint64_t count = end - begin;
    return {begin + count * c / chunks, begin + count * (c + 1) / chunks};
  }

  const BinnedDataset& data_;
  TrainerConfig cfg_;
  util::ThreadPool* pool_;
  std::uint32_t num_shards_;
  std::uint32_t shard_begin_;
  std::uint32_t shard_end_;
  std::uint32_t sub_ = 1;

  std::vector<Shard> shards_;
  std::vector<float> preds_;
  std::vector<GradientPair> gradients_;

  /// Per-field column base pointers for the blocked step-5 traversal
  /// kernel (fixed for the dataset's lifetime) and the FlatTree scratch it
  /// consumes, re-encoded once per finished tree (allocation-free warm).
  std::vector<const BinIndex*> col_ptrs_;
  FlatTree flat_;

  std::deque<Node> frontier_;
  /// Recycled per-(node, local shard) span bounds: slot i holds
  /// num_local() (begin, end) pairs. Same allocation-free discipline as
  /// the histogram pools.
  std::vector<std::uint64_t> span_bounds_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t next_slot_ = 0;

  /// Pending build target (the root just seeded or the smaller child just
  /// pushed); consumed by build_pending.
  Node pending_{};
  bool pending_valid_ = false;
  bool built_valid_ = false;

  /// Scratch for the two-phase sub-chunked partition: per (shard, chunk)
  /// left counts with per-shard totals, and per (shard, chunk) reduction
  /// slots for step 5.
  std::vector<std::uint64_t> chunk_lefts_;
  std::vector<std::uint64_t> shard_lefts_;
  std::vector<double> chunk_hops_;
  std::vector<double> chunk_losses_;

  std::uint64_t internal_merges_ = 0;
};

}  // namespace booster::gbdt
