// Cross-process sharded GBDT training over a pluggable histogram
// transport (ROADMAP cross-process follow-on). The world is a star of
// `world_size` ranks around rank 0:
//
//   * every rank holds the same BinnedDataset and the same config, and
//     owns a contiguous range of the global shard partition (a
//     gbdt::ShardGroup);
//   * workers build per-shard node histograms and ship them to rank 0
//     over ipc::ReliableChannel (versioned, checksummed, sequence-numbered
//     frames -- ipc::HistogramCodec);
//   * rank 0 merges shard histograms with Histogram::add in fixed global
//     shard order, runs the (threaded, serial-identical) split scan, and
//     broadcasts each split decision; every rank applies the decision to
//     its own shards. Finished trees and per-tree verdicts broadcast the
//     same way, so every rank returns the same model;
//   * faults are survived by the channel's retry protocol (per-message
//     checksum + sequence numbers + bounded re-request); a worker that
//     stays unresponsive through the attempt budget is declared dead and
//     rank 0 re-executes its shards locally (catch-up replay of finished
//     trees plus the current tree's decision log -- pure recomputation,
//     so the result is unchanged).
//
// Because the shard merge is quantized-exact and the per-shard partition
// is stable (PR 4), the trained model -- structure, weights, gains,
// per-tree losses, predictions, and rank-0's StepTrace -- is bit-identical
// to gbdt::Trainer at every (transport, world size, shard count, thread
// count), including under every recoverable injected fault. That contract
// is EXPECT_EQ-asserted by tests/test_distributed.cc and
// tests/test_distributed_faults.cc.
// Elastic membership (DistributedConfig.elastic, TCP worlds): instead of
// a fixed world, rank 0 recomputes the shard->rank assignment at every
// tree boundary from the transport's live membership view. Late joiners
// are admitted with a catch-up message (every finished tree + loss) and
// enter at the next boundary; workers that die mid-tree are adopted as
// before and evicted at the boundary; a worker that dies and rejoins (a
// new session nonce on the same rank) is re-admitted through the same
// catch-up path. Because every regrouping is a pure recomputation over
// the quantized-exact shard partition, the final model stays bit-identical
// to gbdt::Trainer through any such churn -- tests/test_elastic.cc
// EXPECT_EQ-asserts this across kill / hang / rejoin schedules.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>

#include "gbdt/trainer.h"
#include "ipc/membership.h"
#include "ipc/reliable.h"
#include "ipc/tcp_transport.h"
#include "ipc/transport.h"
#include "ipc/world.h"

namespace booster::gbdt {

/// Where in a worker's per-tree loop a churn hook fires.
enum class ElasticChurnPoint : std::uint8_t {
  kTreeStart = 0,       // assignment received, before any build
  kAfterFirstBuild,     // root histograms already shipped to rank 0
};

/// What an injected churn hook tells the worker to do.
enum class ElasticChurnAction : std::uint8_t {
  kContinue = 0,
  kCrash,  // shutdown_hard() the transport and return (SIGKILL stand-in)
  kHang,   // return without closing: the connection stays half-open
};

struct DistributedConfig {
  TrainerConfig trainer;
  /// Retry protocol knobs (per-attempt timeout, liveness deadline, resend
  /// window).
  ipc::ReliableConfig channel;
  /// Re-execute a dead worker's shards on rank 0 (catch-up replay). When
  /// off, a dead worker aborts training loudly.
  bool adopt_dead_workers = true;
  /// Elastic membership (see the header comment). Requires a
  /// membership-capable transport on rank 0 (TcpTransport); workers
  /// follow the assignment stream instead of deriving ranges from
  /// (world_size, rank).
  bool elastic = false;
  /// Worker-side fault-injection hook for churn tests: consulted at the
  /// ElasticChurnPoints of every tree. Null means kContinue.
  std::function<ElasticChurnAction(std::uint32_t tree, ElasticChurnPoint)>
      churn_hook;
  /// Rank-0 hook fired at every elastic tree boundary *before* membership
  /// is re-evaluated -- the churn harness uses it to launch late joiners.
  std::function<void(std::uint32_t tree)> on_tree_boundary;
};

/// Post-train diagnostics of one rank's view of the run.
struct DistributedStats {
  std::uint32_t world_size = 1;
  std::uint32_t rank = 0;
  std::uint32_t shards_total = 0;
  std::uint32_t shards_local = 0;    // owned at start (rank's own range)
  std::uint32_t shards_adopted = 0;  // re-executed for dead workers (rank 0)
  std::uint32_t dead_workers = 0;
  /// Elastic runs (rank 0): tree boundaries at which the live-member set
  /// -- and with it the shard assignment -- changed after the initial one.
  std::uint32_t repartitions = 0;
  /// Elastic runs (rank 0): workers admitted after training started.
  std::uint32_t joins = 0;
  /// Elastic runs (worker): 1 when this worker lost its coordinator and
  /// returned gracefully with whatever model prefix it had.
  std::uint32_t orphaned = 0;
  ipc::ReliableStats channel;
  ipc::TransportStats transport;
};

class DistributedTrainer {
 public:
  /// `transport` is this rank's endpoint (borrowed; may outlive the
  /// trainer). nullptr runs a single-rank world with no communication --
  /// exactly ShardedTrainer's engine (and what ShardedTrainer delegates
  /// to).
  DistributedTrainer(DistributedConfig cfg, ipc::Transport* transport);

  const DistributedConfig& config() const { return cfg_; }
  std::uint32_t rank() const;
  std::uint32_t world_size() const;

  /// Trains the ensemble. All ranks must call train with the identical
  /// dataset and config, concurrently. Every rank returns the same model,
  /// tree stats, and early-stop flag; `trace`/`info` are filled from
  /// rank 0's driver loop (workers fill `info` and leave `trace` empty --
  /// the trace needs merge-side quantities only rank 0 has).
  /// TrainResult.hot_path.per_shard covers the shards this rank executed
  /// (all of them on rank 0 of a single-rank world).
  TrainResult train(const BinnedDataset& data,
                    trace::StepTrace* trace = nullptr,
                    trace::WorkloadInfo* info = nullptr);

  /// Diagnostics of the last train() call.
  const DistributedStats& stats() const { return stats_; }

 private:
  TrainResult train_rank0(const BinnedDataset& data, trace::StepTrace* trace,
                          trace::WorkloadInfo* info);
  TrainResult train_worker(const BinnedDataset& data,
                           trace::WorkloadInfo* info);
  TrainResult train_rank0_elastic(const BinnedDataset& data,
                                  trace::StepTrace* trace,
                                  trace::WorkloadInfo* info);
  TrainResult train_worker_elastic(const BinnedDataset& data,
                                   trace::WorkloadInfo* info);

  DistributedConfig cfg_;
  ipc::Transport* transport_;
  DistributedStats stats_;
};

/// Runs a full `world`-sized training world in this process, one thread
/// per rank, and returns rank 0's result. `all_results` (optional)
/// receives the *worker* ranks' results (ranks 1..R-1, in rank order;
/// TrainResult is move-only, so rank 0's lives in the return value);
/// `all_stats` receives per-rank stats indexed by rank. The convenience
/// harness behind the equivalence tests, bench_distributed, the scenario
/// runner's runner.procs knob, and the multi_process example's loopback
/// mode.
TrainResult train_in_process(const DistributedConfig& cfg,
                             ipc::InProcessWorld& world,
                             const BinnedDataset& data,
                             trace::StepTrace* trace = nullptr,
                             trace::WorkloadInfo* info = nullptr,
                             std::vector<TrainResult>* all_results = nullptr,
                             std::vector<DistributedStats>* all_stats = nullptr);

/// Configuration of one elastic localhost-TCP training world driven by a
/// seeded churn schedule (tests, bench, and the scenario runner's
/// runner.transport=tcp + runner.churn knobs).
struct ElasticWorldConfig {
  DistributedConfig dist;
  /// Workers connected before training starts (ranks 1..initial_workers).
  std::uint32_t initial_workers = 1;
  /// Rank-address space of the TCP world; 0 derives it from
  /// initial_workers and the highest rank in the churn schedule.
  std::uint32_t max_world = 0;
  /// Kill / hang / join events, keyed by (rank, tree). Kills fire after
  /// the victim shipped its root histograms (mid-tree adoption); hangs
  /// fire at tree start (half-open liveness detection); joins launch a
  /// fresh incarnation at rank 0's tree boundary (admitted one boundary
  /// later).
  ipc::ChurnSchedule churn;
  /// TCP knobs shared by every endpoint (backoff, reconnect window,
  /// heartbeats come from dist.channel).
  ipc::TcpOptions tcp;
  std::chrono::milliseconds assemble_timeout{15000};
};

/// Outcome of one elastic run: rank 0's result plus every worker
/// incarnation's, partitioned by how the incarnation ended.
struct ElasticRunResult {
  /// Always engaged on return (optional only because TrainResult has no
  /// empty state to default-construct).
  std::optional<TrainResult> rank0;
  DistributedStats rank0_stats;
  /// Results of worker incarnations that ran to the final assignment
  /// (model bit-identical to rank0's), in completion order.
  std::vector<TrainResult> completed;
  std::vector<DistributedStats> completed_stats;
  std::uint32_t crashed = 0;   // churn-injected kCrash incarnations
  std::uint32_t hung = 0;      // churn-injected kHang incarnations
  std::uint32_t orphaned = 0;  // lost the coordinator, returned early
};

/// Runs one elastic world over real localhost TCP: rank 0 listens on an
/// ephemeral port and trains on the calling thread; worker incarnations
/// run on their own threads (one per initial worker plus one per join
/// event). Returns after every incarnation thread has been joined.
/// `trace`/`info` are filled from rank 0's driver loop, as in
/// DistributedTrainer::train.
ElasticRunResult train_elastic_tcp(const ElasticWorldConfig& cfg,
                                   const BinnedDataset& data,
                                   trace::StepTrace* trace = nullptr,
                                   trace::WorkloadInfo* info = nullptr);

}  // namespace booster::gbdt
