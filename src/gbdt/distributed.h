// Cross-process sharded GBDT training over a pluggable histogram
// transport (ROADMAP cross-process follow-on). The world is a star of
// `world_size` ranks around rank 0:
//
//   * every rank holds the same BinnedDataset and the same config, and
//     owns a contiguous range of the global shard partition (a
//     gbdt::ShardGroup);
//   * workers build per-shard node histograms and ship them to rank 0
//     over ipc::ReliableChannel (versioned, checksummed, sequence-numbered
//     frames -- ipc::HistogramCodec);
//   * rank 0 merges shard histograms with Histogram::add in fixed global
//     shard order, runs the (threaded, serial-identical) split scan, and
//     broadcasts each split decision; every rank applies the decision to
//     its own shards. Finished trees and per-tree verdicts broadcast the
//     same way, so every rank returns the same model;
//   * faults are survived by the channel's retry protocol (per-message
//     checksum + sequence numbers + bounded re-request); a worker that
//     stays unresponsive through the attempt budget is declared dead and
//     rank 0 re-executes its shards locally (catch-up replay of finished
//     trees plus the current tree's decision log -- pure recomputation,
//     so the result is unchanged).
//
// Because the shard merge is quantized-exact and the per-shard partition
// is stable (PR 4), the trained model -- structure, weights, gains,
// per-tree losses, predictions, and rank-0's StepTrace -- is bit-identical
// to gbdt::Trainer at every (transport, world size, shard count, thread
// count), including under every recoverable injected fault. That contract
// is EXPECT_EQ-asserted by tests/test_distributed.cc and
// tests/test_distributed_faults.cc.
#pragma once

#include <cstdint>

#include "gbdt/trainer.h"
#include "ipc/reliable.h"
#include "ipc/transport.h"
#include "ipc/world.h"

namespace booster::gbdt {

struct DistributedConfig {
  TrainerConfig trainer;
  /// Retry protocol knobs (per-attempt timeout, attempt budget, resend
  /// window).
  ipc::ReliableConfig channel;
  /// Re-execute a dead worker's shards on rank 0 (catch-up replay). When
  /// off, a dead worker aborts training loudly.
  bool adopt_dead_workers = true;
};

/// Post-train diagnostics of one rank's view of the run.
struct DistributedStats {
  std::uint32_t world_size = 1;
  std::uint32_t rank = 0;
  std::uint32_t shards_total = 0;
  std::uint32_t shards_local = 0;    // owned at start (rank's own range)
  std::uint32_t shards_adopted = 0;  // re-executed for dead workers (rank 0)
  std::uint32_t dead_workers = 0;
  ipc::ReliableStats channel;
  ipc::TransportStats transport;
};

class DistributedTrainer {
 public:
  /// `transport` is this rank's endpoint (borrowed; may outlive the
  /// trainer). nullptr runs a single-rank world with no communication --
  /// exactly ShardedTrainer's engine (and what ShardedTrainer delegates
  /// to).
  DistributedTrainer(DistributedConfig cfg, ipc::Transport* transport);

  const DistributedConfig& config() const { return cfg_; }
  std::uint32_t rank() const;
  std::uint32_t world_size() const;

  /// Trains the ensemble. All ranks must call train with the identical
  /// dataset and config, concurrently. Every rank returns the same model,
  /// tree stats, and early-stop flag; `trace`/`info` are filled from
  /// rank 0's driver loop (workers fill `info` and leave `trace` empty --
  /// the trace needs merge-side quantities only rank 0 has).
  /// TrainResult.hot_path.per_shard covers the shards this rank executed
  /// (all of them on rank 0 of a single-rank world).
  TrainResult train(const BinnedDataset& data,
                    trace::StepTrace* trace = nullptr,
                    trace::WorkloadInfo* info = nullptr);

  /// Diagnostics of the last train() call.
  const DistributedStats& stats() const { return stats_; }

 private:
  TrainResult train_rank0(const BinnedDataset& data, trace::StepTrace* trace,
                          trace::WorkloadInfo* info);
  TrainResult train_worker(const BinnedDataset& data,
                           trace::WorkloadInfo* info);

  DistributedConfig cfg_;
  ipc::Transport* transport_;
  DistributedStats stats_;
};

/// Runs a full `world`-sized training world in this process, one thread
/// per rank, and returns rank 0's result. `all_results` (optional)
/// receives the *worker* ranks' results (ranks 1..R-1, in rank order;
/// TrainResult is move-only, so rank 0's lives in the return value);
/// `all_stats` receives per-rank stats indexed by rank. The convenience
/// harness behind the equivalence tests, bench_distributed, the scenario
/// runner's runner.procs knob, and the multi_process example's loopback
/// mode.
TrainResult train_in_process(const DistributedConfig& cfg,
                             ipc::InProcessWorld& world,
                             const BinnedDataset& data,
                             trace::StepTrace* trace = nullptr,
                             trace::WorkloadInfo* info = nullptr,
                             std::vector<TrainResult>* all_results = nullptr,
                             std::vector<DistributedStats>* all_stats = nullptr);

}  // namespace booster::gbdt
