// The GB training loop (paper Table I, steps 1-6), instrumented to emit a
// StepTrace. The trainer is purely functional -- performance models never
// change its numerics -- and implements the optimizations the paper bakes
// into its software baseline:
//   * vertex-by-vertex growth to a maximum depth,
//   * smaller-child histogram construction with sibling subtraction,
//   * one-hot categorical handling via per-category bins,
//   * learned default directions for missing values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/loss.h"
#include "gbdt/split.h"
#include "gbdt/tree.h"
#include "trace/step_trace.h"

namespace booster::gbdt {

/// Tree-growth scheduling (paper SS II-A): vertex-by-vertex explores one
/// leaf at a time; level-by-level streams the input once per level and
/// histogram-bins the relevant records of every frontier vertex together
/// (one histogram per vertex). The resulting trees are identical; the
/// step-trace granularity differs, which matters for accelerator costing.
enum class GrowthOrder : std::uint8_t { kVertexByVertex, kLevelByLevel };

struct TrainerConfig {
  std::uint32_t num_trees = 500;
  std::uint32_t max_depth = 6;
  double learning_rate = 0.1;
  std::string loss = "squared";
  SplitConfig split;
  /// Nodes with fewer records than this become leaves.
  std::uint64_t min_node_records = 2;
  GrowthOrder growth = GrowthOrder::kVertexByVertex;
  /// Step 6 early stopping: stop adding trees once the relative per-tree
  /// loss improvement stays below this threshold for `early_stop_patience`
  /// consecutive trees. 0 disables (train exactly num_trees).
  double early_stop_rel_improvement = 0.0;
  std::uint32_t early_stop_patience = 3;
  /// Worker threads for the hot path (histogram build, partition, step-5
  /// traversal). 0 = auto: the BOOSTER_THREADS environment variable when
  /// set, otherwise the hardware concurrency. 1 forces the serial path.
  /// The partition is stable, counts are exact, and histogram accumulation
  /// is quantized-exact (gbdt::quantize_stat), so trained models --
  /// structure, weights, gains, and predictions -- are bit-identical
  /// across thread counts.
  std::uint32_t num_threads = 0;
  /// Contiguous row shards for sharded training (gbdt::ShardedTrainer in
  /// sharded.h). 0 or 1 runs the classic single-shard hot path; > 1 makes
  /// Trainer::train delegate to ShardedTrainer, which partitions records
  /// into num_shards contiguous ranges, builds per-shard histograms, and
  /// merges them with Histogram::add in fixed shard order. Output is
  /// bit-identical to the single-shard path at every shard count.
  std::uint32_t num_shards = 1;
  /// Warm start: continue boosting from this ensemble instead of from
  /// scratch. The base score and loss come from the init model (the
  /// config's `loss` must name the same loss), its trees are copied into
  /// the result, and gradients are re-seeded by replaying them through the
  /// same blocked step-5 traversal the training loop uses -- so a
  /// warm-started run is bit-identical across threads, shards, and SIMD
  /// levels exactly like a cold one. `num_trees` counts *additional* trees
  /// on top of the init model. Non-owning: the caller keeps the model
  /// alive through train().
  const Model* init_model = nullptr;
};

/// Per-tree training diagnostics.
struct TreeStats {
  std::uint32_t leaves = 0;
  std::uint32_t depth = 0;
  double train_loss = 0.0;  // mean loss after adding this tree
};

/// Per-shard slice of the hot-path diagnostics (sharded training only).
/// Each shard owns its row range, histogram pool, and ping-pong arenas, so
/// the steady-state allocation-free property holds *per shard*: every
/// shard's histogram_allocations goes flat once its pool is warm.
struct ShardHotPathStats {
  std::uint64_t rows = 0;  // records owned by this shard
  std::uint64_t histogram_allocations = 0;
  std::uint64_t histogram_acquires = 0;
  std::uint64_t arena_bytes = 0;
  /// Sub-chunks each of this shard's tasks (build, partition, traversal)
  /// was split into: ceil(threads / shards), so threads > shards no longer
  /// idles the surplus (1 = whole-shard tasks). Any chunking merges to the
  /// same bits -- see gbdt::quantize_stat.
  std::uint32_t sub_chunks = 1;
};

/// Allocation / threading diagnostics of one training run. The hot path is
/// allocation-free in steady state: node histograms come from a pool
/// (allocations counts the pool misses, which stop growing once the
/// deepest frontier has been seen) and record partitioning reorders one
/// persistent row-index arena in place instead of building per-node row
/// vectors.
struct HotPathStats {
  std::uint32_t threads = 1;
  /// Resolved SIMD dispatch level the run executed with ("scalar" / "avx2"
  /// / "avx512" -- util::simd::level_name of the active level). Provenance
  /// only: outputs are bit-identical across levels.
  const char* simd = "scalar";
  /// Row shards the run was partitioned into (1 = classic hot path).
  std::uint32_t shards = 1;
  /// Fresh histogram buffer constructions (pool misses) over the whole run,
  /// summed over every pool (merged-histogram pool + per-shard pools).
  std::uint64_t histogram_allocations = 0;
  /// Node histograms requested (root + one per smaller child + parallel
  /// partials). Grows with trees while histogram_allocations stays flat.
  std::uint64_t histogram_acquires = 0;
  /// Per-shard Histogram::add merges into node histograms (one per shard
  /// per merged node; 0 on the single-shard path). This is the operation
  /// whose operand crosses the transport in distributed training, so
  /// merges x encoded-histogram-bytes is the wire traffic of a run.
  std::uint64_t histogram_merges = 0;
  /// Intra-shard chunk-partial merges from sub-chunking (threads >
  /// shards); local reductions that never cross a transport.
  std::uint64_t chunk_merges = 0;
  /// Bytes of the persistent ping-pong row-index arenas (all shards).
  std::uint64_t arena_bytes = 0;
  /// Bytes of the dataset's redundant row-major bin matrix -- the memory
  /// the layout change trades for the single-pass histogram kernel.
  std::uint64_t row_major_matrix_bytes = 0;
  /// One entry per shard when sharded training ran; empty otherwise.
  std::vector<ShardHotPathStats> per_shard{};
};

struct TrainResult {
  Model model;
  std::vector<TreeStats> tree_stats{};
  double avg_leaf_depth = 0.0;  // mean realized leaf depth over all trees
  /// True when step-6 early stopping terminated the ensemble before
  /// num_trees (the model then holds fewer trees).
  bool early_stopped = false;
  HotPathStats hot_path{};
};

class Trainer {
 public:
  explicit Trainer(TrainerConfig cfg = {}) : cfg_(cfg) {}

  const TrainerConfig& config() const { return cfg_; }

  /// Trains an ensemble. If `trace` is non-null, step events are appended
  /// (the caller sets the trace's scale for sampled simulation). If `info`
  /// is non-null, workload metadata is filled in (nominal_records defaults
  /// to the binned dataset's record count; callers doing sampled simulation
  /// override it).
  TrainResult train(const BinnedDataset& data,
                    trace::StepTrace* trace = nullptr,
                    trace::WorkloadInfo* info = nullptr) const;

 private:
  TrainerConfig cfg_;
};

namespace detail {
/// Fills the workload metadata block shared by Trainer and ShardedTrainer
/// (field/bin shape, ensemble shape, realized leaf depth).
void fill_workload_info(const BinnedDataset& data, const TrainerConfig& cfg,
                        const TrainResult& result, trace::WorkloadInfo* info);
}  // namespace detail

}  // namespace booster::gbdt
