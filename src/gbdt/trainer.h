// The GB training loop (paper Table I, steps 1-6), instrumented to emit a
// StepTrace. The trainer is purely functional -- performance models never
// change its numerics -- and implements the optimizations the paper bakes
// into its software baseline:
//   * vertex-by-vertex growth to a maximum depth,
//   * smaller-child histogram construction with sibling subtraction,
//   * one-hot categorical handling via per-category bins,
//   * learned default directions for missing values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/loss.h"
#include "gbdt/split.h"
#include "gbdt/tree.h"
#include "trace/step_trace.h"

namespace booster::gbdt {

/// Tree-growth scheduling (paper SS II-A): vertex-by-vertex explores one
/// leaf at a time; level-by-level streams the input once per level and
/// histogram-bins the relevant records of every frontier vertex together
/// (one histogram per vertex). The resulting trees are identical; the
/// step-trace granularity differs, which matters for accelerator costing.
enum class GrowthOrder : std::uint8_t { kVertexByVertex, kLevelByLevel };

struct TrainerConfig {
  std::uint32_t num_trees = 500;
  std::uint32_t max_depth = 6;
  double learning_rate = 0.1;
  std::string loss = "squared";
  SplitConfig split;
  /// Nodes with fewer records than this become leaves.
  std::uint64_t min_node_records = 2;
  GrowthOrder growth = GrowthOrder::kVertexByVertex;
  /// Step 6 early stopping: stop adding trees once the relative per-tree
  /// loss improvement stays below this threshold for `early_stop_patience`
  /// consecutive trees. 0 disables (train exactly num_trees).
  double early_stop_rel_improvement = 0.0;
  std::uint32_t early_stop_patience = 3;
};

/// Per-tree training diagnostics.
struct TreeStats {
  std::uint32_t leaves = 0;
  std::uint32_t depth = 0;
  double train_loss = 0.0;  // mean loss after adding this tree
};

struct TrainResult {
  Model model;
  std::vector<TreeStats> tree_stats;
  double avg_leaf_depth = 0.0;  // mean realized leaf depth over all trees
  /// True when step-6 early stopping terminated the ensemble before
  /// num_trees (the model then holds fewer trees).
  bool early_stopped = false;
};

class Trainer {
 public:
  explicit Trainer(TrainerConfig cfg = {}) : cfg_(cfg) {}

  const TrainerConfig& config() const { return cfg_; }

  /// Trains an ensemble. If `trace` is non-null, step events are appended
  /// (the caller sets the trace's scale for sampled simulation). If `info`
  /// is non-null, workload metadata is filled in (nominal_records defaults
  /// to the binned dataset's record count; callers doing sampled simulation
  /// override it).
  TrainResult train(const BinnedDataset& data,
                    trace::StepTrace* trace = nullptr,
                    trace::WorkloadInfo* info = nullptr) const;

 private:
  TrainerConfig cfg_;
};

}  // namespace booster::gbdt
