// Gradient-statistics histograms (paper step 1). One histogram holds, for
// every field, a per-bin accumulator of {count, G, H}. Supports the two key
// optimizations the paper bakes into its baseline:
//   * one-hot "yes-only" counting: categorical bins are per-category; the
//     complement ("no") sums are reconstructed from the node totals;
//   * smaller-child subtraction: parent - child computed bin-wise.
//
// Storage is a single flat BinStats buffer with per-field offsets (not a
// vector of per-field vectors): one allocation per histogram, contiguous
// subtraction/reduction, and O(1) bin addressing as offsets[f] + bin. The
// hot build path is a single row-major pass over BinnedDataset's packed
// row-major bin matrix -- each record touches its F bin bytes contiguously
// instead of being gathered once per field.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/loss.h"
#include "util/check.h"

namespace booster::gbdt {

/// One histogram bin: record count plus summed gradient statistics.
struct BinStats {
  double count = 0.0;
  double g = 0.0;
  double h = 0.0;

  void add(const GradientPair& gp) {
    count += 1.0;
    g += gp.g;
    h += gp.h;
  }
  BinStats& operator+=(const BinStats& o) {
    count += o.count;
    g += o.g;
    h += o.h;
    return *this;
  }
  BinStats& operator-=(const BinStats& o) {
    count -= o.count;
    g -= o.g;
    h -= o.h;
    return *this;
  }

  /// Record count as an integer. Counts are exact in a double up to 2^53
  /// (each update adds 1.0; subtraction of integer-valued doubles is
  /// exact), so anything non-integral or negative is a logic error --
  /// checked here instead of silently narrowed at the call sites.
  std::uint64_t count_u64() const {
    BOOSTER_CHECK_MSG(count >= 0.0 && count <= 9007199254740992.0 &&
                          count == std::floor(count),
                      "BinStats.count is not an exact non-negative integer");
    return static_cast<std::uint64_t>(count);
  }
};

/// Histogram over all fields of a binned dataset for one tree node.
class Histogram {
 public:
  Histogram() = default;

  /// Allocates zeroed bins shaped like `data`'s fields.
  explicit Histogram(const BinnedDataset& data);

  /// Accumulates the gradient statistics of the records in `rows` with one
  /// row-major pass: per record, the F bin indices are read contiguously
  /// from the dataset's packed row-major matrix. This is the exact work
  /// step 1 performs (one bin update per field per record), in the memory
  /// order the paper's row-major layout prescribes.
  void build(const BinnedDataset& data, std::span<const std::uint32_t> rows,
             std::span<const GradientPair> gradients);

  /// The seed's column-major gather kernel: one full pass over `rows` per
  /// field, reading the per-field columns. Numerically it accumulates in a
  /// different order than build(); counts are identical and G/H agree to
  /// rounding. Kept as the scalar reference for equivalence tests and as
  /// the baseline leg of bench_train_hotpath.
  void build_reference(const BinnedDataset& data,
                       std::span<const std::uint32_t> rows,
                       std::span<const GradientPair> gradients);

  /// Sets *this = parent - sibling (the smaller-child trick, paper §II-A).
  void subtract_from(const Histogram& parent, const Histogram& sibling);

  /// In-place smaller-child subtraction: *this -= sibling. Lets the parent
  /// histogram's buffer be reused as the larger child's without a copy.
  void subtract(const Histogram& sibling);

  /// Bin-wise accumulation: *this += other. The reduction step of the
  /// parallel build (per-thread partial histograms summed in chunk order).
  void add(const Histogram& other);

  void clear();

  std::uint32_t num_fields() const {
    return offsets_.empty()
               ? 0
               : static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  std::span<const BinStats> field(std::uint32_t f) const {
    return {bins_.data() + offsets_[f], offsets_[f + 1] - offsets_[f]};
  }
  std::span<BinStats> mutable_field(std::uint32_t f) {
    return {bins_.data() + offsets_[f], offsets_[f + 1] - offsets_[f]};
  }

  bool same_shape(const Histogram& o) const { return offsets_ == o.offsets_; }

  /// Node totals (count/G/H over all records), taken from field 0 -- every
  /// record contributes exactly one bin per field, so any field's bin sum
  /// equals the node totals. This invariant is property-tested.
  BinStats totals() const;

  std::uint64_t total_bins() const { return bins_.size(); }

 private:
  /// Flat per-bin stats; field f occupies [offsets_[f], offsets_[f+1]).
  std::vector<BinStats> bins_;
  /// Field start offsets into bins_, plus a final total-bins sentinel
  /// (size num_fields + 1; empty for a default-constructed histogram).
  std::vector<std::uint32_t> offsets_;
};

/// Recycles node histograms across the tree frontier and across trees so
/// steady-state training performs zero histogram allocations: acquire()
/// pops a cleared buffer from the free list (allocating only when the list
/// is empty -- counted), release() returns a buffer for reuse.
class HistogramPool {
 public:
  HistogramPool() = default;
  explicit HistogramPool(const BinnedDataset& data) { configure(data); }

  /// Sets the shape histograms are created with; drops pooled buffers of
  /// any previous shape.
  void configure(const BinnedDataset& data);

  /// A cleared histogram of the configured shape.
  Histogram acquire();

  /// Returns a histogram's buffer to the free list. Shape must match.
  void release(Histogram&& h);

  /// Fresh buffer constructions (pool misses). Flat after warm-up: the
  /// steady-state-allocation-free property is asserted on this counter.
  std::uint64_t allocations() const { return allocations_; }
  /// Total acquire() calls (one per node histogram ever requested).
  std::uint64_t acquires() const { return acquires_; }
  std::size_t available() const { return free_.size(); }

 private:
  Histogram proto_;  // zeroed template of the configured shape
  std::vector<Histogram> free_;
  std::uint64_t allocations_ = 0;
  std::uint64_t acquires_ = 0;
};

}  // namespace booster::gbdt
