// Gradient-statistics histograms (paper step 1). One histogram holds, for
// every field, a per-bin accumulator of {count, G, H}. Supports the two key
// optimizations the paper bakes into its baseline:
//   * one-hot "yes-only" counting: categorical bins are per-category; the
//     complement ("no") sums are reconstructed from the node totals;
//   * smaller-child subtraction: parent - child computed bin-wise.
//
// Storage is a single flat BinStats buffer with per-field offsets (not a
// vector of per-field vectors): one allocation per histogram, contiguous
// subtraction/reduction, and O(1) bin addressing as offsets[f] + bin. The
// hot build path is a single row-major pass over BinnedDataset's packed
// row-major bin matrix -- each record touches its F bin bytes contiguously
// instead of being gathered once per field.
//
// Accumulation is *exactly* order-insensitive: every gradient contribution
// is snapped to a fixed power-of-two quantum before it enters a bin (see
// quantize_stat), so bin values are always integer multiples of the quantum
// and IEEE addition/subtraction of them is exact -- associative and
// commutative, like the integer counts. Chunked parallel builds, sibling
// subtraction, and per-shard histogram merges (Histogram::add in
// gbdt::ShardedTrainer) therefore produce bit-identical bins for *any*
// chunking, shard split, and merge order. Distributed-histogram GBDT only
// works if the merge operator has exactly this property.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/loss.h"
#include "util/aligned.h"
#include "util/check.h"

namespace booster::gbdt {

/// Gradient-statistic quantum: every per-record g/h contribution is rounded
/// to the nearest multiple of 2^-24 before accumulation. Multiples of a
/// power-of-two quantum are closed under IEEE +/- while the running sum
/// stays below 2^53 * quantum = 2^29 in magnitude (kStatSumCapacity), and
/// within that range every such addition is *exact* -- so histogram sums
/// are independent of accumulation order, bit for bit. The rounding error
/// per record is <= 2^-25 (~3e-8), far below the fp32 gradient noise.
///
/// The capacity bound is *enforced*, not just documented: totals() aborts
/// when a node's |G| or H leaves the exact range (H is a sum of
/// non-negative h, so the node total bounds every bin and every prefix sum
/// of h; G can cancel across bins, so its check is necessary-but-not-
/// sufficient -- a workload that trips either check needs gradient
/// normalization or a larger quantum, not silent last-ULP divergence).
/// At 2^29 capacity even the 50M-record nominal workloads keep an order
/// of magnitude of headroom for |g| <= 1-style losses.
inline constexpr double kStatQuantum = 5.9604644775390625e-08;   // 2^-24
inline constexpr double kStatInvQuantum = 16777216.0;            // 2^24
inline constexpr double kStatSumCapacity = 536870912.0;          // 2^29

/// Snaps a gradient statistic (or any accumulated metric term, e.g. the
/// per-record training loss) to the quantum grid. Idempotent: a quantized
/// value round-trips unchanged, so double-quantizing is harmless. Uses the
/// default round-to-nearest mode; deterministic across call sites.
inline double quantize_stat(double x) {
  return std::nearbyint(x * kStatInvQuantum) * kStatQuantum;
}

/// One histogram bin: record count plus summed gradient statistics. The
/// g/h fields only ever hold multiples of kStatQuantum (see above), which
/// is what makes every merge/subtract below exact.
struct BinStats {
  double count = 0.0;
  double g = 0.0;
  double h = 0.0;

  /// Accumulates a pair whose statistics are already on the quantum grid
  /// (the hot build loop quantizes once per record, not once per field).
  void add_quantized(double qg, double qh) {
    count += 1.0;
    g += qg;
    h += qh;
  }

  void add(const GradientPair& gp) {
    add_quantized(quantize_stat(gp.g), quantize_stat(gp.h));
  }
  BinStats& operator+=(const BinStats& o) {
    count += o.count;
    g += o.g;
    h += o.h;
    return *this;
  }
  BinStats& operator-=(const BinStats& o) {
    count -= o.count;
    g -= o.g;
    h -= o.h;
    return *this;
  }

  /// Record count as an integer. Counts are exact in a double up to 2^53
  /// (each update adds 1.0; subtraction of integer-valued doubles is
  /// exact), so anything non-integral or negative is a logic error --
  /// checked here instead of silently narrowed at the call sites.
  std::uint64_t count_u64() const {
    BOOSTER_CHECK_MSG(count >= 0.0 && count <= 9007199254740992.0 &&
                          count == std::floor(count),
                      "BinStats.count is not an exact non-negative integer");
    return static_cast<std::uint64_t>(count);
  }
};

/// Histogram over all fields of a binned dataset for one tree node.
class Histogram {
 public:
  Histogram() = default;

  /// Allocates zeroed bins shaped like `data`'s fields.
  explicit Histogram(const BinnedDataset& data);

  /// Allocates zeroed bins with an explicit per-field bin count -- the
  /// shape-only constructor ipc::HistogramCodec decodes into (the wire
  /// carries the shape, not the dataset).
  explicit Histogram(std::span<const std::uint32_t> bins_per_field);

  /// Accumulates the gradient statistics of the records in `rows` with one
  /// row-major pass: per record, the F bin indices are read contiguously
  /// from the dataset's packed row-major matrix. This is the exact work
  /// step 1 performs (one bin update per field per record), in the memory
  /// order the paper's row-major layout prescribes.
  void build(const BinnedDataset& data, std::span<const std::uint32_t> rows,
             std::span<const GradientPair> gradients);

  /// The seed's column-major gather kernel: one full pass over `rows` per
  /// field, reading the per-field columns. It accumulates in a different
  /// order than build(), but quantized accumulation is exact, so the two
  /// kernels produce bit-identical bins. Kept as the scalar reference for
  /// equivalence tests and as the baseline leg of bench_train_hotpath.
  void build_reference(const BinnedDataset& data,
                       std::span<const std::uint32_t> rows,
                       std::span<const GradientPair> gradients);

  /// Sets *this = parent - sibling (the smaller-child trick, paper §II-A).
  void subtract_from(const Histogram& parent, const Histogram& sibling);

  /// In-place smaller-child subtraction: *this -= sibling. Lets the parent
  /// histogram's buffer be reused as the larger child's without a copy.
  void subtract(const Histogram& sibling);

  /// Bin-wise accumulation: *this += other. The reduction step of the
  /// parallel build (per-thread partial histograms summed in chunk order)
  /// and the per-shard merge operator of gbdt::ShardedTrainer. Exact and
  /// order-insensitive: bins hold quantum multiples (see quantize_stat).
  void add(const Histogram& other);

  void clear();

  std::uint32_t num_fields() const {
    return offsets_.empty()
               ? 0
               : static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  std::span<const BinStats> field(std::uint32_t f) const {
    return {bins_.data() + offsets_[f], offsets_[f + 1] - offsets_[f]};
  }
  std::span<BinStats> mutable_field(std::uint32_t f) {
    return {bins_.data() + offsets_[f], offsets_[f + 1] - offsets_[f]};
  }

  bool same_shape(const Histogram& o) const { return offsets_ == o.offsets_; }

  /// Node totals (count/G/H over all records), taken from field 0 -- every
  /// record contributes exactly one bin per field, so any field's bin sum
  /// equals the node totals. This invariant is property-tested.
  BinStats totals() const;

  std::uint64_t total_bins() const { return bins_.size(); }

  /// True when the flat buffer starts on an `alignment`-byte boundary.
  /// The 64-byte-aligned allocator below guarantees this for every
  /// histogram; HistogramPool::acquire asserts it so the SIMD kernels'
  /// aligned-start assumption can never silently rot.
  bool aligned_to(std::size_t alignment) const {
    return reinterpret_cast<std::uintptr_t>(bins_.data()) % alignment == 0;
  }

  /// 64-byte-aligned flat buffer: the SIMD add/subtract/clear kernels
  /// stream bins_ as one contiguous double array, and a cacheline-aligned
  /// start keeps the widest (AVX-512) accesses from straddling lines.
  using Buffer = std::vector<BinStats, util::AlignedAllocator<BinStats, 64>>;

 private:
  /// Flat per-bin stats; field f occupies [offsets_[f], offsets_[f+1]).
  Buffer bins_;
  /// Field start offsets into bins_, plus a final total-bins sentinel
  /// (size num_fields + 1; empty for a default-constructed histogram).
  std::vector<std::uint32_t> offsets_;
};

/// Recycles node histograms across the tree frontier and across trees so
/// steady-state training performs zero histogram allocations: acquire()
/// pops a cleared buffer from the free list (allocating only when the list
/// is empty -- counted), release() returns a buffer for reuse.
class HistogramPool {
 public:
  HistogramPool() = default;
  explicit HistogramPool(const BinnedDataset& data) { configure(data); }

  /// Sets the shape histograms are created with; drops pooled buffers of
  /// any previous shape.
  void configure(const BinnedDataset& data);

  /// A cleared histogram of the configured shape.
  Histogram acquire();

  /// Returns a histogram's buffer to the free list. Shape must match.
  void release(Histogram&& h);

  /// Fresh buffer constructions (pool misses). Flat after warm-up: the
  /// steady-state-allocation-free property is asserted on this counter.
  std::uint64_t allocations() const { return allocations_; }
  /// Total acquire() calls (one per node histogram ever requested).
  std::uint64_t acquires() const { return acquires_; }
  std::size_t available() const { return free_.size(); }

 private:
  Histogram proto_;  // zeroed template of the configured shape
  std::vector<Histogram> free_;
  std::uint64_t allocations_ = 0;
  std::uint64_t acquires_ = 0;
};

}  // namespace booster::gbdt
