// Gradient-statistics histograms (paper step 1). One histogram holds, for
// every field, a per-bin accumulator of {count, G, H}. Supports the two key
// optimizations the paper bakes into its baseline:
//   * one-hot "yes-only" counting: categorical bins are per-category; the
//     complement ("no") sums are reconstructed from the node totals;
//   * smaller-child subtraction: parent - child computed bin-wise.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/loss.h"

namespace booster::gbdt {

/// One histogram bin: record count plus summed gradient statistics.
struct BinStats {
  double count = 0.0;
  double g = 0.0;
  double h = 0.0;

  void add(const GradientPair& gp) {
    count += 1.0;
    g += gp.g;
    h += gp.h;
  }
  BinStats& operator+=(const BinStats& o) {
    count += o.count;
    g += o.g;
    h += o.h;
    return *this;
  }
  BinStats& operator-=(const BinStats& o) {
    count -= o.count;
    g -= o.g;
    h -= o.h;
    return *this;
  }
};

/// Histogram over all fields of a binned dataset for one tree node.
class Histogram {
 public:
  Histogram() = default;

  /// Allocates zeroed bins shaped like `data`'s fields.
  explicit Histogram(const BinnedDataset& data);

  /// Accumulates the gradient statistics of the records in `rows`.
  /// This is the exact work step 1 performs: for each record, one bin
  /// update per field.
  void build(const BinnedDataset& data, std::span<const std::uint32_t> rows,
             std::span<const GradientPair> gradients);

  /// Sets *this = parent - sibling (the smaller-child trick, paper §II-A).
  void subtract_from(const Histogram& parent, const Histogram& sibling);

  void clear();

  std::uint32_t num_fields() const {
    return static_cast<std::uint32_t>(fields_.size());
  }
  std::span<const BinStats> field(std::uint32_t f) const { return fields_[f]; }
  std::span<BinStats> mutable_field(std::uint32_t f) { return fields_[f]; }

  /// Node totals (count/G/H over all records), taken from field 0 -- every
  /// record contributes exactly one bin per field, so any field's bin sum
  /// equals the node totals. This invariant is property-tested.
  BinStats totals() const;

  std::uint64_t total_bins() const;

 private:
  std::vector<std::vector<BinStats>> fields_;
};

}  // namespace booster::gbdt
