#include "gbdt/binning.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "util/check.h"
#include "util/rng.h"

namespace booster::gbdt {

std::uint64_t BinnedDataset::total_bins() const {
  std::uint64_t total = 0;
  for (const auto& f : fields_) total += f.num_bins;
  return total;
}

std::uint32_t BinnedDataset::max_bins_per_field() const {
  std::uint32_t m = 0;
  for (const auto& f : fields_) m = std::max(m, f.num_bins);
  return m;
}

void BinnedDataset::ensure_row_major() const {
  // Double-checked: after the first build this is one acquire load, so the
  // per-histogram-build calls in the hot loop never touch the mutex. The
  // mutex (function-local, shared by all instances) only serializes
  // concurrent *first* calls, e.g. two threads each running Trainer::train
  // on one shared dataset.
  if (row_major_built_.load(std::memory_order_acquire)) return;
  static std::mutex mutex;
  const std::scoped_lock lock(mutex);
  if (row_major_built_.load(std::memory_order_relaxed)) return;
  const std::uint32_t num_fields = this->num_fields();
  row_major_.resize(num_records_ * num_fields);
  for (std::uint32_t f = 0; f < num_fields; ++f) {
    const auto& col = columns_[f];
    for (std::uint64_t r = 0; r < num_records_; ++r) {
      row_major_[r * num_fields + f] = col[r];
    }
  }
  row_major_built_.store(true, std::memory_order_release);
}

namespace {

/// Computes up to `max_bins` quantile upper boundaries from the non-missing
/// values of a numeric column sample.
std::vector<float> quantile_bounds(std::vector<float> sample,
                                   std::uint32_t max_bins) {
  std::sort(sample.begin(), sample.end());
  sample.erase(std::unique(sample.begin(), sample.end()), sample.end());
  std::vector<float> bounds;
  if (sample.empty()) return bounds;
  const std::size_t distinct = sample.size();
  const std::uint32_t bins =
      static_cast<std::uint32_t>(std::min<std::size_t>(max_bins, distinct));
  bounds.reserve(bins);
  for (std::uint32_t b = 1; b <= bins; ++b) {
    // Upper boundary of bin b: the (b/bins)-quantile of distinct values.
    const std::size_t idx =
        std::min(distinct - 1,
                 static_cast<std::size_t>(
                     std::ceil(static_cast<double>(b) * distinct / bins)) -
                     1);
    bounds.push_back(sample[idx]);
  }
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  return bounds;
}

/// Returns the 1-based value-bin index for v given sorted upper bounds:
/// the first bin whose upper boundary is >= v (clamped to the last bin).
BinIndex numeric_bin(float v, const std::vector<float>& bounds) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds.begin());
  const auto clamped = std::min(idx, bounds.size() - 1);
  return static_cast<BinIndex>(clamped + 1);  // +1: bin 0 is missing
}

}  // namespace

BinIndex numeric_value_bin(float v, const FieldBins& fb) {
  if (std::isnan(v) || fb.upper_bounds.empty()) return BinIndex{0};
  return numeric_bin(v, fb.upper_bounds);
}

BinIndex categorical_value_bin(std::int32_t v, const FieldBins& fb) {
  if (v < 0 || v + 1 >= static_cast<std::int32_t>(fb.num_bins)) {
    return BinIndex{0};  // missing or unseen category: the "absent" bin
  }
  return static_cast<BinIndex>(v + 1);
}

BinnedDataset Binner::bin(const Dataset& data) const {
  BinnedDataset out;
  const std::uint64_t n = data.num_records();
  out.num_records_ = n;
  out.labels_ = data.labels();
  out.fields_.resize(data.num_fields());
  out.columns_.resize(data.num_fields());

  // Deterministic record indices for the quantile sketch: every record when
  // the dataset fits the sample budget (sampling with replacement would
  // miss values on small data), a random sample otherwise.
  util::Rng rng(0x5EEDB1A5ULL);
  const std::uint64_t sample_n = std::min<std::uint64_t>(cfg_.quantile_sample, n);
  std::vector<std::uint64_t> sample_idx(sample_n);
  if (sample_n == n) {
    for (std::uint64_t i = 0; i < n; ++i) sample_idx[i] = i;
  } else {
    for (auto& idx : sample_idx) idx = rng.next_below(n == 0 ? 1 : n);
  }

  std::vector<std::uint32_t> features_per_field(data.num_fields());

  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    const FieldSchema& schema = data.field(f);
    FieldBins& fb = out.fields_[f];
    fb.kind = schema.kind;
    auto& col = out.columns_[f];
    col.resize(n);

    if (schema.kind == FieldKind::kNumeric) {
      std::vector<float> sample;
      sample.reserve(sample_n);
      for (std::uint64_t idx : sample_idx) {
        const float v = data.numeric_value(f, idx);
        if (!std::isnan(v)) sample.push_back(v);
      }
      fb.upper_bounds = quantile_bounds(std::move(sample), cfg_.max_numeric_bins);
      const std::uint32_t value_bins =
          std::max<std::uint32_t>(1, static_cast<std::uint32_t>(fb.upper_bounds.size()));
      fb.num_bins = value_bins + 1;  // + missing bin
      for (std::uint64_t r = 0; r < n; ++r) {
        col[r] = numeric_value_bin(data.numeric_value(f, r), fb);
      }
      features_per_field[f] = fb.num_bins;
    } else {
      fb.num_bins = schema.cardinality + 1;  // + absent bin
      for (std::uint64_t r = 0; r < n; ++r) {
        const std::int32_t v = data.categorical_value(f, r);
        BOOSTER_DCHECK(v == kMissingCategory ||
                       v < static_cast<std::int32_t>(schema.cardinality));
        col[r] = categorical_value_bin(v, fb);
      }
      features_per_field[f] = fb.num_bins;
    }
  }

  out.layout_ = RecordLayout::from_field_features(features_per_field);
  return out;
}

}  // namespace booster::gbdt
