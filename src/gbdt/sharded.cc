#include "gbdt/sharded.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "gbdt/hotpath.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace booster::gbdt {

namespace {

using trace::StepEvent;
using trace::StepKind;
using trace::StepTrace;

void emit(StepTrace* trace, StepEvent e) {
  if (trace != nullptr) trace->add(e);
}

/// One contiguous row shard. Everything here is owned exclusively by the
/// shard's task during fan-outs (per-shard pools and arenas are never
/// touched cross-shard), so no synchronization is needed beyond the pool's
/// own fork/join barrier.
struct Shard {
  std::uint64_t row_begin = 0;
  std::uint64_t row_end = 0;
  /// Shard-private pool for the shard's partial node histograms.
  HistogramPool pool;
  /// Two ping-pong arenas of the shard's global row indices, sized to the
  /// shard's row count; node spans index into these with shard-local
  /// offsets. Same parity discipline as the single-shard trainer: depth-d
  /// spans live in arena d mod 2.
  std::vector<std::uint32_t> bufs[2];
  /// Per-node scratch, written only by this shard's task.
  Histogram hist;            // shard partial of the current node
  std::uint64_t n_left = 0;  // shard-local left count of the last partition
  double sum = 0.0;          // shard reduction term (hops / quantized loss)

  std::uint64_t num_rows() const { return row_end - row_begin; }
};

/// Recycled storage for per-(node, shard) arena spans: slot `i` holds K
/// begin/end pairs at [i * K, (i + 1) * K). acquire() reuses released
/// slots and grows only while the live frontier widens, so steady-state
/// training allocates no per-node span storage -- the span analogue of
/// HistogramPool's allocation-free property.
class SpanPool {
 public:
  explicit SpanPool(std::uint32_t shards) : shards_(shards) {}

  std::uint32_t acquire() {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    const std::uint32_t slot =
        static_cast<std::uint32_t>(begin_.size() / shards_);
    begin_.resize(begin_.size() + shards_);
    end_.resize(end_.size() + shards_);
    return slot;
  }
  void release(std::uint32_t slot) { free_.push_back(slot); }

  std::uint64_t& begin(std::uint32_t slot, std::uint32_t s) {
    return begin_[static_cast<std::size_t>(slot) * shards_ + s];
  }
  std::uint64_t& end(std::uint32_t slot, std::uint32_t s) {
    return end_[static_cast<std::size_t>(slot) * shards_ + s];
  }

 private:
  std::uint32_t shards_;
  std::vector<std::uint64_t> begin_;
  std::vector<std::uint64_t> end_;
  std::vector<std::uint32_t> free_;
};

/// One frontier node during sharded tree growth: its rows are the union of
/// K shard-local arena spans (SpanPool slot), all in the same arena parity.
struct FrontierNode {
  std::int32_t tree_node = 0;
  std::int32_t depth = 0;
  std::uint32_t slot = 0;  // SpanPool slot holding the K shard spans
  std::uint64_t rows = 0;  // total rows across shards
  std::uint8_t buf = 0;
  Histogram hist;  // merged histogram (from the trainer's merged pool)
  BinStats totals;
};

}  // namespace

TrainResult ShardedTrainer::train(const BinnedDataset& data, StepTrace* trace,
                                  trace::WorkloadInfo* info) const {
  const std::uint64_t n = data.num_records();
  BOOSTER_CHECK_MSG(n > 0, "cannot train on an empty dataset");
  auto loss = make_loss(cfg_.loss);
  const std::uint32_t num_fields = data.num_fields();
  // Empty shards would be harmless but pointless; clamp to the row count.
  const std::uint32_t num_shards = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(std::max(1u, cfg_.num_shards), n));

  util::ThreadPool pool(cfg_.num_threads);
  // Shard tasks only ever read the row-major view; materialize it before
  // the first fan-out.
  data.ensure_row_major();

  std::vector<Shard> shards(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    const auto [begin, end] = shard_row_range(n, num_shards, s);
    shards[s].row_begin = begin;
    shards[s].row_end = end;
    shards[s].pool.configure(data);
    shards[s].bufs[0].resize(end - begin);
    shards[s].bufs[1].resize(end - begin);
  }
  /// Merged per-node histograms live in their own pool (the sharded
  /// analogue of the single-shard trainer's one pool).
  HistogramPool merged_pool(data);
  SpanPool spans(num_shards);
  std::uint64_t histogram_merges = 0;

  // Base score from the label mean: same serial pass as Trainer (one pass
  // per train call; keeping the code identical keeps the result identical).
  double label_mean = 0.0;
  for (float y : data.labels()) label_mean += y;
  label_mean /= static_cast<double>(n);
  const double base_score = loss->base_score(label_mean);

  std::vector<float> preds(n, static_cast<float>(base_score));
  std::vector<GradientPair> gradients(n);
  pool.run_tasks(num_shards, [&](unsigned s) {
    const Shard& sh = shards[s];
    for (std::uint64_t r = sh.row_begin; r < sh.row_end; ++r) {
      gradients[r] = loss->gradients(preds[r], data.labels()[r]);
    }
  });

  // Per-shard build of one node's spans, merged with Histogram::add in
  // fixed shard order. Quantized accumulation makes the result bit-equal
  // to a single pass over the concatenated spans -- the property the whole
  // subsystem rests on (see histogram.h).
  const auto build_merged = [&](const FrontierNode& node) {
    pool.run_tasks(num_shards, [&](unsigned s) {
      Shard& sh = shards[s];
      const std::uint64_t begin = spans.begin(node.slot, s);
      const std::uint64_t end = spans.end(node.slot, s);
      sh.hist = sh.pool.acquire();
      sh.hist.build(data,
                    std::span<const std::uint32_t>(
                        sh.bufs[node.buf].data() + begin, end - begin),
                    gradients);
    });
    Histogram merged = merged_pool.acquire();
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      merged.add(shards[s].hist);
      shards[s].pool.release(std::move(shards[s].hist));
    }
    histogram_merges += num_shards;
    return merged;
  };

  const SplitFinder finder(cfg_.split);
  TrainResult result{.model = Model(base_score, make_loss(cfg_.loss))};

  double leaf_depth_sum = 0.0;
  std::uint64_t leaf_count = 0;
  double prev_loss = std::numeric_limits<double>::infinity();
  std::uint32_t stagnant_trees = 0;

  for (std::uint32_t t = 0; t < cfg_.num_trees; ++t) {
    Tree tree;
    std::deque<FrontierNode> frontier;
    std::vector<std::uint64_t> level_hist_records;
    std::vector<std::uint32_t> level_hist_nodes;

    // Reset every shard's arena 0 to its ascending row range. The shard
    // partition below is stable, so every shard span stays ascending, and
    // concatenating spans in shard order reproduces the single-arena order
    // of the unsharded trainer.
    pool.run_tasks(num_shards, [&](unsigned s) {
      Shard& sh = shards[s];
      for (std::uint64_t i = 0; i < sh.num_rows(); ++i) {
        sh.bufs[0][i] = static_cast<std::uint32_t>(sh.row_begin + i);
      }
    });

    // Root: every shard bins its whole range (step 1 at the root covers
    // the full dataset), merged in shard order.
    {
      FrontierNode root;
      root.tree_node = tree.root();
      root.depth = 0;
      root.rows = n;
      root.buf = 0;
      root.slot = spans.acquire();
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        spans.begin(root.slot, s) = 0;
        spans.end(root.slot, s) = shards[s].num_rows();
      }
      root.hist = build_merged(root);
      root.totals = root.hist.totals();
      emit(trace, StepEvent{.kind = StepKind::kHistogram,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = 0,
                            .records = n,
                            .fields_touched = num_fields,
                            .record_fields = num_fields});
      frontier.push_back(std::move(root));
    }

    while (!frontier.empty()) {
      FrontierNode node = std::move(frontier.front());
      frontier.pop_front();

      auto make_leaf = [&](const BinStats& totals) {
        tree.set_leaf_weight(node.tree_node,
                             cfg_.learning_rate *
                                 leaf_weight(totals, cfg_.split.lambda));
        leaf_depth_sum += node.depth;
        ++leaf_count;
        merged_pool.release(std::move(node.hist));
        spans.release(node.slot);
      };

      if (node.depth >= static_cast<std::int32_t>(cfg_.max_depth) ||
          node.rows < cfg_.min_node_records) {
        make_leaf(node.totals);
        continue;
      }

      // Step 2 on the merged histogram (threaded scan; serial-identical).
      std::uint64_t bins_scanned = 0;
      const auto split =
          finder.find_best(node.hist, data, &pool, &bins_scanned);
      emit(trace, StepEvent{.kind = StepKind::kSplitSelect,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = node.depth,
                            .bins_scanned = bins_scanned});
      if (!split) {
        make_leaf(node.totals);
        continue;
      }

      // Step 3: every shard partitions its span into its opposite arena.
      // Stable within each shard; the shard-local left count pins the
      // boundary (count pass first -- the shard cannot know its own split
      // of the global n_left up front).
      const std::uint64_t n_left = split->left.count_u64();
      BOOSTER_CHECK_MSG(n_left > 0 && n_left < node.rows,
                        "split produced an empty child");
      const std::uint8_t child_buf = node.buf ^ 1;
      pool.run_tasks(num_shards, [&](unsigned s) {
        Shard& sh = shards[s];
        const std::uint64_t begin = spans.begin(node.slot, s);
        const std::uint64_t end = spans.end(node.slot, s);
        const auto& col = data.column(split->field);
        const std::vector<std::uint32_t>& src = sh.bufs[node.buf];
        std::vector<std::uint32_t>& dst = sh.bufs[child_buf];
        std::uint64_t shard_left = 0;
        for (std::uint64_t i = begin; i < end; ++i) {
          shard_left += split_goes_left(*split, col[src[i]]);
        }
        std::uint64_t left_w = begin;
        std::uint64_t right_w = begin + shard_left;
        for (std::uint64_t i = begin; i < end; ++i) {
          const std::uint32_t row = src[i];
          if (split_goes_left(*split, col[row])) {
            dst[left_w++] = row;
          } else {
            dst[right_w++] = row;
          }
        }
        BOOSTER_CHECK_MSG(left_w == begin + shard_left && right_w == end,
                          "shard partition disagrees with its count pass");
        sh.n_left = shard_left;
      });
      std::uint64_t left_total = 0;
      for (const Shard& sh : shards) left_total += sh.n_left;
      BOOSTER_CHECK_MSG(
          left_total == n_left,
          "sharded partition disagrees with the split's bucket counts");
      emit(trace, StepEvent{.kind = StepKind::kPartition,
                            .tree = static_cast<std::int32_t>(t),
                            .depth = node.depth,
                            .records = node.rows,
                            .fields_touched = 1,
                            .record_fields = num_fields});
      const std::uint64_t n_right = node.rows - n_left;

      const auto [left_id, right_id] = tree.split_leaf(node.tree_node, *split);

      const std::int32_t child_depth = node.depth + 1;
      const bool children_may_split =
          child_depth < static_cast<std::int32_t>(cfg_.max_depth);

      if (!children_may_split) {
        tree.set_leaf_weight(left_id, cfg_.learning_rate *
                                          leaf_weight(split->left,
                                                      cfg_.split.lambda));
        tree.set_leaf_weight(right_id, cfg_.learning_rate *
                                           leaf_weight(split->right,
                                                       cfg_.split.lambda));
        leaf_depth_sum += 2.0 * child_depth;
        leaf_count += 2;
        merged_pool.release(std::move(node.hist));
        spans.release(node.slot);
        continue;
      }

      // Step 1 at the children: bin only the smaller child per shard; the
      // larger child is parent - smaller on the merged buffers (exact).
      const bool left_smaller = n_left <= n_right;
      FrontierNode small;
      FrontierNode large;
      small.tree_node = left_smaller ? left_id : right_id;
      large.tree_node = left_smaller ? right_id : left_id;
      small.depth = large.depth = child_depth;
      small.buf = large.buf = child_buf;
      small.rows = left_smaller ? n_left : n_right;
      large.rows = left_smaller ? n_right : n_left;
      small.slot = spans.acquire();
      large.slot = spans.acquire();
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        const std::uint64_t begin = spans.begin(node.slot, s);
        const std::uint64_t end = spans.end(node.slot, s);
        const std::uint64_t mid = begin + shards[s].n_left;
        spans.begin(small.slot, s) = left_smaller ? begin : mid;
        spans.end(small.slot, s) = left_smaller ? mid : end;
        spans.begin(large.slot, s) = left_smaller ? mid : begin;
        spans.end(large.slot, s) = left_smaller ? end : mid;
      }
      spans.release(node.slot);

      small.hist = build_merged(small);
      small.totals = small.hist.totals();
      if (cfg_.growth == GrowthOrder::kVertexByVertex) {
        emit(trace, StepEvent{.kind = StepKind::kHistogram,
                              .tree = static_cast<std::int32_t>(t),
                              .depth = child_depth,
                              .records = small.rows,
                              .fields_touched = num_fields,
                              .record_fields = num_fields,
                              .used_sibling_subtraction = true});
      } else {
        if (level_hist_records.size() <=
            static_cast<std::size_t>(child_depth)) {
          level_hist_records.resize(child_depth + 1, 0);
          level_hist_nodes.resize(child_depth + 1, 0);
        }
        level_hist_records[child_depth] += small.rows;
        ++level_hist_nodes[child_depth];
      }

      large.hist = std::move(node.hist);
      large.hist.subtract(small.hist);
      large.totals = large.hist.totals();

      frontier.push_back(std::move(small));
      frontier.push_back(std::move(large));
    }

    if (cfg_.growth == GrowthOrder::kLevelByLevel) {
      for (std::size_t depth = 0; depth < level_hist_records.size(); ++depth) {
        if (level_hist_records[depth] == 0) continue;
        emit(trace, StepEvent{.kind = StepKind::kHistogram,
                              .tree = static_cast<std::int32_t>(t),
                              .depth = static_cast<std::int32_t>(depth),
                              .records = level_hist_records[depth],
                              .fields_touched = num_fields,
                              .record_fields = num_fields,
                              .histograms = level_hist_nodes[depth],
                              .used_sibling_subtraction = true});
      }
    }

    // Step 5: every shard passes its own records through the finished tree
    // and refreshes gradients. Per-shard hop sums are integer-valued, so
    // the shard-order reduction is exact at any shard count.
    pool.run_tasks(num_shards, [&](unsigned s) {
      Shard& sh = shards[s];
      double shard_hops = 0.0;
      for (std::uint64_t r = sh.row_begin; r < sh.row_end; ++r) {
        std::int32_t id = tree.root();
        std::uint32_t path = 0;
        while (!tree.node(id).is_leaf) {
          const TreeNode& nd = tree.node(id);
          id = tree.goes_left(id, data.bin(nd.field, r)) ? nd.left : nd.right;
          ++path;
        }
        preds[r] += static_cast<float>(tree.node(id).weight);
        gradients[r] = loss->gradients(preds[r], data.labels()[r]);
        shard_hops += path;
      }
      sh.sum = shard_hops;
    });
    double hops = 0.0;
    for (const Shard& sh : shards) hops += sh.sum;
    emit(trace, StepEvent{.kind = StepKind::kTraversal,
                          .tree = static_cast<std::int32_t>(t),
                          .depth = static_cast<std::int32_t>(tree.max_depth()),
                          .records = n,
                          .fields_touched = static_cast<std::uint32_t>(
                              tree.relevant_fields().size()),
                          .record_fields = num_fields,
                          .avg_path_length = hops / static_cast<double>(n)});

    TreeStats stats;
    stats.leaves = tree.num_leaves();
    stats.depth = tree.max_depth();
    // Quantized loss terms sum exactly in any grouping: bit-identical
    // train_loss (and step-6 decisions) to the unsharded trainer.
    pool.run_tasks(num_shards, [&](unsigned s) {
      Shard& sh = shards[s];
      double shard_loss = 0.0;
      for (std::uint64_t r = sh.row_begin; r < sh.row_end; ++r) {
        shard_loss += quantize_stat(loss->value(preds[r], data.labels()[r]));
      }
      sh.sum = shard_loss;
    });
    double total_loss = 0.0;
    for (const Shard& sh : shards) total_loss += sh.sum;
    // Same exactness guard as Trainer: non-negative terms, so the total
    // bounds every shard partial.
    BOOSTER_CHECK_MSG(total_loss <= kStatSumCapacity,
                      "training-loss sum exceeds the quantized-exact "
                      "capacity (2^29); normalize labels or enlarge "
                      "kStatQuantum");
    stats.train_loss = total_loss / static_cast<double>(n);
    result.tree_stats.push_back(stats);
    result.model.add_tree(std::move(tree));

    // Step 6: identical early-stopping rule to Trainer.
    if (cfg_.early_stop_rel_improvement > 0.0) {
      const double improvement =
          prev_loss <= 0.0 ? 0.0 : (prev_loss - stats.train_loss) / prev_loss;
      if (std::isfinite(prev_loss) &&
          improvement < cfg_.early_stop_rel_improvement) {
        if (++stagnant_trees >= cfg_.early_stop_patience) {
          result.early_stopped = true;
          break;
        }
      } else {
        stagnant_trees = 0;
      }
      prev_loss = stats.train_loss;
    }
  }

  result.avg_leaf_depth =
      leaf_count == 0 ? 0.0 : leaf_depth_sum / static_cast<double>(leaf_count);

  result.hot_path.threads = pool.num_threads();
  result.hot_path.shards = num_shards;
  result.hot_path.histogram_merges = histogram_merges;
  result.hot_path.histogram_allocations = merged_pool.allocations();
  result.hot_path.histogram_acquires = merged_pool.acquires();
  result.hot_path.arena_bytes = 0;
  result.hot_path.per_shard.reserve(num_shards);
  for (const Shard& sh : shards) {
    ShardHotPathStats ss;
    ss.rows = sh.num_rows();
    ss.histogram_allocations = sh.pool.allocations();
    ss.histogram_acquires = sh.pool.acquires();
    ss.arena_bytes =
        (sh.bufs[0].size() + sh.bufs[1].size()) * sizeof(std::uint32_t);
    result.hot_path.histogram_allocations += ss.histogram_allocations;
    result.hot_path.histogram_acquires += ss.histogram_acquires;
    result.hot_path.arena_bytes += ss.arena_bytes;
    result.hot_path.per_shard.push_back(ss);
  }
  result.hot_path.row_major_matrix_bytes =
      RecordLayout::software_row_major_bytes(n, num_fields, sizeof(BinIndex));

  detail::fill_workload_info(data, cfg_, result, info);

  return result;
}

}  // namespace booster::gbdt
