#include "gbdt/sharded.h"

#include "gbdt/distributed.h"

namespace booster::gbdt {

TrainResult ShardedTrainer::train(const BinnedDataset& data,
                                  trace::StepTrace* trace,
                                  trace::WorkloadInfo* info) const {
  // The single-rank world of the distributed engine: one ShardGroup
  // covering every shard, no transport, no communication -- the same
  // driver loop rank 0 runs in a real multi-process world.
  DistributedConfig cfg;
  cfg.trainer = cfg_;
  DistributedTrainer trainer(cfg, /*transport=*/nullptr);
  return trainer.train(data, trace, info);
}

}  // namespace booster::gbdt
