// Parallel kernels of the training hot path (paper steps 1 and 3), shared
// between Trainer and the equivalence tests / benches:
//   * step 1: multi-threaded histogram build -- per-chunk partial
//     histograms drawn from a HistogramPool, reduced in chunk order (so the
//     result is deterministic for a fixed thread count);
//   * step 3: stable in-place partition of a row-index arena span by a
//     split predicate, via a persistent scratch buffer -- no per-node
//     row-vector allocations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/histogram.h"
#include "gbdt/split.h"
#include "util/thread_pool.h"

namespace booster::gbdt {

/// Minimum rows per chunk before the kernels go parallel; below this the
/// fork/join overhead dominates the work.
inline constexpr std::uint64_t kHistogramGrain = 1024;
inline constexpr std::uint64_t kPartitionGrain = 4096;

/// Accumulates the gradient statistics of `rows` into `out` using up to
/// pool.num_threads() chunks. Chunk 0 builds directly into `out`; the other
/// chunks build into partial histograms acquired from `hist_pool` and are
/// added back in chunk order, then released. With one chunk this is exactly
/// Histogram::build. `partials_scratch` is caller-persistent storage for
/// the per-chunk partials (cleared and refilled here; its capacity and the
/// pooled buffers make repeated parallel builds allocation-free).
void build_histogram_parallel(Histogram& out, const BinnedDataset& data,
                              std::span<const std::uint32_t> rows,
                              std::span<const GradientPair> gradients,
                              util::ThreadPool& pool,
                              HistogramPool& hist_pool,
                              std::vector<Histogram>& partials_scratch);

/// Routing decision of one split predicate for a record's bin -- the same
/// routes_left rule Tree::goes_left applies during traversal.
inline bool split_goes_left(const SplitInfo& split, BinIndex bin) {
  return routes_left(split.kind, split.threshold_bin, split.default_left, bin);
}

/// Stable partition of src[begin, end) by `split` into dst[begin, end):
/// rows routed left end up in dst[begin, begin + n_left) and rows routed
/// right in dst[begin + n_left, end), each preserving their relative order
/// (so results are identical to the scalar two-vector reference regardless
/// of thread count). src and dst are the trainer's two persistent
/// ping-pong row arenas -- children read from dst, so no copy-back pass is
/// needed and no per-node row vectors are ever allocated.
///
/// `n_left` is the exact left-row count, which the caller already has for
/// free: it is the split's left-bucket histogram count (counts are exact
/// integers in a double, see BinStats::count_u64). Knowing it up front
/// lets the serial path place both sides forward in one fused pass -- no
/// counting pre-pass, no reversal. The function aborts if the realized
/// partition disagrees with n_left. dst needs size >= end; `chunk_counts`
/// needs pool.num_threads() + 1 entries.
void partition_to(std::span<const std::uint32_t> src,
                  std::span<std::uint32_t> dst, std::uint64_t begin,
                  std::uint64_t end, std::uint64_t n_left,
                  const BinnedDataset& data, const SplitInfo& split,
                  util::ThreadPool& pool,
                  std::span<std::uint64_t> chunk_counts);

}  // namespace booster::gbdt
