// Flattened node-array ensemble layout for bulk prediction -- the serving
// mirror of the row-major training kernel. FlatTree re-encodes one Tree's
// node table as SoA arrays (children / field / threshold / flags / weight
// in separate contiguous vectors), which is the layout the blocked
// traversal kernel (util::simd::Kernels::traverse_block) consumes: a tile
// of records advances through the tree level-synchronously, so the tile's
// bin loads overlap and the tree's upper nodes stay hot across records and
// trees -- the approach LightGBM's prediction path takes.
//
// predict_many is bit-identical to per-record Model::predict at every
// SIMD dispatch level and tile width: traversal is pure routing, and each
// record's score is accumulated in the same order (base score, then trees
// in ensemble order) as Model::predict_raw.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/tree.h"
#include "util/simd.h"

namespace booster::gbdt {

/// SoA node table of one tree. Reusable: assign() re-encodes into the same
/// buffers, so per-tree re-flattening (the trainer's step-5 use) is
/// allocation-free once capacity is warm.
class FlatTree {
 public:
  FlatTree() = default;
  explicit FlatTree(const Tree& tree) { assign(tree); }

  /// Re-encodes `tree` into this FlatTree, reusing buffer capacity.
  void assign(const Tree& tree);

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(flags_.size());
  }

  util::simd::FlatTreeView view() const {
    return {left_.data(),      right_.data(), field_.data(),
            threshold_.data(), flags_.data(), weight_.data()};
  }

 private:
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<std::int32_t> field_;
  std::vector<std::uint16_t> threshold_;
  std::vector<std::uint8_t> flags_;  // util::simd::kNode* bits
  std::vector<double> weight_;
};

/// A whole trained ensemble in flat SoA form, plus the blocked bulk
/// prediction entry point. Borrows the Model's loss for the task-space
/// transform: the Model must outlive the FlatEnsemble.
class FlatEnsemble {
 public:
  explicit FlatEnsemble(const Model& model);

  std::uint32_t num_trees() const {
    return static_cast<std::uint32_t>(trees_.size());
  }
  double base_score() const { return base_score_; }
  const std::vector<FlatTree>& trees() const { return trees_; }

  /// Raw (untransformed) scores for records [begin, end); out receives
  /// end - begin values. Bit-identical to Model::predict_raw per record.
  void predict_raw_many(const BinnedDataset& data, std::uint64_t begin,
                        std::uint64_t end, std::span<double> out) const;

  /// Task-space predictions (loss transform applied), same contract.
  /// Bit-identical to Model::predict per record.
  void predict_many(const BinnedDataset& data, std::uint64_t begin,
                    std::uint64_t end, std::span<double> out) const;

  /// Column-pointer entry: raw scores for records [0, count) addressed
  /// through caller-supplied per-field column base pointers
  /// (columns[f][r], one pointer per model field). This is the serving
  /// batch path -- the server stages rows from many connections into
  /// reusable column buffers and runs one blocked pass over them without
  /// materializing a BinnedDataset. Bit-identical to the dataset overload
  /// (which forwards here).
  void predict_raw_many(const BinIndex* const* columns, std::uint64_t count,
                        std::span<double> out) const;

  /// Task-space form of the column-pointer entry.
  void predict_many(const BinIndex* const* columns, std::uint64_t count,
                    std::span<double> out) const;

 private:
  std::vector<FlatTree> trees_;
  double base_score_ = 0.0;
  const Loss* loss_ = nullptr;  // borrowed from the source Model
};

/// Per-field column base pointers of `data` -- the bin-lookup table the
/// blocked traversal kernel consumes. Rebuild after the dataset moves.
std::vector<const BinIndex*> column_pointers(const BinnedDataset& data);

}  // namespace booster::gbdt
