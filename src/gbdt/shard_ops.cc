#include "gbdt/shard_ops.h"

#include <algorithm>
#include <utility>

#include "gbdt/hotpath.h"
#include "util/check.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace booster::gbdt {

ShardGroup::ShardGroup(const BinnedDataset& data, const TrainerConfig& cfg,
                       std::uint32_t num_shards, std::uint32_t shard_begin,
                       std::uint32_t shard_end, util::ThreadPool* pool)
    : data_(data),
      cfg_(cfg),
      pool_(pool),
      num_shards_(num_shards),
      shard_begin_(shard_begin),
      shard_end_(shard_end) {
  BOOSTER_CHECK(shard_begin <= shard_end && shard_end <= num_shards);
  const std::uint32_t local = num_local();
  if (local == 0) return;
  // Surplus threads sub-chunk every per-shard task: ceil(T / L) chunks per
  // shard keeps all T threads fed even when L < T. Chunk regrouping never
  // changes a bit (quantized-exact accumulation, stable partition).
  sub_ = (pool_->num_threads() + local - 1) / local;
  data_.ensure_row_major();
  const std::uint64_t n = data_.num_records();
  shards_.resize(local);
  for (std::uint32_t ls = 0; ls < local; ++ls) {
    const auto [begin, end] = shard_row_range(n, num_shards_, shard_begin_ + ls);
    Shard& sh = shards_[ls];
    sh.row_begin = begin;
    sh.row_end = end;
    sh.pool.configure(data_);
    sh.bufs[0].resize(end - begin);
    sh.bufs[1].resize(end - begin);
  }
  preds_.resize(n);
  gradients_.resize(n);
  col_ptrs_ = column_pointers(data_);
  chunk_lefts_.resize(static_cast<std::size_t>(local) * sub_);
  shard_lefts_.resize(local);
  chunk_hops_.resize(static_cast<std::size_t>(local) * sub_);
  chunk_losses_.resize(static_cast<std::size_t>(local) * sub_);
}

std::uint32_t ShardGroup::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  const std::uint32_t slot = next_slot_++;
  span_bounds_.resize(static_cast<std::size_t>(next_slot_) * 2 * num_local());
  return slot;
}

void ShardGroup::release_slot(std::uint32_t slot) {
  free_slots_.push_back(slot);
}

void ShardGroup::reset(const Loss& loss, double base_score) {
  if (num_local() == 0) return;
  std::fill(preds_.begin(), preds_.end(), static_cast<float>(base_score));
  pool_->run_tasks(num_local() * sub_, [&](unsigned task) {
    const Shard& sh = shards_[task / sub_];
    const auto [b, e] =
        chunk_range(sh.row_begin, sh.row_end, task % sub_, sub_);
    for (std::uint64_t r = b; r < e; ++r) {
      gradients_[r] = loss.gradients(preds_[r], data_.labels()[r]);
    }
  });
}

void ShardGroup::begin_tree(std::uint64_t root_rows) {
  frontier_.clear();
  pending_valid_ = false;
  built_valid_ = false;
  if (num_local() == 0) return;
  pool_->run_tasks(num_local() * sub_, [&](unsigned task) {
    Shard& sh = shards_[task / sub_];
    const auto [b, e] = chunk_range(0, sh.num_rows(), task % sub_, sub_);
    for (std::uint64_t i = b; i < e; ++i) {
      sh.bufs[0][i] = static_cast<std::uint32_t>(sh.row_begin + i);
    }
  });
  Node root;
  root.slot = acquire_slot();
  root.buf = 0;
  root.depth = 0;
  root.rows = root_rows;
  for (std::uint32_t ls = 0; ls < num_local(); ++ls) {
    span_begin(root.slot, ls) = 0;
    span_end(root.slot, ls) = shards_[ls].num_rows();
  }
  frontier_.push_back(root);
  pending_ = root;
  pending_valid_ = true;
}

bool ShardGroup::head_is_bounds_leaf() const {
  const Node& head = frontier_.front();
  return head.depth >= static_cast<std::int32_t>(cfg_.max_depth) ||
         head.rows < cfg_.min_node_records;
}

void ShardGroup::apply_leaf() {
  BOOSTER_CHECK(!frontier_.empty());
  release_slot(frontier_.front().slot);
  frontier_.pop_front();
}

bool ShardGroup::apply_split(const SplitInfo& split) {
  BOOSTER_CHECK(!frontier_.empty());
  const Node node = frontier_.front();
  frontier_.pop_front();
  const std::uint64_t n_left_total = split.left.count_u64();
  const std::uint64_t n_right_total = node.rows - n_left_total;
  const std::uint8_t child_buf = node.buf ^ 1;
  const std::uint32_t local = num_local();

  if (local > 0) {
    // Phase 1 (count) and phase 2 (stable scatter) over the flattened
    // (shard, sub-chunk) task grid: chunks are contiguous and written in
    // chunk order, so each shard's partition is stable -- the row order
    // the bit-identity argument needs -- while threads > shards still
    // find work.
    const auto& col = data_.column(split.field);
    pool_->run_tasks(local * sub_, [&](unsigned task) {
      const std::uint32_t ls = task / sub_;
      Shard& sh = shards_[ls];
      const auto [b, e] = chunk_range(span_begin(node.slot, ls),
                                      span_end(node.slot, ls), task % sub_,
                                      sub_);
      const std::vector<std::uint32_t>& src = sh.bufs[node.buf];
      std::uint64_t lefts = 0;
      for (std::uint64_t i = b; i < e; ++i) {
        lefts += split_goes_left(split, col[src[i]]);
      }
      chunk_lefts_[task] = lefts;
    });
    for (std::uint32_t ls = 0; ls < local; ++ls) {
      std::uint64_t total = 0;
      for (std::uint32_t c = 0; c < sub_; ++c) {
        total += chunk_lefts_[static_cast<std::size_t>(ls) * sub_ + c];
      }
      shard_lefts_[ls] = total;
    }
    // When this group covers the whole partition (the single-rank world /
    // Trainer delegation path), the realized left total must equal the
    // split's claimed bucket count -- the cross-shard invariant the
    // pre-distributed ShardedTrainer asserted. Partial groups can only
    // check their chunks (below); rank 0's merged histogram counts imply
    // the global identity.
    if (shard_begin_ == 0 && shard_end_ == num_shards_) {
      std::uint64_t group_left = 0;
      for (std::uint32_t ls = 0; ls < local; ++ls) {
        group_left += shard_lefts_[ls];
      }
      BOOSTER_CHECK_MSG(
          group_left == n_left_total,
          "sharded partition disagrees with the split's bucket counts");
    }
    pool_->run_tasks(local * sub_, [&](unsigned task) {
      const std::uint32_t ls = task / sub_;
      const std::uint32_t c = task % sub_;
      Shard& sh = shards_[ls];
      const std::uint64_t sb = span_begin(node.slot, ls);
      const auto [b, e] = chunk_range(sb, span_end(node.slot, ls), c, sub_);
      std::uint64_t lefts_before = 0;
      for (std::uint32_t p = 0; p < c; ++p) {
        lefts_before += chunk_lefts_[static_cast<std::size_t>(ls) * sub_ + p];
      }
      const std::vector<std::uint32_t>& src = sh.bufs[node.buf];
      std::vector<std::uint32_t>& dst = sh.bufs[child_buf];
      std::uint64_t left_w = sb + lefts_before;
      std::uint64_t right_w =
          sb + shard_lefts_[ls] + ((b - sb) - lefts_before);
      for (std::uint64_t i = b; i < e; ++i) {
        const std::uint32_t row = src[i];
        if (split_goes_left(split, col[row])) {
          dst[left_w++] = row;
        } else {
          dst[right_w++] = row;
        }
      }
      BOOSTER_CHECK_MSG(left_w == sb + lefts_before + chunk_lefts_[task],
                        "shard partition disagrees with its count pass");
    });
  }

  const std::int32_t child_depth = node.depth + 1;
  if (child_depth >= static_cast<std::int32_t>(cfg_.max_depth)) {
    // Both children are terminal leaves: nothing further reads their rows
    // this tree, so no child spans (and no pending build) are needed.
    release_slot(node.slot);
    return false;
  }

  const bool left_smaller = n_left_total <= n_right_total;
  Node small;
  Node large;
  small.buf = large.buf = child_buf;
  small.depth = large.depth = child_depth;
  small.rows = left_smaller ? n_left_total : n_right_total;
  large.rows = left_smaller ? n_right_total : n_left_total;
  small.slot = acquire_slot();
  large.slot = acquire_slot();
  for (std::uint32_t ls = 0; ls < local; ++ls) {
    const std::uint64_t sb = span_begin(node.slot, ls);
    const std::uint64_t se = span_end(node.slot, ls);
    const std::uint64_t mid = sb + shard_lefts_[ls];
    span_begin(small.slot, ls) = left_smaller ? sb : mid;
    span_end(small.slot, ls) = left_smaller ? mid : se;
    span_begin(large.slot, ls) = left_smaller ? mid : sb;
    span_end(large.slot, ls) = left_smaller ? se : mid;
  }
  release_slot(node.slot);
  frontier_.push_back(small);
  frontier_.push_back(large);
  pending_ = small;
  pending_valid_ = true;
  return true;
}

void ShardGroup::build_pending() {
  BOOSTER_CHECK_MSG(pending_valid_, "no pending histogram build");
  BOOSTER_CHECK_MSG(!built_valid_, "previous build not yet released");
  const std::uint32_t local = num_local();
  // Acquire every buffer on the driving thread: the per-shard pools are
  // not thread-safe, and pre-acquisition keeps the fan-out allocation-free
  // once the pools are warm.
  for (std::uint32_t ls = 0; ls < local; ++ls) {
    Shard& sh = shards_[ls];
    sh.built = sh.pool.acquire();
    while (sh.partials.size() + 1 < sub_) sh.partials.push_back(Histogram{});
    for (std::uint32_t c = 0; c + 1 < sub_; ++c) {
      sh.partials[c] = sh.pool.acquire();
    }
  }
  pool_->run_tasks(local * sub_, [&](unsigned task) {
    const std::uint32_t ls = task / sub_;
    const std::uint32_t c = task % sub_;
    Shard& sh = shards_[ls];
    const auto [b, e] = chunk_range(span_begin(pending_.slot, ls),
                                    span_end(pending_.slot, ls), c, sub_);
    Histogram& h = c == 0 ? sh.built : sh.partials[c - 1];
    h.build(data_,
            std::span<const std::uint32_t>(sh.bufs[pending_.buf].data() + b,
                                           e - b),
            gradients_);
  });
  // Chunk partials merge in chunk order; any grouping is exact, so the
  // per-shard result is bit-identical to a serial whole-span build.
  for (std::uint32_t ls = 0; ls < local; ++ls) {
    Shard& sh = shards_[ls];
    for (std::uint32_t c = 0; c + 1 < sub_; ++c) {
      sh.built.add(sh.partials[c]);
      sh.pool.release(std::move(sh.partials[c]));
      ++internal_merges_;
    }
  }
  pending_valid_ = false;
  built_valid_ = true;
}

const Histogram& ShardGroup::built_histogram(std::uint32_t local_shard) const {
  BOOSTER_CHECK(built_valid_ && local_shard < num_local());
  return shards_[local_shard].built;
}

void ShardGroup::release_built() {
  BOOSTER_CHECK(built_valid_);
  for (Shard& sh : shards_) sh.pool.release(std::move(sh.built));
  built_valid_ = false;
}

void ShardGroup::finish_tree(const Tree& tree, const Loss& loss, double* hops,
                             double* quantized_loss) {
  const std::uint32_t local = num_local();
  if (local == 0) {
    if (hops != nullptr) *hops = 0.0;
    if (quantized_loss != nullptr) *quantized_loss = 0.0;
    return;
  }
  flat_.assign(tree);
  const auto& ker = util::simd::kernels();
  pool_->run_tasks(local * sub_, [&](unsigned task) {
    const Shard& sh = shards_[task / sub_];
    const auto [b, e] =
        chunk_range(sh.row_begin, sh.row_end, task % sub_, sub_);
    double chunk_hops = 0.0;
    double chunk_loss = 0.0;
    double wts[util::simd::kMaxPredictTile];
    std::uint32_t tile_hops[util::simd::kMaxPredictTile];
    const util::simd::FlatTreeView view = flat_.view();
    // Blocked SIMD traversal (see trainer.cc step 5): pure routing plus
    // per-record updates in ascending order, bit-identical to the
    // per-record loop at every dispatch level.
    for (std::uint64_t r0 = b; r0 < e; r0 += ker.predict_tile) {
      const std::size_t m = static_cast<std::size_t>(
          std::min<std::uint64_t>(ker.predict_tile, e - r0));
      ker.traverse_block(view, col_ptrs_.data(), r0, m, wts, tile_hops);
      for (std::size_t i = 0; i < m; ++i) {
        const std::uint64_t r = r0 + i;
        preds_[r] += static_cast<float>(wts[i]);
        gradients_[r] = loss.gradients(preds_[r], data_.labels()[r]);
        chunk_hops += tile_hops[i];
        chunk_loss += quantize_stat(loss.value(preds_[r], data_.labels()[r]));
      }
    }
    chunk_hops_[task] = chunk_hops;
    chunk_losses_[task] = chunk_loss;
  });
  // Hop sums are integer-valued and loss terms quantized, so these
  // reductions are exact in any grouping; (shard, chunk) order keeps them
  // readable.
  double hop_total = 0.0;
  double loss_total = 0.0;
  for (std::uint32_t t = 0; t < local * sub_; ++t) {
    hop_total += chunk_hops_[t];
    loss_total += chunk_losses_[t];
  }
  if (hops != nullptr) *hops = hop_total;
  if (quantized_loss != nullptr) *quantized_loss = loss_total;
}

std::vector<ShardHotPathStats> ShardGroup::shard_stats() const {
  std::vector<ShardHotPathStats> stats;
  stats.reserve(num_local());
  for (const Shard& sh : shards_) {
    ShardHotPathStats ss;
    ss.rows = sh.num_rows();
    ss.histogram_allocations = sh.pool.allocations();
    ss.histogram_acquires = sh.pool.acquires();
    ss.arena_bytes =
        (sh.bufs[0].size() + sh.bufs[1].size()) * sizeof(std::uint32_t);
    ss.sub_chunks = sub_;
    stats.push_back(ss);
  }
  return stats;
}

}  // namespace booster::gbdt
