#include "perf/cycle_calibrated.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/thread_pool.h"

namespace booster::perf {

using trace::StepKind;

namespace {

/// The co-sim replays single-node traces and does not model the sharded
/// scale-out (BoosterConfig::training_shards), so the analytic delegate
/// used for inference/activity costing must be single-node too --
/// otherwise a shards sweep would report merge DRAM traffic against
/// unsharded cycle times.
core::BoosterConfig single_node(core::BoosterConfig cfg) {
  cfg.training_shards = 1;
  return cfg;
}

}  // namespace

CycleCalibratedBoosterModel::CycleCalibratedBoosterModel(
    core::BoosterConfig cfg, memsim::DramConfig dram, HostParams host,
    std::string name_suffix, unsigned replay_threads)
    : cfg_(cfg),
      dram_(dram),
      host_(host),
      suffix_(std::move(name_suffix)),
      replay_threads_(replay_threads == 0 ? 1 : replay_threads),
      analytic_(single_node(cfg), host) {}

std::string CycleCalibratedBoosterModel::name() const {
  return "Booster-cycle" + suffix_;
}

StepBreakdown CycleCalibratedBoosterModel::train_cost(
    const trace::StepTrace& trace, const trace::WorkloadInfo& info) const {
  const core::CycleSim sim(cfg_, dram_);
  const double nominal = static_cast<double>(info.nominal_records);
  // Broadcast-pipeline fill, charged once per event (it is sub-linear in
  // records, so it must not ride the linear scaling below).
  const double fill_s =
      static_cast<double>(cfg_.num_bus() / cfg_.bus_link_span) / cfg_.clock_hz;

  const std::vector<trace::ReplayClass> classes = trace.replay_classes();
  // One co-sim run per class; classes are independent, so they fan out over
  // the pool. Per-class seconds land in their own slot and are reduced
  // serially in class order below -- the breakdown is bit-identical at
  // every thread count.
  std::vector<double> class_seconds(classes.size(), 0.0);
  const auto replay_class = [&](std::size_t i) {
    const auto& c = classes[i];
    core::StepRequest req;
    req.kind = c.kind;
    req.depth = c.depth;
    req.record_bytes = info.record_bytes;
    req.fields_touched = static_cast<std::uint32_t>(
        std::max(1.0, std::round(c.avg_fields_touched)));
    req.avg_path_length = c.avg_path_length;
    req.density =
        nominal > 0.0 ? std::min(1.0, c.avg_records / nominal) : 1.0;
    req.include_fill = false;
    if (c.kind == StepKind::kHistogram) req.bins_per_field = info.bins_per_field;

    const double sim_records = std::min(c.avg_records, kMaxSimRecords);
    req.records = sim_records;
    const core::CycleSimResult r = sim.run(req);
    const double steady_s = r.seconds * (c.avg_records / sim_records);
    class_seconds[i] = (steady_s + fill_s) * static_cast<double>(c.events);
  };
  if (replay_threads_ > 1 && classes.size() > 1) {
    util::ThreadPool pool(replay_threads_);
    pool.run_tasks(static_cast<unsigned>(classes.size()),
                   [&](unsigned i) { replay_class(i); });
  } else {
    for (std::size_t i = 0; i < classes.size(); ++i) replay_class(i);
  }

  StepBreakdown out;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    out[classes[i].kind] += class_seconds[i];
  }
  for (auto& s : out.seconds) s *= trace.repeat();
  out[StepKind::kSplitSelect] = host_split_seconds(trace, host_);
  return out;
}

double CycleCalibratedBoosterModel::inference_cost(
    const InferenceSpec& spec) const {
  return analytic_.inference_cost(spec);
}

Activity CycleCalibratedBoosterModel::train_activity(
    const trace::StepTrace& trace, const trace::WorkloadInfo& info) const {
  return analytic_.train_activity(trace, info);
}

}  // namespace booster::perf
