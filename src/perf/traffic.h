// DRAM traffic accounting shared by the performance models: how many bytes
// each training step moves under the row-major record format vs the
// redundant per-field column-major format (the paper's third contribution).
#pragma once

#include <cstdint>

#include "memsim/bandwidth_probe.h"
#include "trace/step_trace.h"

namespace booster::perf {

/// The DRAM transfer block size used throughout the paper.
inline constexpr double kBlockBytes = 64.0;

/// Bytes of one (g, h) gradient-statistics pair (two fp32).
inline constexpr double kGradientBytes = 8.0;

/// Bytes of one record pointer in the relevant-record streams.
inline constexpr double kPointerBytes = 4.0;

/// DRAM bytes one record's slot occupies in the packed row-major layout:
/// two records share a block when each fits in half, larger records round
/// up to whole blocks. This is the span sparse fetches gather over (shared
/// by the analytic model and the cycle co-sim so their gather strides can
/// never drift apart).
double slot_bytes_per_record(std::uint32_t record_bytes);

/// Effective bytes fetched per record in row-major format. Applies the
/// paper's packing rules: whole blocks per record; two records share a
/// block when a record fits in half a block *and* the fetch is dense
/// (records adjacent in memory are both wanted). Sparse fetches at deep
/// tree nodes cannot exploit pair-packing.
double row_bytes_per_record(std::uint32_t record_bytes, bool dense);

/// Density-aware variant: with pair-packed records, a fetched block also
/// satisfies its partner record with probability `density`, so the
/// expected bytes per wanted record interpolate 64 -> 32 as density 0 -> 1.
double row_bytes_per_record_at_density(std::uint32_t record_bytes,
                                       double density);

/// Effective sustained bandwidth of a fetch that touches a fraction
/// `touched_fraction` of the blocks in its span (mean stride =
/// 1 / touched_fraction). Interpolates the calibrated streaming and
/// strided-gather rates log-linearly in stride, anchored at the probe's
/// calibration stride of 16 (memsim::BandwidthProbe), and decays toward
/// the random rate beyond it -- the density-aware rule the closed-loop
/// cycle co-simulation (core/cycle_sim.h) validated against the FR-FCFS
/// DRAM model: row hits decay gradually as gathers sparsen, not in one
/// cliff at an arbitrary density threshold.
double effective_bandwidth(const memsim::BandwidthProfile& bw,
                           double touched_fraction);

/// Expected number of blocks touched when gathering `wanted` elements that
/// are randomly spread with density `density` (wanted / span) over a span
/// of elements packed `per_block` to a DRAM block. Standard occupancy
/// formula: blocks_in_span * (1 - (1 - density)^per_block).
double expected_touched_blocks(double wanted, double density, double per_block);

/// DRAM bytes of a step-1 (histogram) event: record fetch + gradient pair
/// fetch + relevant-record pointer stream. `node_density` = fraction of
/// all records reaching the node (drives pair-packing efficiency).
double histogram_bytes(const trace::StepEvent& e, double scaled_records,
                       std::uint32_t record_bytes, double node_density);

/// DRAM bytes of a step-3 (partition) event under the column format:
/// gather of the single predicate field's column + pointer in/out streams.
/// `node_density` = fraction of all records reaching this node.
double partition_bytes_column(double scaled_records, double node_density);

/// DRAM bytes of a step-3 event under row-major (fetch the whole record to
/// use one field).
double partition_bytes_row(double scaled_records, std::uint32_t record_bytes,
                           bool dense);

/// DRAM bytes of a step-5 (one-tree traversal) event under the column
/// format: the tree's relevant field columns + g/h read and write-back.
double traversal_bytes_column(const trace::StepEvent& e, double scaled_records);

/// DRAM bytes of a step-5 event under row-major.
double traversal_bytes_row(double scaled_records, std::uint32_t record_bytes);

}  // namespace booster::perf
