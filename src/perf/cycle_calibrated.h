// Booster performance model whose training-step costs come from the
// closed-loop cycle co-simulation (core::CycleSim) instead of the analytic
// max(memory, compute) rule. It replays the trace's replay classes -- one
// representative co-sim run per (step, depth, size-octave) class, linearly
// scaled to the class's nominal records -- so burst throttling, FR-FCFS
// back-pressure, row-hit decay at sparse deep-node gathers, and
// queue-occupancy stalls all show up in the reported step times. It
// implements the common PerfModel interface, so it slots into every figure
// bench next to the analytic BoosterModel and the baselines, turning
// model-vs-cycle-sim disagreement into a first-class, benchable number
// (bench_closed_loop reports it per step).
//
// Step 2 is charged at host cost like every model; inference and the
// energy-model activity delegate to the analytic model (they share the
// traffic accounting and are not closed-loop quantities).
#pragma once

#include <string>

#include "core/booster_model.h"
#include "core/cycle_sim.h"
#include "memsim/dram_config.h"
#include "perf/host.h"
#include "perf/perf_model.h"

namespace booster::perf {

class CycleCalibratedBoosterModel final : public PerfModel {
 public:
  explicit CycleCalibratedBoosterModel(core::BoosterConfig cfg = {},
                                       memsim::DramConfig dram = {},
                                       HostParams host = {},
                                       std::string name_suffix = "",
                                       unsigned replay_threads = 1);

  /// Per-(step, depth, octave) replay-class co-sims are independent; with
  /// replay_threads > 1 train_cost runs them on a util::ThreadPool. The
  /// per-class results are reduced serially in class order afterwards, so
  /// the breakdown is bit-identical at every thread count. Keep this at 1
  /// when the caller already parallelizes across train_cost invocations
  /// (sim::ScenarioRunner treats one train_cost as one cell).
  void set_replay_threads(unsigned n) { replay_threads_ = n == 0 ? 1 : n; }
  unsigned replay_threads() const { return replay_threads_; }

  const core::BoosterConfig& config() const { return cfg_; }
  const memsim::DramConfig& dram() const { return dram_; }

  std::string name() const override;
  StepBreakdown train_cost(const trace::StepTrace& trace,
                           const trace::WorkloadInfo& info) const override;
  double inference_cost(const InferenceSpec& spec) const override;
  Activity train_activity(const trace::StepTrace& trace,
                          const trace::WorkloadInfo& info) const override;

  /// Upper bound on records co-simulated per replay class; larger classes
  /// are simulated at this size and scaled linearly (steady-state rates are
  /// linear in records; the per-event pipeline fill is charged separately).
  static constexpr double kMaxSimRecords = 48000.0;

 private:
  core::BoosterConfig cfg_;
  memsim::DramConfig dram_;
  HostParams host_;
  std::string suffix_;
  unsigned replay_threads_ = 1;
  core::BoosterModel analytic_;  // inference + activity costing
};

}  // namespace booster::perf
