// Common interface of all performance models (Booster, Ideal 32-core,
// Ideal GPU, Inter-Record, Real multicore/GPU). Every model consumes the
// same StepTrace + WorkloadInfo, so architecture comparisons differ only in
// cost rules, never in workload -- the simulation analogue of the paper
// giving all systems the same memory configuration.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "trace/step_trace.h"

namespace booster::perf {

/// Per-step execution time in seconds, indexed by trace::StepKind.
struct StepBreakdown {
  std::array<double, trace::kNumStepKinds> seconds{};

  double& operator[](trace::StepKind k) {
    return seconds[static_cast<std::size_t>(k)];
  }
  double operator[](trace::StepKind k) const {
    return seconds[static_cast<std::size_t>(k)];
  }
  double total() const {
    double t = 0.0;
    for (double s : seconds) t += s;
    return t;
  }
  double fraction(trace::StepKind k) const {
    const double t = total();
    return t == 0.0 ? 0.0 : (*this)[k] / t;
  }
};

/// Memory-system activity used by the energy model (Fig 10): on-chip SRAM
/// accesses (with the per-access energy normalization of the paper's
/// Table V) and off-chip DRAM bytes moved.
struct Activity {
  double sram_accesses = 0.0;
  double sram_energy_per_access_norm = 1.0;  // Table V "SRAM energy (norm.)"
  double dram_bytes = 0.0;
};

/// Batch-inference workload description (paper §V-H: every record traverses
/// all trees of the trained ensemble).
struct InferenceSpec {
  double records = 0.0;          // nominal batch size
  std::uint32_t trees = 500;
  std::uint32_t max_depth = 6;   // deepest tree in the ensemble
  double avg_path_length = 6.0;  // mean realized path per (record, tree)
  std::uint32_t record_bytes = 0;
  /// Booster chips the ensemble is distributed over (paper SS III-D: too
  /// many trees to fit on-chip are dealt round-robin to multiple chips;
  /// partial sums combine on the host). CPU/GPU models ignore this.
  std::uint32_t chips = 1;
};

/// Analytic serving throughput implied by a batch-inference cost: rows
/// predicted per second if the device ran back-to-back batches of
/// `records` rows, each costing `inference_seconds`. Zero on a degenerate
/// (non-positive) cost. The serving scenario prints this next to the
/// measured closed-loop QPS so the analytic and measured numbers confront
/// each other in one table.
inline double projected_qps(double records, double inference_seconds) {
  return inference_seconds > 0.0 ? records / inference_seconds : 0.0;
}

class PerfModel {
 public:
  virtual ~PerfModel() = default;

  virtual std::string name() const = 0;

  /// Training-time breakdown for a step trace (seconds per step).
  virtual StepBreakdown train_cost(const trace::StepTrace& trace,
                                   const trace::WorkloadInfo& info) const = 0;

  /// Batch-inference latency in seconds.
  virtual double inference_cost(const InferenceSpec& spec) const = 0;

  /// SRAM/DRAM activity of the training run (for the energy comparison).
  virtual Activity train_activity(const trace::StepTrace& trace,
                                  const trace::WorkloadInfo& info) const = 0;
};

}  // namespace booster::perf
