#include "perf/traffic.h"

#include <algorithm>
#include <cmath>

namespace booster::perf {

double slot_bytes_per_record(std::uint32_t record_bytes) {
  const double b = kBlockBytes;
  return record_bytes * 2 <= b
             ? b / 2.0
             : std::ceil(static_cast<double>(record_bytes) / b) * b;
}

double row_bytes_per_record(std::uint32_t record_bytes, bool dense) {
  const double b = kBlockBytes;
  if (record_bytes > b) {
    return std::ceil(record_bytes / b) * b;
  }
  if (dense && record_bytes * 2 <= b) return b / 2.0;
  return b;
}

double row_bytes_per_record_at_density(std::uint32_t record_bytes,
                                       double density) {
  const double b = kBlockBytes;
  if (record_bytes > b) {
    return std::ceil(record_bytes / b) * b;
  }
  if (record_bytes * 2 <= b) {
    density = std::clamp(density, 0.0, 1.0);
    return b / (1.0 + density);
  }
  return b;
}

double effective_bandwidth(const memsim::BandwidthProfile& bw,
                           double touched_fraction) {
  const double t = std::clamp(touched_fraction, 1e-12, 1.0);
  const double stride = 1.0 / t;
  // Shape validated against the FR-FCFS model's stride sweep (see the
  // closed-loop co-sim, core/cycle_sim.h): flat at streaming while the
  // open-page scheduler hides the row-hit decay, then a log-linear roll
  // down to the calibrated gather rate, reaching the random rate (the tFAW
  // activate bound) at the random anchor. The anchor strides live in the
  // profile: defaults are the hand-fit 8/16/64 of the Table IV config,
  // calibrated profiles carry anchors measured by BandwidthProbe's stride
  // sweep so non-default DRAM configs keep an honest decay curve.
  const double flat_stride = std::max(1.0, bw.flat_stride);
  const double cal_stride = std::max(flat_stride * 1.0001, bw.cal_stride);
  const double random_stride = std::max(cal_stride * 1.0001, bw.random_stride);
  if (stride <= flat_stride) return bw.streaming;
  if (stride <= cal_stride) {
    const double f =
        std::log(stride / flat_stride) / std::log(cal_stride / flat_stride);
    return bw.streaming * std::pow(bw.strided_gather / bw.streaming, f);
  }
  const double f = std::min(1.0, std::log(stride / cal_stride) /
                                     std::log(random_stride / cal_stride));
  return bw.strided_gather * std::pow(bw.random / bw.strided_gather, f);
}

double expected_touched_blocks(double wanted, double density,
                               double per_block) {
  if (wanted <= 0.0) return 0.0;
  density = std::clamp(density, 1e-12, 1.0);
  const double span_elems = wanted / density;
  const double span_blocks = span_elems / per_block;
  const double p_touched = 1.0 - std::pow(1.0 - density, per_block);
  return std::min(wanted, span_blocks * p_touched);
}

double histogram_bytes(const trace::StepEvent& e, double scaled_records,
                       std::uint32_t record_bytes, double node_density) {
  double bytes = scaled_records *
                 row_bytes_per_record_at_density(record_bytes, node_density);
  bytes += scaled_records * kGradientBytes;  // g, h broadcast to the BUs
  if (e.depth > 0) {
    bytes += scaled_records * kPointerBytes;  // relevant-record pointers
  }
  return bytes;
}

double partition_bytes_column(double scaled_records, double node_density) {
  const double column_blocks = expected_touched_blocks(
      scaled_records, node_density, kBlockBytes /* 1-byte elements */);
  double bytes = column_blocks * kBlockBytes;
  // Pointer stream in (which records are relevant) and out (true/false
  // subsets written back, double-buffered).
  bytes += scaled_records * kPointerBytes;       // in
  bytes += scaled_records * kPointerBytes;       // out
  return bytes;
}

double partition_bytes_row(double scaled_records, std::uint32_t record_bytes,
                           bool dense) {
  return scaled_records * row_bytes_per_record(record_bytes, dense) +
         2.0 * scaled_records * kPointerBytes;
}

double traversal_bytes_column(const trace::StepEvent& e,
                              double scaled_records) {
  // All records traverse the new tree, so the relevant-field columns and
  // the g/h array stream densely.
  const double column_bytes =
      scaled_records * static_cast<double>(e.fields_touched);
  const double gh_bytes = scaled_records * kGradientBytes * 2.0;  // read + write
  return column_bytes + gh_bytes;
}

double traversal_bytes_row(double scaled_records, std::uint32_t record_bytes) {
  return scaled_records * row_bytes_per_record(record_bytes, /*dense=*/true) +
         scaled_records * kGradientBytes * 2.0;
}

}  // namespace booster::perf
