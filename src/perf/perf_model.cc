#include "perf/perf_model.h"

// Interface-only translation unit (keeps the vtable anchored here).

namespace booster::perf {}  // namespace booster::perf
