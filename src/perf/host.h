// Host-side cost of step 2 (split selection). The paper offloads this step
// to the host CPU for *all* systems -- including Booster -- because it is
// short, hardware-unfriendly, and implementation-dependent. Every model
// therefore charges the same host time, computed here.
#pragma once

#include "perf/perf_model.h"
#include "trace/step_trace.h"

namespace booster::perf {

struct HostParams {
  double clock_hz = 2.2e9;  // Intel 5th-gen class host (paper Table V)
  /// Effective parallelism of the per-node split scan. Far below the
  /// host's 32 cores: each node scans only thousands of bins, so the scan
  /// is serialization/overhead-bound -- which is why the paper's Fig 8
  /// shows step 2's *share* growing from the sequential run to the 32-core
  /// run, and why Booster's residual is step-2 dominated.
  int cores = 8;
  /// Cycles to evaluate one candidate bin (cumulative-bucket update plus
  /// the gain formula with both missing directions).
  double cycles_per_bin = 40.0;
  /// Fixed per-node work: launching the scan, reducing per-cluster
  /// histogram replicas, materializing the chosen predicate.
  double cycles_per_node = 30000.0;
};

/// Seconds the host spends on all step-2 events of a trace.
double host_split_seconds(const trace::StepTrace& trace,
                          const HostParams& params = {});

}  // namespace booster::perf
