#include "perf/host.h"

namespace booster::perf {

double host_split_seconds(const trace::StepTrace& trace,
                          const HostParams& params) {
  double cycles = 0.0;
  for (const auto& e : trace.events()) {
    if (e.kind != trace::StepKind::kSplitSelect) continue;
    cycles += static_cast<double>(e.bins_scanned) * params.cycles_per_bin +
              params.cycles_per_node;
  }
  return cycles * trace.repeat() / (params.clock_hz * params.cores);
}

}  // namespace booster::perf
