#include "serve/model_slot.h"

#include <optional>
#include <utility>

namespace booster::serve {

std::uint64_t ModelSlot::install(gbdt::Model model) {
  std::uint64_t version;
  {
    const std::scoped_lock lock(mu_);
    version = next_version_++;
  }
  // Flattening (FlatEnsemble construction) happens outside the lock on
  // the installer's thread; the serving loop only ever blocks for a
  // pointer swap.
  auto fresh = std::make_shared<const ServedModel>(version, std::move(model));
  const std::scoped_lock lock(mu_);
  // Concurrent installers can finish flattening out of order; the highest
  // version wins and the slot never regresses.
  if (current_ == nullptr || current_->version < version) {
    current_ = std::move(fresh);
  }
  return version;
}

gbdt::ModelFileStatus ModelSlot::install_from_file(const std::string& path,
                                                  std::uint64_t* version) {
  std::optional<gbdt::Model> loaded;
  const gbdt::ModelFileStatus status =
      gbdt::load_model_checked_file(path, &loaded);
  if (status != gbdt::ModelFileStatus::kOk) return status;
  const std::uint64_t v = install(std::move(*loaded));
  if (version != nullptr) *version = v;
  return gbdt::ModelFileStatus::kOk;
}

}  // namespace booster::serve
