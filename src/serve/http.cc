#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace booster::serve {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

void RequestParser::reset() {
  state_ = State::kHeaders;
  buffer_.clear();
  scanned_ = 0;
  building_ = Request{};
  body_expected_ = 0;
}

ParseStatus RequestParser::parse_head() {
  // buffer_ holds the request line + headers, CRLFCRLF included.
  const std::string_view head(buffer_);

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line = head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return ParseStatus::kBadRequest;
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || target.empty()) return ParseStatus::kBadRequest;
  bool keep_alive;
  if (version == "HTTP/1.1") {
    keep_alive = true;
  } else if (version == "HTTP/1.0") {
    keep_alive = false;
  } else {
    return ParseStatus::kBadRequest;
  }

  bool have_length = false;
  std::size_t content_length = 0;
  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    const std::size_t eol = head.find("\r\n", pos);
    const std::string_view header = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (header.empty()) break;  // blank line: end of headers
    const std::size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return ParseStatus::kBadRequest;
    }
    const std::string_view name = header.substr(0, colon);
    const std::string_view value = trim(header.substr(colon + 1));
    if (iequals(name, "content-length")) {
      // Strict digits-only parse; duplicate or disagreeing lengths are a
      // request-smuggling vector, so a second header is rejected outright.
      if (have_length || value.empty()) return ParseStatus::kBadRequest;
      const auto [end, ec] = std::from_chars(
          value.data(), value.data() + value.size(), content_length);
      if (ec != std::errc() || end != value.data() + value.size()) {
        return ParseStatus::kBadRequest;
      }
      have_length = true;
    } else if (iequals(name, "transfer-encoding")) {
      return ParseStatus::kUnsupported;  // chunked framing: not spoken here
    } else if (iequals(name, "connection")) {
      if (iequals(value, "close")) {
        keep_alive = false;
      } else if (iequals(value, "keep-alive")) {
        keep_alive = true;
      }
    }
    // Unknown headers are allowed and ignored.
  }

  if (content_length > limits_.max_body_bytes) {
    return ParseStatus::kBodyTooLarge;
  }
  building_.method.assign(method);
  building_.target.assign(target);
  building_.keep_alive = keep_alive;
  building_.body.clear();
  body_expected_ = content_length;
  return ParseStatus::kNeedMore;  // head ok; body (possibly empty) next
}

ParseStatus RequestParser::consume(std::string_view input,
                                   std::size_t* consumed, Request* out) {
  *consumed = 0;
  if (state_ == State::kPoisoned) return ParseStatus::kBadRequest;

  if (state_ == State::kHeaders) {
    // Append up to the limit, then scan for the head terminator starting
    // a little before the old tail so a CRLFCRLF split across segments is
    // still found and each byte is scanned O(1) times.
    const std::size_t take = std::min(
        input.size(), limits_.max_header_bytes + 1 - buffer_.size());
    buffer_.append(input.substr(0, take));
    *consumed += take;
    const std::size_t from = scanned_ > 3 ? scanned_ - 3 : 0;
    const std::size_t end = buffer_.find("\r\n\r\n", from);
    if (end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return fail(ParseStatus::kHeadersTooLarge);
      }
      scanned_ = buffer_.size();
      return ParseStatus::kNeedMore;
    }
    // Bytes past the terminator belong to the body / the next request:
    // hand them back.
    const std::size_t head_size = end + 4;
    *consumed -= buffer_.size() - head_size;
    input.remove_prefix(take - (buffer_.size() - head_size));
    buffer_.resize(head_size);
    const ParseStatus head_status = parse_head();
    if (head_status != ParseStatus::kNeedMore) return fail(head_status);
    buffer_.clear();
    scanned_ = 0;
    state_ = State::kBody;
  }

  // Body: take bytes until the declared length is reached.
  const std::size_t missing = body_expected_ - building_.body.size();
  const std::size_t take = std::min(input.size(), missing);
  building_.body.append(input.substr(0, take));
  *consumed += take;
  if (building_.body.size() < body_expected_) return ParseStatus::kNeedMore;

  *out = std::move(building_);
  building_ = Request{};
  state_ = State::kHeaders;
  return ParseStatus::kRequest;
}

std::string_view reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 431: return "Request Header Fields Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

void append_response(std::string* out, int status,
                     std::string_view content_type, std::string_view body,
                     bool keep_alive, std::string_view extra_headers) {
  out->append("HTTP/1.1 ");
  char code[4] = {static_cast<char>('0' + status / 100),
                  static_cast<char>('0' + status / 10 % 10),
                  static_cast<char>('0' + status % 10), ' '};
  out->append(code, 4);
  out->append(reason_phrase(status));
  out->append("\r\nContent-Type: ");
  out->append(content_type);
  out->append("\r\nContent-Length: ");
  out->append(std::to_string(body.size()));
  out->append("\r\nConnection: ");
  out->append(keep_alive ? "keep-alive" : "close");
  out->append("\r\n");
  out->append(extra_headers);
  out->append("\r\n");
  out->append(body);
}

}  // namespace booster::serve
