// Versioned atomic model hand-off for the serving loop. The slot holds
// the current ServedModel behind a shared_ptr swapped under a mutex:
// readers (the server, once per batch) copy the pointer and keep the
// whole model+ensemble alive for as long as their batch runs, so a hot
// swap never tears an in-flight traversal -- the old version finishes its
// batch, the next batch picks up the new pointer. This is the serving end
// of the ROADMAP's train -> save -> atomically-swap pipeline.
//
// Files are loaded through the checked model container (model_io CRC-32
// header): a truncated or bit-rotten artifact is refused with a distinct
// status and the slot keeps serving the previous version.
//
// All entry points are thread-safe, and install()/install_from_file()
// deliberately run the expensive FlatEnsemble flatten *outside* the lock
// on the caller's thread -- which is what lets the server's reload worker
// do the whole read + CRC + flatten off the event loop and still hand
// over atomically. Concurrent installers are fine: versions are assigned
// under the lock and the highest installed version wins.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "gbdt/flat_ensemble.h"
#include "gbdt/model_io.h"
#include "gbdt/tree.h"

namespace booster::serve {

/// An immutable, versioned, traversal-ready model. `flat` borrows
/// `model`'s loss, which is why both live in one immovable allocation.
struct ServedModel {
  ServedModel(std::uint64_t v, gbdt::Model m)
      : version(v), model(std::move(m)), flat(model) {}
  ServedModel(const ServedModel&) = delete;
  ServedModel& operator=(const ServedModel&) = delete;

  const std::uint64_t version;
  const gbdt::Model model;
  const gbdt::FlatEnsemble flat;
};

class ModelSlot {
 public:
  /// The model to run the *next* batch on; nullptr before any install.
  /// The returned pointer pins that version for the caller's lifetime use.
  std::shared_ptr<const ServedModel> current() const {
    const std::scoped_lock lock(mu_);
    return current_;
  }

  bool has_model() const { return current() != nullptr; }

  /// Installs a model as the new current version; returns its version
  /// number (monotonic from 1).
  std::uint64_t install(gbdt::Model model);

  /// Loads a checked container file and installs it. On any non-kOk
  /// status the slot is untouched (the old version keeps serving);
  /// `*version` (optional) receives the new version on success.
  gbdt::ModelFileStatus install_from_file(const std::string& path,
                                          std::uint64_t* version = nullptr);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ServedModel> current_;
  std::uint64_t next_version_ = 1;
};

}  // namespace booster::serve
