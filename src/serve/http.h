// Incremental HTTP/1.1 request parser and response serializer for the
// prediction server. Deliberately small: the server speaks exactly the
// subset a prediction service needs -- Content-Length framed bodies,
// keep-alive and pipelining, loud rejection of anything oversized or
// malformed -- and nothing it does not (no chunked encoding, no trailers,
// no multipart).
//
// The parser is a per-connection state machine that tolerates any arrival
// granularity (byte-at-a-time TCP segments included) and consumes exactly
// one request per kRequest result, leaving pipelined followers in the
// caller's buffer untouched.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace booster::serve {

/// One parsed request. `keep_alive` already folds in the HTTP-version
/// default (1.1 persistent, 1.0 not) and any Connection header. `target`
/// is the raw request target, query string included -- routing splits at
/// '?' itself, keeping the full form here for logging.
struct Request {
  std::string method;
  std::string target;
  bool keep_alive = true;
  std::string body;
};

enum class ParseStatus {
  kNeedMore,         // incomplete; feed more bytes
  kRequest,          // one full request delivered
  kBadRequest,       // malformed request line / header / framing -> 400
  kHeadersTooLarge,  // request line + headers exceed the limit -> 431
  kBodyTooLarge,     // declared Content-Length exceeds the limit -> 413
  kUnsupported,      // well-formed but unsupported framing (chunked) -> 501
};

struct ParserLimits {
  /// Upper bound on the request line + headers (CRLFCRLF included).
  std::size_t max_header_bytes = 8192;
  /// Upper bound on the declared Content-Length.
  std::size_t max_body_bytes = 1 << 20;
};

class RequestParser {
 public:
  explicit RequestParser(ParserLimits limits = {}) : limits_(limits) {}

  /// Consumes bytes from `input`. Returns kRequest with `*out` filled when
  /// a complete request has been assembled (`*consumed` bytes were used;
  /// pipelined followers remain un-consumed), kNeedMore when the input ran
  /// dry mid-request, or a rejection status -- after which the parser is
  /// poisoned until reset() (the connection answers with an error and
  /// closes, so there is nothing sensible to resynchronize to).
  ParseStatus consume(std::string_view input, std::size_t* consumed,
                      Request* out);

  /// Ready for a fresh request (nothing partially consumed)?
  bool idle() const { return state_ == State::kHeaders && buffer_.empty(); }

  void reset();

 private:
  enum class State { kHeaders, kBody, kPoisoned };

  ParseStatus fail(ParseStatus status) {
    state_ = State::kPoisoned;
    return status;
  }
  ParseStatus parse_head();

  ParserLimits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;       // accumulated head bytes (until CRLFCRLF)
  std::size_t scanned_ = 0;  // head bytes already scanned for CRLFCRLF
  Request building_;
  std::size_t body_expected_ = 0;
};

/// Minimal response head + body serializer, appended to `out` (the
/// connection's pooled output buffer). `extra_headers` lines must each end
/// with CRLF.
void append_response(std::string* out, int status,
                     std::string_view content_type, std::string_view body,
                     bool keep_alive, std::string_view extra_headers = {});

/// Standard reason phrase for the handful of statuses the server emits.
std::string_view reason_phrase(int status);

}  // namespace booster::serve
