// Client-side counterpart of the prediction server: a blocking HTTP/1.1
// client for tests and examples, plus the closed-loop load harness that
// bench_serve and the serving scenario drive. The harness is closed-loop
// (each connection keeps at most pipeline_depth requests in flight and
// sends the next only as responses land; depth 1 is the classic one-at-a-
// time loop), so measured latency is honest end-to-end time over real
// localhost TCP -- and every predicted value that comes back is compared
// bit-for-bit against the caller-supplied expected vector, which gates
// all throughput numbers on correctness. Depths > 1 multiply the offered
// load per connection, which is how the bench drives the server past
// saturation to exercise admission control; shed responses (503 with
// Retry-After) are counted separately from errors.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gbdt/dataset.h"

namespace booster::serve {

/// One parsed HTTP response (Content-Length framing, matching what the
/// server emits).
struct Response {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; empty view when absent.
  std::string_view header(std::string_view name) const;
};

/// Blocking connection to the loopback server, usable for sequential
/// request/response exchanges (keep-alive reuse included). Methods abort
/// the exchange by returning false on socket errors or malformed
/// responses; the connection is then dead.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;

  bool connect(std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sets SO_RCVBUF for the *next* connect (applied before the TCP
  /// handshake so the advertised window honors it). Tests use a tiny
  /// buffer to simulate a peer that stops reading, making the server's
  /// write-side backpressure observable despite loopback's generous
  /// default buffering. <= 0 leaves the kernel default.
  void set_recv_buffer(int bytes) { rcvbuf_ = bytes; }

  /// Half-close: shutdown(SHUT_WR). The server must still answer
  /// everything already sent; read_response keeps working.
  void shutdown_writes();

  /// Sends raw bytes verbatim. For hand-rolled requests (parser torture
  /// tests send byte-at-a-time via repeated calls).
  bool send_raw(std::string_view bytes);

  /// Reads exactly one response off the socket (headers, then
  /// Content-Length body).
  bool read_response(Response* out);

  /// Convenience: one framed request, one response.
  bool request(std::string_view method, std::string_view target,
               std::string_view body, Response* out,
               std::string_view content_type = "text/plain");

 private:
  int fd_ = -1;
  int rcvbuf_ = 0;  // SO_RCVBUF override for the next connect; 0 = default
  std::string rx_;  // bytes read past the previous response
};

/// Formats `count` dataset rows starting at `begin` (wrapping) as CSV
/// request-body lines: numeric cells as %.9g (float32 round-trip exact),
/// categorical cells as integers, missing as empty.
std::string csv_rows(const gbdt::Dataset& data, std::uint64_t begin,
                     std::uint64_t count);

/// Same rows as a JSON array of arrays (missing spelled null).
std::string json_rows(const gbdt::Dataset& data, std::uint64_t begin,
                      std::uint64_t count);

/// Parses a /predict response body (one prediction per line) into
/// doubles; returns false on any unparsable line.
bool parse_predictions(std::string_view body, std::vector<double>* out);

struct LoadConfig {
  std::uint16_t port = 0;
  std::uint32_t connections = 1;
  std::uint32_t requests_per_connection = 100;
  std::uint32_t rows_per_request = 1;
  /// Requests each connection keeps in flight (>= 1). Depth 1 is the
  /// classic closed loop; larger depths pipeline, multiplying offered
  /// load per connection -- the overload generator.
  std::uint32_t pipeline_depth = 1;
  /// Send JSON bodies instead of CSV.
  bool json_body = false;
};

struct LoadResult {
  double qps = 0.0;           // completed requests / wall seconds
  double rows_per_sec = 0.0;  // predicted rows / wall seconds
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  std::uint64_t requests = 0;  // admitted (200) requests only
  std::uint64_t rows = 0;
  /// 503 + Retry-After responses: the server's admission control shed the
  /// request. Not an error -- the documented overload contract.
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;      // transport failures + other non-200s
  std::uint64_t mismatches = 0;  // served prediction != expected (bitwise)
  double bytes_per_request = 0.0;
  double wall_seconds = 0.0;
};

/// Runs the closed-loop load: `cfg.connections` threads, each with its own
/// keep-alive connection, each issuing `requests_per_connection` prebuilt
/// /predict requests over rows of `queries` (request k of connection c
/// covers rows [(c*requests_per_connection + k) * rows_per_request, ...)
/// mod num_records, so coverage is deterministic), keeping up to
/// `pipeline_depth` of them in flight. Every admitted prediction is
/// compared bitwise (==) against `expected[row]`; shed responses (503 +
/// Retry-After), mismatches, and errors are counted, latency is measured
/// per admitted request from its send to its response.
LoadResult run_closed_loop(const LoadConfig& cfg, const gbdt::Dataset& queries,
                           const std::vector<double>& expected);

}  // namespace booster::serve
