// Serving-side row binning: a frozen copy of the training-time bin
// metadata (gbdt::FieldBins per field) that maps one raw feature row --
// parsed from a request body -- to per-field bin indices. Uses the exact
// same binning rules as the trainer's Binner (gbdt::numeric_value_bin /
// categorical_value_bin are shared code, not a reimplementation), which is
// what makes served predictions bit-identical to local Model::predict on
// the same raw values.
//
// Rows are appended column-major into caller-owned per-field vectors --
// the staging buffers the server hands to FlatEnsemble's column-pointer
// batch entry -- so binning a request allocates nothing once the staging
// capacity is warm.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "gbdt/binning.h"

namespace booster::sim {
class Json;
}

namespace booster::serve {

class RowBinner {
 public:
  /// Freezes the bin metadata of the dataset the model was trained on.
  explicit RowBinner(const gbdt::BinnedDataset& data);

  std::uint32_t num_fields() const {
    return static_cast<std::uint32_t>(fields_.size());
  }
  const gbdt::FieldBins& field_bins(std::uint32_t f) const {
    return fields_[f];
  }

  /// Bins one CSV row ("cell,cell,..."; empty cell or "nan" = missing;
  /// numeric cells parse as float32, categorical cells as integers) and
  /// appends one bin per field to `columns` (size num_fields). Returns
  /// false -- appending nothing -- on wrong arity or an unparsable cell.
  bool append_csv(std::string_view line,
                  std::vector<std::vector<gbdt::BinIndex>>* columns) const;

  /// Bins one JSON row (an array with one number-or-null per field; null =
  /// missing). Same contract as append_csv.
  bool append_json(const sim::Json& row,
                   std::vector<std::vector<gbdt::BinIndex>>* columns) const;

  /// Sizes `columns` to num_fields and clears each column, preserving
  /// capacity -- call once per batch.
  void reset_columns(std::vector<std::vector<gbdt::BinIndex>>* columns) const;

 private:
  std::vector<gbdt::FieldBins> fields_;
};

}  // namespace booster::serve
