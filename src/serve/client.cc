#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>

namespace booster::serve {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] + 32 : b[i];
    if (ca != cb) return false;
  }
  return true;
}

void append_cell(std::string* out, const gbdt::Dataset& data, std::uint32_t f,
                 std::uint64_t r, bool json) {
  if (data.field(f).kind == gbdt::FieldKind::kNumeric) {
    const float v = data.numeric_value(f, r);
    if (std::isnan(v)) {
      out->append(json ? "null" : "");
      return;
    }
    // %.9g prints enough digits that the server's text->float32 parse
    // recovers the identical float: the wire format is lossless.
    char buf[32];
    const int len = std::snprintf(buf, sizeof(buf), "%.9g", v);
    out->append(buf, static_cast<std::size_t>(len));
  } else {
    const std::int32_t v = data.categorical_value(f, r);
    if (v == gbdt::kMissingCategory) {
      out->append(json ? "null" : "");
      return;
    }
    out->append(std::to_string(v));
  }
}

std::string format_rows(const gbdt::Dataset& data, std::uint64_t begin,
                        std::uint64_t count, bool json) {
  std::string out;
  if (json) out += '[';
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t r = (begin + i) % data.num_records();
    if (json) {
      if (i > 0) out += ',';
      out += '[';
    }
    for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
      if (f > 0) out += ',';
      append_cell(&out, data, f, r, json);
    }
    out += json ? "]" : "\n";
  }
  if (json) out += ']';
  return out;
}

}  // namespace

std::string_view Response::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return value;
  }
  return {};
}

BlockingClient::~BlockingClient() { close(); }

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(other.fd_), rx_(std::move(other.rx_)) {
  other.fd_ = -1;
}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    rx_ = std::move(other.rx_);
    other.fd_ = -1;
  }
  return *this;
}

void BlockingClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rx_.clear();
}

bool BlockingClient::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  if (rcvbuf_ > 0) {
    // Before connect: the handshake advertises the shrunken window, so
    // the server's sends actually hit TCP flow control instead of being
    // absorbed by loopback's auto-tuned buffers.
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_, sizeof(rcvbuf_));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void BlockingClient::shutdown_writes() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

bool BlockingClient::send_raw(std::string_view bytes) {
  if (fd_ < 0) return false;
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool BlockingClient::read_response(Response* out) {
  if (fd_ < 0) return false;
  out->status = 0;
  out->headers.clear();
  out->body.clear();

  // Accumulate until the head terminator; bytes past one response stay in
  // rx_ for the next call (the server may batch pipelined responses into
  // one send).
  std::size_t head_end;
  while ((head_end = rx_.find("\r\n\r\n")) == std::string::npos) {
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rx_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or error before a complete head
  }
  const std::string_view head(rx_.data(), head_end);

  // Status line: HTTP/1.1 NNN Reason
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line = head.substr(0, line_end);
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos || sp + 4 > status_line.size()) {
    return false;
  }
  const std::string_view code = status_line.substr(sp + 1, 3);
  const auto [end, ec] =
      std::from_chars(code.data(), code.data() + code.size(), out->status);
  if (ec != std::errc() || end != code.data() + code.size()) return false;

  std::size_t content_length = 0;
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    out->headers.emplace_back(std::string(line.substr(0, colon)),
                              std::string(value));
    if (iequals(line.substr(0, colon), "content-length")) {
      const auto [vend, vec] = std::from_chars(
          value.data(), value.data() + value.size(), content_length);
      if (vec != std::errc() || vend != value.data() + value.size()) {
        return false;
      }
    }
  }

  rx_.erase(0, head_end + 4);
  while (rx_.size() < content_length) {
    char buf[16384];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      rx_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  out->body.assign(rx_, 0, content_length);
  rx_.erase(0, content_length);
  return true;
}

bool BlockingClient::request(std::string_view method, std::string_view target,
                             std::string_view body, Response* out,
                             std::string_view content_type) {
  std::string req;
  req.reserve(body.size() + 128);
  req += method;
  req += ' ';
  req += target;
  req += " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  if (!body.empty() || method == "POST") {
    req += "Content-Type: ";
    req += content_type;
    req += "\r\nContent-Length: ";
    req += std::to_string(body.size());
    req += "\r\n";
  }
  req += "\r\n";
  req += body;
  return send_raw(req) && read_response(out);
}

std::string csv_rows(const gbdt::Dataset& data, std::uint64_t begin,
                     std::uint64_t count) {
  return format_rows(data, begin, count, /*json=*/false);
}

std::string json_rows(const gbdt::Dataset& data, std::uint64_t begin,
                      std::uint64_t count) {
  return format_rows(data, begin, count, /*json=*/true);
}

bool parse_predictions(std::string_view body, std::vector<double>* out) {
  out->clear();
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) eol = body.size();
    const std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    double v = 0.0;
    const auto [end, ec] =
        std::from_chars(line.data(), line.data() + line.size(), v);
    if (ec != std::errc() || end != line.data() + line.size()) return false;
    out->push_back(v);
  }
  return true;
}

LoadResult run_closed_loop(const LoadConfig& cfg, const gbdt::Dataset& queries,
                           const std::vector<double>& expected) {
  struct PerConn {
    std::vector<std::string> bodies;  // prebuilt, excluded from timing
    std::vector<std::uint64_t> first_rows;
    std::vector<double> latencies_us;
    std::uint64_t shed = 0;
    std::uint64_t errors = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t bytes = 0;  // request bytes sent (response counted below)
  };

  const std::uint64_t num_records = queries.num_records();
  std::vector<PerConn> per_conn(cfg.connections);
  for (std::uint32_t c = 0; c < cfg.connections; ++c) {
    PerConn& pc = per_conn[c];
    pc.bodies.reserve(cfg.requests_per_connection);
    pc.first_rows.reserve(cfg.requests_per_connection);
    for (std::uint32_t k = 0; k < cfg.requests_per_connection; ++k) {
      const std::uint64_t first =
          (static_cast<std::uint64_t>(c) * cfg.requests_per_connection + k) *
          cfg.rows_per_request % num_records;
      pc.first_rows.push_back(first);
      pc.bodies.push_back(cfg.json_body
                              ? json_rows(queries, first, cfg.rows_per_request)
                              : csv_rows(queries, first, cfg.rows_per_request));
    }
    pc.latencies_us.reserve(cfg.requests_per_connection);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(cfg.connections);
  for (std::uint32_t c = 0; c < cfg.connections; ++c) {
    threads.emplace_back([&, c] {
      PerConn& pc = per_conn[c];
      BlockingClient client;
      if (!client.connect(cfg.port)) {
        pc.errors += cfg.requests_per_connection;
        return;
      }
      const std::uint32_t depth = std::max<std::uint32_t>(1, cfg.pipeline_depth);
      const std::uint32_t total = cfg.requests_per_connection;
      std::vector<std::chrono::steady_clock::time_point> sent_at(total);
      std::vector<double> got;
      Response resp;
      std::string wire;
      std::uint32_t next_send = 0;
      std::uint32_t next_recv = 0;
      // Sliding window of `depth` in-flight requests; responses come back
      // in request order (HTTP/1.1 pipelining), so receive k matches
      // send k.
      while (next_recv < total) {
        while (next_send < total && next_send - next_recv < depth) {
          const std::string& body = pc.bodies[next_send];
          wire.clear();
          wire += "POST /predict HTTP/1.1\r\nHost: 127.0.0.1\r\n";
          wire += "Content-Type: ";
          wire += cfg.json_body ? "application/json" : "text/plain";
          wire += "\r\nContent-Length: ";
          wire += std::to_string(body.size());
          wire += "\r\n\r\n";
          wire += body;
          sent_at[next_send] = std::chrono::steady_clock::now();
          if (!client.send_raw(wire)) break;  // recv loop reports the death
          ++next_send;
        }
        if (next_send == next_recv) {
          // Could not get even one request out: connection dead.
          pc.errors += total - next_recv;
          break;
        }
        if (!client.read_response(&resp)) {
          pc.errors += total - next_recv;  // in-flight + unsent all lost
          break;
        }
        const auto t1 = std::chrono::steady_clock::now();
        const std::uint32_t k = next_recv++;
        if (resp.status == 503 && !resp.header("Retry-After").empty()) {
          ++pc.shed;  // admission control: the documented overload path
          continue;
        }
        if (resp.status != 200) {
          ++pc.errors;
          continue;
        }
        pc.latencies_us.push_back(
            std::chrono::duration<double, std::micro>(t1 - sent_at[k])
                .count());
        pc.bytes += pc.bodies[k].size() + resp.body.size();
        if (!parse_predictions(resp.body, &got) ||
            got.size() != cfg.rows_per_request) {
          ++pc.mismatches;
          continue;
        }
        for (std::uint32_t i = 0; i < cfg.rows_per_request; ++i) {
          const std::uint64_t row = (pc.first_rows[k] + i) % num_records;
          // Bitwise gate: %.17g round-trips doubles exactly, so served
          // must equal local Model::predict with zero tolerance.
          if (got[i] != expected[row]) ++pc.mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto wall_end = std::chrono::steady_clock::now();

  LoadResult result;
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  std::vector<double> latencies;
  std::uint64_t bytes = 0;
  for (const PerConn& pc : per_conn) {
    latencies.insert(latencies.end(), pc.latencies_us.begin(),
                     pc.latencies_us.end());
    result.shed += pc.shed;
    result.errors += pc.errors;
    result.mismatches += pc.mismatches;
    bytes += pc.bytes;
  }
  result.requests = latencies.size();
  result.rows = result.requests * cfg.rows_per_request;
  if (result.wall_seconds > 0.0) {
    result.qps = static_cast<double>(result.requests) / result.wall_seconds;
    result.rows_per_sec =
        static_cast<double>(result.rows) / result.wall_seconds;
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    const auto pct = [&](double p) {
      const std::size_t idx = std::min(
          latencies.size() - 1,
          static_cast<std::size_t>(p * static_cast<double>(latencies.size())));
      return latencies[idx];
    };
    double sum = 0.0;
    for (const double v : latencies) sum += v;
    result.mean_us = sum / static_cast<double>(latencies.size());
    result.p50_us = pct(0.50);
    result.p99_us = pct(0.99);
    result.p999_us = pct(0.999);
    result.max_us = latencies.back();
    result.bytes_per_request =
        static_cast<double>(bytes) / static_cast<double>(result.requests);
  }
  return result;
}

}  // namespace booster::serve
