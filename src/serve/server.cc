#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <span>
#include <string_view>
#include <utility>

#include "sim/json.h"
#include "util/check.h"

namespace booster::serve {

namespace {

// Sentinel tags for the loop-owned fds; connection ids count up from 0
// and can never collide with these.
constexpr std::uint64_t kListenTag = ~std::uint64_t{0};
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0} - 1;
constexpr std::uint64_t kTimerTag = ~std::uint64_t{0} - 2;

constexpr std::size_t kRecvChunk = 16384;

void format_prediction(std::string* out, double value) {
  char buf[40];
  const int len = std::snprintf(buf, sizeof(buf), "%.17g\n", value);
  out->append(buf, static_cast<std::size_t>(len));
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point begin) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - begin)
          .count());
}

}  // namespace

Server::Server(ServerConfig cfg, ModelSlot* slot,
               const gbdt::BinnedDataset& binning_reference)
    : cfg_(cfg), slot_(slot), binner_(binning_reference) {
  BOOSTER_CHECK_MSG(slot_ != nullptr, "Server needs a ModelSlot");
  BOOSTER_CHECK_MSG(binner_.num_fields() > 0,
                    "Server needs at least one feature field");
  listen_fd_ = ipc::listen_tcp_loopback(cfg_.port, &port_);
  BOOSTER_CHECK_MSG(listen_fd_ >= 0, "Server failed to bind 127.0.0.1");
  BOOSTER_CHECK_MSG(poller_.add(listen_fd_, kListenTag, true, false),
                    "epoll rejected the listening socket");
  BOOSTER_CHECK_MSG(poller_.add(wake_.fd(), kWakeTag, true, false),
                    "epoll rejected the wake fd");
  BOOSTER_CHECK_MSG(poller_.add(batch_timer_.fd(), kTimerTag, true, false),
                    "epoll rejected the batch timer fd");
  binner_.reset_columns(&staged_columns_);
  now_ = std::chrono::steady_clock::now();
  last_reap_ = now_;
  reload_thread_ = std::thread([this] { reload_worker_main(); });
}

Server::~Server() {
  {
    const std::scoped_lock lock(reload_mu_);
    reload_shutdown_ = true;
  }
  reload_cv_.notify_one();
  if (reload_thread_.joinable()) reload_thread_.join();
  for (auto& [id, conn] : conns_) {
    poller_.remove(conn.fd);
    ::close(conn.fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    poller_.remove(listen_fd_);
    ::close(listen_fd_);
  }
}

void Server::stop() {
  stop_.store(true, std::memory_order_release);
  wake_.notify();
}

void Server::run() {
  std::vector<ipc::Poller::Event> events;
  now_ = std::chrono::steady_clock::now();
  last_reap_ = now_;
  while (!stop_.load(std::memory_order_acquire)) {
    auto timeout = std::chrono::milliseconds(100);
    if (cfg_.idle_timeout.count() > 0) {
      // The sweep cadence bounds how late a reap can run; never sleep
      // past a quarter of the timeout.
      timeout = std::min(
          timeout, std::max(cfg_.idle_timeout / 4,
                            std::chrono::milliseconds(1)));
    }
    poller_.wait(timeout, &events);
    now_ = std::chrono::steady_clock::now();
    for (const auto& ev : events) {
      if (ev.tag == kListenTag) {
        accept_new_connections();
      } else if (ev.tag == kWakeTag) {
        wake_.drain();
        drain_reload();
      } else if (ev.tag == kTimerTag) {
        if (batch_timer_.consume() > 0) {
          timer_armed_ = false;
          flush_batch();
        }
      } else {
        // A connection may have been closed by an earlier event this
        // round; dispatch strictly through lookups.
        auto it = conns_.find(ev.tag);
        if (it == conns_.end()) continue;
        if (ev.error) {
          close_connection(ev.tag);
          continue;
        }
        // Hangup still delivers buffered bytes; the recv loop below sees
        // the EOF itself, so hangup needs no special casing.
        if (ev.readable || ev.hangup) handle_readable(ev.tag);
        if (ev.writable && conns_.count(ev.tag) != 0) pump_output(ev.tag);
      }
    }
    settle();
    if (cfg_.idle_timeout.count() > 0) reap_idle();
  }
  // Orderly shutdown: let an in-flight reload land (its requester is
  // still owed a response), then answer everything already staged.
  if (reload_inflight_) {
    {
      std::unique_lock<std::mutex> lock(reload_mu_);
      reload_done_cv_.wait(lock,
                           [this] { return finished_reload_.has_value(); });
    }
    drain_reload();
  }
  flush_batch();
  settle();
  stats_.buffer_allocations = pool_.allocations();
  stats_.buffer_acquires = pool_.acquires();
}

void Server::settle() {
  while (true) {
    // With window 0 anything staged this round flushes now; with a
    // window the flush waits for the timer unless the backlog already
    // fills a traversal tile.
    const bool flush_due =
        !staged_requests_.empty() &&
        (cfg_.batch_window.count() == 0 ||
         staged_rows_ >= cfg_.max_batch_rows);
    if (flush_due) flush_batch();
    if (dirty_.empty()) break;
    // Pumping can resume paused connections whose parsed requests stage
    // more rows, so loop until nothing new appears.
    pump_scratch_.swap(dirty_);
    for (const std::uint64_t id : pump_scratch_) pump_output(id);
    pump_scratch_.clear();
  }
}

void Server::accept_new_connections() {
  while (true) {
    const int fd = ipc::accept_nonblocking(listen_fd_);
    if (fd < 0) break;
    if (conns_.size() >= cfg_.max_connections) {
      ++stats_.connections_rejected;
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (cfg_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &cfg_.so_sndbuf,
                   sizeof(cfg_.so_sndbuf));
    }
    const std::uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.in = pool_.acquire();
    conn.out = pool_.acquire();
    conn.parser = RequestParser(cfg_.limits);
    conn.last_activity = now_;
    if (!poller_.add(fd, id, true, false)) {
      ::close(fd);
      pool_.release(std::move(conn.in));
      pool_.release(std::move(conn.out));
      continue;
    }
    conns_.emplace(id, std::move(conn));
    ++stats_.connections_accepted;
  }
}

void Server::close_connection(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  poller_.remove(conn.fd);
  ::close(conn.fd);
  pool_.release(std::move(conn.in));
  pool_.release(std::move(conn.out));
  // Staged slots pointing at this connection stay in the batch; the flush
  // skips them when the lookup fails. A reload in flight for it is
  // likewise dropped at drain time.
  conns_.erase(it);
}

void Server::handle_readable(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  if (!conn.read_closed && !conn.paused_read) {
    char buf[kRecvChunk];
    std::size_t drained = 0;
    while (drained < cfg_.max_read_per_round) {
      const std::size_t want =
          std::min(sizeof(buf), cfg_.max_read_per_round - drained);
      const ssize_t n = ::recv(conn.fd, buf, want, 0);
      if (n > 0) {
        conn.in.append(buf, static_cast<std::size_t>(n));
        stats_.bytes_in += static_cast<std::uint64_t>(n);
        drained += static_cast<std::size_t>(n);
        conn.last_activity = now_;
        continue;
      }
      if (n == 0) {
        // Peer half-closed: everything already buffered still gets parsed
        // and answered (shutdown(SHUT_WR) clients), then we close.
        conn.read_closed = true;
        conn.close_after_flush = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_connection(id);
      return;
    }
    // Fairness cap hit with bytes still buffered: stop here so every
    // other ready connection gets its turn this round. The poller is
    // level-triggered, so this socket reports readable again on the very
    // next epoll round -- no extra bookkeeping needed to re-visit it.
  }
  process_input(id);
  pump_output(id);
}

void Server::process_input(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  // Backpressure / reload ordering: a paused connection keeps its bytes
  // buffered (nothing is consumed) until pump_output resumes it; a
  // connection waiting on an off-loop reload parses nothing more until
  // the reload response is enqueued, so responses keep request order.
  if (conn.paused_read || conn.reload_waiting) return;
  std::size_t off = 0;
  while (true) {
    std::size_t used = 0;
    Request req;
    const ParseStatus status = conn.parser.consume(
        std::string_view(conn.in).substr(off), &used, &req);
    off += used;
    if (status == ParseStatus::kRequest) {
      handle_request(id, std::move(req));
      if (conn.read_closed) break;  // a handler decided to stop reading
      if (conn.paused_read || conn.reload_waiting) break;
      continue;
    }
    if (status == ParseStatus::kNeedMore) break;
    // Protocol-level rejection: answer loudly, then close -- the parser
    // is poisoned and the byte stream has no resynchronization point.
    // Rejected requests still count as requests: responses_* must never
    // exceed the request counter.
    ++stats_.requests;
    const int code = status == ParseStatus::kHeadersTooLarge ? 431
                     : status == ParseStatus::kBodyTooLarge  ? 413
                     : status == ParseStatus::kUnsupported   ? 501
                                                             : 400;
    enqueue_response(id, code, "text/plain", "malformed request\n",
                     /*keep_alive=*/false);
    conn.read_closed = true;
    conn.close_after_flush = true;
    break;
  }
  conn.in.erase(0, off);
}

void Server::handle_request(std::uint64_t id, Request&& req) {
  ++stats_.requests;
  // Route on the path only: the raw target keeps its query string (the
  // parser preserves it for logging), but "/predict?x=y" is /predict.
  std::string_view path(req.target);
  path = path.substr(0, path.find('?'));
  if (path == "/predict") {
    if (req.method != "POST") {
      enqueue_response(id, 405, "text/plain", "use POST /predict\n",
                       req.keep_alive);
      return;
    }
    handle_predict(id, req);
    return;
  }
  if (path == "/healthz") {
    if (req.method != "GET") {
      enqueue_response(id, 405, "text/plain", "use GET /healthz\n",
                       req.keep_alive);
      return;
    }
    enqueue_response(id, 200, "text/plain", "ok\n", req.keep_alive);
    return;
  }
  if (path == "/stats") {
    if (req.method != "GET") {
      enqueue_response(id, 405, "text/plain", "use GET /stats\n",
                       req.keep_alive);
      return;
    }
    enqueue_response(id, 200, "application/json", stats_json(),
                     req.keep_alive);
    return;
  }
  if (path == "/reload") {
    if (req.method != "POST") {
      enqueue_response(id, 405, "text/plain", "use POST /reload\n",
                       req.keep_alive);
      return;
    }
    if (reload_inflight_) {
      ++stats_.reloads_rejected;
      enqueue_response(id, 409, "text/plain", "reload already in flight\n",
                       req.keep_alive);
      return;
    }
    // Body = container path, surrounding whitespace tolerated. The load,
    // CRC check, and flatten all run on the reload worker; the loop only
    // pays for this hand-off (measured below as the reload "stall").
    const auto handoff_begin = std::chrono::steady_clock::now();
    std::string_view path_view(req.body);
    while (!path_view.empty() &&
           (path_view.back() == '\n' || path_view.back() == '\r' ||
            path_view.back() == ' ')) {
      path_view.remove_suffix(1);
    }
    while (!path_view.empty() && path_view.front() == ' ') {
      path_view.remove_prefix(1);
    }
    reload_inflight_ = true;
    conns_.find(id)->second.reload_waiting = true;
    {
      const std::scoped_lock lock(reload_mu_);
      pending_reload_ = ReloadJob{id, req.keep_alive, std::string(path_view)};
    }
    reload_cv_.notify_one();
    const std::uint64_t stall_us = elapsed_us(handoff_begin);
    stats_.reload_stall_us_total += stall_us;
    stats_.reload_stall_us_max =
        std::max(stats_.reload_stall_us_max, stall_us);
    return;
  }
  enqueue_response(id, 404, "text/plain", "unknown target\n", req.keep_alive);
}

void Server::handle_predict(std::uint64_t id, const Request& req) {
  // Admission control: past either watermark this request is shed *now*
  // -- a prompt 503 instead of a seat in a queue whose latency already
  // exceeds what any client should wait for. Shedding never touches the
  // staged columns, so admitted rows are numerically untouched by it.
  if (staged_rows_ >= cfg_.shed_rows_watermark ||
      staged_requests_.size() >= cfg_.shed_requests_watermark) {
    ++stats_.requests_shed;
    enqueue_response(id, 503, "text/plain", "overloaded, retry later\n",
                     req.keep_alive, "Retry-After: 1\r\n");
    return;
  }
  // Pin the batch's model at its first row: a hot swap mid-window changes
  // the *next* batch, never this one.
  if (batch_model_ == nullptr) batch_model_ = slot_->current();
  if (batch_model_ == nullptr) {
    enqueue_response(id, 503, "text/plain", "no model installed\n",
                     req.keep_alive);
    return;
  }
  const std::size_t rows_before = staged_columns_[0].size();
  std::string_view body(req.body);
  bool ok = true;
  std::uint32_t rows = 0;
  std::size_t first_content = body.find_first_not_of(" \t\r\n");
  if (first_content != std::string_view::npos && body[first_content] == '[') {
    std::string error;
    const std::optional<sim::Json> parsed = sim::Json::parse(body, &error);
    if (!parsed.has_value() || !parsed->is_array()) {
      ok = false;
    } else {
      for (const sim::Json& row : parsed->items()) {
        if (!binner_.append_json(row, &staged_columns_)) {
          ok = false;
          break;
        }
        ++rows;
      }
    }
  } else {
    std::size_t pos = 0;
    while (ok && pos < body.size()) {
      std::size_t eol = body.find('\n', pos);
      std::string_view line = body.substr(
          pos, eol == std::string_view::npos ? std::string_view::npos
                                             : eol - pos);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      pos = eol == std::string_view::npos ? body.size() : eol + 1;
      if (line.empty()) continue;  // tolerate blank lines / trailing \n
      if (!binner_.append_csv(line, &staged_columns_)) {
        ok = false;
        break;
      }
      ++rows;
    }
  }
  if (!ok || rows == 0) {
    // Roll the staging columns back so a malformed request contributes
    // nothing to the batch; the connection itself stays healthy (framing
    // was valid), so keep-alive is honored.
    for (auto& col : staged_columns_) col.resize(rows_before);
    enqueue_response(id, 400, "text/plain", "bad feature rows\n",
                     req.keep_alive);
    return;
  }

  StagedRequest staged;
  staged.conn_id = id;
  staged.first_row = staged_rows_;
  staged.rows = rows;
  staged.keep_alive = req.keep_alive;
  staged_requests_.push_back(std::move(staged));
  staged_rows_ += rows;
  stats_.predict_rows += rows;
  conns_.find(id)->second.pending += 1;

  // The flush itself happens at a safe point (settle() / the window
  // timer): callers of handle_request may hold references into conns_,
  // and flushing here would let a full tile close connections under them.
  if (cfg_.batch_window.count() > 0 && !timer_armed_ &&
      staged_rows_ < cfg_.max_batch_rows) {
    batch_timer_.arm_once(cfg_.batch_window);
    timer_armed_ = true;
  }
}

void Server::build_response(std::string* out, int status,
                            std::string_view content_type,
                            std::string_view body, bool keep_alive,
                            std::string_view extra_headers) {
  append_response(out, status, content_type, body, keep_alive, extra_headers);
  if (status < 300) {
    ++stats_.responses_2xx;
  } else if (status < 500) {
    ++stats_.responses_4xx;
  } else {
    ++stats_.responses_5xx;
  }
}

void Server::enqueue_response(std::uint64_t id, int status,
                              std::string_view content_type,
                              std::string_view body, bool keep_alive,
                              std::string_view extra_headers) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  if (conn.pending == 0) {
    build_response(&conn.out, status, content_type, body, keep_alive,
                   extra_headers);
    if (!keep_alive) {
      conn.close_after_flush = true;
      conn.read_closed = true;
    }
    apply_out_watermarks(conn);
    return;
  }
  // Predicts are in flight ahead of this response: give it an ordered
  // slot in the batch so pipelined responses flush in request order.
  StagedRequest staged;
  staged.conn_id = id;
  staged.keep_alive = keep_alive;
  build_response(&staged.immediate, status, content_type, body, keep_alive,
                 extra_headers);
  staged_requests_.push_back(std::move(staged));
  conn.pending += 1;
}

void Server::flush_batch() {
  timer_armed_ = false;
  batch_timer_.disarm();
  if (staged_requests_.empty()) {
    batch_model_.reset();
    return;
  }

  if (staged_rows_ > 0) {
    column_ptrs_.resize(staged_columns_.size());
    batch_out_.resize(staged_rows_);
    // Traversal tiles of at most max_batch_rows. predict_many is per-row
    // independent, so slicing changes nothing numerically -- each row is
    // bit-identical to Model::predict whatever tile it lands in.
    const std::uint64_t tile = std::max<std::uint64_t>(1, cfg_.max_batch_rows);
    for (std::uint64_t off = 0; off < staged_rows_; off += tile) {
      const std::uint64_t rows = std::min(tile, staged_rows_ - off);
      for (std::size_t f = 0; f < staged_columns_.size(); ++f) {
        column_ptrs_[f] = staged_columns_[f].data() + off;
      }
      batch_model_->flat.predict_many(
          column_ptrs_.data(), rows,
          std::span<double>(batch_out_).subspan(off, rows));
      ++stats_.batches;
      const std::size_t bucket = std::min<std::size_t>(
          static_cast<std::size_t>(std::bit_width(rows) - 1),
          stats_.batch_size_hist.size() - 1);
      ++stats_.batch_size_hist[bucket];
    }
  }

  for (const StagedRequest& staged : staged_requests_) {
    auto it = conns_.find(staged.conn_id);
    if (it == conns_.end()) continue;  // connection died while staged
    Connection& conn = it->second;
    if (staged.rows > 0) {
      body_scratch_.clear();
      for (std::uint64_t r = staged.first_row;
           r < staged.first_row + staged.rows; ++r) {
        format_prediction(&body_scratch_, batch_out_[r]);
      }
      header_scratch_.assign("X-Model-Version: ");
      header_scratch_ += std::to_string(batch_model_->version);
      header_scratch_ += "\r\n";
      build_response(&conn.out, 200, "text/plain", body_scratch_,
                     staged.keep_alive, header_scratch_);
    } else {
      conn.out += staged.immediate;  // status class counted at staging
    }
    if (conn.pending > 0) --conn.pending;
    if (!staged.keep_alive) {
      conn.close_after_flush = true;
      conn.read_closed = true;
    }
    apply_out_watermarks(conn);
    dirty_.push_back(staged.conn_id);
  }

  staged_requests_.clear();
  for (auto& col : staged_columns_) col.clear();
  staged_rows_ = 0;
  batch_model_.reset();
}

void Server::apply_out_watermarks(Connection& conn) {
  const std::size_t outstanding = conn.out.size() - conn.out_offset;
  if (outstanding > stats_.out_high_water_bytes) {
    stats_.out_high_water_bytes = outstanding;
  }
  if (!conn.paused_read && outstanding >= cfg_.out_high_watermark) {
    conn.paused_read = true;
    ++stats_.out_buffer_pauses;
  }
}

void Server::pump_output(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  while (conn.out_offset < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      stats_.bytes_out += static_cast<std::uint64_t>(n);
      conn.last_activity = now_;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_connection(id);
    return;
  }
  if (conn.out_offset >= conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
    if ((conn.close_after_flush || conn.read_closed) && conn.pending == 0) {
      close_connection(id);
      return;
    }
  } else if (conn.out_offset > (std::size_t{1} << 16)) {
    conn.out.erase(0, conn.out_offset);
    conn.out_offset = 0;
  }
  const std::size_t outstanding = conn.out.size() - conn.out_offset;
  if (outstanding > cfg_.out_max_bytes) {
    // The peer pipelines requests but does not read responses, and the
    // paused-read watermark could not stop the backlog (responses already
    // owed when the pause landed). Closing is the bound that keeps one
    // misbehaving peer from growing conn.out without limit.
    ++stats_.out_buffer_closes;
    close_connection(id);
    return;
  }
  if (conn.paused_read && outstanding <= cfg_.out_low_watermark) {
    conn.paused_read = false;
    ++stats_.out_buffer_resumes;
    // Bytes buffered while paused may hold complete requests; parse them
    // now and let settle() flush/pump what they produce.
    process_input(id);
    dirty_.push_back(id);
  }
  update_interest(id);
}

void Server::update_interest(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  const bool want_read = !conn.read_closed && !conn.paused_read;
  const bool want_write = conn.out_offset < conn.out.size();
  if (want_read != conn.want_read || want_write != conn.want_write) {
    poller_.modify(conn.fd, id, want_read, want_write);
    conn.want_read = want_read;
    conn.want_write = want_write;
  }
}

void Server::reap_idle() {
  const auto interval =
      std::max(cfg_.idle_timeout / 4, std::chrono::milliseconds(1));
  if (now_ - last_reap_ < interval) return;
  last_reap_ = now_;
  reap_scratch_.clear();
  for (const auto& [id, conn] : conns_) {
    // In-flight work is not idleness; neither is a backlog still being
    // written (that path is bounded by the out watermarks instead).
    if (conn.pending > 0 || conn.reload_waiting) continue;
    if (conn.out_offset < conn.out.size()) continue;
    if (now_ - conn.last_activity >= cfg_.idle_timeout) {
      reap_scratch_.push_back(id);
    }
  }
  for (const std::uint64_t id : reap_scratch_) {
    ++stats_.idle_reaped;
    close_connection(id);
  }
}

void Server::drain_reload() {
  std::optional<ReloadDone> done;
  {
    const std::scoped_lock lock(reload_mu_);
    done.swap(finished_reload_);
  }
  if (!done.has_value()) return;
  const auto drain_begin = std::chrono::steady_clock::now();
  reload_inflight_ = false;
  if (done->status == gbdt::ModelFileStatus::kOk) {
    ++stats_.reloads;
  } else {
    ++stats_.reloads_rejected;
  }
  auto it = conns_.find(done->conn_id);
  if (it != conns_.end()) {
    it->second.reload_waiting = false;
    if (done->status == gbdt::ModelFileStatus::kOk) {
      body_scratch_.assign("version ");
      body_scratch_ += std::to_string(done->version);
      body_scratch_ += '\n';
      enqueue_response(done->conn_id, 200, "text/plain", body_scratch_,
                       done->keep_alive);
    } else {
      body_scratch_.assign("reload failed: ");
      body_scratch_ += gbdt::model_file_status_name(done->status);
      body_scratch_ += '\n';
      enqueue_response(done->conn_id, 409, "text/plain", body_scratch_,
                       done->keep_alive);
    }
    // The response is in line; requests the connection pipelined behind
    // the reload may now parse (they stay ordered after it).
    process_input(done->conn_id);
    dirty_.push_back(done->conn_id);
  }
  const std::uint64_t stall_us = elapsed_us(drain_begin);
  stats_.reload_stall_us_total += stall_us;
  stats_.reload_stall_us_max = std::max(stats_.reload_stall_us_max, stall_us);
}

void Server::reload_worker_main() {
  std::unique_lock<std::mutex> lock(reload_mu_);
  while (true) {
    reload_cv_.wait(lock, [this] {
      return reload_shutdown_ || pending_reload_.has_value();
    });
    if (reload_shutdown_) return;
    ReloadJob job = std::move(*pending_reload_);
    pending_reload_.reset();
    lock.unlock();
    // The expensive part -- file read, CRC check, FlatEnsemble flatten --
    // runs here, off the event loop. ModelSlot::install_from_file is
    // thread-safe and flattens outside its lock; on failure the slot
    // keeps serving the previous version.
    std::uint64_t version = 0;
    const gbdt::ModelFileStatus status =
        slot_->install_from_file(job.path, &version);
    lock.lock();
    finished_reload_ = ReloadDone{job.conn_id, job.keep_alive, status,
                                  version};
    wake_.notify();
    reload_done_cv_.notify_one();
  }
}

std::string Server::stats_json() const {
  sim::Json j = sim::Json::object();
  j.set("connections_accepted", stats_.connections_accepted);
  j.set("connections_rejected", stats_.connections_rejected);
  j.set("open_connections", std::uint64_t{conns_.size()});
  j.set("requests", stats_.requests);
  j.set("predict_rows", stats_.predict_rows);
  j.set("batches", stats_.batches);
  j.set("bytes_in", stats_.bytes_in);
  j.set("bytes_out", stats_.bytes_out);
  j.set("responses_2xx", stats_.responses_2xx);
  j.set("responses_4xx", stats_.responses_4xx);
  j.set("responses_5xx", stats_.responses_5xx);
  j.set("requests_shed", stats_.requests_shed);
  j.set("reloads", stats_.reloads);
  j.set("reloads_rejected", stats_.reloads_rejected);
  j.set("reload_in_flight", std::uint64_t{reload_inflight_ ? 1u : 0u});
  j.set("reload_stall_us_total", stats_.reload_stall_us_total);
  j.set("reload_stall_us_max", stats_.reload_stall_us_max);
  j.set("out_buffer_pauses", stats_.out_buffer_pauses);
  j.set("out_buffer_resumes", stats_.out_buffer_resumes);
  j.set("out_buffer_closes", stats_.out_buffer_closes);
  j.set("out_high_water_bytes", stats_.out_high_water_bytes);
  j.set("idle_reaped", stats_.idle_reaped);
  j.set("staged_rows", staged_rows_);
  j.set("staged_requests", std::uint64_t{staged_requests_.size()});
  sim::Json hist = sim::Json::array();
  for (const std::uint64_t count : stats_.batch_size_hist) {
    hist.push_back(count);
  }
  j.set("batch_size_hist", std::move(hist));
  j.set("buffer_allocations", pool_.allocations());
  j.set("buffer_acquires", pool_.acquires());
  const auto model = slot_->current();
  j.set("model_version", model == nullptr ? std::uint64_t{0} : model->version);
  return j.dump();
}

}  // namespace booster::serve
