#include "serve/row_binner.h"

#include <charconv>
#include <cmath>

#include "sim/json.h"

namespace booster::serve {

namespace {

/// One raw cell, in the field's native type. Parse failures are distinct
/// from missing: a missing value has learned routing, garbage does not.
struct Cell {
  bool ok = false;
  bool missing = false;
  float numeric = 0.0f;
  std::int32_t categorical = 0;
};

Cell parse_cell(std::string_view text, gbdt::FieldKind kind) {
  Cell cell;
  if (text.empty() || text == "nan" || text == "NaN") {
    cell.ok = cell.missing = true;
    return cell;
  }
  if (kind == gbdt::FieldKind::kNumeric) {
    // Direct text->float32 parse (correctly rounded): a value formatted
    // with >= 9 significant digits round-trips to the identical float the
    // client started from -- the first link in the bit-identity chain.
    const auto [end, ec] = std::from_chars(
        text.data(), text.data() + text.size(), cell.numeric);
    cell.ok = ec == std::errc() && end == text.data() + text.size();
  } else {
    const auto [end, ec] = std::from_chars(
        text.data(), text.data() + text.size(), cell.categorical);
    cell.ok = ec == std::errc() && end == text.data() + text.size();
  }
  return cell;
}

gbdt::BinIndex bin_cell(const Cell& cell, const gbdt::FieldBins& fb) {
  if (cell.missing) return gbdt::BinIndex{0};
  return fb.kind == gbdt::FieldKind::kNumeric
             ? gbdt::numeric_value_bin(cell.numeric, fb)
             : gbdt::categorical_value_bin(cell.categorical, fb);
}

}  // namespace

RowBinner::RowBinner(const gbdt::BinnedDataset& data) {
  fields_.reserve(data.num_fields());
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    fields_.push_back(data.field_bins(f));
  }
}

void RowBinner::reset_columns(
    std::vector<std::vector<gbdt::BinIndex>>* columns) const {
  columns->resize(fields_.size());
  for (auto& col : *columns) col.clear();
}

bool RowBinner::append_csv(
    std::string_view line,
    std::vector<std::vector<gbdt::BinIndex>>* columns) const {
  std::vector<gbdt::BinIndex> row_bins;  // tiny; see note below
  std::size_t pos = 0;
  std::uint32_t f = 0;
  // Parse and validate the whole row before touching `columns`, so a
  // malformed row leaves the staged batch untouched. The per-row scratch
  // stays function-local (not thread_local) because rows are short and
  // the server parses on one thread anyway; measure before complicating.
  row_bins.reserve(fields_.size());
  while (true) {
    if (f >= fields_.size()) return false;  // too many cells
    const std::size_t comma = line.find(',', pos);
    const std::string_view cell_text =
        comma == std::string_view::npos ? line.substr(pos)
                                        : line.substr(pos, comma - pos);
    const Cell cell = parse_cell(cell_text, fields_[f].kind);
    if (!cell.ok) return false;
    row_bins.push_back(bin_cell(cell, fields_[f]));
    ++f;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (f != fields_.size()) return false;  // too few cells
  for (std::uint32_t i = 0; i < fields_.size(); ++i) {
    (*columns)[i].push_back(row_bins[i]);
  }
  return true;
}

bool RowBinner::append_json(
    const sim::Json& row,
    std::vector<std::vector<gbdt::BinIndex>>* columns) const {
  if (!row.is_array() || row.size() != fields_.size()) return false;
  std::vector<gbdt::BinIndex> row_bins;
  row_bins.reserve(fields_.size());
  for (std::uint32_t f = 0; f < fields_.size(); ++f) {
    const sim::Json& v = row.items()[f];
    Cell cell;
    if (v.is_null()) {
      cell.ok = cell.missing = true;
    } else if (v.is_number()) {
      cell.ok = true;
      const double d = v.as_double();
      if (fields_[f].kind == gbdt::FieldKind::kNumeric) {
        // JSON numbers are doubles; a client serializing a float32 sends
        // a double exactly equal to it, so this narrowing is exact for
        // round-tripped values (and NaN text is not valid JSON -- missing
        // is spelled null).
        cell.numeric = static_cast<float>(d);
        if (std::isnan(cell.numeric)) cell.missing = true;
      } else {
        const auto i = static_cast<std::int32_t>(d);
        if (static_cast<double>(i) != d) return false;  // non-integer category
        cell.categorical = i;
      }
    } else {
      return false;
    }
    row_bins.push_back(bin_cell(cell, fields_[f]));
  }
  for (std::uint32_t i = 0; i < fields_.size(); ++i) {
    (*columns)[i].push_back(row_bins[i]);
  }
  return true;
}

}  // namespace booster::serve
