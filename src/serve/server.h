// The prediction server: a single-threaded HTTP/1.1 event loop on the
// shared epoll ipc::Poller (the same readiness idiom the TCP training
// transport uses) that turns concurrent request streams into *batched*
// ensemble traversals.
//
// The core serving idea mirrors the trainer's blocked step-5 kernel: rows
// arriving on different connections inside one batching window are staged
// column-major and pushed through FlatEnsemble's column-pointer
// predict_many in one blocked pass, so the flat node tables are walked
// once per tile of rows instead of once per request -- tree-node cache
// misses amortize across connections exactly as they amortize across
// records in training. Batching changes *nothing* numerically: each row's
// prediction is bit-identical to local Model::predict, whatever batch it
// lands in (asserted end-to-end by tests/test_serve.cc and bench_serve).
//
// Endpoints:
//   POST /predict  body = feature rows, CSV lines or a JSON array of
//                  arrays; responds text/plain, one %.17g prediction per
//                  row, plus X-Model-Version
//   GET  /healthz  liveness probe
//   GET  /stats    serving counters as JSON
//   POST /reload   body = path of a checked model container; swaps the
//                  served model atomically (in-flight batches finish on
//                  the old version), 409 + distinct status text on a
//                  corrupt/truncated file
//
// Reload stall bound: /reload runs the container read, CRC check, and
// FlatEnsemble flattening inline on the event loop, so every in-flight
// connection stalls for O(model bytes) -- microseconds for bench-sized
// ensembles, but linear in tree count x nodes. No request is ever dropped
// or torn by it (requests queue in the kernel socket buffers and the
// already-staged batch finishes on its pinned old model); the cost is pure
// added latency, measured and exported as reload_stall_us_total /
// reload_stall_us_max in GET /stats. If reloads of very large models ever
// need to overlap serving, move the load+flatten to a helper thread and
// hand the finished ServedModel to the loop; the stall stats are the
// trigger for that change.
//
// Per-connection state machines ride on a recycling BufferPool, so the
// steady state (connection churn included) allocates nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gbdt/binning.h"
#include "ipc/poller.h"
#include "serve/buffer_pool.h"
#include "serve/http.h"
#include "serve/model_slot.h"
#include "serve/row_binner.h"

namespace booster::serve {

struct ServerConfig {
  /// Loopback port; 0 asks the kernel (read the result from port()).
  std::uint16_t port = 0;
  /// How long the first staged row may wait for connection-mates before
  /// the batch flushes. Zero = flush at the end of every poll round: rows
  /// that arrived in one readiness sweep still batch, nothing ever waits
  /// for a timer.
  std::chrono::microseconds batch_window{0};
  /// Rows that force an immediate flush regardless of the window.
  std::uint32_t max_batch_rows = 1024;
  std::uint32_t max_connections = 1024;
  ParserLimits limits;
};

/// Serving counters. Owned and mutated by the event-loop thread;
/// externally read either via GET /stats (on-loop, always consistent) or
/// via Server::stats() after run() returns.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections
  std::uint64_t requests = 0;              // all parsed requests
  std::uint64_t predict_rows = 0;
  std::uint64_t batches = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t reloads = 0;
  /// Wall time /reload attempts (successful or not) spent blocking the
  /// event loop on load + CRC + flatten -- the stall every concurrent
  /// connection experiences (see the reload stall bound above).
  std::uint64_t reload_stall_us_total = 0;
  std::uint64_t reload_stall_us_max = 0;
  /// batch_size_hist[b] counts flushed batches with row count in
  /// [2^b, 2^(b+1)) -- the distribution that shows whether concurrent
  /// connections actually coalesce.
  std::vector<std::uint64_t> batch_size_hist = std::vector<std::uint64_t>(16);
  std::uint64_t buffer_allocations = 0;
  std::uint64_t buffer_acquires = 0;
};

class Server {
 public:
  /// Binds and listens immediately (so port() is valid before run());
  /// aborts if the port cannot be bound. `slot` must outlive the server;
  /// `binning_reference` provides the frozen bin metadata and is not
  /// retained.
  Server(ServerConfig cfg, ModelSlot* slot,
         const gbdt::BinnedDataset& binning_reference);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until stop().
  void run();

  /// Thread-safe; run() returns promptly (current batch flushes first).
  void stop();

  /// Counter snapshot; see ServerStats for the threading contract.
  const ServerStats& stats() const { return stats_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;   // pooled
    std::string out;  // pooled
    std::size_t out_offset = 0;
    RequestParser parser;
    /// Staged /predict requests awaiting the batch flush. While > 0,
    /// parsing of non-predict requests pauses so responses stay in
    /// request order.
    std::uint32_t pending = 0;
    bool read_closed = false;       // peer EOF / error: never read again
    bool close_after_flush = false; // close once `out` fully drains
    bool want_read = true;          // EPOLLIN currently requested
    bool want_write = false;        // EPOLLOUT currently requested
  };

  /// One response slot in batch order. A /predict slot (`rows` > 0) owns
  /// `rows` predictions starting at `first_row` of the batch; a slot with
  /// rows == 0 carries a prebuilt `immediate` response that was parsed
  /// *behind* a staged predict on the same connection and must keep its
  /// place in line -- this is what keeps pipelined responses in request
  /// order across the batch boundary.
  struct StagedRequest {
    std::uint64_t conn_id = 0;
    std::uint64_t first_row = 0;
    std::uint32_t rows = 0;
    bool keep_alive = true;
    std::string immediate;
  };

  void accept_new_connections();
  void close_connection(std::uint64_t id);
  void handle_readable(std::uint64_t id);
  /// Parses every complete request out of conn.in.
  void process_input(std::uint64_t id);
  void handle_request(std::uint64_t id, Request&& req);
  void handle_predict(std::uint64_t id, const Request& req);
  /// Serializes a response (counting its status class) into `out` -- a
  /// connection buffer or a staged slot's `immediate`.
  void build_response(std::string* out, int status,
                      std::string_view content_type, std::string_view body,
                      bool keep_alive, std::string_view extra_headers = {});
  /// Routes a response to the connection: straight into conn.out when
  /// nothing is pending, into an ordered staged slot otherwise.
  void enqueue_response(std::uint64_t id, int status,
                        std::string_view content_type, std::string_view body,
                        bool keep_alive, std::string_view extra_headers = {});
  void flush_batch();
  /// Sends what it can of conn.out now; arms EPOLLOUT on short writes,
  /// closes when drained and the connection is finished.
  void pump_output(std::uint64_t id);
  void update_interest(std::uint64_t id);
  std::string stats_json() const;

  ServerConfig cfg_;
  ModelSlot* slot_;
  RowBinner binner_;

  ipc::Poller poller_;
  ipc::TimerFd batch_timer_;
  ipc::WakeFd wake_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  std::unordered_map<std::uint64_t, Connection> conns_;
  std::uint64_t next_conn_id_ = 0;
  BufferPool pool_;

  // Batch staging: per-field columns + per-request slices, reused across
  // batches (capacity-warm, allocation-free in steady state).
  std::vector<std::vector<gbdt::BinIndex>> staged_columns_;
  std::vector<StagedRequest> staged_requests_;
  /// Connections whose `out` grew during a flush; pumped at the next safe
  /// point of the event loop (a flush must never close a connection out
  /// from under a caller holding a reference into conns_).
  std::vector<std::uint64_t> dirty_;
  std::uint64_t staged_rows_ = 0;
  bool timer_armed_ = false;
  /// The model pinned when the current batch's first row was staged: the
  /// whole batch runs on it even if a reload lands mid-window.
  std::shared_ptr<const ServedModel> batch_model_;
  std::vector<const gbdt::BinIndex*> column_ptrs_;
  std::vector<double> batch_out_;
  std::string body_scratch_;
  std::string header_scratch_;

  ServerStats stats_;
};

}  // namespace booster::serve
