// The prediction server: a single-threaded HTTP/1.1 event loop on the
// shared epoll ipc::Poller (the same readiness idiom the TCP training
// transport uses) that turns concurrent request streams into *batched*
// ensemble traversals.
//
// The core serving idea mirrors the trainer's blocked step-5 kernel: rows
// arriving on different connections inside one batching window are staged
// column-major and pushed through FlatEnsemble's column-pointer
// predict_many in blocked passes of at most max_batch_rows, so the flat
// node tables are walked once per tile of rows instead of once per
// request -- tree-node cache misses amortize across connections exactly as
// they amortize across records in training. Batching changes *nothing*
// numerically: predict_many is per-row independent, so each row's
// prediction is bit-identical to local Model::predict, whatever batch or
// sub-batch it lands in (asserted end-to-end by tests/test_serve.cc and
// bench_serve).
//
// Endpoints:
//   POST /predict  body = feature rows, CSV lines or a JSON array of
//                  arrays; responds text/plain, one %.17g prediction per
//                  row, plus X-Model-Version. 503 + Retry-After when shed
//                  by admission control (see below).
//   GET  /healthz  liveness probe
//   GET  /stats    serving counters as JSON
//   POST /reload   body = path of a checked model container; swaps the
//                  served model atomically (in-flight batches finish on
//                  the old version), 409 + distinct status text on a
//                  corrupt/truncated file or when a reload is already in
//                  flight
// Targets are routed on the path only: anything after a '?' is ignored
// (the raw target, query string included, is what the parser delivers).
//
// Overload robustness -- four cooperating mechanisms, all measured in
// GET /stats:
//
//   Admission control. The staged batch queue is bounded by
//   shed_rows_watermark / shed_requests_watermark: a /predict that arrives
//   past either watermark is shed immediately with 503 + Retry-After
//   (requests_shed), so every *admitted* request has a bounded amount of
//   work queued ahead of it and p999 stays bounded under overload instead
//   of growing with the offered load.
//
//   Off-loop reload. /reload hands the container path to a dedicated
//   reload worker thread which does the file read, CRC check, and
//   FlatEnsemble flattening off the event loop, then posts the result
//   through a mailbox drained via the loop's WakeFd. The requester gets
//   its response when the install lands; concurrent requests on other
//   connections are never stalled by the load (reload_stall_us_total/max
//   now measure only the on-loop hand-off and result-drain slivers, so
//   they stay near zero however large the model). At most one reload is
//   in flight; a /reload arriving while one is running is refused with
//   409 (reloads_rejected). In-flight batches still finish on the model
//   they pinned -- a swap changes the *next* batch, never a running one.
//
//   Write-side backpressure. conn.out is bounded: past out_high_watermark
//   the connection's read interest is dropped (out_buffer_pauses) so a
//   peer that pipelines predicts without reading responses stops being
//   parsed and batched; reads resume once the backlog drains to
//   out_low_watermark (out_buffer_resumes). A peer whose backlog still
//   reaches out_max_bytes is hard-closed (out_buffer_closes) -- the bound
//   that turns an unread-response OOM vector into a bounded buffer.
//
//   Idle reaping. A coarse periodic sweep (every idle_timeout/4) closes
//   connections with no request in flight and no socket activity for
//   idle_timeout (idle_reaped), so slow-loris peers cannot pin
//   max_connections slots. idle_timeout zero disables the sweep.
//
// Read fairness: at most max_read_per_round bytes are drained from one
// connection per readiness round; a peer with more buffered is re-visited
// on the next epoll round (the poller is level-triggered, so a socket
// with unread bytes reports readable again immediately), after every
// other ready connection has had its turn.
//
// Per-connection state machines ride on a recycling BufferPool, so the
// steady state (connection churn included) allocates nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "gbdt/binning.h"
#include "ipc/poller.h"
#include "serve/buffer_pool.h"
#include "serve/http.h"
#include "serve/model_slot.h"
#include "serve/row_binner.h"

namespace booster::serve {

struct ServerConfig {
  /// Loopback port; 0 asks the kernel (read the result from port()).
  std::uint16_t port = 0;
  /// How long the first staged row may wait for connection-mates before
  /// the batch flushes. Zero = flush at the end of every poll round: rows
  /// that arrived in one readiness sweep still batch, nothing ever waits
  /// for a timer.
  std::chrono::microseconds batch_window{0};
  /// Traversal tile size: a flush runs predict_many in sub-batches of at
  /// most this many rows, and with a nonzero window the batch flushes as
  /// soon as the staged backlog reaches it.
  std::uint32_t max_batch_rows = 1024;
  std::uint32_t max_connections = 1024;
  /// Admission watermarks: a /predict arriving while staged_rows_ (resp.
  /// the staged-request count) is at or past this is shed with 503 +
  /// Retry-After instead of joining the queue. Defaults are far above
  /// anything a closed-loop client reaches; lower them to make shedding
  /// kick in earlier under open-loop overload.
  std::uint64_t shed_rows_watermark = 16384;
  std::uint64_t shed_requests_watermark = 4096;
  /// Write-side backpressure on conn.out (unsent response bytes): past
  /// `high` the connection's read interest drops (it stops being parsed
  /// and batched), reads resume at `low`, and a backlog that still hits
  /// `max` hard-closes the connection.
  std::size_t out_high_watermark = std::size_t{1} << 20;   // 1 MiB
  std::size_t out_low_watermark = std::size_t{128} << 10;  // 128 KiB
  std::size_t out_max_bytes = std::size_t{16} << 20;       // 16 MiB
  /// Read-fairness cap: bytes drained from one connection per readiness
  /// round before the loop moves on (level-triggered epoll re-reports the
  /// socket next round).
  std::size_t max_read_per_round = std::size_t{256} << 10;  // 256 KiB
  /// Connections with no in-flight request and no socket activity for
  /// this long are closed by the periodic sweep; zero disables reaping.
  std::chrono::milliseconds idle_timeout{60000};
  /// When positive, SO_SNDBUF for every accepted connection. Pinning the
  /// kernel send buffer disables autotuning (which otherwise grows it
  /// toward tcp_wmem[2], multi-MiB on stock kernels), bounding per-
  /// connection kernel memory and making out_max_bytes bite after a
  /// predictable amount of kernel-side absorption. Zero keeps the kernel
  /// default.
  int so_sndbuf = 0;
  ParserLimits limits;
};

/// Serving counters. Owned and mutated by the event-loop thread;
/// externally read either via GET /stats (on-loop, always consistent) or
/// via Server::stats() after run() returns.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // over max_connections
  /// All requests that produced a response, parse-rejected ones
  /// (400/413/431/501) included -- responses_* never exceeds this.
  std::uint64_t requests = 0;
  std::uint64_t predict_rows = 0;
  std::uint64_t batches = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t responses_2xx = 0;
  std::uint64_t responses_4xx = 0;
  std::uint64_t responses_5xx = 0;
  std::uint64_t reloads = 0;
  /// /predict requests shed by admission control (503 + Retry-After).
  std::uint64_t requests_shed = 0;
  /// /reload requests refused: one already in flight, or the load failed.
  std::uint64_t reloads_rejected = 0;
  /// Write-side backpressure transitions (see ServerConfig).
  std::uint64_t out_buffer_pauses = 0;
  std::uint64_t out_buffer_resumes = 0;
  std::uint64_t out_buffer_closes = 0;
  /// High-water mark of any single connection's unsent response backlog.
  std::uint64_t out_high_water_bytes = 0;
  /// Connections closed by the idle sweep.
  std::uint64_t idle_reaped = 0;
  /// Wall time /reload handling spent *on the event loop*: the hand-off
  /// to the reload worker plus the result drain. The load + CRC + flatten
  /// itself runs on the worker thread and is deliberately not in here --
  /// these counters exist to prove the loop no longer stalls O(model
  /// bytes) per reload.
  std::uint64_t reload_stall_us_total = 0;
  std::uint64_t reload_stall_us_max = 0;
  /// batch_size_hist[b] counts flushed sub-batches with row count in
  /// [2^b, 2^(b+1)) -- the distribution that shows whether concurrent
  /// connections actually coalesce.
  std::vector<std::uint64_t> batch_size_hist = std::vector<std::uint64_t>(16);
  std::uint64_t buffer_allocations = 0;
  std::uint64_t buffer_acquires = 0;
};

class Server {
 public:
  /// Binds and listens immediately (so port() is valid before run());
  /// aborts if the port cannot be bound. `slot` must outlive the server;
  /// `binning_reference` provides the frozen bin metadata and is not
  /// retained. Starts the reload worker thread (joined in the dtor).
  Server(ServerConfig cfg, ModelSlot* slot,
         const gbdt::BinnedDataset& binning_reference);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until stop().
  void run();

  /// Thread-safe; run() returns promptly (current batch flushes and an
  /// in-flight reload lands first).
  void stop();

  /// Counter snapshot; see ServerStats for the threading contract.
  const ServerStats& stats() const { return stats_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;   // pooled
    std::string out;  // pooled
    std::size_t out_offset = 0;
    RequestParser parser;
    /// Staged /predict requests awaiting the batch flush. While > 0,
    /// parsing of non-predict requests pauses so responses stay in
    /// request order.
    std::uint32_t pending = 0;
    bool read_closed = false;       // peer EOF / error: never read again
    bool close_after_flush = false; // close once `out` fully drains
    /// Read interest dropped by write-side backpressure; parsing and
    /// recv are both suspended until the out backlog drains to the low
    /// watermark.
    bool paused_read = false;
    /// A /reload from this connection is on the worker; parsing pauses
    /// until its response is enqueued so pipelined responses keep
    /// request order.
    bool reload_waiting = false;
    bool want_read = true;          // EPOLLIN currently requested
    bool want_write = false;        // EPOLLOUT currently requested
    /// Last socket progress (accept, recv bytes, send bytes); the idle
    /// sweep compares against it.
    std::chrono::steady_clock::time_point last_activity;
  };

  /// One response slot in batch order. A /predict slot (`rows` > 0) owns
  /// `rows` predictions starting at `first_row` of the batch; a slot with
  /// rows == 0 carries a prebuilt `immediate` response that was parsed
  /// *behind* a staged predict on the same connection and must keep its
  /// place in line -- this is what keeps pipelined responses in request
  /// order across the batch boundary.
  struct StagedRequest {
    std::uint64_t conn_id = 0;
    std::uint64_t first_row = 0;
    std::uint32_t rows = 0;
    bool keep_alive = true;
    std::string immediate;
  };

  /// A reload accepted from `conn_id`, queued for the worker thread.
  struct ReloadJob {
    std::uint64_t conn_id = 0;
    bool keep_alive = true;
    std::string path;
  };
  /// The worker's finished install, posted back for the loop to drain.
  struct ReloadDone {
    std::uint64_t conn_id = 0;
    bool keep_alive = true;
    gbdt::ModelFileStatus status = gbdt::ModelFileStatus::kOk;
    std::uint64_t version = 0;
  };

  void accept_new_connections();
  void close_connection(std::uint64_t id);
  void handle_readable(std::uint64_t id);
  /// Parses every complete request out of conn.in; stops early while the
  /// connection is paused by backpressure or waiting on a reload.
  void process_input(std::uint64_t id);
  void handle_request(std::uint64_t id, Request&& req);
  void handle_predict(std::uint64_t id, const Request& req);
  /// Serializes a response (counting its status class) into `out` -- a
  /// connection buffer or a staged slot's `immediate`.
  void build_response(std::string* out, int status,
                      std::string_view content_type, std::string_view body,
                      bool keep_alive, std::string_view extra_headers = {});
  /// Routes a response to the connection: straight into conn.out when
  /// nothing is pending, into an ordered staged slot otherwise.
  void enqueue_response(std::uint64_t id, int status,
                        std::string_view content_type, std::string_view body,
                        bool keep_alive, std::string_view extra_headers = {});
  void flush_batch();
  /// Repeats {flush if due, pump dirty connections} until quiescent --
  /// the end-of-round settling point where resumed connections' freshly
  /// parsed requests still flush in the same round.
  void settle();
  /// Sends what it can of conn.out now; arms EPOLLOUT on short writes,
  /// closes when drained and the connection is finished, enforces the
  /// out_max_bytes hard close, and resumes paused reads at the low
  /// watermark.
  void pump_output(std::uint64_t id);
  void update_interest(std::uint64_t id);
  /// Tracks the out-backlog high-water mark and pauses reads past the
  /// high watermark. Called wherever response bytes are appended.
  void apply_out_watermarks(Connection& conn);
  /// Closes connections idle past cfg_.idle_timeout (coarse sweep, at
  /// most every idle_timeout/4).
  void reap_idle();
  /// Moves a finished reload out of the mailbox, responds to the
  /// requester, and resumes its parsing.
  void drain_reload();
  void reload_worker_main();
  std::string stats_json() const;

  ServerConfig cfg_;
  ModelSlot* slot_;
  RowBinner binner_;

  ipc::Poller poller_;
  ipc::TimerFd batch_timer_;
  ipc::WakeFd wake_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  std::unordered_map<std::uint64_t, Connection> conns_;
  std::uint64_t next_conn_id_ = 0;
  BufferPool pool_;

  // Batch staging: per-field columns + per-request slices, reused across
  // batches (capacity-warm, allocation-free in steady state).
  std::vector<std::vector<gbdt::BinIndex>> staged_columns_;
  std::vector<StagedRequest> staged_requests_;
  /// Connections whose `out` grew during a flush; pumped at the next safe
  /// point of the event loop (a flush must never close a connection out
  /// from under a caller holding a reference into conns_).
  std::vector<std::uint64_t> dirty_;
  std::vector<std::uint64_t> pump_scratch_;
  std::vector<std::uint64_t> reap_scratch_;
  std::uint64_t staged_rows_ = 0;
  bool timer_armed_ = false;
  /// The model pinned when the current batch's first row was staged: the
  /// whole batch runs on it even if a reload lands mid-window.
  std::shared_ptr<const ServedModel> batch_model_;
  std::vector<const gbdt::BinIndex*> column_ptrs_;
  std::vector<double> batch_out_;
  std::string body_scratch_;
  std::string header_scratch_;

  /// Reload worker hand-off. The loop thread owns reload_inflight_ (at
  /// most one job between submit and drain); the mailbox pair below is
  /// guarded by reload_mu_. The worker signals completion through both
  /// wake_ (normal drain on the loop) and reload_done_cv_ (the shutdown
  /// path waits for an in-flight install to land before run() returns).
  std::thread reload_thread_;
  std::mutex reload_mu_;
  std::condition_variable reload_cv_;       // worker waits for jobs
  std::condition_variable reload_done_cv_;  // shutdown waits for results
  std::optional<ReloadJob> pending_reload_;   // guarded by reload_mu_
  std::optional<ReloadDone> finished_reload_; // guarded by reload_mu_
  bool reload_shutdown_ = false;              // guarded by reload_mu_
  bool reload_inflight_ = false;              // loop thread only

  /// The loop's per-round clock (one steady_clock read per round, shared
  /// by activity stamps and the idle sweep).
  std::chrono::steady_clock::time_point now_;
  std::chrono::steady_clock::time_point last_reap_;

  ServerStats stats_;
};

}  // namespace booster::serve
