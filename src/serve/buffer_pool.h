// Recycling byte-buffer pool for the serving event loop: per-connection
// input/output buffers are acquired on accept and released on close, so a
// long-running server reaches a steady state where no connection churn
// allocates -- the serving mirror of the trainer's HistogramPool. The
// counters make that property testable instead of aspirational:
// allocations() must plateau while acquires() keeps climbing.
//
// Retention is bounded on both axes: a released buffer keeps at most
// kMaxRetainedCapacity bytes of capacity (one near-limit request body must
// not pin megabytes in the free list for the server's lifetime), and the
// idle list holds at most kMaxIdleBuffers entries (a burst of connections
// must not leave an unbounded free list behind after it drains).
//
// Single-threaded by design (the server's event loop owns it); no locks.
// Every server close route -- graceful drain, protocol rejection, the
// out_max_bytes hard close, and the idle-reap sweep -- releases both of a
// connection's buffers back here exactly once (close_connection is the
// single funnel), which the ASan serve leg in scripts/check.sh exercises.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace booster::serve {

class BufferPool {
 public:
  /// Largest per-buffer capacity the pool will retain. Covers typical
  /// request/response buffers (a few KiB) with headroom; an oversized
  /// buffer is released with its capacity dropped, not pinned.
  static constexpr std::size_t kMaxRetainedCapacity = 64 * 1024;
  /// Upper bound on the idle list -- beyond the connection high-water
  /// mark this many buffers, releases free their memory instead.
  static constexpr std::size_t kMaxIdleBuffers = 64;

  /// Returns an empty buffer, reusing a released one's capacity when
  /// available; allocates a fresh buffer (counted) otherwise.
  std::string acquire() {
    ++acquires_;
    if (!free_.empty()) {
      std::string buf = std::move(free_.back());
      free_.pop_back();
      buf.clear();  // keeps capacity
      return buf;
    }
    ++allocations_;
    return std::string();
  }

  /// Returns a buffer to the pool; its capacity is what makes the next
  /// acquire() allocation-free. Oversized buffers (capacity beyond
  /// kMaxRetainedCapacity) are shrunk to an empty string before retention,
  /// and releases past kMaxIdleBuffers are dropped outright.
  void release(std::string buf) {
    if (free_.size() >= kMaxIdleBuffers) {
      ++dropped_;
      return;
    }
    if (buf.capacity() > kMaxRetainedCapacity) {
      // shrink_to_fit on a cleared string is non-binding; swapping with a
      // fresh string guarantees the capacity is actually given back.
      std::string().swap(buf);
      ++shrunk_;
    }
    free_.push_back(std::move(buf));
  }

  /// Buffers created fresh (not recycled) -- the steady-state invariant
  /// is that this stops growing once the connection high-water mark is
  /// reached.
  std::uint64_t allocations() const { return allocations_; }
  std::uint64_t acquires() const { return acquires_; }
  std::size_t idle() const { return free_.size(); }
  /// Oversized buffers whose capacity was released instead of retained.
  std::uint64_t shrunk() const { return shrunk_; }
  /// Releases discarded because the idle list was already full.
  std::uint64_t dropped() const { return dropped_; }
  /// Total capacity currently pinned by the idle list (bounded by
  /// kMaxIdleBuffers * kMaxRetainedCapacity by construction).
  std::size_t idle_capacity() const {
    std::size_t total = 0;
    for (const std::string& b : free_) total += b.capacity();
    return total;
  }

 private:
  std::vector<std::string> free_;
  std::uint64_t allocations_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t shrunk_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace booster::serve
