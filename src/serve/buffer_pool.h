// Recycling byte-buffer pool for the serving event loop: per-connection
// input/output buffers are acquired on accept and released on close, so a
// long-running server reaches a steady state where no connection churn
// allocates -- the serving mirror of the trainer's HistogramPool. The
// counters make that property testable instead of aspirational:
// allocations() must plateau while acquires() keeps climbing.
//
// Single-threaded by design (the server's event loop owns it); no locks.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace booster::serve {

class BufferPool {
 public:
  /// Returns an empty buffer, reusing a released one's capacity when
  /// available; allocates a fresh buffer (counted) otherwise.
  std::string acquire() {
    ++acquires_;
    if (!free_.empty()) {
      std::string buf = std::move(free_.back());
      free_.pop_back();
      buf.clear();  // keeps capacity
      return buf;
    }
    ++allocations_;
    return std::string();
  }

  /// Returns a buffer to the pool; its capacity is what makes the next
  /// acquire() allocation-free.
  void release(std::string buf) { free_.push_back(std::move(buf)); }

  /// Buffers created fresh (not recycled) -- the steady-state invariant
  /// is that this stops growing once the connection high-water mark is
  /// reached.
  std::uint64_t allocations() const { return allocations_; }
  std::uint64_t acquires() const { return acquires_; }
  std::size_t idle() const { return free_.size(); }

 private:
  std::vector<std::string> free_;
  std::uint64_t allocations_ = 0;
  std::uint64_t acquires_ = 0;
};

}  // namespace booster::serve
