#!/usr/bin/env bash
# CI entry point: configure + build with warnings-as-errors, run the tier-1
# test suite, run an ASan+UBSan build-and-ctest leg (the co-sim's retry
# loops and engine shims are exactly where UB hides), run a TSan leg over
# the concurrent subset (threaded rank worlds, TCP pump loops, thread
# pool), then run the training hot-path and closed-loop benches in
# Release.
#
#   scripts/check.sh [build-dir]
#
# Environment:
#   BOOSTER_THREADS   thread count for the bench's threaded leg (default 8)
#   BOOSTER_SKIP_SANITIZE=1   skip the sanitizer legs (local quick runs)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DBOOSTER_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Tier-1 suite twice: once at the host's native SIMD dispatch level (the
# widest of scalar/avx2/avx512 the CPU supports) and once forced scalar,
# proving the dispatch override works end to end and that every
# bit-identity assertion holds on both the wide and the portable kernels.
# (The in-process cross-level EXPECT_EQ sweeps live in test_simd and
# test_hotpath_equivalence; this leg additionally covers the env-var path.)
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
BOOSTER_SIMD=scalar ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -j "$(nproc)"

# ASan+UBSan leg: RelWithDebInfo keeps it fast enough for CI while the
# sanitizers still see every retry loop and shim. -fno-sanitize-recover
# turns any UB finding into a test failure. The SIMD kernels run here at
# the native dispatch level too, so the wide loads/stores and gathers are
# sanitizer-checked, not just the scalar reference. ctest globs every
# tests/*.cc
# binary, so the sharded-equivalence layer (test_sharded_equivalence and
# the histogram merge property tests) AND the distributed layer
# (test_distributed, test_distributed_faults, test_ipc_*) run under the
# sanitizers too -- exactly where a cross-shard race, arena overrun, or
# codec out-of-bounds read would surface. The multi_process example runs
# its loopback (threads-as-ranks) variant here so the full rank-0 driver
# + worker protocol executes under the sanitizers in one process.
if [[ "${BOOSTER_SKIP_SANITIZE:-0}" != "1" ]]; then
  ASAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$ASAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DBOOSTER_SANITIZE=ON
  cmake --build "$ASAN_DIR" -j "$(nproc)"
  ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$(nproc)"
  "$ASAN_DIR/multi_process" --transport loopback --procs 3 --shards 8 \
    --records 6000 --trees 3

  # Serve smoke under the sanitizers: the demo covers the whole
  # train -> save (checked container) -> serve -> /reload -> query flow
  # over a real socket and exits non-zero on any bitwise divergence;
  # bench_serve --quick additionally drives the concurrency x batch-window
  # sweep (pipelined connections, batching windows, buffer-pool recycling)
  # through ASan/UBSan-instrumented server code.
  "$ASAN_DIR/serve_demo" > /dev/null
  "$ASAN_DIR/bench_serve" --quick > /dev/null

  # Overload-robustness suite under ASan (already in the full ctest pass
  # above, but run by name so a filter change there cannot silently drop
  # it): every close route -- graceful, shed, the out_max_bytes hard
  # close, and the idle reap -- must release its pooled buffers exactly
  # once, and the reload worker's mailbox hand-off must stay clean.
  "$ASAN_DIR/test_serve" --gtest_filter='ServeOverload.*' > /dev/null

  # Streaming smoke under the sanitizers: bench_stream --quick drives the
  # frozen-bin-map chunk path, the recycled window arenas, warm-start
  # replay, and the ModelSlot hand-off through ASan/UBSan-instrumented
  # code, and exits non-zero if any refreshed generation diverges across
  # the (threads x shards) verification grid.
  "$ASAN_DIR/bench_stream" --quick > /dev/null

  # TSan leg: the concurrent subset only -- threaded rank worlds, the
  # reliable channel's heartbeat/liveness machinery, the elastic TCP
  # worlds (worker incarnations on threads), the thread pool, and the
  # serving tests (event loop + off-loop reload worker + client threads
  # sharing the ModelSlot and the reload mailbox). TSan and ASan cannot
  # share a build, hence the third tree.
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DBOOSTER_SANITIZE=thread
  cmake --build "$TSAN_DIR" -j "$(nproc)"
  ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)" \
    -R '(ipc|distributed|elastic|sharded|thread_pool|serve)'
fi

# Scenario smoke leg: the CLI must list exactly the checked-in scenario
# specs (names golden-checked against bench/scenarios/), and every spec
# must parse, round-trip, and execute under --quick.
LISTED=$("$BUILD_DIR/booster_scenarios" --list | awk '{print $1}' | sort)
CHECKED_IN=$(ls bench/scenarios/*.json | xargs -n1 basename | sed 's/\.json$//' | sort)
if ! diff <(echo "$LISTED") <(echo "$CHECKED_IN"); then
  echo "booster_scenarios --list does not match bench/scenarios/*.json" >&2
  exit 1
fi
for name in $LISTED; do
  if ! diff <("$BUILD_DIR/booster_scenarios" dump "$name") \
            "bench/scenarios/$name.json"; then
    echo "bench/scenarios/$name.json drifted from the builtin spec;" \
         "regenerate with: booster_scenarios dump $name" >&2
    exit 1
  fi
done
for spec in bench/scenarios/*.json; do
  echo "--- scenario: $spec (--quick)"
  "$BUILD_DIR/booster_scenarios" run "$spec" --quick > /dev/null
done

# The shard-sweep DSE scenario must also run through the builtin path (the
# ISSUE 4 acceptance command): its functional sample trains through the
# sharded engine (runner.shards) before the perf sweep.
"$BUILD_DIR/booster_scenarios" run-builtin dse_shard_sweep --quick > /dev/null

# Cross-process leg (ISSUE 5 acceptance): the multi_process example forks
# real worker processes over the file and socket transports and exits
# non-zero if any rank's model diverges by a bit from the in-process
# trainer.
"$BUILD_DIR/multi_process" --transport file --procs 3 --shards 8 \
  --records 8000 --trees 4
"$BUILD_DIR/multi_process" --transport socket --procs 4 --shards 3 \
  --records 8000 --trees 4

# Elastic TCP leg (ISSUE 6 acceptance): real worker processes over
# localhost TCP -- first a static world, then the churn flow: one worker
# SIGKILLs itself mid-tree (rank 0 adopts its shards) and a fresh
# incarnation of the same rank rejoins two boundaries later with a
# catch-up replay. Both runs exit non-zero unless every surviving rank's
# model is bit-identical to the in-process trainer.
"$BUILD_DIR/multi_process" --transport tcp --procs 3 --shards 8 \
  --records 8000 --trees 4
"$BUILD_DIR/multi_process" --transport tcp --procs 3 --shards 8 \
  --records 8000 --trees 6 --kill-rejoin --die-rank 2 --die-tree 1 \
  --rejoin-tree 3

# Benches (quick mode keeps CI fast; JSON goes to stdout so the trajectory
# can be archived by the caller). bench_sharded and bench_distributed exit
# non-zero if sharded / distributed output ever diverges from the
# in-process trainer.
"$BUILD_DIR/bench_train_hotpath" --quick
"$BUILD_DIR/bench_closed_loop" --quick
"$BUILD_DIR/bench_sharded" --quick
"$BUILD_DIR/bench_distributed" --quick

# Serve leg (ISSUE 8 acceptance): the demo proves the train -> save ->
# serve -> query pipeline end to end; bench_serve runs the closed-loop
# load harness over real localhost TCP and exits non-zero if any served
# prediction differs bitwise from local Model::predict or any request
# fails. (The "serving" scenario above already ran the measured
# serving leg through the Scenario API under --quick.)
"$BUILD_DIR/serve_demo" > /dev/null
"$BUILD_DIR/bench_serve" --quick

# Streaming leg (ISSUE 9 acceptance): bench_stream sweeps refresh cadence
# and arrival rate through the chunked-ingestion + warm-start-retraining
# pipeline and exits non-zero unless every refreshed generation is
# bit-identical across the (threads x shards) verification grid and every
# hand-off landed. The scalar rerun of the warm-start determinism tests
# proves the refresh path (including the init-model prediction replay,
# which runs the blocked SIMD traversal) is also independent of the
# dispatch level. (The "streaming" scenario above already ran the measured
# streaming leg through the Scenario API under --quick, and the full
# scalar ctest pass at the top reran test_stream with scalar kernels.)
"$BUILD_DIR/bench_stream" --quick
BOOSTER_SIMD=scalar "$BUILD_DIR/test_stream" \
  --gtest_filter='Retrainer.WarmStartRefreshesBitIdenticalAcrossThreadsAndShards'
