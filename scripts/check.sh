#!/usr/bin/env bash
# CI entry point: configure + build with warnings-as-errors, run the tier-1
# test suite, run an ASan+UBSan build-and-ctest leg (the co-sim's retry
# loops and engine shims are exactly where UB hides), then run the training
# hot-path and closed-loop benches in Release.
#
#   scripts/check.sh [build-dir]
#
# Environment:
#   BOOSTER_THREADS   thread count for the bench's threaded leg (default 8)
#   BOOSTER_SKIP_SANITIZE=1   skip the sanitizer leg (local quick runs)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DBOOSTER_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# ASan+UBSan leg: RelWithDebInfo keeps it fast enough for CI while the
# sanitizers still see every retry loop and shim. -fno-sanitize-recover
# turns any UB finding into a test failure.
if [[ "${BOOSTER_SKIP_SANITIZE:-0}" != "1" ]]; then
  ASAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$ASAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DBOOSTER_SANITIZE=ON
  cmake --build "$ASAN_DIR" -j "$(nproc)"
  ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$(nproc)"
fi

# Benches (quick mode keeps CI fast; JSON goes to stdout so the trajectory
# can be archived by the caller).
"$BUILD_DIR/bench_train_hotpath" --quick
"$BUILD_DIR/bench_closed_loop" --quick
