#!/usr/bin/env bash
# CI entry point: configure + build with warnings-as-errors, run the tier-1
# test suite, then run the training hot-path bench in Release.
#
#   scripts/check.sh [build-dir]
#
# Environment:
#   BOOSTER_THREADS   thread count for the bench's threaded leg (default 8)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-check}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DBOOSTER_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Hot-path bench (quick mode keeps CI fast; JSON goes to stdout so the
# trajectory can be archived by the caller).
"$BUILD_DIR/bench_train_hotpath" --quick
