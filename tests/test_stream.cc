// Streaming subsystem contract suite (ISSUE 9 tentpole). The load-bearing
// assertions are equivalences, not smoke: chunked out-of-core binning
// against a frozen bin map EXPECT_EQ-equals one-shot binning at any chunk
// grouping (uneven tails included); the chunk window's arena recycling is
// allocation-free in steady state; warm-start refreshes are bit-identical
// across a (threads x shards) grid for the same chunk sequence; and a live
// serve::Server under concurrent load swaps to refreshed generations via
// POST /reload with zero incorrect or torn responses -- every response is
// wholly one generation's output, verified bitwise against a precomputed
// replay of the same deterministic refresh sequence.
#include <gtest/gtest.h>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/dataset.h"
#include "gbdt/loss.h"
#include "gbdt/model_io.h"
#include "gbdt/trainer.h"
#include "gbdt/tree.h"
#include "serve/client.h"
#include "serve/model_slot.h"
#include "serve/server.h"
#include "stream/chunk_window.h"
#include "stream/frozen_bin_map.h"
#include "stream/retrainer.h"
#include "workloads/spec.h"
#include "workloads/synth.h"

namespace booster::stream {
namespace {

using gbdt::BinnedDataset;
using gbdt::Dataset;

workloads::DatasetSpec stream_spec() {
  workloads::DatasetSpec spec;
  spec.name = "stream";
  spec.nominal_records = 2000;
  spec.numeric_fields = 6;
  spec.categorical_cardinalities = {8, 3};
  spec.missing_rate = 0.1;
  spec.loss = "logistic";
  return spec;
}

/// Rows [begin, begin+count) of `d` as a standalone Dataset with the same
/// schema (the test's stand-in for a chunked arrival).
Dataset slice(const Dataset& d, std::uint64_t begin, std::uint64_t count) {
  Dataset out;
  for (std::uint32_t f = 0; f < d.num_fields(); ++f) {
    const gbdt::FieldSchema& fs = d.field(f);
    if (fs.kind == gbdt::FieldKind::kNumeric) {
      out.add_numeric_field(fs.name);
    } else {
      out.add_categorical_field(fs.name, fs.cardinality);
    }
  }
  out.resize(count);
  for (std::uint64_t r = 0; r < count; ++r) {
    for (std::uint32_t f = 0; f < d.num_fields(); ++f) {
      if (d.field(f).kind == gbdt::FieldKind::kNumeric) {
        out.set_numeric(f, r, d.numeric_value(f, begin + r));
      } else {
        out.set_categorical(f, r, d.categorical_value(f, begin + r));
      }
    }
    out.set_label(r, d.label(begin + r));
  }
  return out;
}

void expect_binned_equal(const BinnedDataset& a, const BinnedDataset& b) {
  ASSERT_EQ(a.num_records(), b.num_records());
  ASSERT_EQ(a.num_fields(), b.num_fields());
  for (std::uint32_t f = 0; f < a.num_fields(); ++f) {
    ASSERT_EQ(a.field_bins(f).num_bins, b.field_bins(f).num_bins);
    for (std::uint64_t r = 0; r < a.num_records(); ++r) {
      ASSERT_EQ(a.bin(f, r), b.bin(f, r)) << "field " << f << " row " << r;
    }
  }
  ASSERT_EQ(a.labels(), b.labels());
}

// --------------------------------------------------------- frozen binning

TEST(FrozenBinMap, RebinningTheBootstrapReproducesTheBinner) {
  const Dataset raw = workloads::synthesize(stream_spec(), 500, 7);
  const BinnedDataset bootstrap = gbdt::Binner().bin(raw);
  const FrozenBinMap map(bootstrap);
  ASSERT_EQ(map.num_fields(), bootstrap.num_fields());
  BinnedDataset rebinned;
  map.bin_chunk(raw, &rebinned);
  expect_binned_equal(rebinned, bootstrap);
}

TEST(FrozenBinMap, ChunkedBinningEquivalentToOneShotAtAnyGrouping) {
  // The same later-arrival rows binned as K chunks and concatenated must
  // EXPECT_EQ-equal the one-shot pass against the same frozen map, for
  // K in {1, 3, 8} -- chunk sizes deliberately uneven (ceil split leaves a
  // short tail) so boundary arithmetic is exercised.
  const auto spec = stream_spec();
  const Dataset bootstrap_raw = workloads::synthesize(spec, 400, 3);
  const FrozenBinMap map(gbdt::Binner().bin(bootstrap_raw));

  const Dataset arrivals = workloads::synthesize(spec, 1001, 4);
  BinnedDataset oneshot;
  map.bin_chunk(arrivals, &oneshot);

  for (const std::uint64_t k : {1ull, 3ull, 8ull}) {
    const std::uint64_t per = (arrivals.num_records() + k - 1) / k;
    std::vector<BinnedDataset> chunks;
    std::vector<const BinnedDataset*> ptrs;
    for (std::uint64_t begin = 0; begin < arrivals.num_records();
         begin += per) {
      const std::uint64_t count =
          std::min(per, arrivals.num_records() - begin);
      chunks.emplace_back();
      map.bin_chunk(slice(arrivals, begin, count), &chunks.back());
    }
    for (const auto& c : chunks) ptrs.push_back(&c);
    BinnedDataset rejoined;
    map.concat(ptrs, &rejoined);
    SCOPED_TRACE("K=" + std::to_string(k));
    expect_binned_equal(rejoined, oneshot);
  }
}

// ----------------------------------------------------------- chunk window

TEST(ChunkWindow, ArenaRecyclingIsAllocationFreeInSteadyState) {
  const auto spec = stream_spec();
  const FrozenBinMap map(
      gbdt::Binner().bin(workloads::synthesize(spec, 300, 5)));
  ChunkWindow window(map, /*max_chunks=*/4);
  for (int i = 0; i < 20; ++i) {
    window.push(workloads::synthesize(spec, 100, 50 + i));
    EXPECT_LE(window.size(), 4u);
  }
  EXPECT_EQ(window.pushes(), 20u);
  EXPECT_EQ(window.num_records(), 400u);
  // Arenas plateau at window capacity + 1 (the one evicted per push cycles
  // back through the free list) while pushes keep climbing -- the
  // HistogramPool property, transplanted.
  EXPECT_EQ(window.arena_allocations(), 5u);

  // Window contents are the newest 4 chunks in arrival order, and
  // materialization reproduces them exactly.
  BinnedDataset all;
  window.materialize(&all);
  ASSERT_EQ(all.num_records(), 400u);
  std::uint64_t offset = 0;
  for (std::size_t c = 0; c < window.size(); ++c) {
    const BinnedDataset& chunk = window.chunk(c);
    for (std::uint64_t r = 0; r < chunk.num_records(); ++r) {
      for (std::uint32_t f = 0; f < chunk.num_fields(); ++f) {
        ASSERT_EQ(all.bin(f, offset + r), chunk.bin(f, r));
      }
    }
    offset += chunk.num_records();
  }
}

// ------------------------------------------------- warm-start determinism

std::string model_bytes(const gbdt::Model& model) {
  std::stringstream out;
  gbdt::save_model(model, out);
  return out.str();
}

/// One tree of `owner`, serialized standalone -- lets the prefix test
/// compare individual trees across generations bit-for-bit.
std::string single_tree_bytes(const gbdt::Model& owner, const gbdt::Tree& t) {
  gbdt::Model one(owner.base_score(), gbdt::make_loss(owner.loss().name()));
  one.add_tree(t);
  return model_bytes(one);
}

TEST(Retrainer, WarmStartRefreshesBitIdenticalAcrossThreadsAndShards) {
  // The same chunk sequence must produce bit-identical refreshed models at
  // every (threads, shards) grid point -- the quantized-exact histogram
  // contract extended through warm starts. (1, 1) is the reference.
  const auto spec = stream_spec();
  const Dataset bootstrap_raw = workloads::synthesize(spec, 400, 21);
  const FrozenBinMap map(gbdt::Binner().bin(bootstrap_raw));
  std::vector<Dataset> chunks;
  for (int i = 0; i < 6; ++i) {
    chunks.push_back(workloads::synthesize(spec, 150, 210 + 31 * i));
  }

  const auto run_grid_point = [&](std::uint32_t threads,
                                  std::uint32_t shards) {
    RetrainerConfig rcfg;
    rcfg.trainer.num_trees = 5;
    rcfg.trainer.max_depth = 3;
    rcfg.trainer.loss = "logistic";
    rcfg.trainer.num_threads = threads;
    rcfg.trainer.num_shards = shards;
    rcfg.refresh_every_chunks = 2;
    rcfg.window_chunks = 4;
    Retrainer retrainer(map, rcfg);
    std::vector<std::string> generations;
    for (const Dataset& chunk : chunks) {
      if (retrainer.ingest(chunk)) {
        generations.push_back(model_bytes(*retrainer.latest()));
      }
    }
    return generations;
  };

  const std::vector<std::string> reference = run_grid_point(1, 1);
  ASSERT_EQ(reference.size(), 3u);  // 6 chunks / cadence 2
  for (const std::uint32_t threads : {1u, 8u}) {
    for (const std::uint32_t shards : {1u, 3u}) {
      if (threads == 1 && shards == 1) continue;
      const auto got = run_grid_point(threads, shards);
      ASSERT_EQ(got.size(), reference.size())
          << threads << " threads, " << shards << " shards";
      for (std::size_t g = 0; g < got.size(); ++g) {
        EXPECT_EQ(got[g], reference[g])
            << "generation " << g << " diverged at " << threads
            << " threads, " << shards << " shards";
      }
    }
  }
}

TEST(Retrainer, WarmStartGrowsTheEnsembleAndPreservesThePrefix) {
  const auto spec = stream_spec();
  const FrozenBinMap map(
      gbdt::Binner().bin(workloads::synthesize(spec, 400, 33)));
  RetrainerConfig rcfg;
  rcfg.trainer.num_trees = 4;
  rcfg.trainer.max_depth = 3;
  rcfg.trainer.loss = "logistic";
  rcfg.trainer.num_threads = 1;
  rcfg.refresh_every_chunks = 1;
  rcfg.window_chunks = 3;
  Retrainer retrainer(map, rcfg);
  EXPECT_EQ(retrainer.latest(), nullptr);

  std::vector<std::string> prev_trees;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(retrainer.ingest(workloads::synthesize(spec, 120, 330 + i)));
    const gbdt::Model* latest = retrainer.latest();
    ASSERT_NE(latest, nullptr);
    // Warm start: each refresh *appends* num_trees trees; the prior
    // generation's trees carry over bit-identically as the prefix.
    ASSERT_EQ(latest->trees().size(), 4u * (i + 1));
    std::vector<std::string> now_trees;
    for (const gbdt::Tree& t : latest->trees()) {
      now_trees.push_back(single_tree_bytes(*latest, t));
    }
    for (std::size_t t = 0; t < prev_trees.size(); ++t) {
      EXPECT_EQ(now_trees[t], prev_trees[t]) << "tree " << t << " mutated";
    }
    prev_trees = std::move(now_trees);
  }
  EXPECT_EQ(retrainer.stats().refreshes, 3u);
  EXPECT_EQ(retrainer.stats().latest_trees, 12u);
}

// ------------------------------------------------------------- end-to-end

TEST(StreamEndToEnd, LiveServerSwapsToRefreshedModelsWithoutTornResponses) {
  // The acceptance path: a live serve::Server under concurrent /predict
  // load while a Retrainer refreshes on a cadence and hands off through
  // the checked container + POST /reload. Generation contents are
  // precomputed by replaying the identical chunk sequence (refreshes are
  // deterministic), so every served response is verified bitwise against
  // the generation its X-Model-Version names -- zero errors, zero torn
  // responses.
  const auto spec = stream_spec();
  const Dataset bootstrap_raw = workloads::synthesize(spec, 300, 77);
  const BinnedDataset bootstrap = gbdt::Binner().bin(bootstrap_raw);
  const FrozenBinMap map(bootstrap);
  std::vector<Dataset> chunks;
  for (int i = 0; i < 6; ++i) {
    chunks.push_back(workloads::synthesize(spec, 120, 770 + 13 * i));
  }

  RetrainerConfig base_cfg;
  base_cfg.trainer.num_trees = 4;
  base_cfg.trainer.max_depth = 3;
  base_cfg.trainer.loss = "logistic";
  base_cfg.trainer.num_threads = 1;
  base_cfg.refresh_every_chunks = 2;
  base_cfg.window_chunks = 4;

  // Replay pass: per-generation expected predictions on the probe rows.
  std::vector<std::vector<double>> expected_by_version;
  {
    Retrainer replay(map, base_cfg);
    for (const Dataset& chunk : chunks) {
      if (!replay.ingest(chunk)) continue;
      std::stringstream bytes(model_bytes(*replay.latest()));
      const gbdt::Model snapshot = gbdt::load_model(bytes);
      std::vector<double> expected(bootstrap.num_records());
      for (std::uint64_t r = 0; r < bootstrap.num_records(); ++r) {
        expected[r] = snapshot.predict(bootstrap, r);
      }
      expected_by_version.push_back(std::move(expected));
    }
  }
  ASSERT_EQ(expected_by_version.size(), 3u);

  serve::ModelSlot slot;
  auto server =
      std::make_unique<serve::Server>(serve::ServerConfig{}, &slot, bootstrap);
  std::thread loop([&] { server->run(); });

  const std::string path = "/tmp/booster_stream_handoff_test.model";
  RetrainerConfig live_cfg = base_cfg;
  live_cfg.save_path = path;
  live_cfg.reload_port = server->port();
  Retrainer retrainer(map, live_cfg);

  // First refresh before the clients start, so every request finds a
  // model installed (the 503-before-first-install case has its own test).
  std::size_t next_chunk = 0;
  while (retrainer.stats().refreshes == 0 && next_chunk < chunks.size()) {
    retrainer.ingest(chunks[next_chunk++]);
  }
  ASSERT_EQ(retrainer.stats().refreshes, 1u);
  ASSERT_EQ(retrainer.stats().handoff_failures, 0u);

  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> torn{0};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      serve::BlockingClient client;
      if (!client.connect(server->port())) {
        torn += 1000;
        return;
      }
      std::vector<double> got;
      serve::Response resp;
      for (int k = 0; k < 60; ++k) {
        const std::uint64_t first =
            (c * 101 + k * 7) % bootstrap_raw.num_records();
        if (!client.request("POST", "/predict",
                            serve::csv_rows(bootstrap_raw, first, 4),
                            &resp) ||
            resp.status != 200 ||
            !serve::parse_predictions(resp.body, &got) || got.size() != 4) {
          ++torn;
          continue;
        }
        const std::string_view header = resp.header("X-Model-Version");
        std::uint64_t version = 0;
        std::from_chars(header.data(), header.data() + header.size(),
                        version);
        if (version == 0 || version > expected_by_version.size()) {
          ++torn;
          continue;
        }
        const std::vector<double>& expected =
            expected_by_version[version - 1];
        for (int i = 0; i < 4; ++i) {
          const std::uint64_t row =
              (first + i) % bootstrap_raw.num_records();
          if (got[i] != expected[row]) ++torn;
        }
      }
    });
  }

  // Stream the rest while the clients hammer: two more refreshes land
  // mid-load through /reload.
  for (; next_chunk < chunks.size(); ++next_chunk) {
    retrainer.ingest(chunks[next_chunk]);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(retrainer.stats().refreshes, 3u);
  EXPECT_EQ(retrainer.stats().handoff_failures, 0u);
  const auto served = slot.current();
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->version, 3u);  // one /reload install per refresh

  server->stop();
  loop.join();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace booster::stream
