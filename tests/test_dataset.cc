#include "gbdt/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace booster::gbdt {
namespace {

TEST(Dataset, SchemaDeclaration) {
  Dataset d;
  const auto f0 = d.add_numeric_field("age");
  const auto f1 = d.add_categorical_field("city", 3);
  EXPECT_EQ(f0, 0u);
  EXPECT_EQ(f1, 1u);
  EXPECT_EQ(d.num_fields(), 2u);
  EXPECT_EQ(d.field(0).kind, FieldKind::kNumeric);
  EXPECT_EQ(d.field(1).kind, FieldKind::kCategorical);
  EXPECT_EQ(d.field(1).cardinality, 3u);
}

TEST(Dataset, ResizeInitializesMissing) {
  Dataset d;
  d.add_numeric_field("x");
  d.add_categorical_field("c", 5);
  d.resize(4);
  EXPECT_EQ(d.num_records(), 4u);
  EXPECT_TRUE(std::isnan(d.numeric_value(0, 0)));
  EXPECT_EQ(d.categorical_value(1, 0), kMissingCategory);
  EXPECT_EQ(d.label(0), 0.0f);
}

TEST(Dataset, ValueRoundTrip) {
  Dataset d;
  d.add_numeric_field("x");
  d.add_categorical_field("c", 5);
  d.resize(2);
  d.set_numeric(0, 1, 2.5f);
  d.set_categorical(1, 1, 3);
  d.set_label(1, 1.0f);
  EXPECT_EQ(d.numeric_value(0, 1), 2.5f);
  EXPECT_EQ(d.categorical_value(1, 1), 3);
  EXPECT_EQ(d.label(1), 1.0f);
}

TEST(Dataset, OnehotFeatureCount) {
  Dataset d;
  d.add_numeric_field("a");
  d.add_numeric_field("b");
  d.add_categorical_field("c", 10);
  d.add_categorical_field("d", 7);
  EXPECT_EQ(d.onehot_features(), 2u + 10u + 7u);
  EXPECT_EQ(d.num_categorical_fields(), 2u);
}

TEST(Dataset, InterleavedKindsResolveSlots) {
  // Numeric and categorical columns share the field index space; slots must
  // resolve independently per kind.
  Dataset d;
  d.add_categorical_field("c0", 2);
  d.add_numeric_field("n0");
  d.add_categorical_field("c1", 4);
  d.add_numeric_field("n1");
  d.resize(1);
  d.set_categorical(0, 0, 1);
  d.set_numeric(1, 0, 1.0f);
  d.set_categorical(2, 0, 3);
  d.set_numeric(3, 0, 2.0f);
  EXPECT_EQ(d.categorical_value(0, 0), 1);
  EXPECT_EQ(d.numeric_value(1, 0), 1.0f);
  EXPECT_EQ(d.categorical_value(2, 0), 3);
  EXPECT_EQ(d.numeric_value(3, 0), 2.0f);
}

}  // namespace
}  // namespace booster::gbdt
