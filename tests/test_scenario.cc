// Scenario-layer tests: JSON round-trips (parse -> serialize -> parse
// fixpoint), unknown-key / bad-enum error paths, registry lookup failures,
// and the golden equivalence test -- sim::ScenarioRunner must reproduce
// bench_fig7_speedup's numbers bit-identically to the legacy per-bench
// wiring, at 1 and 4 threads.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cpu_like.h"
#include "baselines/inter_record.h"
#include "core/booster_model.h"
#include "perf/cycle_calibrated.h"
#include "sim/json.h"
#include "sim/library.h"
#include "sim/registry.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace booster::sim {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, ParsesScalarsArraysObjects) {
  std::string error;
  const auto doc = Json::parse(
      R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": true, "e": null},
          "s": "hi\nthere"})",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_DOUBLE_EQ(doc->find("a")->as_double(), 1.5);
  EXPECT_EQ(doc->find("b")->items().size(), 3u);
  EXPECT_TRUE(doc->find("c")->find("d")->as_bool());
  EXPECT_TRUE(doc->find("c")->find("e")->is_null());
  EXPECT_EQ(doc->find("s")->as_string(), "hi\nthere");
}

TEST(Json, DumpParseDumpIsFixpoint) {
  std::string error;
  const auto doc = Json::parse(
      R"({"x": 0.1, "big": 1e9, "neg": -3, "frac": 0.30000000000000004,
          "arr": [1.5, "s", false], "nested": {"k": [{"q": 2}]}})",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  const std::string once = doc->dump();
  const auto reparsed = Json::parse(once, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->dump(), once);
  EXPECT_TRUE(*reparsed == *doc);
}

TEST(Json, IntegersPrintWithoutExponent) {
  Json j = Json::object();
  j.set("records", std::uint64_t{10'000'000});
  EXPECT_NE(j.dump().find("10000000"), std::string::npos);
  EXPECT_EQ(j.dump().find("e+"), std::string::npos);
}

TEST(Json, ReportsErrorsWithPosition) {
  std::string error;
  EXPECT_FALSE(Json::parse("{\"a\": }", &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);

  error.clear();
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing", &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos);

  error.clear();
  EXPECT_FALSE(Json::parse("{\"a\": 1, \"a\": 2}", &error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

// ------------------------------------------------------------ spec IO

TEST(ScenarioSpec, BuiltinSpecsRoundTripLosslessly) {
  for (const auto& spec : builtin_scenarios()) {
    const Json j = spec.to_json();
    std::string error;
    const auto reparsed = ScenarioSpec::from_json(j, &error);
    ASSERT_TRUE(reparsed.has_value()) << spec.name << ": " << error;
    EXPECT_TRUE(*reparsed == spec) << spec.name;
    // parse -> serialize -> parse fixpoint on the serialized text.
    const auto doc = Json::parse(j.dump(), &error);
    ASSERT_TRUE(doc.has_value()) << spec.name << ": " << error;
    EXPECT_EQ(doc->dump(), j.dump()) << spec.name;
  }
}

TEST(ScenarioSpec, UnknownTopLevelKeyIsAnError) {
  std::string error;
  const auto doc =
      Json::parse(R"({"name": "x", "bogus_knob": 1})", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_FALSE(ScenarioSpec::from_json(*doc, &error).has_value());
  EXPECT_NE(error.find("bogus_knob"), std::string::npos) << error;
}

TEST(ScenarioSpec, UnknownBoosterDeltaKeyIsAnError) {
  std::string error;
  const auto doc = Json::parse(
      R"({"name": "x", "booster": {"cluster_count": 10}})", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_FALSE(ScenarioSpec::from_json(*doc, &error).has_value());
  EXPECT_NE(error.find("cluster_count"), std::string::npos) << error;
}

TEST(ScenarioSpec, OutOfRangeConfigValueIsAnError) {
  // u32 knobs must fail loudly at parse time, not wrap silently.
  std::string error;
  const auto doc = Json::parse(
      R"({"name": "x", "booster": {"sram_bytes": 4294967296}})", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_FALSE(ScenarioSpec::from_json(*doc, &error).has_value());
  EXPECT_NE(error.find("sram_bytes"), std::string::npos) << error;

  error.clear();
  const auto huge = Json::parse(
      R"({"name": "x", "runner": {"sim_records": 1e300}})", &error);
  ASSERT_TRUE(huge.has_value()) << error;
  EXPECT_FALSE(ScenarioSpec::from_json(*huge, &error).has_value());
  EXPECT_NE(error.find("sim_records"), std::string::npos) << error;
}

TEST(ScenarioSpec, BadSweepAxisIsAnError) {
  std::string error;
  const auto doc = Json::parse(
      R"({"name": "x", "sweep": {"axis": "warp-speed", "values": [1]}})",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_FALSE(ScenarioSpec::from_json(*doc, &error).has_value());
  EXPECT_NE(error.find("warp-speed"), std::string::npos) << error;
}

TEST(ScenarioSpec, BadLabelStructureEnumIsAnError) {
  std::string error;
  const auto doc = Json::parse(
      R"({"name": "x", "datasets": [{"name": "d", "nominal_records": 10,
          "numeric_fields": 2, "label_structure": "psychic"}]})",
      &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_FALSE(ScenarioSpec::from_json(*doc, &error).has_value());
  EXPECT_NE(error.find("psychic"), std::string::npos) << error;
}

TEST(ScenarioSpec, UserDefinedDatasetRoundTrips) {
  workloads::DatasetSpec d = workloads::fraud_spec(123456);
  const Json j = dataset_to_json(d);
  std::string error;
  const auto reparsed = dataset_from_json(j, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(reparsed->name, d.name);
  EXPECT_EQ(reparsed->nominal_records, d.nominal_records);
  EXPECT_EQ(reparsed->categorical_cardinalities,
            d.categorical_cardinalities);
  EXPECT_EQ(reparsed->label_structure, d.label_structure);
  EXPECT_TRUE(dataset_to_json(*reparsed) == j);
}

TEST(ScenarioSpec, StreamingBlockRoundTripsWithNonDefaults) {
  auto spec = *builtin_scenario("streaming");
  ASSERT_TRUE(spec.streaming.has_value());
  spec.streaming->bootstrap_rows = 5000;
  spec.streaming->chunk_rows = 250;
  spec.streaming->window_chunks = 6;
  spec.streaming->warm_start = false;
  spec.streaming->arrival_rows_per_sec = 1500.5;

  const Json j = spec.to_json();
  const Json* st = j.find("streaming");
  ASSERT_NE(st, nullptr);
  EXPECT_DOUBLE_EQ(st->find("bootstrap_rows")->as_double(), 5000.0);
  EXPECT_DOUBLE_EQ(st->find("arrival_rows_per_sec")->as_double(), 1500.5);
  // Defaults stay out of the serialized form (lossless minimal JSON).
  EXPECT_EQ(st->find("refresh_trees"), nullptr);
  EXPECT_EQ(st->find("chunks"), nullptr);

  std::string error;
  const auto reparsed = ScenarioSpec::from_json(j, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_TRUE(*reparsed == spec);
  ASSERT_TRUE(reparsed->streaming.has_value());
  EXPECT_EQ(reparsed->streaming->chunk_rows, 250u);
  EXPECT_FALSE(reparsed->streaming->warm_start);
}

TEST(ScenarioSpec, StreamingBlockIsValidated) {
  const auto parse = [](const std::string& text, std::string* error) {
    const auto doc = Json::parse(text, error);
    EXPECT_TRUE(doc.has_value()) << *error;
    return ScenarioSpec::from_json(*doc, error);
  };
  std::string error;
  // Zero chunk_rows, bad drift name, unknown key: all parse errors.
  EXPECT_FALSE(
      parse(R"({"name": "x", "streaming": {"chunk_rows": 0}})", &error)
          .has_value());
  EXPECT_NE(error.find("must be positive"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(
      parse(R"({"name": "x", "streaming": {"drift": "tectonic"}})", &error)
          .has_value());
  EXPECT_NE(error.find("tectonic"), std::string::npos) << error;
  error.clear();
  EXPECT_FALSE(
      parse(R"({"name": "x", "streaming": {"bogus": 1}})", &error)
          .has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
}

TEST(ScenarioSpec, StreamingSweepAxesRequireTheStreamingBlock) {
  const auto parse = [](const std::string& text, std::string* error) {
    const auto doc = Json::parse(text, error);
    EXPECT_TRUE(doc.has_value()) << *error;
    return ScenarioSpec::from_json(*doc, error);
  };
  std::string error;
  for (const std::string axis : {"arrival-rate", "refresh-cadence"}) {
    // Without a streaming block the axis has nothing to act on: error.
    EXPECT_FALSE(parse(R"({"name": "x", "sweep": {"axis": ")" + axis +
                           R"(", "values": [1]}})",
                       &error)
                     .has_value())
        << axis;
    EXPECT_NE(error.find(axis), std::string::npos) << error;
    error.clear();
    // With the block it parses, and the axis name round-trips.
    const auto ok = parse(R"({"name": "x", "streaming": {},
                              "sweep": {"axis": ")" +
                              axis + R"(", "values": [1, 2]}})",
                          &error);
    ASSERT_TRUE(ok.has_value()) << axis << ": " << error;
    EXPECT_EQ(sweep_axis_name(ok->sweep_axis), axis);
    EXPECT_TRUE(ScenarioSpec::from_json(ok->to_json(), &error).has_value())
        << error;
  }
}

// ----------------------------------------------------------- registries

TEST(Registries, UnknownModelNameFailsWithRoster) {
  ModelSpec m;
  m.model = "quantum-annealer";
  ModelContext ctx;
  std::string error;
  EXPECT_EQ(ModelRegistry::builtin().create(m, ctx, &error), nullptr);
  EXPECT_NE(error.find("quantum-annealer"), std::string::npos);
  EXPECT_NE(error.find("booster"), std::string::npos) << "roster in error";
}

TEST(Registries, UnknownWorkloadFailsScenario) {
  ScenarioSpec spec;
  spec.name = "t";
  spec.workloads = {"no-such-dataset"};
  spec.models = {ModelSpec{"booster", "", {}}};
  RunOptions opt;
  opt.quick = true;
  opt.calibrate_bandwidth = false;
  std::string error;
  EXPECT_FALSE(ScenarioRunner().run(spec, opt, &error).has_value());
  EXPECT_NE(error.find("no-such-dataset"), std::string::npos) << error;
}

TEST(Registries, BadModelOverrideFailsScenario) {
  ScenarioSpec spec;
  spec.name = "t";
  spec.workloads = {"fraud"};
  ModelSpec m;
  m.model = "ideal-32core";
  m.overrides = Json::object();
  m.overrides.set("warp_factor", 9);
  spec.models = {m};
  spec.sim_records = 2000;
  spec.sim_trees = 2;
  RunOptions opt;
  opt.calibrate_bandwidth = false;
  std::string error;
  EXPECT_FALSE(ScenarioRunner().run(spec, opt, &error).has_value());
  EXPECT_NE(error.find("warp_factor"), std::string::npos) << error;
}

TEST(Registries, NonIntegerCountOverridesAreErrors) {
  ModelContext ctx;
  std::string error;
  ModelSpec cycle;
  cycle.model = "booster-cycle";
  cycle.overrides = Json::object();
  cycle.overrides.set("replay_threads", 2.9);
  EXPECT_EQ(ModelRegistry::builtin().create(cycle, ctx, &error), nullptr);
  EXPECT_NE(error.find("replay_threads"), std::string::npos) << error;

  error.clear();
  ModelSpec ir;
  ir.model = "inter-record";
  ir.overrides = Json::object();
  ir.overrides.set("copies", 3.7);
  EXPECT_EQ(ModelRegistry::builtin().create(ir, ctx, &error), nullptr);
  EXPECT_NE(error.find("copies"), std::string::npos) << error;
}

TEST(Registries, BadOverrideFailsBeforeTraining) {
  // Up-front factory validation: a zero-workload scenario with a bad
  // override must still be rejected (nothing downstream would ever build
  // the model).
  ScenarioSpec spec;
  spec.name = "t";
  ModelSpec m;
  m.model = "booster";
  m.overrides = Json::object();
  m.overrides.set("warp_core", true);
  spec.models = {m};
  RunOptions opt;
  opt.calibrate_bandwidth = false;
  std::string error;
  EXPECT_FALSE(ScenarioRunner().run(spec, opt, &error).has_value());
  EXPECT_NE(error.find("warp_core"), std::string::npos) << error;
}

TEST(Registries, WorkloadRegistryHasPaperDatasetsAndFraud) {
  const auto reg = WorkloadRegistry::with_builtin();
  for (const char* name :
       {"IoT", "Higgs", "Allstate", "Mq2008", "Flight", "fraud"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.find("nope"), nullptr);
}

// ------------------------------------------------- golden equivalence

/// The legacy bench_fig7_speedup wiring, verbatim: hand-constructed
/// models over run_paper_workloads. The runner must match this
/// bit-for-bit.
struct LegacyFig7 {
  std::vector<std::string> names;
  std::vector<double> cpu_t, gpu_t, ir_t, booster_t, cycle_t;
};

LegacyFig7 legacy_fig7(const workloads::RunnerConfig& rcfg) {
  LegacyFig7 out;
  const auto workloads = workloads::run_paper_workloads(rcfg);
  const auto& bw = calibrated_profile(memsim::DramConfig{});
  core::BoosterConfig booster_cfg;
  booster_cfg.bandwidth = bw;
  const baselines::CpuLikeModel ideal_cpu(baselines::ideal_cpu_params());
  const baselines::CpuLikeModel ideal_gpu(baselines::ideal_gpu_params());
  const core::BoosterModel booster(booster_cfg);
  const perf::CycleCalibratedBoosterModel cycle(booster_cfg);
  for (const auto& w : workloads) {
    baselines::InterRecordParams p;
    p.bandwidth = bw;
    p.copies = w.spec.ir_copies >= 0
                   ? static_cast<std::uint32_t>(w.spec.ir_copies)
                   : baselines::InterRecordModel::estimate_copies(w.info, p);
    const baselines::InterRecordModel ir(p);
    out.names.push_back(w.spec.name);
    out.cpu_t.push_back(ideal_cpu.train_cost(w.trace, w.info).total());
    out.gpu_t.push_back(ideal_gpu.train_cost(w.trace, w.info).total());
    out.ir_t.push_back(ir.train_cost(w.trace, w.info).total());
    out.booster_t.push_back(booster.train_cost(w.trace, w.info).total());
    out.cycle_t.push_back(cycle.train_cost(w.trace, w.info).total());
  }
  return out;
}

TEST(GoldenEquivalence, RunnerReproducesLegacyFig7AtOneAndFourThreads) {
  const auto spec = builtin_scenario("fig7_speedup");
  ASSERT_TRUE(spec.has_value());

  workloads::RunnerConfig rcfg = spec->runner_config(/*quick=*/true);
  const LegacyFig7 legacy = legacy_fig7(rcfg);

  for (const unsigned threads : {1u, 4u}) {
    RunOptions opt;
    opt.quick = true;
    opt.threads = threads;
    std::string error;
    const auto res = ScenarioRunner().run(*spec, opt, &error);
    ASSERT_TRUE(res.has_value()) << error;
    ASSERT_EQ(res->workloads.size(), legacy.names.size());
    for (std::size_t w = 0; w < legacy.names.size(); ++w) {
      EXPECT_EQ(res->workloads[w].spec.name, legacy.names[w]);
      // Bit-identical, not approximately equal: the runner must not
      // perturb the costing path at any thread count.
      EXPECT_EQ(res->cell(0, w, 0).total_seconds, legacy.cpu_t[w])
          << legacy.names[w] << " threads=" << threads;
      EXPECT_EQ(res->cell(0, w, 1).total_seconds, legacy.gpu_t[w])
          << legacy.names[w] << " threads=" << threads;
      EXPECT_EQ(res->cell(0, w, 2).total_seconds, legacy.ir_t[w])
          << legacy.names[w] << " threads=" << threads;
      EXPECT_EQ(res->cell(0, w, 3).total_seconds, legacy.booster_t[w])
          << legacy.names[w] << " threads=" << threads;
      EXPECT_EQ(res->cell(0, w, 4).total_seconds, legacy.cycle_t[w])
          << legacy.names[w] << " threads=" << threads;
    }
  }
}

TEST(GoldenEquivalence, BuSweepParallelMatchesSerialPerCell) {
  // Acceptance: a BU-count sweep runs its cells in parallel with per-cell
  // results identical to a serial run. Trimmed sweep + small sample keeps
  // this fast; the analytic models make the cell matrix wide, not deep.
  auto spec = *builtin_scenario("dse_bu_sweep");
  spec.sweep_values = {10, 30, 50, 80};
  spec.sim_records = 4000;
  spec.sim_trees = 4;

  RunOptions serial_opt;
  serial_opt.threads = 1;
  serial_opt.calibrate_bandwidth = false;
  RunOptions parallel_opt = serial_opt;
  parallel_opt.threads = 4;

  std::string error;
  const auto serial = ScenarioRunner().run(spec, serial_opt, &error);
  ASSERT_TRUE(serial.has_value()) << error;
  const auto parallel = ScenarioRunner().run(spec, parallel_opt, &error);
  ASSERT_TRUE(parallel.has_value()) << error;

  ASSERT_EQ(serial->cells.size(),
            spec.sweep_values.size() * spec.workloads.size() *
                spec.models.size());
  ASSERT_EQ(serial->cells.size(), parallel->cells.size());
  for (std::size_t i = 0; i < serial->cells.size(); ++i) {
    const auto& a = serial->cells[i];
    const auto& b = parallel->cells[i];
    EXPECT_EQ(a.model_name, b.model_name);
    EXPECT_EQ(a.sweep_value, b.sweep_value);
    EXPECT_EQ(a.total_seconds, b.total_seconds) << "cell " << i;
    for (int k = 0; k < trace::kNumStepKinds; ++k) {
      EXPECT_EQ(a.breakdown.seconds[k], b.breakdown.seconds[k])
          << "cell " << i << " step " << k;
    }
    EXPECT_EQ(a.activity.dram_bytes, b.activity.dram_bytes) << "cell " << i;
  }
  // The sweep actually swept: more clusters -> no slower anywhere, and the
  // booster cells differ across points.
  EXPECT_NE(serial->cell(0, 0, 1).total_seconds,
            serial->cell(3, 0, 1).total_seconds);
}

TEST(ShardSweep, AxisAndRunnerShardsRoundTripThroughJson) {
  // Golden check on the checked-in scenario's spec: the shards sweep axis
  // and the functional runner.shards knob survive serialize -> parse.
  const auto spec = builtin_scenario("dse_shard_sweep");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->sweep_axis, SweepAxis::kShards);
  EXPECT_EQ(spec->shards, 4u);
  ASSERT_EQ(spec->datasets.size(), 1u);
  EXPECT_EQ(spec->datasets[0].name, "synth50m");
  EXPECT_EQ(spec->datasets[0].nominal_records, 50'000'000u);

  const Json j = spec->to_json();
  const Json* sweep = j.find("sweep");
  ASSERT_NE(sweep, nullptr);
  EXPECT_EQ(sweep->find("axis")->as_string(), "shards");
  const Json* runner = j.find("runner");
  ASSERT_NE(runner, nullptr);
  EXPECT_DOUBLE_EQ(runner->find("shards")->as_double(), 4.0);

  std::string error;
  const auto reparsed = ScenarioSpec::from_json(j, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_TRUE(*reparsed == *spec);
  EXPECT_EQ(reparsed->sweep_axis, SweepAxis::kShards);
  EXPECT_EQ(reparsed->shards, 4u);
  EXPECT_EQ(reparsed->sweep_values, spec->sweep_values);
}

TEST(DistributedRunner, ProcsAndTransportRoundTripThroughJson) {
  auto spec = *builtin_scenario("dse_shard_sweep");
  spec.procs = 2;
  spec.transport = "socket";
  const Json j = spec.to_json();
  const Json* runner = j.find("runner");
  ASSERT_NE(runner, nullptr);
  EXPECT_DOUBLE_EQ(runner->find("procs")->as_double(), 2.0);
  EXPECT_EQ(runner->find("transport")->as_string(), "socket");

  std::string error;
  const auto reparsed = ScenarioSpec::from_json(j, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_TRUE(*reparsed == spec);
  EXPECT_EQ(reparsed->procs, 2u);
  EXPECT_EQ(reparsed->transport, "socket");

  // Defaults stay out of the serialized form (lossless minimal JSON).
  const auto defaults = *builtin_scenario("dse_shard_sweep");
  const Json dj = defaults.to_json();
  const Json* drunner = dj.find("runner");
  ASSERT_NE(drunner, nullptr);
  EXPECT_EQ(drunner->find("procs"), nullptr);
  EXPECT_EQ(drunner->find("transport"), nullptr);

  // The knobs reach the workload runner config.
  const auto rcfg = reparsed->runner_config(/*quick=*/false);
  EXPECT_EQ(rcfg.procs, 2u);
  EXPECT_EQ(rcfg.transport, "socket");
}

TEST(DistributedRunner, ChurnRoundTripsAndIsValidated) {
  auto spec = *builtin_scenario("dse_shard_sweep");
  spec.procs = 3;
  spec.transport = "tcp";
  spec.churn = "kill:1@2,join:3@4";
  const Json j = spec.to_json();
  const Json* runner = j.find("runner");
  ASSERT_NE(runner, nullptr);
  EXPECT_EQ(runner->find("churn")->as_string(), "kill:1@2,join:3@4");

  std::string error;
  const auto reparsed = ScenarioSpec::from_json(j, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_TRUE(*reparsed == spec);
  EXPECT_EQ(reparsed->churn, "kill:1@2,join:3@4");
  const auto rcfg = reparsed->runner_config(/*quick=*/false);
  EXPECT_EQ(rcfg.transport, "tcp");
  EXPECT_EQ(rcfg.churn, "kill:1@2,join:3@4");

  // churn without tcp is rejected.
  spec.transport = "loopback";
  error.clear();
  EXPECT_FALSE(ScenarioSpec::from_json(spec.to_json(), &error).has_value());
  EXPECT_NE(error.find("churn"), std::string::npos) << error;

  // An unparseable schedule is rejected.
  spec.transport = "tcp";
  spec.churn = "explode:1@2";
  error.clear();
  EXPECT_FALSE(ScenarioSpec::from_json(spec.to_json(), &error).has_value());
  EXPECT_NE(error.find("churn"), std::string::npos) << error;
}

TEST(DistributedRunner, BadTransportAndZeroProcsAreParseErrors) {
  auto spec = *builtin_scenario("dse_shard_sweep");
  spec.transport = "carrier-pigeon";
  std::string error;
  EXPECT_FALSE(ScenarioSpec::from_json(spec.to_json(), &error).has_value());
  EXPECT_NE(error.find("transport"), std::string::npos) << error;

  spec = *builtin_scenario("dse_shard_sweep");
  spec.procs = 0;
  error.clear();
  EXPECT_FALSE(ScenarioSpec::from_json(spec.to_json(), &error).has_value());
  EXPECT_NE(error.find("procs"), std::string::npos) << error;
}

TEST(DistributedRunner, ProcsLegTrainsBitIdenticallyToInProcess) {
  // runner.procs routes the functional sample through the distributed
  // trainer; by the bit-identity contract nothing downstream may change.
  workloads::RunnerConfig base;
  base.sim_records = 2000;
  base.sim_trees = 3;
  base.num_shards = 3;
  workloads::RunnerConfig dist = base;
  dist.procs = 2;
  dist.transport = "loopback";

  const auto spec = workloads::fraud_spec();
  const auto a = workloads::run_workload(spec, base);
  const auto b = workloads::run_workload(spec, dist);
  ASSERT_EQ(a.train.model.num_trees(), b.train.model.num_trees());
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
  for (std::size_t t = 0; t < a.train.tree_stats.size(); ++t) {
    EXPECT_EQ(a.train.tree_stats[t].train_loss,
              b.train.tree_stats[t].train_loss);
  }
  for (std::uint64_t r = 0; r < a.binned.num_records(); r += 127) {
    EXPECT_EQ(a.train.model.predict_raw(a.binned, r),
              b.train.model.predict_raw(b.binned, r));
  }
  EXPECT_EQ(a.info.avg_leaf_depth, b.info.avg_leaf_depth);
}

TEST(DistributedRunner, ChurnLegTrainsBitIdenticallyOverElasticTcp) {
  // runner.transport=tcp + runner.churn routes the functional sample
  // through the elastic localhost-TCP world with a scheduled mid-run
  // kill; the final model and trace must still match the plain trainer.
  workloads::RunnerConfig base;
  base.sim_records = 2000;
  base.sim_trees = 4;
  base.num_shards = 3;
  workloads::RunnerConfig churned = base;
  churned.procs = 3;
  churned.transport = "tcp";
  churned.churn = "kill:2@1";

  const auto spec = workloads::fraud_spec();
  const auto a = workloads::run_workload(spec, base);
  const auto b = workloads::run_workload(spec, churned);
  ASSERT_EQ(a.train.model.num_trees(), b.train.model.num_trees());
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
  for (std::size_t t = 0; t < a.train.tree_stats.size(); ++t) {
    EXPECT_EQ(a.train.tree_stats[t].train_loss,
              b.train.tree_stats[t].train_loss);
  }
  for (std::uint64_t r = 0; r < a.binned.num_records(); r += 127) {
    EXPECT_EQ(a.train.model.predict_raw(a.binned, r),
              b.train.model.predict_raw(b.binned, r));
  }
  EXPECT_EQ(a.info.avg_leaf_depth, b.info.avg_leaf_depth);
}

TEST(ShardSweep, NonIntegerShardValuesAreErrors) {
  auto spec = *builtin_scenario("dse_shard_sweep");
  spec.sweep_values = {1.5};
  spec.sim_records = 2000;
  spec.sim_trees = 2;
  RunOptions opt;
  opt.calibrate_bandwidth = false;
  std::string error;
  EXPECT_FALSE(ScenarioRunner().run(spec, opt, &error).has_value());
  EXPECT_NE(error.find("shards"), std::string::npos) << error;
}

TEST(ShardSweep, ParallelMatchesSerialPerCell) {
  // Acceptance: dse_shard_sweep's cells run in parallel with per-cell
  // output identical to a serial run (trimmed sweep + small functional
  // sample; runner.shards = 4 stays, so the sharded training engine
  // itself is exercised inside the pipeline).
  auto spec = *builtin_scenario("dse_shard_sweep");
  spec.sweep_values = {1, 4, 16};
  spec.sim_records = 3000;
  spec.sim_trees = 3;
  ASSERT_EQ(spec.shards, 4u);

  RunOptions serial_opt;
  serial_opt.threads = 1;
  serial_opt.calibrate_bandwidth = false;
  RunOptions parallel_opt = serial_opt;
  parallel_opt.threads = 4;

  std::string error;
  const auto serial = ScenarioRunner().run(spec, serial_opt, &error);
  ASSERT_TRUE(serial.has_value()) << error;
  const auto parallel = ScenarioRunner().run(spec, parallel_opt, &error);
  ASSERT_TRUE(parallel.has_value()) << error;

  ASSERT_EQ(serial->cells.size(),
            spec.sweep_values.size() * spec.workloads.size() *
                spec.models.size());
  ASSERT_EQ(serial->cells.size(), parallel->cells.size());
  for (std::size_t i = 0; i < serial->cells.size(); ++i) {
    const auto& a = serial->cells[i];
    const auto& b = parallel->cells[i];
    EXPECT_EQ(a.model_name, b.model_name);
    EXPECT_EQ(a.sweep_value, b.sweep_value);
    EXPECT_EQ(a.total_seconds, b.total_seconds) << "cell " << i;
    for (int k = 0; k < trace::kNumStepKinds; ++k) {
      EXPECT_EQ(a.breakdown.seconds[k], b.breakdown.seconds[k])
          << "cell " << i << " step " << k;
    }
    EXPECT_EQ(a.activity.dram_bytes, b.activity.dram_bytes) << "cell " << i;
  }

  // The axis reached the models: the booster cells (model index 1) vary
  // across shard counts -- per-shard bandwidth shrinks the record steps
  // while merge traffic grows -- whereas the CPU baseline (model index 0)
  // ignores training_shards entirely.
  EXPECT_NE(serial->cell(0, 0, 1).total_seconds,
            serial->cell(2, 0, 1).total_seconds);
  EXPECT_EQ(serial->cell(0, 0, 0).total_seconds,
            serial->cell(2, 0, 0).total_seconds);
  // And the resolved per-point booster config carries the shard count.
  EXPECT_EQ(serial->cell(1, 0, 1).booster.training_shards, 4u);
  EXPECT_EQ(serial->cell(2, 0, 1).booster.training_shards, 16u);
}

TEST(ScenarioRunner, CanonicalJsonNamesEveryCell) {
  auto spec = *builtin_scenario("fig6_seq_breakdown");
  spec.workloads = {"fraud"};
  spec.sim_records = 3000;
  spec.sim_trees = 3;
  RunOptions opt;
  opt.calibrate_bandwidth = false;
  opt.threads = 1;
  std::string error;
  const auto res = ScenarioRunner().run(spec, opt, &error);
  ASSERT_TRUE(res.has_value()) << error;
  const Json j = res->to_json();
  ASSERT_NE(j.find("cells"), nullptr);
  ASSERT_EQ(j.find("cells")->items().size(), 1u);
  const Json& cell = j.find("cells")->items()[0];
  EXPECT_EQ(cell.find("workload")->as_string(), "fraud");
  EXPECT_GT(cell.find("total_s")->as_double(), 0.0);
  // The dump must itself be valid JSON (machine-readable contract).
  EXPECT_TRUE(Json::parse(j.dump(), &error).has_value()) << error;
}

}  // namespace
}  // namespace booster::sim
