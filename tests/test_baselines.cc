#include <gtest/gtest.h>

#include "baselines/cpu_like.h"
#include "baselines/inter_record.h"
#include "core/booster_model.h"
#include "workloads/runner.h"

namespace booster::baselines {
namespace {

using trace::StepKind;

const workloads::WorkloadResult& workload(const std::string& name) {
  static std::map<std::string, workloads::WorkloadResult> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    // The default runner configuration -- the same one the bench binaries
    // use -- so baseline-ordering assertions match the printed figures.
    const workloads::RunnerConfig cfg;
    it = cache.emplace(name, workloads::run_workload(
                                 workloads::spec_by_name(name), cfg)).first;
  }
  return it->second;
}

TEST(IdealCpu, ThirtyTwoWayOverSequentialOnAcceleratedSteps) {
  const CpuLikeModel seq(sequential_cpu_params());
  const CpuLikeModel ideal(ideal_cpu_params());
  const auto& w = workload("Higgs");
  const auto a = seq.train_cost(w.trace, w.info);
  const auto b = ideal.train_cost(w.trace, w.info);
  for (const auto kind :
       {StepKind::kHistogram, StepKind::kPartition, StepKind::kTraversal}) {
    EXPECT_NEAR(a[kind] / b[kind], 32.0, 0.5);
  }
}

TEST(IdealGpu, TwiceTheLanesOfIdealCpu) {
  const CpuLikeModel cpu(ideal_cpu_params());
  const CpuLikeModel gpu(ideal_gpu_params());
  const auto& w = workload("Higgs");
  const auto a = cpu.train_cost(w.trace, w.info);
  const auto b = gpu.train_cost(w.trace, w.info);
  EXPECT_NEAR(a[StepKind::kHistogram] / b[StepKind::kHistogram], 2.0, 0.01);
  // Step 2 runs on the same host for both.
  EXPECT_DOUBLE_EQ(a[StepKind::kSplitSelect], b[StepKind::kSplitSelect]);
  // Overall: the paper's 1.6-1.9x window (plus margin for our calibration).
  const double speedup = a.total() / b.total();
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 2.05);
}

TEST(RealModels, IdealIsUpperBoundOnPerformance) {
  const CpuLikeModel icpu(ideal_cpu_params());
  const CpuLikeModel rcpu(real_cpu_params());
  const CpuLikeModel igpu(ideal_gpu_params());
  const CpuLikeModel rgpu(real_gpu_params());
  for (const char* name : {"IoT", "Higgs", "Allstate", "Mq2008", "Flight"}) {
    const auto& w = workload(name);
    EXPECT_LE(icpu.train_cost(w.trace, w.info).total(),
              rcpu.train_cost(w.trace, w.info).total())
        << name;
    EXPECT_LE(igpu.train_cost(w.trace, w.info).total(),
              rgpu.train_cost(w.trace, w.info).total())
        << name;
  }
}

TEST(RealModels, GpuLosesOnIrregularWorkloads) {
  // Fig 11's qualitative result: the real GPU loses to the real multicore
  // exactly for Allstate (huge one-hot histograms) and Mq2008 (small data).
  const CpuLikeModel rcpu(real_cpu_params());
  const CpuLikeModel rgpu(real_gpu_params());
  const std::map<std::string, bool> gpu_should_win{
      {"IoT", true},      {"Higgs", true},  {"Allstate", false},
      {"Mq2008", false},  {"Flight", true}};
  for (const auto& [name, should_win] : gpu_should_win) {
    const auto& w = workload(name);
    const double cpu_t = rcpu.train_cost(w.trace, w.info).total();
    const double gpu_t = rgpu.train_cost(w.trace, w.info).total();
    EXPECT_EQ(gpu_t < cpu_t, should_win) << name;
  }
}

TEST(CpuLike, InferenceScalesWithTreesAndPath) {
  const CpuLikeModel cpu(ideal_cpu_params());
  perf::InferenceSpec spec;
  spec.records = 1e6;
  spec.trees = 500;
  spec.avg_path_length = 6.0;
  const double base = cpu.inference_cost(spec);
  spec.trees = 1000;
  EXPECT_NEAR(cpu.inference_cost(spec) / base, 2.0, 0.01);
  spec.trees = 500;
  spec.avg_path_length = 3.0;
  EXPECT_LT(cpu.inference_cost(spec), base);
}

TEST(CpuLike, ActivityDramIdenticalAcrossCpuAndGpu) {
  // Paper Fig 10: Ideal 32-core and Ideal GPU access the same blocks.
  const CpuLikeModel cpu(ideal_cpu_params());
  const CpuLikeModel gpu(ideal_gpu_params());
  const auto& w = workload("Higgs");
  const auto a = cpu.train_activity(w.trace, w.info);
  const auto b = gpu.train_activity(w.trace, w.info);
  EXPECT_DOUBLE_EQ(a.dram_bytes, b.dram_bytes);
  EXPECT_DOUBLE_EQ(a.sram_accesses, b.sram_accesses);
  EXPECT_DOUBLE_EQ(a.sram_energy_per_access_norm, 1.0);
  EXPECT_DOUBLE_EQ(b.sram_energy_per_access_norm, 2.64);
}

TEST(InterRecord, EstimateCopiesFromFootprint) {
  InterRecordParams p;
  p.sram_budget_bytes = 1 << 20;  // 1 MB
  trace::WorkloadInfo info;
  info.total_bins = 1024;  // 8 KB histogram
  EXPECT_EQ(InterRecordModel::estimate_copies(info, p), 128u);
  info.total_bins = 1 << 20;  // 8 MB histogram: does not fit
  EXPECT_EQ(InterRecordModel::estimate_copies(info, p), 0u);
}

TEST(InterRecord, MoreCopiesFasterStep1) {
  const auto& w = workload("Higgs");
  InterRecordParams few;
  few.copies = 32;
  InterRecordParams many;
  many.copies = 271;
  const auto a = InterRecordModel(few).train_cost(w.trace, w.info);
  const auto b = InterRecordModel(many).train_cost(w.trace, w.info);
  EXPECT_GE(a[StepKind::kHistogram], b[StepKind::kHistogram]);
}

TEST(InterRecord, SpillModeSlowerThanOnChip) {
  const auto& w = workload("Higgs");
  InterRecordParams fits;
  fits.copies = 271;
  InterRecordParams spills;
  spills.copies = 0;
  const auto a = InterRecordModel(fits).train_cost(w.trace, w.info);
  const auto b = InterRecordModel(spills).train_cost(w.trace, w.info);
  EXPECT_LT(a[StepKind::kHistogram], b[StepKind::kHistogram]);
}

TEST(InterRecord, SpillChargesDramRmwEnergy) {
  const auto& w = workload("Higgs");
  InterRecordParams fits;
  fits.copies = 271;
  InterRecordParams spills;
  spills.copies = 0;
  const auto a = InterRecordModel(fits).train_activity(w.trace, w.info);
  const auto b = InterRecordModel(spills).train_activity(w.trace, w.info);
  EXPECT_GT(b.dram_bytes, a.dram_bytes);
  EXPECT_LT(b.sram_accesses, a.sram_accesses);
}

TEST(InterRecord, WellBehindBoosterEverywhere) {
  // Paper SS V-A: "IR's lower parallelism places IR well behind Booster."
  const core::BoosterModel booster;
  for (const char* name : {"IoT", "Higgs", "Allstate", "Mq2008", "Flight"}) {
    const auto& w = workload(name);
    InterRecordParams p;
    p.copies = w.spec.ir_copies >= 0
                   ? static_cast<std::uint32_t>(w.spec.ir_copies)
                   : InterRecordModel::estimate_copies(w.info, p);
    const InterRecordModel ir(p);
    EXPECT_GT(ir.train_cost(w.trace, w.info).total(),
              booster.train_cost(w.trace, w.info).total())
        << name;
  }
}

TEST(Params, FactoryNamesAndLanes) {
  EXPECT_EQ(sequential_cpu_params().lanes, 1.0);
  EXPECT_EQ(ideal_cpu_params().lanes, 32.0);
  EXPECT_EQ(ideal_gpu_params().lanes, 64.0);
  EXPECT_EQ(sequential_cpu_params().host.cores, 1);
  EXPECT_EQ(real_cpu_params().name, "Real 32-core");
  EXPECT_EQ(real_gpu_params().name, "Real GPU");
}

}  // namespace
}  // namespace booster::baselines
